"""Tests for the phone-side trip recorder state machine."""

import pytest

from repro.config import TripRecorderConfig
from repro.phone.cellular import CellularSample
from repro.phone.trip_recorder import RecorderState, TripRecorder, TripUpload


def sample(t, towers=(1, 2, 3)):
    return CellularSample(time_s=t, tower_ids=tuple(towers))


@pytest.fixture()
def recorder():
    return TripRecorder(TripRecorderConfig(trip_timeout_s=600.0), phone_id="p1")


class TestLifecycle:
    def test_starts_idle(self, recorder):
        assert recorder.state is RecorderState.IDLE

    def test_beep_starts_recording(self, recorder):
        recorder.on_beep(sample(100.0))
        assert recorder.state is RecorderState.RECORDING

    def test_timeout_concludes_trip(self, recorder):
        recorder.on_beep(sample(100.0))
        recorder.on_beep(sample(150.0))
        recorder.on_tick(150.0 + 600.0)
        assert recorder.state is RecorderState.IDLE
        trips = recorder.drain_completed()
        assert len(trips) == 1
        assert len(trips[0].samples) == 2

    def test_no_timeout_before_deadline(self, recorder):
        recorder.on_beep(sample(100.0))
        recorder.on_tick(100.0 + 599.0)
        assert recorder.state is RecorderState.RECORDING

    def test_late_beep_opens_new_trip(self, recorder):
        recorder.on_beep(sample(100.0))
        recorder.on_beep(sample(800.0))  # 700 s later: previous trip timed out
        trips = recorder.drain_completed()
        assert len(trips) == 1
        assert recorder.state is RecorderState.RECORDING

    def test_train_ride_never_starts(self, recorder):
        recorder.on_beep(sample(100.0), looks_like_bus=False)
        assert recorder.state is RecorderState.IDLE
        assert recorder.drain_completed() == []

    def test_motion_gate_only_guards_start(self, recorder):
        recorder.on_beep(sample(100.0), looks_like_bus=True)
        recorder.on_beep(sample(130.0), looks_like_bus=False)
        recorder.on_tick(130.0 + 600.0)
        assert len(recorder.drain_completed()[0].samples) == 2

    def test_flush_concludes_open_trip(self, recorder):
        recorder.on_beep(sample(100.0))
        trips = recorder.flush(200.0)
        assert len(trips) == 1
        assert recorder.state is RecorderState.IDLE

    def test_flush_when_idle_is_empty(self, recorder):
        assert recorder.flush(100.0) == []

    def test_drain_clears(self, recorder):
        recorder.on_beep(sample(100.0))
        recorder.flush(200.0)
        assert recorder.drain_completed() == []

    def test_clock_must_not_go_backwards(self, recorder):
        recorder.on_beep(sample(100.0))
        with pytest.raises(ValueError):
            recorder.on_beep(sample(50.0))

    def test_trip_keys_unique(self, recorder):
        recorder.on_beep(sample(100.0))
        recorder.flush(200.0)
        recorder.on_beep(sample(300.0))
        trips = recorder.flush(400.0) + recorder.drain_completed()
        keys = {t.trip_key for t in trips}
        assert len(keys) == len(trips)


class TestTripUpload:
    def test_rejects_unordered_samples(self):
        with pytest.raises(ValueError):
            TripUpload("k", (sample(10.0), sample(5.0)))

    def test_start_end(self):
        trip = TripUpload("k", (sample(5.0), sample(10.0)))
        assert trip.start_s == 5.0
        assert trip.end_s == 10.0

    def test_empty_trip_has_no_times(self):
        trip = TripUpload("k", ())
        with pytest.raises(ValueError):
            trip.start_s
