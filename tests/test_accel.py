"""Tests for the accelerometer transit-mode filter."""

import numpy as np
import pytest

from repro.config import AccelConfig
from repro.phone.accel import TransitModeFilter, motion_variance
from repro.sim.audio import synthesize_motion


class TestMotionVariance:
    def test_constant_signal_zero(self):
        assert motion_variance(np.ones(1000), 50.0, 5.0) == pytest.approx(0.0)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            motion_variance(np.array([]), 50.0, 5.0)

    def test_short_trace_falls_back_to_global_variance(self):
        samples = np.array([0.0, 1.0, 0.0, 1.0])
        assert motion_variance(samples, 50.0, 100.0) == pytest.approx(np.var(samples))

    def test_windowing_removes_drift(self):
        # A pure slow ramp has large global variance but tiny windowed one.
        ramp = np.linspace(0.0, 10.0, 50 * 300)
        windowed = motion_variance(ramp, 50.0, 5.0)
        assert windowed < 0.05 * np.var(ramp)


class TestTransitModeFilter:
    @pytest.fixture()
    def filter_(self, config):
        return TransitModeFilter(config.accel)

    def test_bus_classified_as_bus(self, filter_):
        for seed in range(5):
            trace = synthesize_motion("bus", 120.0, rng=np.random.default_rng(seed))
            assert filter_.is_bus(trace.samples)

    def test_train_rejected(self, filter_):
        for seed in range(5):
            trace = synthesize_motion("train", 120.0, rng=np.random.default_rng(seed))
            assert not filter_.is_bus(trace.samples)

    def test_threshold_separates_modes(self, filter_, config):
        bus_vars = [
            filter_.variance(synthesize_motion("bus", 120.0,
                             rng=np.random.default_rng(s)).samples)
            for s in range(8)
        ]
        train_vars = [
            filter_.variance(synthesize_motion("train", 120.0,
                             rng=np.random.default_rng(s)).samples)
            for s in range(8)
        ]
        threshold = config.accel.variance_threshold
        assert min(bus_vars) > threshold > max(train_vars)
