"""Tests for the upload channel (loss, latency, reordering)."""

import numpy as np
import pytest

from repro.config import UplinkConfig
from repro.phone.cellular import CellularSample
from repro.phone.trip_recorder import TripUpload
from repro.sim.uplink import UplinkChannel


def upload(key):
    return TripUpload(
        trip_key=key,
        samples=(CellularSample(time_s=1.0, tower_ids=(1, 2)),),
    )


class TestChannel:
    def test_lossless_channel_delivers_everything(self):
        channel = UplinkChannel(
            UplinkConfig(loss_probability=0.0), rng=np.random.default_rng(0)
        )
        delivered = channel.transmit_all([(100.0, upload("a")), (200.0, upload("b"))])
        assert len(delivered) == 2
        assert channel.stats.delivered == 2
        assert channel.stats.lost == 0

    def test_loss_rate_respected(self):
        channel = UplinkChannel(
            UplinkConfig(loss_probability=0.3), rng=np.random.default_rng(1)
        )
        offered = [(float(k), upload(str(k))) for k in range(500)]
        delivered = channel.transmit_all(offered)
        assert channel.stats.offered == 500
        assert 0.6 < len(delivered) / 500 < 0.8

    def test_delay_applied(self):
        channel = UplinkChannel(
            UplinkConfig(loss_probability=0.0, base_delay_s=60.0,
                         mean_extra_delay_s=120.0),
            rng=np.random.default_rng(2),
        )
        arrival, _ = channel.transmit(100.0, upload("a"))
        assert arrival >= 160.0

    def test_zero_tail_is_deterministic(self):
        channel = UplinkChannel(
            UplinkConfig(loss_probability=0.0, base_delay_s=30.0,
                         mean_extra_delay_s=0.0),
            rng=np.random.default_rng(3),
        )
        arrival, _ = channel.transmit(100.0, upload("a"))
        assert arrival == pytest.approx(130.0)

    def test_reordering_happens(self):
        """Two trips ready close together can arrive swapped."""
        channel = UplinkChannel(
            UplinkConfig(loss_probability=0.0, base_delay_s=0.0,
                         mean_extra_delay_s=600.0),
            rng=np.random.default_rng(4),
        )
        swapped = False
        for k in range(50):
            delivered = channel.transmit_all(
                [(100.0, upload(f"first-{k}")), (110.0, upload(f"second-{k}"))]
            )
            if len(delivered) == 2 and delivered[0][1].trip_key.startswith("second"):
                swapped = True
                break
        assert swapped

    def test_delivery_sorted_by_arrival(self):
        channel = UplinkChannel(
            UplinkConfig(loss_probability=0.0), rng=np.random.default_rng(5)
        )
        delivered = channel.transmit_all(
            [(float(100 * k), upload(str(k))) for k in range(20)]
        )
        arrivals = [t for t, _ in delivered]
        assert arrivals == sorted(arrivals)

    def test_validation(self):
        with pytest.raises(ValueError):
            UplinkChannel(UplinkConfig(loss_probability=1.0))
        with pytest.raises(ValueError):
            UplinkChannel(UplinkConfig(base_delay_s=-1.0))


class TestLateDataInFusion:
    def test_out_of_order_observation_does_not_rewind_freshness(self):
        from repro.core.fusion import BayesianSpeedFuser

        fuser = BayesianSpeedFuser()
        fuser.update("seg", 40.0, t=1000.0)
        belief = fuser.update("seg", 30.0, t=500.0)   # late delivery
        assert belief.last_update_s == 1000.0
        assert belief.observation_count == 2
