"""Tests for the online database bootstrap (§III-B / §VI)."""

import numpy as np
import pytest

from repro.core import SampleMatcher
from repro.core.bootstrap import DatabaseBootstrapper
from repro.phone.cellular import CellularSample
from repro.phone.trip_recorder import TripUpload


def driver_upload(small_city, scanner, route, rng, samples_per_stop=2,
                  inter_stop_s=90.0, trip_index=0):
    """A survey ride: bursts of scans at every stop of the route."""
    samples = []
    t = 100.0
    for route_stop in route.stops:
        platform = small_city.registry.platform(route_stop.stop_id)
        for k in range(samples_per_stop):
            obs = scanner.scan(platform.position, rng)
            samples.append(CellularSample(time_s=t + 2.0 * k, tower_ids=obs.tower_ids))
        t += inter_stop_s
    return TripUpload(trip_key=f"driver-{route.route_id}-{trip_index}",
                      samples=tuple(samples))


@pytest.fixture()
def route(small_city):
    return small_city.route_network.route("179-0")


class TestBootstrap:
    def test_single_trip_promotes_with_low_bar(self, small_city, scanner, route, rng):
        boot = DatabaseBootstrapper(min_samples_to_promote=2)
        promoted = boot.ingest_driver_trip(
            driver_upload(small_city, scanner, route, rng), route
        )
        assert promoted == len(route.stops)
        assert boot.coverage_fraction(route.station_sequence) == 1.0

    def test_promotion_waits_for_enough_samples(self, small_city, scanner, route, rng):
        boot = DatabaseBootstrapper(min_samples_to_promote=4)
        boot.ingest_driver_trip(
            driver_upload(small_city, scanner, route, rng), route
        )
        assert boot.coverage_fraction(route.station_sequence) == 0.0
        boot.ingest_driver_trip(
            driver_upload(small_city, scanner, route, rng, trip_index=1), route
        )
        assert boot.coverage_fraction(route.station_sequence) == 1.0

    def test_stats_track_progress(self, small_city, scanner, route, rng):
        boot = DatabaseBootstrapper(min_samples_to_promote=4)
        boot.ingest_driver_trip(
            driver_upload(small_city, scanner, route, rng), route
        )
        assert boot.stats.driver_trips == 1
        assert boot.stats.samples_consumed == 2 * len(route.stops)
        assert boot.stats.stations_pending == len(route.stops)
        assert boot.stats.stations_promoted == 0

    def test_multiple_routes_fill_the_city(self, small_city, scanner, rng):
        boot = DatabaseBootstrapper(min_samples_to_promote=2)
        for route_id in small_city.route_network.route_ids:
            r = small_city.route_network.route(route_id)
            boot.ingest_driver_trip(
                driver_upload(small_city, scanner, r, rng), r
            )
        all_stations = [s.station_id for s in small_city.registry.stations]
        assert boot.coverage_fraction(all_stations) == 1.0

    def test_bootstrapped_database_actually_matches(
        self, small_city, scanner, route, rng, config
    ):
        """The online-built DB identifies stops about as well as a survey DB."""
        boot = DatabaseBootstrapper(min_samples_to_promote=3)
        for k in range(3):
            boot.ingest_driver_trip(
                driver_upload(small_city, scanner, route, rng, trip_index=k), route
            )
        matcher = SampleMatcher(boot.database.as_dict(), config.matching)
        total = correct = 0
        for route_stop in route.stops:
            platform = small_city.registry.platform(route_stop.stop_id)
            for _ in range(4):
                result = matcher.match(scanner.scan(platform.position, rng).tower_ids)
                total += 1
                correct += result.station_id == route_stop.station_id
        assert correct / total > 0.85

    def test_rejects_bad_promotion_bar(self):
        with pytest.raises(ValueError):
            DatabaseBootstrapper(min_samples_to_promote=0)

    def test_coverage_requires_stations(self):
        with pytest.raises(ValueError):
            DatabaseBootstrapper().coverage_fraction([])
