"""Crash-recovery harness: SIGKILL a real campaign, resume, compare.

Each scenario runs ``repro campaign --store`` in a subprocess with a
``REPRO_FAULT`` fault point armed, so the process SIGKILLs *itself* at
a precise durability-critical instant:

* ``wal_append`` — between the frame header and payload writes of the
  append log, leaving a genuinely torn record on disk;
* ``snapshot``   — after the snapshot tmp-file is written but before the
  atomic rename commits it;
* ``apply``      — after a trip is journaled but before any server state
  mutates (the write-ahead window).

The resumed run must produce a golden trace **byte-identical** to an
uninterrupted run of the same campaign — at workers 1 and at workers 2,
where mid-day recovery also exercises the skip-events fast-forward
against the parallel prepare path.
"""

import subprocess
import sys
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parent.parent

# Small enough to keep each subprocess a few seconds, big enough that
# day 0 spans >30 WAL records and day 1 exists (so the snapshot fault
# at the day-0 boundary has work left to resume into).
CAMPAIGN = [
    "--sparse-days", "1", "--intensive-days", "1",
    "--start", "07:30", "--end", "08:00",
    "--headway", "900", "--seed", "3",
]


def _run(args, env_extra=None, check=True):
    import os

    env = dict(os.environ)
    env["PYTHONPATH"] = str(ROOT / "src")
    env.pop("REPRO_FAULT", None)
    if env_extra:
        env.update(env_extra)
    proc = subprocess.run(
        [sys.executable, "-m", "repro.cli", "campaign", *CAMPAIGN, *args],
        capture_output=True, text=True, env=env, cwd=str(ROOT),
    )
    if check:
        assert proc.returncode == 0, proc.stderr
    return proc


@pytest.fixture(scope="module")
def baseline(tmp_path_factory):
    """Golden traces of the uninterrupted campaign, per worker count."""
    out = tmp_path_factory.mktemp("baseline")
    traces = {}
    for workers in (1, 2):
        path = out / f"workers{workers}.json"
        _run(["--workers", str(workers), "--golden-out", str(path)])
        traces[workers] = path.read_bytes()
    return traces


@pytest.fixture(scope="module")
def scenario_tmp(tmp_path_factory):
    return tmp_path_factory.mktemp("scenarios")


# (fault spec, extra flags): wal_append:30 tears a frame mid-day-0,
# apply:200 dies in the write-ahead window mid-day-1, snapshot:1 dies
# inside the day-0 boundary snapshot (cadence lowered so it fires).
SCENARIOS = [
    pytest.param("wal_append:30", [], id="mid-wal-append"),
    pytest.param("apply:200", [], id="mid-batch-apply"),
    pytest.param("snapshot:1", ["--snapshot-every", "10"], id="mid-snapshot"),
]


@pytest.mark.slow
@pytest.mark.parametrize("workers", [1, 2])
@pytest.mark.parametrize("fault,extra", SCENARIOS)
def test_sigkill_then_resume_is_byte_identical(
    baseline, scenario_tmp, fault, extra, workers
):
    store = scenario_tmp / f"{fault.split(':')[0]}-w{workers}"
    golden = scenario_tmp / f"{fault.split(':')[0]}-w{workers}.json"
    flags = ["--workers", str(workers), "--store", str(store), *extra]

    killed = _run(flags, env_extra={"REPRO_FAULT": fault}, check=False)
    assert killed.returncode == -9, (
        f"fault {fault} did not SIGKILL the campaign: "
        f"rc={killed.returncode}\n{killed.stderr}"
    )
    assert store.exists(), "the WAL must survive the crash"

    _run([*flags, "--resume", "--golden-out", str(golden)])
    assert golden.read_bytes() == baseline[workers], (
        "resumed campaign diverged from the uninterrupted run"
    )


@pytest.mark.slow
def test_two_crashes_then_resume(baseline, scenario_tmp):
    """Crash during the first run AND during the first resume."""
    store = scenario_tmp / "double-crash"
    golden = scenario_tmp / "double-crash.json"
    flags = ["--workers", "1", "--store", str(store)]

    first = _run(flags, env_extra={"REPRO_FAULT": "wal_append:30"},
                 check=False)
    assert first.returncode == -9
    second = _run([*flags, "--resume"],
                  env_extra={"REPRO_FAULT": "apply:150"}, check=False)
    assert second.returncode == -9

    _run([*flags, "--resume", "--golden-out", str(golden)])
    assert golden.read_bytes() == baseline[1]


@pytest.mark.slow
def test_resume_of_finished_campaign_is_stable(baseline, scenario_tmp):
    """Resuming a campaign that already completed replays, re-simulates
    nothing, and renders the identical trace."""
    store = scenario_tmp / "finished"
    golden = scenario_tmp / "finished.json"
    flags = ["--workers", "1", "--store", str(store)]
    _run(flags)
    _run([*flags, "--resume", "--golden-out", str(golden)])
    assert golden.read_bytes() == baseline[1]


@pytest.mark.slow
def test_sqlite_backend_sigkill_resume(baseline, scenario_tmp):
    """The crash harness holds for the sqlite backend too."""
    store = scenario_tmp / "state.db"
    golden = scenario_tmp / "sqlite.json"
    flags = ["--workers", "1", "--store", str(store)]
    killed = _run(flags, env_extra={"REPRO_FAULT": "wal_append:30"},
                  check=False)
    assert killed.returncode == -9
    _run([*flags, "--resume", "--golden-out", str(golden)])
    assert golden.read_bytes() == baseline[1]


def test_resume_without_store_exits_with_usage_error():
    proc = _run(["--resume"], check=False)
    assert proc.returncode == 2
    assert "--resume requires --store" in proc.stderr
