"""Tests for bus stops, stations and the registry."""

import math

import pytest

from repro.city.geometry import Point
from repro.city.stops import (
    BusStop,
    Station,
    StopRegistry,
    make_two_sided_station,
)


@pytest.fixture()
def station() -> Station:
    return make_two_sided_station(7, "Test Ave", Point(100, 200), heading_rad=0.0)


class TestTwoSidedStation:
    def test_has_two_platforms(self, station):
        assert len(station.stops) == 2

    def test_platforms_flank_centreline(self, station):
        a, b = station.stops
        assert a.position.y == pytest.approx(212.0)
        assert b.position.y == pytest.approx(188.0)

    def test_platform_headings_oppose(self, station):
        a, b = station.stops
        diff = abs(a.heading_rad - b.heading_rad) % (2 * math.pi)
        assert diff == pytest.approx(math.pi)

    def test_platform_ids_unique(self, station):
        ids = {s.stop_id for s in station.stops}
        assert len(ids) == 2

    def test_platform_for_heading(self, station):
        east = station.platform_for_heading(0.1)
        west = station.platform_for_heading(math.pi - 0.1)
        assert east.heading_label == "E"
        assert west.heading_label == "W"

    def test_empty_station_raises(self):
        with pytest.raises(ValueError):
            Station(1, "x", Point(0, 0), []).platform_for_heading(0.0)


class TestHeadingLabel:
    @pytest.mark.parametrize(
        "heading,label",
        [(0.0, "E"), (math.pi / 2, "N"), (math.pi, "W"), (3 * math.pi / 2, "S")],
    )
    def test_labels(self, heading, label):
        stop = BusStop("X", 1, "x", Point(0, 0), heading)
        assert stop.heading_label == label


class TestRegistry:
    def test_add_and_lookup(self, station):
        reg = StopRegistry()
        reg.add_station(station)
        assert reg.station(7) is station
        assert reg.station_of(station.stops[0].stop_id) is station

    def test_duplicate_station_rejected(self, station):
        reg = StopRegistry()
        reg.add_station(station)
        with pytest.raises(ValueError):
            reg.add_station(station)

    def test_add_platform(self, station):
        reg = StopRegistry()
        reg.add_station(station)
        extra = BusStop("S0007X", 7, "Test Ave", Point(105, 205), 1.0)
        reg.add_platform(extra)
        assert reg.platform("S0007X") is extra
        assert len(reg.station(7).stops) == 3

    def test_add_platform_unknown_station(self):
        reg = StopRegistry()
        with pytest.raises(KeyError):
            reg.add_platform(BusStop("S1", 1, "x", Point(0, 0), 0.0))

    def test_nearest_station(self, station):
        reg = StopRegistry()
        reg.add_station(station)
        other = make_two_sided_station(8, "Far Ave", Point(5000, 5000), 0.0)
        reg.add_station(other)
        assert reg.nearest_station(Point(110, 190)).station_id == 7

    def test_nearest_station_empty(self):
        with pytest.raises(ValueError):
            StopRegistry().nearest_station(Point(0, 0))

    def test_platform_listing(self, station):
        reg = StopRegistry()
        reg.add_station(station)
        assert len(reg.platforms) == 2
