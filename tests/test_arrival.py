"""Tests for bus arrival-time prediction."""

import itertools

import numpy as np
import pytest

from repro.core import BackendServer
from repro.core.arrival import ArrivalPredictor, expected_dwell_s, infer_route
from repro.core.trip_mapping import MappedStop, MappedTrip
from repro.phone import record_participant_trips
from repro.sim.bus import simulate_bus_trip
from repro.util.units import parse_hhmm


@pytest.fixture()
def warmed_server(small_city, traffic, database, sampler, config):
    """A server whose map has been fed by a few earlier trips."""
    server = BackendServer(
        small_city.network, small_city.route_network, database, config
    )
    rng = np.random.default_rng(31)
    counter = itertools.count()
    for route_id in ("179-0", "199-0"):
        route = small_city.route_network.route(route_id)
        for k in range(3):
            trace = simulate_bus_trip(
                route, parse_hhmm("08:00") + 900.0 * k, traffic, counter, rng=rng
            )
            server.receive_trips(
                record_participant_trips(
                    trace, small_city.registry, sampler, config, rng=rng
                )
            )
    return server


def mapped_trip_from(stations, times):
    stops = [
        MappedStop(station_id=s, arrival_s=t, depart_s=t + 15.0,
                   cluster_size=2, weight=5.0)
        for s, t in zip(stations, times)
    ]
    return MappedTrip(stops=stops, score=1.0)


class TestExpectedDwell:
    def test_positive_and_sane(self):
        dwell = expected_dwell_s()
        assert 8.0 < dwell < 30.0


class TestPredict:
    def test_predicts_all_downstream_stops(self, small_city, warmed_server):
        route = small_city.route_network.route("179-0")
        predictor = ArrivalPredictor(
            small_city.route_network, warmed_server.traffic_map
        )
        start = route.stops[2].station_id
        predictions = predictor.predict("179-0", start, parse_hhmm("09:00"))
        assert len(predictions) == len(route.stops) - 3
        assert predictions[0].horizon_stops == 1

    def test_arrivals_monotone(self, small_city, warmed_server):
        route = small_city.route_network.route("179-0")
        predictor = ArrivalPredictor(
            small_city.route_network, warmed_server.traffic_map
        )
        predictions = predictor.predict(
            "179-0", route.stops[0].station_id, parse_hhmm("09:00")
        )
        times = [p.arrival_s for p in predictions]
        assert times == sorted(times)
        assert times[0] > parse_hhmm("09:00")

    def test_horizon_limits_output(self, small_city, warmed_server):
        route = small_city.route_network.route("179-0")
        predictor = ArrivalPredictor(
            small_city.route_network, warmed_server.traffic_map
        )
        predictions = predictor.predict(
            "179-0", route.stops[0].station_id, parse_hhmm("09:00"), max_horizon=3
        )
        assert len(predictions) == 3

    def test_unknown_station_rejected(self, small_city, warmed_server):
        predictor = ArrivalPredictor(
            small_city.route_network, warmed_server.traffic_map
        )
        with pytest.raises(ValueError):
            predictor.predict("179-0", 99999, parse_hhmm("09:00"))

    def test_accuracy_against_simulation(
        self, small_city, traffic, warmed_server
    ):
        """Predictions from stop 3 track the simulated ground truth."""
        route = small_city.route_network.route("179-0")
        trace = simulate_bus_trip(
            route, parse_hhmm("08:50"), traffic, itertools.count(),
            rng=np.random.default_rng(32),
        )
        anchor = trace.visits[3]
        predictor = ArrivalPredictor(
            small_city.route_network, warmed_server.traffic_map
        )
        predictions = predictor.predict(
            "179-0", anchor.station_id, anchor.depart_s, max_horizon=6
        )
        actual = {v.stop_order: v.arrival_s for v in trace.visits}
        errors = [
            abs(p.arrival_s - actual[p.stop_order]) for p in predictions
        ]
        # Within a minute and a half over a six-stop horizon.
        assert max(errors) < 90.0
        assert np.mean(errors) < 60.0


class TestInferRoute:
    def test_identifies_the_right_route(self, small_city):
        route = small_city.route_network.route("179-0")
        stations = route.station_sequence[2:6]
        mapped = mapped_trip_from(stations, [100.0, 200.0, 300.0, 400.0])
        inferred = infer_route(mapped, small_city.route_network)
        # The stations may be shared, but the inferred route must serve
        # them in this order.
        orders = [inferred.station_order(s) for s in stations]
        assert None not in orders
        assert orders == sorted(orders)

    def test_direction_matters(self, small_city):
        route = small_city.route_network.route("179-0")
        stations = list(reversed(route.station_sequence[2:6]))
        mapped = mapped_trip_from(stations, [100.0, 200.0, 300.0, 400.0])
        inferred = infer_route(mapped, small_city.route_network)
        assert inferred is not None
        assert inferred.route_id != "179-0"

    def test_garbage_sequence_is_none(self, small_city):
        mapped = mapped_trip_from([99990], [100.0])
        assert infer_route(mapped, small_city.route_network) is None

    def test_predict_for_trip(self, small_city, warmed_server):
        route = small_city.route_network.route("179-0")
        stations = route.station_sequence[:4]
        mapped = mapped_trip_from(
            stations, [parse_hhmm("09:00") + 120.0 * k for k in range(4)]
        )
        predictor = ArrivalPredictor(
            small_city.route_network, warmed_server.traffic_map
        )
        predictions = predictor.predict_for_trip(mapped, max_horizon=4)
        assert predictions
        assert predictions[0].arrival_s > mapped.stops[-1].depart_s
