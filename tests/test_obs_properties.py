"""Property-based tests (hypothesis) for the observability invariants.

Marked ``@pytest.mark.property`` per the repo's testing discipline; CI
caps example counts via ``HYPOTHESIS_MAX_EXAMPLES`` (see conftest).
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.metrics import Counter, Histogram, MetricsRegistry
from repro.obs.tracing import Tracer

amounts = st.lists(
    st.floats(min_value=0.0, max_value=1e6, allow_nan=False), max_size=50
)
observations = st.lists(
    st.floats(min_value=-1e9, max_value=1e9, allow_nan=False),
    max_size=80,
)
bucket_bounds = st.lists(
    st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
    min_size=1,
    max_size=10,
    unique=True,
)


@pytest.mark.property
class TestCounterProperties:
    @given(amounts)
    def test_monotone_under_arbitrary_increments(self, increments):
        counter = Counter("c")
        seen = [counter.value]
        for amount in increments:
            counter.inc(amount)
            seen.append(counter.value)
        assert seen == sorted(seen)
        assert counter.value == pytest.approx(sum(increments))

    @given(amounts, amounts)
    def test_registry_shared_counter_sums_both_writers(self, first, second):
        registry = MetricsRegistry()
        for amount in first:
            registry.counter("shared").inc(amount)
        for amount in second:
            registry.counter("shared").inc(amount)
        assert registry.counter("shared").value == pytest.approx(
            sum(first) + sum(second)
        )


@pytest.mark.property
class TestHistogramProperties:
    @given(bucket_bounds, observations)
    def test_bucket_counts_sum_to_observation_count(self, bounds, values):
        hist = Histogram("h", buckets=bounds)
        for value in values:
            hist.observe(value)
        assert sum(hist.bucket_counts) == len(values)
        assert hist.count == len(values)

    @given(bucket_bounds, observations)
    def test_cumulative_is_monotone_and_ends_at_count(self, bounds, values):
        hist = Histogram("h", buckets=bounds)
        for value in values:
            hist.observe(value)
        pairs = hist.cumulative()
        counts = [count for _, count in pairs]
        assert counts == sorted(counts)
        assert pairs[-1] == (math.inf, len(values))

    @given(bucket_bounds, observations)
    def test_each_observation_lands_in_its_bucket(self, bounds, values):
        hist = Histogram("h", buckets=bounds)
        for value in values:
            hist.observe(value)
        # Recompute expected per-bucket counts directly from le semantics.
        expected = [0] * (len(hist.bounds) + 1)
        for value in values:
            for i, bound in enumerate(hist.bounds):
                if value <= bound:
                    expected[i] += 1
                    break
            else:
                expected[-1] += 1
        assert hist.bucket_counts == expected


#: A nesting script: each entry opens a span and nests `children` more.
span_trees = st.recursive(
    st.just([]),
    lambda children: st.lists(children, max_size=3),
    max_leaves=12,
)


def _run_tree(tracer, tree, depth=0):
    for index, children in enumerate(tree):
        with tracer.span(f"s{depth}.{index}"):
            _run_tree(tracer, children, depth + 1)


@pytest.mark.property
class TestTracerProperties:
    @given(span_trees)
    @settings(max_examples=60)
    def test_nesting_always_balances(self, tree):
        tracer = Tracer()
        _run_tree(tracer, tree)
        assert tracer.depth == 0
        assert tracer.current_span is None

    @given(span_trees)
    @settings(max_examples=60)
    def test_durations_non_negative_and_counts_match(self, tree):
        tracer = Tracer()
        _run_tree(tracer, tree)

        def count_spans(t, depth=0):
            total = {}
            for index, children in enumerate(t):
                name = f"s{depth}.{index}"
                total[name] = total.get(name, 0) + 1
                for child_name, n in count_spans(children, depth + 1).items():
                    total[child_name] = total.get(child_name, 0) + n
            return total

        expected = count_spans(tree)
        stats = tracer.stage_stats()
        assert {k: v["count"] for k, v in stats.items()} == expected
        for timing in stats.values():
            assert timing["total_s"] >= 0.0
            assert 0.0 <= timing["min_s"] <= timing["max_s"]
            assert timing["mean_s"] * timing["count"] == pytest.approx(
                timing["total_s"]
            )
