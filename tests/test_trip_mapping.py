"""Tests for route-constrained per-trip mapping (§III-C3)."""

import pytest

from repro.city.geometry import Point
from repro.city.road_network import RoadNetwork
from repro.city.routes import BusRoute, RouteNetwork
from repro.city.stops import StopRegistry, make_two_sided_station
from repro.config import TripMappingConfig
from repro.core.clustering import MatchedSample, SampleCluster
from repro.core.matching import MatchResult
from repro.core.trip_mapping import (
    RouteConstraint,
    enumerate_best_sequence,
    map_trip,
)
from repro.phone.cellular import CellularSample


@pytest.fixture()
def constraint():
    net = RoadNetwork()
    for i in range(6):
        net.add_node(i, Point(i * 400.0, 0.0))
    for i in range(5):
        net.add_road(i, i + 1)
    reg = StopRegistry()
    for i in range(6):
        reg.add_station(make_two_sided_station(i, f"St {i}", net.node_position(i), 0.0))
    route = BusRoute("L-0", "L", 0, list(range(6)), net, reg)
    return RouteConstraint(RouteNetwork([route]))


def cluster(t, *candidates):
    """Cluster at time t with candidate (station, count, score) entries."""
    samples = []
    for station, count, score in candidates:
        for k in range(count):
            samples.append(
                MatchedSample(
                    sample=CellularSample(time_s=t + 0.5 * k, tower_ids=(1,)),
                    match=MatchResult(station_id=station, score=score, common_ids=1),
                )
            )
    return SampleCluster(samples=samples)


class TestRouteConstraint:
    def test_downstream_weight(self, constraint):
        assert constraint.weight(0, 3) == 1.0

    def test_upstream_zero(self, constraint):
        assert constraint.weight(3, 0) == 0.0

    def test_same_stop_half(self, constraint):
        assert constraint.weight(2, 2) == 0.5

    def test_unknown_station_zero(self, constraint):
        assert constraint.weight(0, 999) == 0.0


class TestMapTrip:
    def test_clean_sequence(self, constraint):
        clusters = [cluster(100.0 * k, (k, 3, 5.0)) for k in range(4)]
        mapped = map_trip(clusters, constraint)
        assert mapped.station_sequence() == [0, 1, 2, 3]

    def test_route_constraint_overrides_noisy_candidate(self, constraint):
        # Middle cluster slightly prefers an upstream stop; the order
        # constraint must pick the downstream one anyway.
        clusters = [
            cluster(0.0, (1, 3, 5.0)),
            cluster(100.0, (0, 2, 5.2), (2, 2, 4.8)),
            cluster(200.0, (3, 3, 5.0)),
        ]
        mapped = map_trip(clusters, constraint)
        assert mapped.station_sequence() == [1, 2, 3]

    def test_inconsistent_cluster_dropped(self, constraint):
        # A cluster whose only candidate is upstream of its neighbours
        # contributes zero weight and is dropped from the trajectory.
        clusters = [
            cluster(0.0, (2, 3, 5.0)),
            cluster(100.0, (0, 1, 2.5)),
            cluster(200.0, (4, 3, 5.0)),
        ]
        mapped = map_trip(clusters, constraint)
        assert mapped.station_sequence() == [2, 4]

    def test_empty_input(self, constraint):
        assert map_trip([], constraint) is None

    def test_all_candidates_rejected(self, constraint):
        empty = SampleCluster(samples=[
            MatchedSample(
                sample=CellularSample(time_s=0.0, tower_ids=(1,)),
                match=MatchResult(station_id=None, score=0.0, common_ids=0),
            )
        ])
        assert map_trip([empty], constraint) is None

    def test_mapped_timing_comes_from_cluster(self, constraint):
        clusters = [cluster(0.0, (0, 2, 5.0)), cluster(90.0, (1, 2, 5.0))]
        mapped = map_trip(clusters, constraint)
        assert mapped.stops[0].arrival_s == 0.0
        assert mapped.stops[0].depart_s == 0.5
        assert mapped.stops[1].arrival_s == 90.0

    def test_duplicate_stop_clusters_survive(self, constraint):
        # Two clusters of the same stop (split burst): R(x, x) = 0.5 keeps
        # the second one rather than zeroing it.
        clusters = [
            cluster(0.0, (1, 2, 5.0)),
            cluster(20.0, (1, 2, 5.0)),
            cluster(120.0, (2, 2, 5.0)),
        ]
        mapped = map_trip(clusters, constraint)
        assert mapped.station_sequence() == [1, 1, 2]

    def test_score_reported(self, constraint):
        clusters = [cluster(100.0 * k, (k, 2, 5.0)) for k in range(3)]
        mapped = map_trip(clusters, constraint)
        assert mapped.score == pytest.approx(15.0)   # 5 + 5*1 + 5*1


class TestDpEqualsEnumeration:
    def test_dp_matches_bruteforce_on_noisy_instances(self, constraint, rng):
        for trial in range(20):
            clusters = []
            t = 0.0
            position = 0
            for _ in range(int(rng.integers(2, 5))):
                candidates = []
                n_candidates = int(rng.integers(1, 4))
                stations = rng.choice(6, size=n_candidates, replace=False)
                for st in stations:
                    candidates.append(
                        (int(st), int(rng.integers(1, 4)), float(rng.uniform(2.5, 6.5)))
                    )
                clusters.append(cluster(t, *candidates))
                t += 100.0
            brute_seq, brute_score = enumerate_best_sequence(clusters, constraint)
            mapped = map_trip(clusters, constraint, min_weight=-1.0)
            assert mapped.score == pytest.approx(brute_score)
