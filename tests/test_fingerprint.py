"""Tests for the fingerprint database."""

import numpy as np
import pytest

from repro.core.fingerprint import FingerprintDatabase


class TestBasics:
    def test_set_and_get(self):
        db = FingerprintDatabase()
        db.set_fingerprint(1, (10, 11, 12))
        assert db.fingerprint(1) == (10, 11, 12)
        assert 1 in db
        assert len(db) == 1

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            FingerprintDatabase().set_fingerprint(1, ())

    def test_rejects_duplicate_ids_within_fingerprint(self):
        with pytest.raises(ValueError):
            FingerprintDatabase().set_fingerprint(1, (10, 10, 11))

    def test_overwrite(self):
        db = FingerprintDatabase()
        db.set_fingerprint(1, (10, 11))
        db.set_fingerprint(1, (12, 13))
        assert db.fingerprint(1) == (12, 13)

    def test_as_dict_is_copy(self):
        db = FingerprintDatabase()
        db.set_fingerprint(1, (10,))
        exported = db.as_dict()
        exported[2] = (99,)
        assert 2 not in db


class TestMedoidSelection:
    def test_single_sample(self):
        db = FingerprintDatabase()
        db.set_from_samples(1, [(10, 11, 12)])
        assert db.fingerprint(1) == (10, 11, 12)

    def test_medoid_rejects_outlier(self):
        db = FingerprintDatabase()
        samples = [
            (10, 11, 12, 13),
            (10, 11, 13, 12),
            (10, 12, 11, 13),
            (90, 91, 92, 93),          # outlier scan
        ]
        db.set_from_samples(1, samples)
        assert db.fingerprint(1) != (90, 91, 92, 93)

    def test_empty_samples_rejected(self):
        with pytest.raises(ValueError):
            FingerprintDatabase().set_from_samples(1, [])

    def test_all_empty_samples_rejected(self):
        with pytest.raises(ValueError):
            FingerprintDatabase().set_from_samples(1, [(), ()])


class TestSurvey:
    def test_covers_every_station(self, small_city, database):
        assert len(database) == len(small_city.registry.stations)

    def test_fingerprint_lengths_in_band(self, database, config):
        for station_id in database.station_ids:
            assert 1 <= len(database.fingerprint(station_id)) <= config.radio.max_visible

    def test_deterministic_given_rng_seed(self, small_city, scanner, config):
        a = FingerprintDatabase.survey(
            small_city.registry, scanner, 3, config.matching,
            rng=np.random.default_rng(5),
        )
        b = FingerprintDatabase.survey(
            small_city.registry, scanner, 3, config.matching,
            rng=np.random.default_rng(5),
        )
        assert a.as_dict() == b.as_dict()

    def test_rejects_bad_sample_count(self, small_city, scanner):
        with pytest.raises(ValueError):
            FingerprintDatabase.survey(small_city.registry, scanner, 0)


class TestOnlineUpdate:
    def test_bootstrap_unknown_station(self):
        db = FingerprintDatabase()
        assert db.update_online(5, (1, 2, 3))
        assert db.fingerprint(5) == (1, 2, 3)

    def test_adopts_longer_similar_sample(self):
        db = FingerprintDatabase()
        db.set_fingerprint(1, (10, 11, 12, 13))
        assert db.update_online(1, (10, 11, 12, 13, 14), min_score=3.5)
        assert db.fingerprint(1) == (10, 11, 12, 13, 14)

    def test_rejects_dissimilar_sample(self):
        db = FingerprintDatabase()
        db.set_fingerprint(1, (10, 11, 12, 13))
        assert not db.update_online(1, (90, 91, 92, 93, 94))
        assert db.fingerprint(1) == (10, 11, 12, 13)

    def test_rejects_shorter_sample(self):
        db = FingerprintDatabase()
        db.set_fingerprint(1, (10, 11, 12, 13))
        assert not db.update_online(1, (10, 11, 12))
