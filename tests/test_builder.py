"""Tests for the synthetic city generator."""

import pytest

from repro.city import CitySpec, PAPER_SERVICES, build_city


class TestBuildCity:
    def test_default_scale_matches_paper(self, small_city):
        city = build_city()
        # Jurong West: 25 km², >100 stops, 8 services (§III-A, §IV-A).
        assert city.area_km2 == pytest.approx(28.0)
        assert len(city.registry.stations) > 100
        services = {r.service_name for r in city.route_network.routes}
        assert services == set(PAPER_SERVICES)

    def test_two_directions_per_service(self, small_city):
        by_service = {}
        for route in small_city.route_network.routes:
            by_service.setdefault(route.service_name, []).append(route.direction)
        for directions in by_service.values():
            assert sorted(directions) == [0, 1]

    def test_directions_reverse_each_other(self, small_city):
        fwd = small_city.route_network.route("179-0")
        bwd = small_city.route_network.route("179-1")
        assert fwd.node_path == list(reversed(bwd.node_path))

    def test_route_paths_are_grid_adjacent(self, small_city):
        for route in small_city.route_network.routes:
            # path_segments raises on non-adjacent nodes.
            small_city.network.path_segments(route.node_path)

    def test_partial_service_is_shorter(self, small_city):
        partial = small_city.route_network.route("103-0")
        full = small_city.route_network.route("179-0")
        assert len(partial.stops) < len(full.stops)

    def test_every_station_has_two_platforms(self, small_city):
        for station in small_city.registry.stations:
            assert len(station.stops) == 2

    def test_coverage_above_half_at_paper_scale(self):
        city = build_city()
        assert city.route_coverage_ratio() > 0.5

    def test_deterministic(self):
        a = build_city(CitySpec(seed=3))
        b = build_city(CitySpec(seed=3))
        assert [r.node_path for r in a.route_network.routes] == [
            r.node_path for r in b.route_network.routes
        ]

    def test_seed_changes_layout(self):
        a = build_city(CitySpec(seed=3))
        b = build_city(CitySpec(seed=4))
        assert [r.node_path for r in a.route_network.routes] != [
            r.node_path for r in b.route_network.routes
        ]

    def test_multi_route_ratio_bounded(self, small_city):
        ratio = small_city.multi_route_ratio(2)
        assert 0.0 <= ratio <= small_city.route_coverage_ratio()

    def test_stations_only_on_served_nodes(self, small_city):
        served = set()
        for route in small_city.route_network.routes:
            served.update(route.node_path)
        for station in small_city.registry.stations:
            assert station.station_id in served
