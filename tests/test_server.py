"""Tests for the backend server pipeline."""

import itertools

import numpy as np
import pytest

from repro.core import BackendServer, ServerStats
from repro.obs import MetricsRegistry, Tracer
from repro.phone import CellularSampler, record_participant_trips
from repro.phone.cellular import CellularSample
from repro.phone.trip_recorder import TripUpload
from repro.sim.bus import simulate_bus_trip
from repro.util.units import parse_hhmm


@pytest.fixture()
def server(small_city, database, config):
    return BackendServer(
        small_city.network, small_city.route_network, database, config
    )


@pytest.fixture()
def uploads(small_city, traffic, sampler, config):
    route = small_city.route_network.route("179-0")
    trace = simulate_bus_trip(
        route, parse_hhmm("08:10"), traffic, itertools.count(),
        rng=np.random.default_rng(12),
    )
    ups = record_participant_trips(
        trace, small_city.registry, sampler, config, rng=np.random.default_rng(13)
    )
    return trace, ups


class TestReceiveTrip:
    def test_maps_a_real_trip(self, server, uploads):
        trace, ups = uploads
        longest = max(ups, key=lambda u: len(u.samples))
        report = server.receive_trip(longest)
        assert report.mapped is not None
        assert len(report.mapped.stops) >= 2

    def test_mapped_stations_on_route(self, small_city, server, uploads):
        trace, ups = uploads
        route = small_city.route_network.route("179-0")
        served = set(route.station_sequence)
        longest = max(ups, key=lambda u: len(u.samples))
        report = server.receive_trip(longest)
        on_route = [s for s in report.mapped.station_sequence() if s in served]
        assert len(on_route) >= 0.9 * len(report.mapped.stops)

    def test_station_sequence_follows_route_order(self, small_city, server, uploads):
        trace, ups = uploads
        route = small_city.route_network.route("179-0")
        order = {rs.station_id: rs.order for rs in route.stops}
        longest = max(ups, key=lambda u: len(u.samples))
        seq = server.receive_trip(longest).mapped.station_sequence()
        orders = [order[s] for s in seq if s in order]
        assert orders == sorted(orders)

    def test_produces_speed_estimates(self, server, uploads):
        trace, ups = uploads
        longest = max(ups, key=lambda u: len(u.samples))
        report = server.receive_trip(longest)
        assert report.estimates
        for segment_id, speed_kmh, t in report.estimates:
            assert 2.0 <= speed_kmh <= 120.0
            assert server.network.has_segment(segment_id)

    def test_estimates_near_ground_truth(self, server, uploads, traffic):
        trace, ups = uploads
        errors = []
        for upload in ups:
            report = server.receive_trip(upload)
            for segment_id, speed_kmh, t in report.estimates:
                true_kmh = 3.6 * traffic.car_speed_ms(segment_id, t)
                errors.append(speed_kmh - true_kmh)
        assert errors
        assert abs(np.mean(errors)) < 5.0
        assert np.mean(np.abs(errors)) < 8.0

    def test_stats_accumulate(self, server, uploads):
        trace, ups = uploads
        server.receive_trips(ups)
        stats = server.stats
        assert stats.trips_received == len(ups)
        assert stats.trips_mapped >= 0.7 * len(ups)
        assert stats.samples_received == sum(len(u.samples) for u in ups)
        assert stats.segments_updated > 0

    def test_garbage_samples_discarded(self, server):
        upload = TripUpload(
            "junk",
            tuple(
                CellularSample(time_s=100.0 + k, tower_ids=(90000 + k,))
                for k in range(5)
            ),
        )
        report = server.receive_trip(upload)
        assert report.discarded_samples == 5
        assert report.mapped is None

    def test_single_cluster_trip_produces_no_estimates(self, server, small_city, sampler, rng):
        station = small_city.registry.stations[0]
        samples = tuple(
            sampler.sample(station.stops[0].position, 100.0 + k, rng)
            for k in range(3)
        )
        report = server.receive_trip(TripUpload("short", samples))
        assert report.estimates == []


class TestDuplicateUploads:
    def test_duplicate_counted_in_aggregate_stats(self, server, uploads):
        trace, ups = uploads
        upload = max(ups, key=lambda u: len(u.samples))
        server.receive_trip(upload)
        before_discarded = server.stats.samples_discarded
        report = server.receive_trip(upload)
        # Per-trip report and aggregate stats must agree on the drop.
        assert report.discarded_samples == len(upload.samples)
        assert server.stats.trips_duplicate == 1
        assert server.stats.samples_duplicate == len(upload.samples)
        assert (
            server.stats.samples_discarded
            == before_discarded + len(upload.samples)
        )
        # The duplicate never re-enters the pipeline.
        assert server.stats.trips_received == 1
        assert report.mapped is None

    def test_reports_and_stats_stay_consistent(self, server, uploads):
        trace, ups = uploads
        reports = server.receive_trips(list(ups) + list(ups[:3]))
        assert (
            sum(r.discarded_samples for r in reports)
            == server.stats.samples_discarded
        )


class TestServerStats:
    def test_as_dict_mirrors_attributes(self):
        stats = ServerStats()
        stats.trips_received += 2
        stats.samples_received += 11
        snapshot = stats.as_dict()
        assert snapshot["trips_received"] == 2
        assert snapshot["samples_received"] == 11
        assert snapshot["trips_mapped"] == 0
        assert set(snapshot) == {
            "trips_received", "trips_duplicate", "trips_mapped",
            "samples_received", "samples_discarded", "samples_duplicate",
            "clusters_formed", "legs_estimated", "legs_rejected",
            "segments_updated",
        }

    def test_reset_zeroes_all_counters(self):
        stats = ServerStats()
        stats.trips_received += 5
        stats.legs_estimated += 3
        stats.reset()
        assert all(value == 0 for value in stats.as_dict().values())

    def test_keyword_construction_and_equality(self):
        assert ServerStats(trips_received=4) == ServerStats(trips_received=4)
        assert ServerStats(trips_received=4) != ServerStats()
        with pytest.raises(TypeError):
            ServerStats(bogus_field=1)

    def test_backed_by_registry_counters(self):
        registry = MetricsRegistry()
        stats = ServerStats(registry=registry)
        stats.trips_mapped += 7
        assert registry.counter("server_trips_mapped").value == 7
        assert registry.as_dict()["counters"]["server_trips_mapped"] == 7

    def test_rollback_to_lower_value(self):
        """Setting a field below its current value re-bases the counter
        (a test resetting one field) instead of corrupting it."""
        stats = ServerStats()
        stats.trips_received = 9
        stats.trips_received = 3
        assert stats.trips_received == 3
        stats.trips_received += 1
        assert stats.trips_received == 4

    def test_rollback_to_zero(self):
        stats = ServerStats(samples_received=12)
        stats.samples_received = 0
        assert stats.samples_received == 0

    def test_negative_value_rejected(self):
        """Regression: the rollback path used to accept a negative
        target, leaving a corrupt (negative-increment) counter behind."""
        stats = ServerStats(trips_received=5)
        with pytest.raises(ValueError, match="trips_received"):
            stats.trips_received = -1
        with pytest.raises(ValueError):
            stats.trips_received -= 6     # 5 - 6 -> -1
        assert stats.trips_received == 5  # untouched by the failed writes

    def test_unknown_attribute_raises(self):
        with pytest.raises(AttributeError):
            ServerStats().no_such_counter


class TestServerObservability:
    def test_stages_traced_per_trip(self, small_city, database, config, uploads):
        tracer = Tracer()
        registry = MetricsRegistry()
        server = BackendServer(
            small_city.network, small_city.route_network, database, config,
            registry=registry, tracer=tracer,
        )
        trace, ups = uploads
        server.receive_trips(ups)
        stages = tracer.stage_stats()
        for stage in ("receive_trip", "matching", "clustering", "trip_mapping"):
            assert stages[stage]["count"] == len(ups)
            assert stages[stage]["total_s"] >= 0.0
        assert stages["leg_estimation"]["count"] == server.stats.trips_mapped
        counters = registry.as_dict()["counters"]
        assert counters["matcher_samples_total"] == server.stats.samples_received
        assert counters["clustering_clusters_total"] == server.stats.clusters_formed
        assert counters["map_updates_total"] == server.stats.segments_updated

    def test_default_server_has_no_tracing_overhead_state(self, server, uploads):
        trace, ups = uploads
        server.receive_trips(ups)
        assert server.tracer.stage_stats() == {}
        # Stats still count with the default (untraced) server.
        assert server.stats.trips_received == len(ups)


class TestMapIntegration:
    def test_traffic_map_fills_up(self, server, uploads):
        trace, ups = uploads
        server.receive_trips(ups)
        snap = server.traffic_map.snapshot(at_s=trace.end_s + 300.0)
        assert snap.coverage > 0.0

    def test_publish_cycle(self, server, uploads):
        trace, ups = uploads
        server.receive_trips(ups)
        server.publish(at_s=trace.end_s + 300.0)
        assert server.traffic_map.publish_times == [trace.end_s + 300.0]


class TestLiveTelemetry:
    @pytest.fixture()
    def observed(self, small_city, database, config, uploads):
        registry = MetricsRegistry()
        server = BackendServer(
            small_city.network, small_city.route_network, database, config,
            registry=registry,
        )
        trace, ups = uploads
        server.receive_trips(ups)
        return server, registry, trace, ups

    def test_trips_labeled_by_route(self, observed):
        server, registry, _, _ = observed
        children = registry.as_dict()["labeled"]["trips_uploaded_total"][
            "children"
        ]
        assert sum(children.values()) == server.stats.trips_mapped
        assert 'route="179-0"' in children

    def test_segment_updates_labeled_by_route(self, observed):
        server, registry, _, _ = observed
        children = registry.as_dict()["labeled"]["segments_updated_total"][
            "children"
        ]
        assert sum(children.values()) == server.stats.segments_updated

    def test_matcher_verdict_labels(self, observed):
        server, registry, _, _ = observed
        doc = registry.as_dict()
        verdicts = doc["labeled"]["matcher_verdicts_total"]["children"]
        accepted = verdicts.get('verdict="accepted"', 0)
        rejected = verdicts.get('verdict="rejected"', 0)
        assert accepted + rejected == server.stats.samples_received

    def test_fingerprint_db_gauge(self, observed, database):
        _, registry, _, _ = observed
        gauge = registry.as_dict()["gauges"]["fingerprint_db_stops"]
        assert gauge == len(database)

    def test_windows_track_the_ingest_stream(self, observed):
        server, _, _, ups = observed
        # Uploads are recorded at their own end times; the trailing
        # window at the last arrival sees at least the freshest one.
        totals = server.windows.totals(max(u.end_s for u in ups))
        assert totals["trips_received"] >= 1
        assert totals["samples_accepted"] > 0
        assert any(key.startswith("route_trips") for key in totals)

    def test_publish_exports_window_gauges_and_ratio(self, observed):
        server, registry, trace, _ = observed
        server.publish(at_s=trace.end_s + 60.0)
        gauges = registry.as_dict()["gauges"]
        assert gauges["window_trips_received"] >= 0
        assert gauges["match_accept_ratio"] == pytest.approx(
            server.match_accept_ratio()
        )
        assert 0.0 <= gauges["match_accept_ratio"] <= 1.0

    def test_freshness_report_covers_served_routes(self, observed):
        server, _, trace, _ = observed
        server.publish(at_s=trace.end_s + 60.0)
        server.publish(at_s=trace.end_s + 960.0)
        report = server.freshness.report()
        ridden = report["routes"]["179-0"]
        assert ridden["covered_segments"] > 0
        assert ridden["oldest_covered_s"] is not None
        # 199-0 never saw a trip of its own (segments it shares with
        # 179-0 may still be covered): it ages from the first publish
        # epoch, 60 -> 960 = 900 s stale.
        empty = report["routes"]["199-0"]
        assert empty["covered_segments"] <= ridden["covered_segments"]
        assert empty["freshness_s"] == pytest.approx(900.0)

    def test_alert_samples_without_recording_registry(
        self, small_city, database, config, uploads
    ):
        server = BackendServer(
            small_city.network, small_city.route_network, database, config
        )
        trace, ups = uploads
        server.receive_trips(ups)
        server.publish(at_s=trace.end_s + 60.0)
        samples = server.alert_samples(trace.end_s + 60.0)
        names = {name for name, _, _ in samples}
        assert "map_route_freshness_s" in names
        assert "match_accept_ratio" in names
        assert "server_trips_received" in names

    def test_reset_metrics_zeroes_the_whole_registry(self, observed):
        server, registry, trace, _ = observed
        server.publish(at_s=trace.end_s + 60.0)
        server.reset_metrics()
        doc = registry.as_dict()
        assert all(v == 0 for v in doc["counters"].values())
        for hist in doc["histograms"].values():
            assert hist["count"] == 0
            assert not any(hist["bucket_counts"])
        for family in doc["labeled"].values():
            for child in family["children"].values():
                if family["type"] == "histogram":
                    assert child["count"] == 0
                else:
                    assert child == 0
        live_gauges = {k for k, v in doc["gauges"].items() if v}
        assert live_gauges == {"fingerprint_db_stops"}
        assert server.windows.totals(trace.end_s) == {
            key: 0.0 for key in server.windows.totals(trace.end_s)
        }

    def test_stats_reset_on_shared_registry_keeps_other_metrics(self):
        registry = MetricsRegistry()
        other = registry.counter("other")
        other.inc(5)
        stats = ServerStats(registry=registry)
        stats.trips_received += 3
        stats.reset()
        assert stats.trips_received == 0
        assert other.value == 5
