"""Tests for the backend server pipeline."""

import itertools

import numpy as np
import pytest

from repro.core import BackendServer
from repro.phone import CellularSampler, record_participant_trips
from repro.phone.cellular import CellularSample
from repro.phone.trip_recorder import TripUpload
from repro.sim.bus import simulate_bus_trip
from repro.util.units import parse_hhmm


@pytest.fixture()
def server(small_city, database, config):
    return BackendServer(
        small_city.network, small_city.route_network, database, config
    )


@pytest.fixture()
def uploads(small_city, traffic, sampler, config):
    route = small_city.route_network.route("179-0")
    trace = simulate_bus_trip(
        route, parse_hhmm("08:10"), traffic, itertools.count(),
        rng=np.random.default_rng(12),
    )
    ups = record_participant_trips(
        trace, small_city.registry, sampler, config, rng=np.random.default_rng(13)
    )
    return trace, ups


class TestReceiveTrip:
    def test_maps_a_real_trip(self, server, uploads):
        trace, ups = uploads
        longest = max(ups, key=lambda u: len(u.samples))
        report = server.receive_trip(longest)
        assert report.mapped is not None
        assert len(report.mapped.stops) >= 2

    def test_mapped_stations_on_route(self, small_city, server, uploads):
        trace, ups = uploads
        route = small_city.route_network.route("179-0")
        served = set(route.station_sequence)
        longest = max(ups, key=lambda u: len(u.samples))
        report = server.receive_trip(longest)
        on_route = [s for s in report.mapped.station_sequence() if s in served]
        assert len(on_route) >= 0.9 * len(report.mapped.stops)

    def test_station_sequence_follows_route_order(self, small_city, server, uploads):
        trace, ups = uploads
        route = small_city.route_network.route("179-0")
        order = {rs.station_id: rs.order for rs in route.stops}
        longest = max(ups, key=lambda u: len(u.samples))
        seq = server.receive_trip(longest).mapped.station_sequence()
        orders = [order[s] for s in seq if s in order]
        assert orders == sorted(orders)

    def test_produces_speed_estimates(self, server, uploads):
        trace, ups = uploads
        longest = max(ups, key=lambda u: len(u.samples))
        report = server.receive_trip(longest)
        assert report.estimates
        for segment_id, speed_kmh, t in report.estimates:
            assert 2.0 <= speed_kmh <= 120.0
            assert server.network.has_segment(segment_id)

    def test_estimates_near_ground_truth(self, server, uploads, traffic):
        trace, ups = uploads
        errors = []
        for upload in ups:
            report = server.receive_trip(upload)
            for segment_id, speed_kmh, t in report.estimates:
                true_kmh = 3.6 * traffic.car_speed_ms(segment_id, t)
                errors.append(speed_kmh - true_kmh)
        assert errors
        assert abs(np.mean(errors)) < 5.0
        assert np.mean(np.abs(errors)) < 8.0

    def test_stats_accumulate(self, server, uploads):
        trace, ups = uploads
        server.receive_trips(ups)
        stats = server.stats
        assert stats.trips_received == len(ups)
        assert stats.trips_mapped >= 0.7 * len(ups)
        assert stats.samples_received == sum(len(u.samples) for u in ups)
        assert stats.segments_updated > 0

    def test_garbage_samples_discarded(self, server):
        upload = TripUpload(
            "junk",
            tuple(
                CellularSample(time_s=100.0 + k, tower_ids=(90000 + k,))
                for k in range(5)
            ),
        )
        report = server.receive_trip(upload)
        assert report.discarded_samples == 5
        assert report.mapped is None

    def test_single_cluster_trip_produces_no_estimates(self, server, small_city, sampler, rng):
        station = small_city.registry.stations[0]
        samples = tuple(
            sampler.sample(station.stops[0].position, 100.0 + k, rng)
            for k in range(3)
        )
        report = server.receive_trip(TripUpload("short", samples))
        assert report.estimates == []


class TestMapIntegration:
    def test_traffic_map_fills_up(self, server, uploads):
        trace, ups = uploads
        server.receive_trips(ups)
        snap = server.traffic_map.snapshot(at_s=trace.end_s + 300.0)
        assert snap.coverage > 0.0

    def test_publish_cycle(self, server, uploads):
        trace, ups = uploads
        server.receive_trips(ups)
        server.publish(at_s=trace.end_s + 300.0)
        assert server.traffic_map.publish_times == [trace.end_s + 300.0]
