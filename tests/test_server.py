"""Tests for the backend server pipeline."""

import itertools

import numpy as np
import pytest

from repro.core import BackendServer, ServerStats
from repro.obs import MetricsRegistry, Tracer
from repro.phone import CellularSampler, record_participant_trips
from repro.phone.cellular import CellularSample
from repro.phone.trip_recorder import TripUpload
from repro.sim.bus import simulate_bus_trip
from repro.util.units import parse_hhmm


@pytest.fixture()
def server(small_city, database, config):
    return BackendServer(
        small_city.network, small_city.route_network, database, config
    )


@pytest.fixture()
def uploads(small_city, traffic, sampler, config):
    route = small_city.route_network.route("179-0")
    trace = simulate_bus_trip(
        route, parse_hhmm("08:10"), traffic, itertools.count(),
        rng=np.random.default_rng(12),
    )
    ups = record_participant_trips(
        trace, small_city.registry, sampler, config, rng=np.random.default_rng(13)
    )
    return trace, ups


class TestReceiveTrip:
    def test_maps_a_real_trip(self, server, uploads):
        trace, ups = uploads
        longest = max(ups, key=lambda u: len(u.samples))
        report = server.receive_trip(longest)
        assert report.mapped is not None
        assert len(report.mapped.stops) >= 2

    def test_mapped_stations_on_route(self, small_city, server, uploads):
        trace, ups = uploads
        route = small_city.route_network.route("179-0")
        served = set(route.station_sequence)
        longest = max(ups, key=lambda u: len(u.samples))
        report = server.receive_trip(longest)
        on_route = [s for s in report.mapped.station_sequence() if s in served]
        assert len(on_route) >= 0.9 * len(report.mapped.stops)

    def test_station_sequence_follows_route_order(self, small_city, server, uploads):
        trace, ups = uploads
        route = small_city.route_network.route("179-0")
        order = {rs.station_id: rs.order for rs in route.stops}
        longest = max(ups, key=lambda u: len(u.samples))
        seq = server.receive_trip(longest).mapped.station_sequence()
        orders = [order[s] for s in seq if s in order]
        assert orders == sorted(orders)

    def test_produces_speed_estimates(self, server, uploads):
        trace, ups = uploads
        longest = max(ups, key=lambda u: len(u.samples))
        report = server.receive_trip(longest)
        assert report.estimates
        for segment_id, speed_kmh, t in report.estimates:
            assert 2.0 <= speed_kmh <= 120.0
            assert server.network.has_segment(segment_id)

    def test_estimates_near_ground_truth(self, server, uploads, traffic):
        trace, ups = uploads
        errors = []
        for upload in ups:
            report = server.receive_trip(upload)
            for segment_id, speed_kmh, t in report.estimates:
                true_kmh = 3.6 * traffic.car_speed_ms(segment_id, t)
                errors.append(speed_kmh - true_kmh)
        assert errors
        assert abs(np.mean(errors)) < 5.0
        assert np.mean(np.abs(errors)) < 8.0

    def test_stats_accumulate(self, server, uploads):
        trace, ups = uploads
        server.receive_trips(ups)
        stats = server.stats
        assert stats.trips_received == len(ups)
        assert stats.trips_mapped >= 0.7 * len(ups)
        assert stats.samples_received == sum(len(u.samples) for u in ups)
        assert stats.segments_updated > 0

    def test_garbage_samples_discarded(self, server):
        upload = TripUpload(
            "junk",
            tuple(
                CellularSample(time_s=100.0 + k, tower_ids=(90000 + k,))
                for k in range(5)
            ),
        )
        report = server.receive_trip(upload)
        assert report.discarded_samples == 5
        assert report.mapped is None

    def test_single_cluster_trip_produces_no_estimates(self, server, small_city, sampler, rng):
        station = small_city.registry.stations[0]
        samples = tuple(
            sampler.sample(station.stops[0].position, 100.0 + k, rng)
            for k in range(3)
        )
        report = server.receive_trip(TripUpload("short", samples))
        assert report.estimates == []


class TestDuplicateUploads:
    def test_duplicate_counted_in_aggregate_stats(self, server, uploads):
        trace, ups = uploads
        upload = max(ups, key=lambda u: len(u.samples))
        server.receive_trip(upload)
        before_discarded = server.stats.samples_discarded
        report = server.receive_trip(upload)
        # Per-trip report and aggregate stats must agree on the drop.
        assert report.discarded_samples == len(upload.samples)
        assert server.stats.trips_duplicate == 1
        assert server.stats.samples_duplicate == len(upload.samples)
        assert (
            server.stats.samples_discarded
            == before_discarded + len(upload.samples)
        )
        # The duplicate never re-enters the pipeline.
        assert server.stats.trips_received == 1
        assert report.mapped is None

    def test_reports_and_stats_stay_consistent(self, server, uploads):
        trace, ups = uploads
        reports = server.receive_trips(list(ups) + list(ups[:3]))
        assert (
            sum(r.discarded_samples for r in reports)
            == server.stats.samples_discarded
        )


class TestServerStats:
    def test_as_dict_mirrors_attributes(self):
        stats = ServerStats()
        stats.trips_received += 2
        stats.samples_received += 11
        snapshot = stats.as_dict()
        assert snapshot["trips_received"] == 2
        assert snapshot["samples_received"] == 11
        assert snapshot["trips_mapped"] == 0
        assert set(snapshot) == {
            "trips_received", "trips_duplicate", "trips_mapped",
            "samples_received", "samples_discarded", "samples_duplicate",
            "clusters_formed", "legs_estimated", "legs_rejected",
            "segments_updated",
        }

    def test_reset_zeroes_all_counters(self):
        stats = ServerStats()
        stats.trips_received += 5
        stats.legs_estimated += 3
        stats.reset()
        assert all(value == 0 for value in stats.as_dict().values())

    def test_keyword_construction_and_equality(self):
        assert ServerStats(trips_received=4) == ServerStats(trips_received=4)
        assert ServerStats(trips_received=4) != ServerStats()
        with pytest.raises(TypeError):
            ServerStats(bogus_field=1)

    def test_backed_by_registry_counters(self):
        registry = MetricsRegistry()
        stats = ServerStats(registry=registry)
        stats.trips_mapped += 7
        assert registry.counter("server_trips_mapped").value == 7
        assert registry.as_dict()["counters"]["server_trips_mapped"] == 7

    def test_unknown_attribute_raises(self):
        with pytest.raises(AttributeError):
            ServerStats().no_such_counter


class TestServerObservability:
    def test_stages_traced_per_trip(self, small_city, database, config, uploads):
        tracer = Tracer()
        registry = MetricsRegistry()
        server = BackendServer(
            small_city.network, small_city.route_network, database, config,
            registry=registry, tracer=tracer,
        )
        trace, ups = uploads
        server.receive_trips(ups)
        stages = tracer.stage_stats()
        for stage in ("receive_trip", "matching", "clustering", "trip_mapping"):
            assert stages[stage]["count"] == len(ups)
            assert stages[stage]["total_s"] >= 0.0
        assert stages["leg_estimation"]["count"] == server.stats.trips_mapped
        counters = registry.as_dict()["counters"]
        assert counters["matcher_samples_total"] == server.stats.samples_received
        assert counters["clustering_clusters_total"] == server.stats.clusters_formed
        assert counters["map_updates_total"] == server.stats.segments_updated

    def test_default_server_has_no_tracing_overhead_state(self, server, uploads):
        trace, ups = uploads
        server.receive_trips(ups)
        assert server.tracer.stage_stats() == {}
        # Stats still count with the default (untraced) server.
        assert server.stats.trips_received == len(ups)


class TestMapIntegration:
    def test_traffic_map_fills_up(self, server, uploads):
        trace, ups = uploads
        server.receive_trips(ups)
        snap = server.traffic_map.snapshot(at_s=trace.end_s + 300.0)
        assert snap.coverage > 0.0

    def test_publish_cycle(self, server, uploads):
        trace, ups = uploads
        server.receive_trips(ups)
        server.publish(at_s=trace.end_s + 300.0)
        assert server.traffic_map.publish_times == [trace.end_s + 300.0]
