"""Tests for labeled metric families and Prometheus exposition edges."""

import pytest

from repro.obs import (
    DEFAULT_MAX_CHILDREN,
    LabeledCounter,
    LabeledGauge,
    LabeledHistogram,
    MetricsRegistry,
    NULL_REGISTRY,
    escape_help,
    escape_label_value,
    parse_prometheus_text,
)
from repro.obs.labels import OVERFLOW_LABEL_VALUE


class TestLabeledFamilies:
    def test_children_created_on_first_use_and_cached(self):
        fam = LabeledCounter("trips", ("route",))
        child = fam.labels("179-0")
        child.inc(2)
        assert fam.labels("179-0") is child
        assert fam.labels("179-0").value == 2
        assert len(fam) == 1

    def test_keyword_labels_match_positional(self):
        fam = LabeledCounter("m", ("route", "stop"))
        fam.labels("179-0", "12").inc()
        assert fam.labels(route="179-0", stop="12").value == 1

    def test_label_value_count_enforced(self):
        fam = LabeledCounter("m", ("route", "stop"))
        with pytest.raises(ValueError, match="2 label"):
            fam.labels("179-0")
        with pytest.raises(ValueError, match="missing label"):
            fam.labels(route="179-0")
        with pytest.raises(ValueError, match="unexpected"):
            fam.labels(route="1", stop="2", verdict="x")

    def test_reserved_and_invalid_label_names_rejected(self):
        for bad in ("le", "quantile", "__name__", "__internal", "9route", ""):
            with pytest.raises(ValueError):
                LabeledCounter("m", (bad,))
        with pytest.raises(ValueError, match="duplicate"):
            LabeledCounter("m", ("route", "route"))
        with pytest.raises(ValueError, match="at least one"):
            LabeledCounter("m", ())

    def test_values_stringified(self):
        fam = LabeledGauge("g", ("stop",))
        fam.labels(42).set(1.5)
        assert fam.labels("42").value == 1.5

    def test_cardinality_cap_routes_to_overflow_child(self):
        fam = LabeledCounter("m", ("route",), max_children=2)
        fam.labels("a").inc()
        fam.labels("b").inc()
        fam.labels("c").inc()
        fam.labels("d").inc(3)
        assert fam.overflow_total == 2
        overflow = fam.labels(OVERFLOW_LABEL_VALUE)
        assert overflow.value == 4
        # a, b and the shared overflow child.
        assert len(fam) == 3

    def test_reset_zeroes_children_in_place(self):
        fam = LabeledCounter("m", ("route",), max_children=1)
        cached = fam.labels("a")
        cached.inc(5)
        fam.labels("b").inc()           # overflow
        fam.reset()
        assert fam.overflow_total == 0
        assert cached.value == 0
        cached.inc()                    # handle still live after reset
        assert fam.labels("a").value == 1

    def test_histogram_children_share_bucket_ladder(self):
        fam = LabeledHistogram("lat", ("stage",), buckets=(1.0, 2.0))
        fam.labels("match").observe(0.5)
        fam.labels("fuse").observe(5.0)
        assert fam.labels("match").bucket_counts[0] == 1
        assert fam.labels("fuse").count == 1
        with pytest.raises(ValueError):
            LabeledHistogram("bad", ("s",), buckets=(1.0, 1.0))


class TestRegistryIntegration:
    def test_families_in_as_dict_and_names(self):
        registry = MetricsRegistry()
        registry.labeled_counter("trips", ("route",)).labels("179-0").inc(3)
        doc = registry.as_dict()
        assert doc["labeled"]["trips"]["type"] == "counter"
        assert doc["labeled"]["trips"]["children"] == {'route="179-0"': 3}
        assert "trips" in registry.names

    def test_name_collision_across_kinds_rejected(self):
        registry = MetricsRegistry()
        registry.labeled_counter("m", ("route",))
        with pytest.raises(ValueError):
            registry.counter("m")
        with pytest.raises(ValueError):
            registry.labeled_gauge("m", ("route",))
        registry2 = MetricsRegistry()
        registry2.counter("m")
        with pytest.raises(ValueError):
            registry2.labeled_counter("m", ("route",))

    def test_labelnames_must_match_on_reregistration(self):
        registry = MetricsRegistry()
        registry.labeled_counter("m", ("route",))
        with pytest.raises(ValueError):
            registry.labeled_counter("m", ("stop",))

    def test_registry_reset_clears_labeled_children(self):
        registry = MetricsRegistry()
        fam = registry.labeled_counter("m", ("route",))
        fam.labels("a").inc(7)
        registry.reset()
        assert fam.labels("a").value == 0

    def test_null_registry_labeled_families_swallow(self):
        fam = NULL_REGISTRY.labeled_counter("m", ("route",))
        fam.labels("a").inc(100)
        assert NULL_REGISTRY.as_dict()["labeled"] == {}
        assert list(fam.render_prometheus()) == []


class TestExpositionFormat:
    def test_label_value_escaping(self):
        assert escape_label_value('a"b') == 'a\\"b'
        assert escape_label_value("a\\b") == "a\\\\b"
        assert escape_label_value("a\nb") == "a\\nb"

    def test_help_escaping_keeps_quotes(self):
        assert escape_help('say "hi"\nnow') == 'say "hi"\\nnow'

    def test_awkward_label_values_round_trip(self):
        registry = MetricsRegistry()
        fam = registry.labeled_counter("m", ("stop",), help="odd\nhelp")
        awkward = 'quote " back \\ newline \n done'
        fam.labels(awkward).inc(2)
        text = registry.render_prometheus()
        assert "odd\\nhelp" in text
        parsed = parse_prometheus_text(text)
        ((_, labels, value),) = parsed["m"]["samples"]
        assert labels == {"stop": awkward}
        assert value == 2

    def test_labeled_histogram_renders_bucket_series(self):
        registry = MetricsRegistry()
        fam = registry.labeled_histogram("lat", ("stage",), buckets=(1.0,))
        fam.labels("match").observe(0.5)
        text = registry.render_prometheus()
        assert 'lat_bucket{stage="match",le="1"} 1' in text
        assert 'lat_bucket{stage="match",le="+Inf"} 1' in text
        assert 'lat_sum{stage="match"} 0.5' in text
        assert 'lat_count{stage="match"} 1' in text
        parsed = parse_prometheus_text(text)
        assert parsed["lat"]["type"] == "histogram"
        names = {s[0] for s in parsed["lat"]["samples"]}
        assert names == {"lat_bucket", "lat_sum", "lat_count"}

    def test_empty_registry_renders_and_parses_empty(self):
        registry = MetricsRegistry()
        assert registry.render_prometheus() == ""
        assert parse_prometheus_text("") == {}
        assert parse_prometheus_text("\n# just a comment\n") == {}

    def test_parse_rejects_malformed_lines(self):
        with pytest.raises(ValueError):
            parse_prometheus_text("metric_without_value\n")
        with pytest.raises(ValueError):
            parse_prometheus_text('m{unterminated="x} 1\n')
        with pytest.raises(ValueError):
            parse_prometheus_text("m not_a_number\n")

    def test_parse_special_values(self):
        parsed = parse_prometheus_text("a +Inf\nb -Inf\nc NaN\n")
        assert parsed["a"]["samples"][0][2] == float("inf")
        assert parsed["b"]["samples"][0][2] == float("-inf")
        nan = parsed["c"]["samples"][0][2]
        assert nan != nan
