"""Tests for evaluation utilities: metrics, baseline, comparison, reporting."""

import numpy as np
import pytest

from repro.core.traffic_map import TrafficMapEstimator
from repro.eval.comparison import (
    SpeedDifferenceStudy,
    collect_speed_differences,
    segment_time_series,
)
from repro.eval.google_maps import GoogleMapsIndicator, IndicatorLevel
from repro.eval.metrics import (
    Cdf,
    mean_absolute_error,
    pearson_correlation,
    root_mean_square_error,
)
from repro.eval.reporting import render_cdf_series, render_comparison, render_table
from repro.sim.taxi import AvlReport, OfficialTrafficFeed


class TestCdf:
    def test_fraction_below(self):
        cdf = Cdf.of([1.0, 2.0, 3.0, 4.0])
        assert cdf.fraction_below(2.5) == pytest.approx(0.5)
        assert cdf.fraction_below(0.0) == 0.0
        assert cdf.fraction_below(10.0) == 1.0

    def test_median_and_percentile(self):
        cdf = Cdf.of(range(101))
        assert cdf.median == pytest.approx(50.0)
        assert cdf.percentile(90) == pytest.approx(90.0)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            Cdf.of([])

    def test_rejects_bad_percentile(self):
        with pytest.raises(ValueError):
            Cdf.of([1.0]).percentile(120)

    def test_series_monotonic(self):
        series = Cdf.of(np.random.default_rng(0).normal(size=200)).series(20)
        values = [v for v, _ in series]
        fractions = [f for _, f in series]
        assert values == sorted(values)
        assert fractions == sorted(fractions)


class TestErrorMetrics:
    def test_mae(self):
        assert mean_absolute_error([1, 2, 3], [2, 2, 5]) == pytest.approx(1.0)

    def test_rmse(self):
        assert root_mean_square_error([0, 0], [3, 4]) == pytest.approx(
            np.sqrt(12.5)
        )

    def test_correlation(self):
        a = [1.0, 2.0, 3.0, 4.0]
        assert pearson_correlation(a, [2.0, 4.0, 6.0, 8.0]) == pytest.approx(1.0)
        assert pearson_correlation(a, [8.0, 6.0, 4.0, 2.0]) == pytest.approx(-1.0)

    def test_mismatched_raise(self):
        with pytest.raises(ValueError):
            mean_absolute_error([1], [1, 2])
        with pytest.raises(ValueError):
            pearson_correlation([1, 2], [1, 1])


class TestGoogleMapsIndicator:
    @pytest.fixture()
    def indicator(self, small_city, traffic):
        return GoogleMapsIndicator(small_city.network, traffic, seed=1)

    def test_partial_coverage(self, indicator, config):
        assert indicator.coverage == pytest.approx(
            config.google_maps.coverage_fraction, abs=0.05
        )

    def test_off_coverage_is_none(self, small_city, indicator):
        uncovered = [
            seg for seg in small_city.network.segment_ids
            if seg not in indicator.covered_segments
        ]
        assert indicator.level(uncovered[0], 30000.0) is None

    def test_levels_quantised(self, indicator):
        assert indicator.level_for_speed(10.0) is IndicatorLevel.VERY_SLOW
        assert indicator.level_for_speed(30.0) is IndicatorLevel.SLOW
        assert indicator.level_for_speed(45.0) is IndicatorLevel.NORMAL
        assert indicator.level_for_speed(60.0) is IndicatorLevel.FAST

    def test_level_constant_within_refresh_period(self, indicator, config):
        seg = next(iter(indicator.covered_segments))
        period = config.google_maps.update_period_s
        base = (30000.0 // period) * period
        levels = {indicator.level(seg, base + dt) for dt in (0.0, 600.0, 1200.0)}
        assert len(levels) == 1


class TestComparison:
    @pytest.fixture()
    def setup(self, small_city):
        estimator = TrafficMapEstimator(small_city.network)
        seg = small_city.network.segment_ids[0]
        feed = OfficialTrafficFeed(window_s=900.0)
        for k in range(8):
            t = 30000.0 + 900.0 * k
            estimator.update(seg, 30.0 + k, t=t)
            estimator.publish(at_s=t + 10.0)
            feed.ingest([AvlReport(1, t, seg, (33.0 + k) / 3.6)])
        return estimator, feed, seg

    def test_series_shape(self, setup):
        estimator, feed, seg = setup
        series = segment_time_series(seg, estimator, feed, 30000.0, 30000.0 + 7200.0)
        assert len(series) == 8
        assert all(p.estimated_kmh is not None for p in series[1:])
        assert all(p.official_kmh is not None for p in series)

    def test_series_rejects_bad_window(self, setup):
        estimator, feed, seg = setup
        with pytest.raises(ValueError):
            segment_time_series(seg, estimator, feed, 100.0, 100.0)

    def test_speed_difference_study_classes(self):
        study = SpeedDifferenceStudy()
        study.add(estimated_kmh=30.0, official_kmh=34.0)   # low
        study.add(estimated_kmh=45.0, official_kmh=51.0)   # medium
        study.add(estimated_kmh=55.0, official_kmh=65.0)   # high
        assert study.low == [4.0]
        assert study.medium == [6.0]
        assert study.high == [10.0]
        assert study.total == 3

    def test_collect_speed_differences(self, setup, small_city):
        estimator, feed, seg = setup
        study = collect_speed_differences(
            [seg], estimator, feed, 30000.0, 30000.0 + 7200.0
        )
        assert study.total >= 6
        assert "low" in study.median_by_class()


class TestReporting:
    def test_render_table(self):
        text = render_table(["a", "b"], [[1, 2.5], ["x", "y"]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "2.50" in text
        assert "x" in lines[-1]

    def test_render_table_rejects_ragged_rows(self):
        with pytest.raises(ValueError):
            render_table(["a"], [[1, 2]])

    def test_render_cdf_series(self):
        series = Cdf.of(range(100)).series(50)
        text = render_cdf_series(series, "err")
        assert "err" in text
        assert len(text.splitlines()) == 7

    def test_render_comparison(self):
        line = render_comparison("median", 40, 41.2)
        assert "paper=40" in line
        assert "measured=41.20" in line
