"""Smoke tests: the example scripts must stay runnable."""

import importlib.util
import os
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "examples")


def load_example(name):
    path = os.path.join(EXAMPLES_DIR, f"{name}.py")
    spec = importlib.util.spec_from_file_location(f"example_{name}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestExamplesExist:
    @pytest.mark.parametrize(
        "name",
        ["quickstart", "morning_campaign", "power_study",
         "region_inference", "commuter_tools"],
    )
    def test_example_file_present_with_main(self, name):
        module = load_example(name)
        assert callable(module.main)
        assert module.__doc__ and "Run:" in module.__doc__


class TestFastExamplesRun:
    def test_power_study_runs(self, capsys):
        load_example("power_study").main()
        output = capsys.readouterr().out
        assert "Table III" in output
        assert "Goertzel" in output

    @pytest.mark.slow
    def test_quickstart_runs(self, capsys):
        load_example("quickstart").main()
        output = capsys.readouterr().out
        assert "Backend:" in output
        assert "Ground truth stations" in output
