"""Tests for the simulated taxi AVL fleet and the official feed."""

import numpy as np
import pytest

from repro.config import TaxiConfig
from repro.sim.taxi import AvlReport, OfficialTrafficFeed, TaxiFleet, taxi_speed_ms
from repro.util.units import kmh_to_ms, ms_to_kmh, parse_hhmm


class TestTaxiSpeedModel:
    def test_matches_flow_when_congested(self):
        cfg = TaxiConfig()
        taxi = ms_to_kmh(taxi_speed_ms(kmh_to_ms(20.0), cfg))
        assert taxi == pytest.approx(20.0 + cfg.aggressiveness_offset_kmh)

    def test_opens_gap_when_light(self):
        cfg = TaxiConfig()
        taxi = ms_to_kmh(taxi_speed_ms(kmh_to_ms(60.0), cfg))
        expected = 60.0 + cfg.aggressiveness_offset_kmh + cfg.aggressiveness_gain * 20.0
        assert taxi == pytest.approx(expected)

    def test_noise_applied_with_rng(self):
        cfg = TaxiConfig()
        rng = np.random.default_rng(0)
        values = {taxi_speed_ms(kmh_to_ms(50.0), cfg, rng) for _ in range(5)}
        assert len(values) == 5

    def test_never_negative(self):
        cfg = TaxiConfig(speed_noise_kmh=50.0)
        rng = np.random.default_rng(1)
        for _ in range(50):
            assert taxi_speed_ms(kmh_to_ms(2.0), cfg, rng) > 0


class TestOfficialFeed:
    def test_windowing(self):
        feed = OfficialTrafficFeed(window_s=900.0)
        feed.ingest([AvlReport(1, 100.0, (0, 1), 10.0)])
        assert feed.speed_kmh((0, 1), 500.0) == pytest.approx(36.0)
        assert feed.speed_kmh((0, 1), 1000.0) is None

    def test_mean_of_reports(self):
        feed = OfficialTrafficFeed(window_s=900.0)
        feed.ingest([
            AvlReport(1, 100.0, (0, 1), 10.0),
            AvlReport(2, 200.0, (0, 1), 14.0),
        ])
        assert feed.speed_kmh((0, 1), 450.0) == pytest.approx(3.6 * 12.0)

    def test_unknown_segment(self):
        feed = OfficialTrafficFeed()
        assert feed.speed_kmh((5, 6), 0.0) is None

    def test_rejects_bad_window(self):
        with pytest.raises(ValueError):
            OfficialTrafficFeed(window_s=0.0)

    def test_from_field_tracks_ground_truth(self, small_city, traffic):
        segs = small_city.network.segment_ids[:10]
        start, end = parse_hhmm("08:00"), parse_hhmm("10:00")
        feed = OfficialTrafficFeed.from_field(
            traffic, segs, start, end, samples_per_window=8, seed=3
        )
        cfg = TaxiConfig()
        errors = []
        for seg in segs:
            for window_start in np.arange(start, end, 900.0):
                mid = window_start + 450.0
                reported = feed.speed_kmh(seg, mid)
                assert reported is not None
                ambient = ms_to_kmh(traffic.car_speed_ms(seg, mid))
                expected = ms_to_kmh(taxi_speed_ms(traffic.car_speed_ms(seg, mid), cfg))
                errors.append(reported - expected)
        # Windowed means jitter around the analytic taxi model.
        assert abs(np.mean(errors)) < 2.0


class TestTaxiFleet:
    def test_reports_cover_window(self, small_city, traffic):
        fleet = TaxiFleet(small_city.network, traffic, TaxiConfig(fleet_size=5), seed=0)
        reports = fleet.run(parse_hhmm("08:00"), parse_hhmm("08:30"))
        assert reports
        for report in reports:
            assert parse_hhmm("08:00") <= report.time_s < parse_hhmm("08:30")

    def test_reports_sorted(self, small_city, traffic):
        fleet = TaxiFleet(small_city.network, traffic, TaxiConfig(fleet_size=5), seed=0)
        reports = fleet.run(parse_hhmm("08:00"), parse_hhmm("08:30"))
        times = [r.time_s for r in reports]
        assert times == sorted(times)

    def test_reports_on_real_segments(self, small_city, traffic):
        fleet = TaxiFleet(small_city.network, traffic, TaxiConfig(fleet_size=3), seed=1)
        for report in fleet.run(parse_hhmm("09:00"), parse_hhmm("09:20")):
            assert small_city.network.has_segment(report.segment_id)

    def test_fleet_feed_agrees_with_analytic(self, small_city, traffic):
        """Agent-based aggregation ≈ analytic feed (same taxi model)."""
        fleet = TaxiFleet(small_city.network, traffic, TaxiConfig(fleet_size=60), seed=2)
        start, end = parse_hhmm("08:00"), parse_hhmm("09:00")
        reports = fleet.run(start, end)
        feed = OfficialTrafficFeed(window_s=900.0)
        feed.ingest(reports)
        diffs = []
        for seg in small_city.network.segment_ids:
            for window_start in np.arange(start, end, 900.0):
                mid = window_start + 450.0
                reported = feed.speed_kmh(seg, mid)
                if reported is None:
                    continue
                ambient = traffic.car_speed_ms(seg, mid)
                expected = ms_to_kmh(taxi_speed_ms(ambient, TaxiConfig()))
                diffs.append(reported - expected)
        assert len(diffs) > 50
        assert abs(np.mean(diffs)) < 3.0

    def test_rejects_bad_window(self, small_city, traffic):
        fleet = TaxiFleet(small_city.network, traffic, seed=0)
        with pytest.raises(ValueError):
            fleet.run(100.0, 100.0)
