"""Tests for the phone agent (the data-collection app)."""

import itertools

import numpy as np
import pytest

from repro.phone.app import DspMode, PhoneAgent, record_participant_trips
from repro.sim.bus import simulate_bus_trip
from repro.util.units import parse_hhmm


@pytest.fixture()
def trace(small_city, traffic):
    route = small_city.route_network.route("179-0")
    return simulate_bus_trip(
        route,
        parse_hhmm("08:00"),
        traffic,
        itertools.count(),
        rng=np.random.default_rng(6),
    )


def make_agent(small_city, sampler, config, mode=DspMode.FAST, seed=0):
    return PhoneAgent(
        phone_id="test-phone",
        sampler=sampler,
        registry=small_city.registry,
        config=config,
        mode=mode,
        rng=np.random.default_rng(seed),
    )


class TestFastMode:
    def test_produces_one_upload(self, small_city, sampler, config, trace):
        ride = trace.participants[0]
        agent = make_agent(small_city, sampler, config)
        uploads = agent.ride_and_record(trace, ride)
        assert len(uploads) == 1

    def test_samples_cover_onboard_stops(self, small_city, sampler, config, trace):
        ride = max(trace.participants, key=lambda p: p.alight_order - p.board_order)
        agent = make_agent(small_city, sampler, config)
        upload = agent.ride_and_record(trace, ride)[0]
        onboard = [
            v for v in trace.visits
            if ride.board_order <= v.stop_order <= ride.alight_order and v.served
        ]
        first, last = onboard[0], onboard[-1]
        assert upload.start_s >= first.arrival_s
        assert upload.end_s <= last.depart_s + 60.0

    def test_samples_time_ordered(self, small_city, sampler, config, trace):
        agent = make_agent(small_city, sampler, config)
        for ride in trace.participants[:3]:
            for upload in agent.ride_and_record(trace, ride):
                times = [s.time_s for s in upload.samples]
                assert times == sorted(times)

    def test_sample_count_tracks_heard_taps(self, small_city, sampler, config, trace):
        ride = max(trace.participants, key=lambda p: p.alight_order - p.board_order)
        agent = make_agent(small_city, sampler, config)
        upload = agent.ride_and_record(trace, ride)[0]
        heard = [
            t for t in trace.taps
            if ride.board_order <= t.stop_order <= ride.alight_order
        ]
        # Detection probability is high; a couple of misses are fine.
        assert len(upload.samples) >= 0.85 * len(heard)
        assert len(upload.samples) <= len(heard) + 3   # + rare false samples

    def test_record_participant_trips_covers_all(self, small_city, sampler, config, trace):
        uploads = record_participant_trips(
            trace, small_city.registry, sampler, config, rng=np.random.default_rng(1)
        )
        assert len(uploads) >= 0.9 * len(trace.participants)


class TestFullDspMode:
    def test_full_mode_close_to_fast_mode(self, small_city, sampler, config, trace):
        """FULL mode (real audio + Goertzel) finds nearly the same beeps."""
        ride = max(trace.participants, key=lambda p: p.alight_order - p.board_order)
        fast = make_agent(small_city, sampler, config, DspMode.FAST, seed=2)
        full = make_agent(small_city, sampler, config, DspMode.FULL, seed=2)
        fast_upload = fast.ride_and_record(trace, ride)[0]
        full_upload = full.ride_and_record(trace, ride)[0]
        assert len(full_upload.samples) >= 0.8 * len(fast_upload.samples)

    def test_full_mode_sample_times_near_taps(self, small_city, sampler, config, trace):
        ride = max(trace.participants, key=lambda p: p.alight_order - p.board_order)
        agent = make_agent(small_city, sampler, config, DspMode.FULL, seed=3)
        upload = agent.ride_and_record(trace, ride)[0]
        tap_times = np.array([
            t.time_s for t in trace.taps
            if ride.board_order <= t.stop_order <= ride.alight_order
        ])
        for sample in upload.samples:
            assert np.min(np.abs(tap_times - sample.time_s)) < 1.0
