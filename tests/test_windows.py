"""Tests for sliding time windows (ring buffers over an explicit clock)."""

import pytest

from repro.obs import SlidingWindowCounter, SlidingWindowStats, WindowSet


class TestSlidingWindowCounter:
    def test_counts_within_window(self):
        win = SlidingWindowCounter(window_s=300.0, buckets=30)
        win.add(1, now=10.0)
        win.add(2, now=200.0)
        assert win.total(now=250.0) == 3

    def test_old_events_age_out(self):
        win = SlidingWindowCounter(window_s=300.0, buckets=30)
        win.add(5, now=0.0)
        assert win.total(now=100.0) == 5
        # 0.0 lands in slot [0, 10); it fully leaves once the horizon
        # passes the slot end.
        assert win.total(now=311.0) == 0

    def test_slot_reuse_zeroes_stale_counts(self):
        win = SlidingWindowCounter(window_s=10.0, buckets=2)
        win.add(7, now=1.0)
        # Same ring slot one full revolution later: must not inherit 7.
        win.add(1, now=11.0)
        assert win.total(now=12.0) == 1

    def test_rate_per_s(self):
        win = SlidingWindowCounter(window_s=100.0, buckets=10)
        win.add(50, now=50.0)
        assert win.rate_per_s(now=60.0) == pytest.approx(0.5)

    def test_reset_forgets_everything(self):
        win = SlidingWindowCounter(window_s=10.0, buckets=5)
        win.add(3, now=1.0)
        win.reset()
        assert win.total(now=1.0) == 0

    def test_future_slots_not_counted(self):
        win = SlidingWindowCounter(window_s=10.0, buckets=5)
        win.add(4, now=9.0)
        # Reading at an earlier time must not see the later write.
        assert win.total(now=2.0) == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            SlidingWindowCounter(window_s=0.0)
        with pytest.raises(ValueError):
            SlidingWindowCounter(buckets=0)


class TestSlidingWindowStats:
    def test_moments_over_live_window(self):
        win = SlidingWindowStats(window_s=300.0, buckets=30)
        for value in (100.0, 200.0, 300.0):
            win.add(value, now=50.0)
        stats = win.stats(now=100.0)
        assert stats["count"] == 3
        assert stats["mean"] == pytest.approx(200.0)
        assert stats["second_moment"] == pytest.approx(
            (100.0**2 + 200.0**2 + 300.0**2) / 3
        )
        assert stats["min"] == 100.0
        assert stats["max"] == 300.0

    def test_below_threshold_counting(self):
        win = SlidingWindowStats(window_s=100.0, buckets=10,
                                 mark_below=150.0)
        win.add(100.0, now=10.0)
        win.add(200.0, now=10.0)
        win.add(149.9, now=20.0)
        stats = win.stats(now=30.0)
        assert stats["below"] == 2
        assert stats["below_rate"] == pytest.approx(2 / 3)

    def test_no_threshold_never_marks_below(self):
        win = SlidingWindowStats(window_s=100.0, buckets=10)
        win.add(1.0, now=0.0)
        assert win.stats(now=1.0)["below_rate"] == 0.0

    def test_observations_age_out(self):
        win = SlidingWindowStats(window_s=300.0, buckets=30)
        win.add(42.0, now=0.0)
        assert win.stats(now=100.0)["count"] == 1
        assert win.stats(now=311.0)["count"] == 0
        assert win.stats(now=311.0)["mean"] == 0.0

    def test_slot_reuse_zeroes_stale_moments(self):
        win = SlidingWindowStats(window_s=10.0, buckets=2)
        win.add(7.0, now=1.0)
        win.add(1.0, now=11.0)       # same ring slot, one revolution later
        stats = win.stats(now=12.0)
        assert stats["count"] == 1
        assert stats["sum"] == 1.0

    def test_total_and_count_hooks(self):
        win = SlidingWindowStats(window_s=100.0, buckets=10)
        win.add(2.5, now=0.0)
        win.add(3.5, now=1.0)
        assert win.total(now=10.0) == pytest.approx(6.0)
        assert win.count(now=10.0) == 2

    def test_reset_keeps_threshold(self):
        win = SlidingWindowStats(window_s=100.0, buckets=10, mark_below=5.0)
        win.add(1.0, now=0.0)
        win.reset()
        assert win.stats(now=1.0)["count"] == 0
        assert win.mark_below == 5.0

    def test_validation(self):
        with pytest.raises(ValueError):
            SlidingWindowStats(window_s=0.0)
        with pytest.raises(ValueError):
            SlidingWindowStats(buckets=0)


class TestWindowSet:
    def test_series_keyed_by_name_and_labels(self):
        ws = WindowSet(window_s=100.0, buckets=10)
        ws.add("uploads", now=10.0)
        ws.add("uploads", 2, now=10.0, route="179-0")
        ws.add("uploads", 3, now=10.0, route="179-1")
        totals = ws.totals(now=20.0)
        assert totals["uploads"] == 1
        assert totals['uploads{route="179-0"}'] == 2
        assert totals['uploads{route="179-1"}'] == 3

    def test_series_triples_for_alerting(self):
        ws = WindowSet(window_s=100.0, buckets=10)
        ws.add("uploads", 2, now=5.0, route="179-0")
        assert ws.series(now=10.0) == [("uploads", {"route": "179-0"}, 2.0)]

    def test_max_series_overflow_shared(self):
        ws = WindowSet(window_s=100.0, buckets=4, max_series=1)
        ws.add("a", 1, now=0.0)
        ws.add("b", 2, now=0.0)            # beyond cap -> overflow series
        ws.add("c", 3, now=0.0)
        assert len(ws) <= 3
        totals = ws.totals(now=1.0)
        overflow = [v for k, v in totals.items() if WindowSet.OVERFLOW_KEY in k]
        assert sum(overflow) == 5

    def test_reset_keeps_series_set(self):
        ws = WindowSet(window_s=100.0, buckets=4)
        ws.add("uploads", 4, now=0.0)
        ws.reset()
        assert ws.totals(now=1.0) == {"uploads": 0.0}

    def test_factory_builds_custom_reducers(self):
        ws = WindowSet(
            window_s=100.0, buckets=10,
            factory=lambda w, b: SlidingWindowStats(w, b, mark_below=50.0),
        )
        win = ws.window("headways", route="179-0")
        assert isinstance(win, SlidingWindowStats)
        ws.add("headways", 30.0, now=0.0, route="179-0")
        ws.add("headways", 80.0, now=0.0, route="179-0")
        assert win.stats(now=1.0)["below"] == 1
        # The set's export hooks still work through the custom reducer.
        assert ws.totals(now=1.0)['headways{route="179-0"}'] == 110.0
