"""Tests for ASCII figure rendering."""

import numpy as np
import pytest

from repro.eval.figures import ascii_cdf, ascii_chart
from repro.eval.metrics import Cdf


class TestAsciiChart:
    def test_renders_grid_and_legend(self):
        chart = ascii_chart(
            {"v_A": [(0, 10.0), (1, 20.0)], "v_T": [(0, 15.0), (1, 25.0)]},
            width=32,
            height=8,
            x_label="window",
            y_label="km/h",
        )
        lines = chart.splitlines()
        assert len(lines) == 8 + 3                # grid + axis + labels + legend
        assert "* v_A" in chart
        assert "o v_T" in chart
        assert "km/h" in chart

    def test_extremes_on_borders(self):
        chart = ascii_chart({"s": [(0, 0.0), (10, 100.0)]}, width=20, height=6)
        lines = chart.splitlines()
        assert "*" in lines[0]                     # max value on the top row
        assert "*" in lines[5]                     # min value on the bottom row

    def test_handles_missing_points(self):
        chart = ascii_chart({"s": [(0, 1.0), (1, None), (2, 3.0)]})
        assert chart                               # gaps simply absent

    def test_flat_series_does_not_divide_by_zero(self):
        assert ascii_chart({"s": [(0, 5.0), (1, 5.0)]})

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            ascii_chart({})
        with pytest.raises(ValueError):
            ascii_chart({"s": [(0, None)]})

    def test_rejects_tiny_canvas(self):
        with pytest.raises(ValueError):
            ascii_chart({"s": [(0, 1.0)]}, width=4, height=2)


class TestAsciiTrafficMap:
    def test_renders_levels_and_gaps(self, small_city):
        from repro.core.traffic_map import TrafficMapEstimator
        from repro.eval.figures import ascii_traffic_map

        estimator = TrafficMapEstimator(small_city.network)
        segs = small_city.network.segment_ids
        estimator.update(segs[0], 15.0, t=100.0)
        estimator.update(segs[-1], 60.0, t=100.0)
        art = ascii_traffic_map(small_city, estimator.snapshot(150.0))
        assert "1" in art            # very-slow cell
        assert "5" in art            # fast cell
        assert "." in art            # uncovered cells
        assert "levels:" in art

    def test_empty_snapshot_all_dots(self, small_city):
        from repro.core.traffic_map import TrafficMapEstimator
        from repro.eval.figures import ascii_traffic_map

        estimator = TrafficMapEstimator(small_city.network)
        art = ascii_traffic_map(small_city, estimator.snapshot(100.0))
        grid_lines = art.splitlines()[:-1]
        assert all(set(line) <= {".", " "} for line in grid_lines)


class TestAsciiCdf:
    def test_monotone_curve(self):
        cdf = Cdf.of(np.random.default_rng(0).normal(50, 10, size=500))
        art = ascii_cdf({"errors": cdf}, width=40, height=10)
        assert "cumulative fraction" in art
        assert "errors" in art

    def test_two_curves_get_distinct_glyphs(self):
        rng = np.random.default_rng(1)
        art = ascii_cdf(
            {
                "stationary": Cdf.of(rng.normal(40, 5, 200)),
                "on bus": Cdf.of(rng.normal(68, 8, 200)),
            }
        )
        assert "* stationary" in art
        assert "o on bus" in art

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            ascii_cdf({})
