"""Tests for per-bus-stop sample clustering (§III-C2)."""

import pytest

from repro.config import ClusteringConfig
from repro.core.clustering import (
    MatchedSample,
    cluster_trip_samples,
    link_affinity,
)
from repro.core.matching import MatchResult
from repro.phone.cellular import CellularSample


def ms(t, station, score=5.0):
    return MatchedSample(
        sample=CellularSample(time_s=t, tower_ids=(1, 2, 3)),
        match=MatchResult(station_id=station, score=score, common_ids=3),
    )


class TestLinkAffinity:
    def test_same_stop_close_in_time_is_strong(self):
        cfg = ClusteringConfig()
        affinity = link_affinity(ms(100.0, 7), ms(103.0, 7), cfg)
        assert affinity > 1.5

    def test_different_stops_lose_match_term(self):
        cfg = ClusteringConfig()
        same = link_affinity(ms(100.0, 7), ms(103.0, 7), cfg)
        diff = link_affinity(ms(100.0, 7), ms(103.0, 8), cfg)
        assert same - diff == pytest.approx(
            (cfg.max_similarity - 0.0) / cfg.max_similarity
        )

    def test_time_gap_decays_affinity(self):
        cfg = ClusteringConfig()
        near = link_affinity(ms(100.0, 7), ms(105.0, 7), cfg)
        far = link_affinity(ms(100.0, 7), ms(129.0, 7), cfg)
        assert far < near

    def test_similarity_gap_decays_affinity(self):
        cfg = ClusteringConfig()
        close = link_affinity(ms(100.0, 7, 5.0), ms(103.0, 7, 5.0), cfg)
        spread = link_affinity(ms(100.0, 7, 6.9), ms(103.0, 7, 1.0), cfg)
        assert spread < close


class TestClustering:
    def test_two_stop_bursts_give_two_clusters(self):
        samples = [ms(100.0, 7), ms(103.0, 7), ms(106.0, 7),
                   ms(220.0, 8), ms(224.0, 8)]
        clusters = cluster_trip_samples(samples)
        assert [len(c) for c in clusters] == [3, 2]

    def test_cluster_timing_is_arrival_departure(self):
        clusters = cluster_trip_samples([ms(100.0, 7), ms(109.0, 7)])
        assert clusters[0].arrival_s == 100.0
        assert clusters[0].depart_s == 109.0

    def test_out_of_order_input_sorted(self):
        clusters = cluster_trip_samples([ms(220.0, 8), ms(100.0, 7), ms(103.0, 7)])
        assert [len(c) for c in clusters] == [2, 1]

    def test_same_stop_after_long_gap_splits(self):
        # Two visits to one stop (loop route) must stay distinct.
        clusters = cluster_trip_samples([ms(100.0, 7), ms(800.0, 7)])
        assert len(clusters) == 2

    def test_noisy_mismatch_absorbed_as_minority_candidate(self):
        """§III-C2: a cluster may contain mismatched samples; the stray
        joins its time-adjacent burst and surfaces as a minority
        candidate rather than polluting the sequence."""
        samples = [ms(100.0, 7), ms(103.0, 7), ms(104.0, 99, score=2.1),
                   ms(106.0, 7)]
        clusters = cluster_trip_samples(samples)
        assert len(clusters) == 1
        candidates = {c.station_id: c for c in clusters[0].candidates()}
        assert candidates[7].probability == pytest.approx(0.75)
        assert candidates[99].probability == pytest.approx(0.25)

    def test_distant_stray_gets_own_cluster(self):
        """A stray outside the t0 window cannot join the burst."""
        samples = [ms(100.0, 7), ms(103.0, 7), ms(160.0, 99, score=2.1)]
        clusters = cluster_trip_samples(samples)
        assert [len(c) for c in clusters] == [2, 1]

    def test_threshold_sweep_shape(self):
        """Tiny ε over-merges adjacent stops; huge ε shatters bursts (Fig. 5)."""
        # Bursts 25 s apart: inside the t0 window, so only the threshold
        # decides whether neighbouring stops merge.
        samples = [ms(100.0 + 25 * k + d, k) for k in range(4) for d in (0.0, 3.0)]
        tight = cluster_trip_samples(samples, ClusteringConfig(threshold=1.9))
        loose = cluster_trip_samples(samples, ClusteringConfig(threshold=0.05))
        default = cluster_trip_samples(samples, ClusteringConfig())
        assert len(tight) == len(samples)
        assert len(loose) < len(default) <= len(tight)
        assert len(default) == 4

    def test_interleaved_bursts_keep_older_cluster_eligible(self):
        """Regression: a stale cluster must be skipped, not end the scan.

        depart_s is not monotone over the clusters list — an older
        cluster that absorbs a late sample departs after a newer one.
        Here cluster A (stop 1) reopens at t=25 after cluster B (stop 2)
        formed at t=20; by t=85 B is stale (gap 65 s > 2·t0) but A is
        not (gap 40 s).  The old early-exit ``break`` hit B first and
        wrongly split the t=85 sample into a third cluster.
        """
        samples = [
            ms(0.0, 1),
            ms(20.0, 2),    # opens B: time term 0.333 < ε vs A
            ms(25.0, 1),    # rejoins A -> A.depart (25) > B.depart (20)
            ms(45.0, 1),    # A.depart = 45
            ms(85.0, 1),    # B stale, A eligible: affinity 0.667 > 0.6
        ]
        clusters = cluster_trip_samples(samples)
        assert [len(c) for c in clusters] == [4, 1]
        assert [s.time_s for s in clusters[0].samples] == [0.0, 25.0, 45.0, 85.0]
        assert clusters[1].samples[0].time_s == 20.0

    def test_stale_cluster_never_absorbs(self):
        """Beyond the 2·t0 gap the time term alone sinks the affinity,
        so the staleness skip can never change which cluster wins."""
        cfg = ClusteringConfig(threshold=0.05)
        clusters = cluster_trip_samples([ms(0.0, 7), ms(70.0, 7)], cfg)
        assert [len(c) for c in clusters] == [1, 1]

    def test_empty_input(self):
        assert cluster_trip_samples([]) == []


class TestCandidates:
    def test_unanimous_cluster(self):
        clusters = cluster_trip_samples([ms(100.0, 7, 5.0), ms(102.0, 7, 6.0)])
        candidates = clusters[0].candidates()
        assert len(candidates) == 1
        assert candidates[0].station_id == 7
        assert candidates[0].probability == 1.0
        assert candidates[0].mean_similarity == pytest.approx(5.5)

    def test_split_cluster_probabilities(self):
        cfg = ClusteringConfig(threshold=0.0)  # force everything together
        clusters = cluster_trip_samples(
            [ms(100.0, 7, 5.0), ms(101.0, 7, 5.0), ms(102.0, 8, 4.0)], cfg
        )
        assert len(clusters) == 1
        candidates = {c.station_id: c for c in clusters[0].candidates()}
        assert candidates[7].probability == pytest.approx(2 / 3)
        assert candidates[8].probability == pytest.approx(1 / 3)

    def test_candidates_sorted_by_weight(self):
        cfg = ClusteringConfig(threshold=0.0)
        clusters = cluster_trip_samples(
            [ms(100.0, 7, 5.0), ms(101.0, 7, 5.0), ms(102.0, 8, 4.0)], cfg
        )
        weights = [c.weight for c in clusters[0].candidates()]
        assert weights == sorted(weights, reverse=True)
