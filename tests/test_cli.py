"""Tests for the command-line interface."""

import json
import os

import pytest

from repro.cli import main


class TestBuildCity:
    def test_writes_feed(self, tmp_path, capsys):
        out = str(tmp_path / "feed")
        assert main(["build-city", "--out", out, "--seed", "3"]) == 0
        assert os.path.exists(os.path.join(out, "stops.txt"))
        assert "stations" in capsys.readouterr().out


class TestPower:
    def test_prints_table(self, capsys):
        assert main(["power"]) == 0
        output = capsys.readouterr().out
        assert "GPS" in output
        assert "Cellular+Mic(Goertzel)" in output


class TestVersion:
    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])


class TestCampaignCommand:
    def test_rejects_zero_phases(self, capsys):
        code = main(["campaign", "--sparse-days", "0", "--intensive-days", "0"])
        assert code == 2

    @pytest.mark.slow
    def test_runs_two_phase_campaign(self, capsys):
        code = main([
            "campaign", "--sparse-days", "1", "--intensive-days", "1",
            "--start", "08:00", "--end", "08:40", "--seed", "3",
        ])
        assert code == 0
        output = capsys.readouterr().out
        assert "sparse" in output
        assert "intensive" in output
        assert "mean uploads/day" in output


@pytest.mark.slow
class TestEndToEndWorkflow:
    """The full deployment workflow through the CLI (uses the real city)."""

    def test_survey_simulate_process(self, tmp_path, capsys):
        db_path = str(tmp_path / "db.json")
        trips_path = str(tmp_path / "trips.jsonl")
        map_path = str(tmp_path / "map.geojson")
        metrics_path = str(tmp_path / "metrics.json")

        assert main(["survey", "--out", db_path, "--seed", "3",
                     "--samples-per-stop", "3"]) == 0
        assert os.path.exists(db_path)

        assert main([
            "simulate", "--seed", "3", "--start", "08:00", "--end", "08:40",
            "--routes", "179-0", "--headway", "1200",
            "--out", map_path, "--trips-out", trips_path,
            "--metrics-out", metrics_path,
        ]) == 0
        with open(map_path) as handle:
            geojson = json.load(handle)
        assert geojson["type"] == "FeatureCollection"
        assert geojson["features"]

        # The metrics document carries stage timings and all counters.
        with open(metrics_path) as handle:
            metrics = json.load(handle)
        for stage in ("matching", "clustering", "trip_mapping",
                      "leg_estimation", "receive_trip", "publish"):
            assert metrics["stages"][stage]["count"] > 0
            assert metrics["stages"][stage]["total_s"] >= 0.0
        assert metrics["stats"]["trips_received"] > 0
        assert "samples_duplicate" in metrics["stats"]
        assert metrics["metrics"]["counters"]["server_trips_received"] == \
            metrics["stats"]["trips_received"]

        assert main(["process", "--db", db_path, "--trips", trips_path,
                     "--seed", "3"]) == 0
        output = capsys.readouterr().out
        assert "mapped" in output

        # The stats report renders the metrics document.
        assert main(["stats", metrics_path]) == 0
        report = capsys.readouterr().out
        assert "Server pipeline counters" in report
        assert "Per-stage span timings" in report
        assert "matching" in report


class TestStatsCommand:
    def _document(self):
        return {
            "command": "simulate",
            "stats": {"trips_received": 12, "trips_mapped": 10},
            "stages": {
                "matching": {"count": 12, "total_s": 0.5, "mean_s": 0.0417,
                             "min_s": 0.01, "max_s": 0.2},
            },
            "metrics": {
                "counters": {"server_trips_received": 12,
                             "phone_uploads_total": 12},
                "gauges": {},
                "histograms": {
                    "matcher_candidates_per_sample": {
                        "count": 100, "sum": 420.0,
                        "bounds": [1, 5], "bucket_counts": [10, 80, 10],
                    }
                },
            },
        }

    def test_renders_all_sections(self, tmp_path, capsys):
        path = tmp_path / "m.json"
        path.write_text(json.dumps(self._document()))
        assert main(["stats", str(path)]) == 0
        out = capsys.readouterr().out
        assert "trips_received" in out
        assert "matching" in out
        assert "phone_uploads_total" in out
        assert "matcher_candidates_per_sample" in out

    def test_empty_document_fails(self, tmp_path, capsys):
        path = tmp_path / "empty.json"
        path.write_text("{}")
        assert main(["stats", str(path)]) == 2

    def test_missing_file_exits_2_without_traceback(self, tmp_path, capsys):
        path = tmp_path / "does-not-exist.json"
        assert main(["stats", str(path)]) == 2
        captured = capsys.readouterr()
        assert "stats: cannot read" in captured.err
        assert str(path) in captured.err
        assert "Traceback" not in captured.err

    def test_malformed_json_exits_2_without_traceback(self, tmp_path, capsys):
        path = tmp_path / "broken.json"
        path.write_text('{"metrics": {"counters": ')
        assert main(["stats", str(path)]) == 2
        captured = capsys.readouterr()
        assert "stats:" in captured.err
        assert "not valid JSON" in captured.err
        assert "Traceback" not in captured.err


class TestLoggingFlags:
    def test_log_level_flag_configures_namespace_logger(self, capsys):
        import logging

        assert main(["--log-level", "debug", "power"]) == 0
        assert logging.getLogger("repro").level == logging.DEBUG
        # Restore the default so later tests stay quiet.
        assert main(["--log-level", "warning", "power"]) == 0
        assert logging.getLogger("repro").level == logging.WARNING

    def test_log_json_flag_accepted(self):
        assert main(["--log-json", "power"]) == 0

    def test_rejects_unknown_level(self):
        with pytest.raises(SystemExit):
            main(["--log-level", "shouty", "power"])


class TestAlertsCommand:
    def _rules(self, tmp_path, rules):
        path = tmp_path / "rules.json"
        path.write_text(json.dumps({"rules": rules}))
        return str(path)

    def _freshness_doc(self, tmp_path, values):
        doc = {
            "metrics": {
                "counters": {}, "gauges": {}, "histograms": {},
                "labeled": {
                    "map_route_freshness_s": {
                        "type": "gauge", "labels": ["route"],
                        "overflow_total": 0,
                        "children": {
                            f'route="{route}"': value
                            for route, value in values.items()
                        },
                    },
                },
            },
        }
        path = tmp_path / "metrics.json"
        path.write_text(json.dumps(doc))
        return str(path)

    def test_lint_ok(self, tmp_path, capsys):
        path = self._rules(tmp_path, [{"name": "a", "expr": "m < 1"}])
        assert main(["alerts", path]) == 0
        assert "1 rule(s) OK" in capsys.readouterr().out

    def test_lint_failure_exits_2(self, tmp_path, capsys):
        path = self._rules(tmp_path, [{"name": "a", "expr": "m <"}])
        assert main(["alerts", path]) == 2
        assert "a" in capsys.readouterr().err

    def test_firing_rule_exits_1(self, tmp_path, capsys):
        rules = self._rules(tmp_path, [
            {"name": "fresh", "expr": "map_route_freshness_s{route=*} < 900",
             "severity": "page", "for": 2},
        ])
        metrics = self._freshness_doc(
            tmp_path, {"179-0": 1200.0, "179-1": 10.0}
        )
        assert main(["alerts", rules, "--metrics", metrics]) == 1
        out = capsys.readouterr().out
        assert "route=179-0" in out
        assert "route=179-1" not in out

    def test_healthy_rules_exit_0(self, tmp_path, capsys):
        rules = self._rules(tmp_path, [
            {"name": "fresh", "expr": "map_route_freshness_s{route=*} < 900"},
        ])
        metrics = self._freshness_doc(tmp_path, {"179-0": 10.0})
        assert main(["alerts", rules, "--metrics", metrics]) == 0
        assert "healthy" in capsys.readouterr().out

    def test_evaluates_prom_documents(self, tmp_path, capsys):
        rules = self._rules(tmp_path, [
            {"name": "fresh", "expr": "map_route_freshness_s{route=*} < 900"},
        ])
        prom = tmp_path / "m.prom"
        prom.write_text(
            "# TYPE map_route_freshness_s gauge\n"
            'map_route_freshness_s{route="199-0"} 4000\n'
        )
        assert main(["alerts", rules, "--metrics", str(prom)]) == 1
        assert "route=199-0" in capsys.readouterr().out


class TestStatsMatchMemoLine:
    def _document(self, counters):
        return {"metrics": {"counters": counters, "gauges": {},
                            "histograms": {}}}

    def test_hit_ratio_line_rendered(self, tmp_path, capsys):
        path = tmp_path / "m.json"
        path.write_text(json.dumps(self._document({
            "match_cache_hits_total": 30,
            "match_cache_misses_total": 70,
        })))
        assert main(["stats", str(path)]) == 0
        out = capsys.readouterr().out
        assert ("match memo: 100 logical lookups = 70 physical matches "
                "+ 30 cache hits (30.0% hit-ratio)") in out

    def test_absent_counters_render_no_line(self, tmp_path, capsys):
        path = tmp_path / "m.json"
        path.write_text(json.dumps(self._document({
            "server_trips_received": 12,
        })))
        assert main(["stats", str(path)]) == 0
        assert "match memo" not in capsys.readouterr().out

    def test_all_miss_document_shows_zero_ratio(self, tmp_path, capsys):
        path = tmp_path / "m.json"
        path.write_text(json.dumps(self._document({
            "match_cache_hits_total": 0,
            "match_cache_misses_total": 5,
        })))
        assert main(["stats", str(path)]) == 0
        assert "(0.0% hit-ratio)" in capsys.readouterr().out


class TestAlertsNoDataState:
    """Rules whose metric family is absent report no-data, not health."""

    def _rules(self, tmp_path, rules):
        path = tmp_path / "rules.json"
        path.write_text(json.dumps({"rules": rules}))
        return str(path)

    def _doc(self, tmp_path, children):
        doc = {
            "metrics": {
                "counters": {}, "gauges": {}, "histograms": {},
                "labeled": {
                    "map_route_freshness_s": {
                        "type": "gauge", "labels": ["route"],
                        "overflow_total": 0, "children": children,
                    },
                },
            },
        }
        path = tmp_path / "metrics.json"
        path.write_text(json.dumps(doc))
        return str(path)

    def test_no_data_rule_distinct_from_healthy(self, tmp_path, capsys):
        rules = self._rules(tmp_path, [
            {"name": "fresh", "expr": "map_route_freshness_s{route=*} < 900"},
            {"name": "no_ghosts", "expr": "ghost_vehicles{route=*} < 1"},
        ])
        metrics = self._doc(tmp_path, {'route="179-0"': 10.0})
        assert main(["alerts", rules, "--metrics", metrics]) == 0
        out = capsys.readouterr().out
        assert "1 rule(s) healthy, 1 no-data" in out
        assert ("[no-data] no_ghosts: metric 'ghost_vehicles' absent "
                "from the document") in out

    def test_all_rules_no_data_none_healthy(self, tmp_path, capsys):
        rules = self._rules(tmp_path, [
            {"name": "no_ghosts", "expr": "ghost_vehicles{route=*} < 1"},
        ])
        metrics = self._doc(tmp_path, {'route="179-0"': 10.0})
        assert main(["alerts", rules, "--metrics", metrics]) == 0
        out = capsys.readouterr().out
        assert "0 rule(s) healthy, 1 no-data" in out
        assert "[no-data] no_ghosts" in out

    def test_no_data_listed_alongside_firing(self, tmp_path, capsys):
        rules = self._rules(tmp_path, [
            {"name": "fresh", "expr": "map_route_freshness_s{route=*} < 900",
             "severity": "page", "for": 1},
            {"name": "no_ghosts", "expr": "ghost_vehicles{route=*} < 1"},
        ])
        metrics = self._doc(tmp_path, {'route="179-0"': 4000.0})
        assert main(["alerts", rules, "--metrics", metrics]) == 1
        out = capsys.readouterr().out
        assert "1 alert(s) firing" in out
        assert "[no-data] no_ghosts" in out
        assert "route=179-0" in out


class TestAnalyticsCommand:
    def _snapshot(self, tmp_path):
        doc = {
            "command": "simulate",
            "metrics": {
                "counters": {"fleet_od_trips_total": 10},
                "gauges": {}, "histograms": {},
                "labeled": {
                    "headway_seconds": {
                        "type": "gauge", "labels": ["route", "stop"],
                        "overflow_total": 0,
                        "children": {
                            'route="179-0",stop="1"': 600.0,
                            'route="179-0",stop="2"': 480.0,
                            'route="_overflow",stop="_overflow"': 90.0,
                        },
                    },
                    "bunching_rate": {
                        "type": "gauge", "labels": ["route"],
                        "overflow_total": 0,
                        "children": {'route="179-0"': 0.5},
                    },
                    "ghost_vehicles": {
                        "type": "gauge", "labels": ["route"],
                        "overflow_total": 0,
                        "children": {'route="179-0"': 0.0,
                                     'route="199-1"': 2.0},
                    },
                    "od_flow_trips": {
                        "type": "counter", "labels": ["origin", "dest"],
                        "overflow_total": 3,
                        "children": {
                            'origin="1",dest="2"': 7.0,
                            'origin="_overflow",dest="_overflow"': 3.0,
                        },
                    },
                },
            },
        }
        path = tmp_path / "metrics.json"
        path.write_text(json.dumps(doc))
        return str(path)

    def test_snapshot_report(self, tmp_path, capsys):
        assert main(["analytics", "--metrics",
                     self._snapshot(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "Fleet health" in out
        assert "179-0" in out
        assert "ghost routes: 199-1" in out
        assert "Top O-D flows" in out
        # The _overflow cardinality-cap children never become rows.
        assert "_overflow" not in out

    def test_snapshot_mean_is_mean_of_latest_gaps(self, tmp_path, capsys):
        assert main(["analytics", "--metrics",
                     self._snapshot(tmp_path)]) == 0
        out = capsys.readouterr().out
        # (600 + 480) / 2 = 540 s = 9.0 min for route 179-0.
        assert "9.0" in out

    def test_json_out(self, tmp_path, capsys):
        out_path = tmp_path / "fleet.json"
        assert main(["analytics", "--metrics", self._snapshot(tmp_path),
                     "--json-out", str(out_path)]) == 0
        report = json.loads(out_path.read_text())
        assert report["ghost_routes"] == ["199-1"]
        assert report["od"]["total_trips"] == 10
        assert report["od"]["overflow_trips"] == 3
        assert report["od"]["top_flows"][0] == {
            "origin": "1", "dest": "2", "trips": 7,
        }

    def test_missing_file_exits_2(self, tmp_path, capsys):
        path = tmp_path / "does-not-exist.json"
        assert main(["analytics", "--metrics", str(path)]) == 2
        err = capsys.readouterr().err
        assert "analytics: cannot read" in err
        assert "Traceback" not in err

    def test_document_without_fleet_families_exits_2(self, tmp_path, capsys):
        path = tmp_path / "m.json"
        path.write_text(json.dumps({
            "metrics": {"counters": {"server_trips_received": 4},
                        "gauges": {}, "histograms": {}, "labeled": {}},
        }))
        assert main(["analytics", "--metrics", str(path)]) == 2
        assert "no fleet-health families" in capsys.readouterr().err

    def test_live_campaign(self, tmp_path, capsys):
        out_path = tmp_path / "fleet.json"
        assert main([
            "analytics", "--start", "07:30", "--end", "07:50",
            "--seed", "3", "--top-flows", "3",
            "--json-out", str(out_path),
        ]) == 0
        out = capsys.readouterr().out
        assert "Fleet health" in out
        assert "source: campaign 07:30-07:50 seed=3" in out
        report = json.loads(out_path.read_text())
        assert report["routes"]
        assert report["od"]["total_trips"] > 0
        assert len(report["od"]["top_flows"]) <= 3


class TestStatsPromInput:
    def test_renders_prom_document(self, tmp_path, capsys):
        prom = tmp_path / "m.prom"
        prom.write_text(
            "# TYPE server_trips_received counter\n"
            "server_trips_received 12\n"
            "# TYPE fingerprint_db_stops gauge\n"
            "fingerprint_db_stops 40\n"
            "# HELP trips_uploaded_total uploads per route\n"
            "# TYPE trips_uploaded_total counter\n"
            'trips_uploaded_total{route="179-0"} 7\n'
            "# TYPE match_latency histogram\n"
            'match_latency_bucket{le="+Inf"} 3\n'
            "match_latency_sum 1.5\n"
            "match_latency_count 3\n"
        )
        assert main(["stats", str(prom)]) == 0
        out = capsys.readouterr().out
        assert "server_trips_received" in out
        assert "Gauges" in out and "fingerprint_db_stops" in out
        assert "Labeled families" in out
        assert 'trips_uploaded_total{route="179-0"}' in out
        assert "match_latency" in out

    def test_malformed_prom_exits_2(self, tmp_path, capsys):
        prom = tmp_path / "bad.prom"
        prom.write_text("this is not prometheus\n")
        assert main(["stats", str(prom)]) == 2
        captured = capsys.readouterr()
        assert "not valid Prometheus text" in captured.err
        assert "Traceback" not in captured.err


@pytest.mark.slow
class TestServeMetricsAndCampaignMetrics:
    def test_simulate_serves_metrics_and_evaluates_rules(self, capsys):
        rules = os.path.join(
            os.path.dirname(__file__), "..", "examples", "alert_rules.json"
        )
        code = main([
            "simulate", "--seed", "3", "--start", "08:00", "--end", "08:30",
            "--routes", "179-0", "--headway", "1200",
            "--serve-metrics", "0", "--alert-rules", rules,
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "serving metrics on http://127.0.0.1:" in out
        # Only one route ran, so other routes' freshness SLOs must fire.
        assert "alerts:" in out
        assert "route_map_fresh" in out

    def test_campaign_metrics_out_prom(self, tmp_path, capsys):
        from repro.obs import parse_prometheus_text

        prom_path = str(tmp_path / "campaign.prom")
        code = main([
            "campaign", "--sparse-days", "1", "--intensive-days", "0",
            "--start", "08:00", "--end", "08:30", "--seed", "3",
            "--metrics-out", prom_path,
        ])
        assert code == 0
        with open(prom_path) as handle:
            parsed = parse_prometheus_text(handle.read())
        assert "campaign_days_by_phase_total" in parsed
        ((_, labels, value),) = parsed["campaign_days_by_phase_total"]["samples"]
        assert labels == {"phase": "sparse"}
        assert value == 1


class TestConformanceCommand:
    def test_differential_only_run(self, capsys):
        code = main(["conformance", "--scenarios", "3", "--no-golden"])
        assert code == 0
        output = capsys.readouterr().out
        assert "3 scenarios x 3 estimators" in output
        assert "all conformant" in output
        assert "golden:" not in output

    def test_matcher_modes_emit_identical_reports(self, tmp_path, capsys):
        """--matcher indexed and --matcher full agree byte-for-byte.

        Both paths are exact, so the emitted report (and the JSON
        report file) must be indistinguishable between modes.
        """
        reports = {}
        for mode in ("indexed", "full"):
            path = tmp_path / f"report-{mode}.json"
            code = main([
                "conformance", "--scenarios", "2", "--no-golden",
                "--matcher", mode, "--report-out", str(path),
            ])
            assert code == 0
            reports[mode] = path.read_text()
        assert reports["indexed"] == reports["full"]
        assert "all conformant" in capsys.readouterr().out

    def test_rejects_unknown_matcher_mode(self):
        with pytest.raises(SystemExit):
            main(["conformance", "--matcher", "sloppy"])

    def test_serial_golden_check_against_committed_fixture(
        self, tmp_path, capsys
    ):
        report_path = str(tmp_path / "report.json")
        code = main([
            "conformance", "--scenarios", "2", "--workers", "1",
            "--report-out", report_path,
        ])
        assert code == 0
        output = capsys.readouterr().out
        assert "golden: checked" in output
        assert "workers=1: byte-identical" in output
        with open(report_path) as handle:
            report = json.load(handle)
        assert report["ok"] is True
        assert report["golden_results"] == {"1": []}

    def test_mismatched_fixture_fails_and_writes_diff(self, tmp_path, capsys):
        from repro.testkit import load_trace, write_trace
        from repro.testkit.golden import default_trace_path

        doctored = load_trace(default_trace_path())
        doctored["stats"]["trips_received"] += 1
        fixture = tmp_path / "doctored.json"
        write_trace(doctored, fixture)
        diff_path = str(tmp_path / "golden_diff.txt")
        code = main([
            "conformance", "--scenarios", "1", "--workers", "1",
            "--fixture", str(fixture), "--diff-out", diff_path,
        ])
        assert code == 1
        assert "diffs" in capsys.readouterr().out
        with open(diff_path) as handle:
            diff = handle.read()
        assert "workers=1:" in diff
        assert "stats.trips_received" in diff

    def test_record_writes_fixture(self, tmp_path, capsys):
        fixture = tmp_path / "recorded.json"
        code = main([
            "conformance", "--scenarios", "1", "--workers", "1",
            "--record", "--fixture", str(fixture),
        ])
        assert code == 0
        assert "golden: recorded" in capsys.readouterr().out
        assert fixture.exists()
        # What --record writes is exactly what --check accepts.
        code = main([
            "conformance", "--scenarios", "1", "--workers", "1",
            "--check", "--fixture", str(fixture),
        ])
        assert code == 0
