"""Tests for the command-line interface."""

import json
import os

import pytest

from repro.cli import main


class TestBuildCity:
    def test_writes_feed(self, tmp_path, capsys):
        out = str(tmp_path / "feed")
        assert main(["build-city", "--out", out, "--seed", "3"]) == 0
        assert os.path.exists(os.path.join(out, "stops.txt"))
        assert "stations" in capsys.readouterr().out


class TestPower:
    def test_prints_table(self, capsys):
        assert main(["power"]) == 0
        output = capsys.readouterr().out
        assert "GPS" in output
        assert "Cellular+Mic(Goertzel)" in output


class TestVersion:
    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])


class TestCampaignCommand:
    def test_rejects_zero_phases(self, capsys):
        code = main(["campaign", "--sparse-days", "0", "--intensive-days", "0"])
        assert code == 2

    @pytest.mark.slow
    def test_runs_two_phase_campaign(self, capsys):
        code = main([
            "campaign", "--sparse-days", "1", "--intensive-days", "1",
            "--start", "08:00", "--end", "08:40", "--seed", "3",
        ])
        assert code == 0
        output = capsys.readouterr().out
        assert "sparse" in output
        assert "intensive" in output
        assert "mean uploads/day" in output


@pytest.mark.slow
class TestEndToEndWorkflow:
    """The full deployment workflow through the CLI (uses the real city)."""

    def test_survey_simulate_process(self, tmp_path, capsys):
        db_path = str(tmp_path / "db.json")
        trips_path = str(tmp_path / "trips.jsonl")
        map_path = str(tmp_path / "map.geojson")

        assert main(["survey", "--out", db_path, "--seed", "3",
                     "--samples-per-stop", "3"]) == 0
        assert os.path.exists(db_path)

        assert main([
            "simulate", "--seed", "3", "--start", "08:00", "--end", "08:40",
            "--routes", "179-0", "--headway", "1200",
            "--out", map_path, "--trips-out", trips_path,
        ]) == 0
        with open(map_path) as handle:
            geojson = json.load(handle)
        assert geojson["type"] == "FeatureCollection"
        assert geojson["features"]

        assert main(["process", "--db", db_path, "--trips", trips_path,
                     "--seed", "3"]) == 0
        output = capsys.readouterr().out
        assert "mapped" in output
