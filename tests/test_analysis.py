"""Tests for the analysis package: coverage, attribution, incidents."""

import itertools

import numpy as np
import pytest

from repro.analysis import (
    IncidentDetector,
    audit_trip,
    coverage_over_time,
    detect_incidents,
    redundancy_histogram,
    route_contributions,
)
from repro.analysis.attribution import merge_audits
from repro.core import BackendServer
from repro.core.traffic_map import TrafficMapEstimator
from repro.phone import PhoneAgent
from repro.phone.cellular import CellularSampler
from repro.sim.bus import simulate_bus_trip
from repro.util.units import parse_hhmm


class TestRouteContributions:
    def test_covers_all_services(self, small_city):
        contributions = route_contributions(small_city)
        names = {c.service_name for c in contributions}
        expected = {r.service_name for r in small_city.route_network.routes}
        assert names == expected

    def test_sorted_by_coverage(self, small_city):
        contributions = route_contributions(small_city)
        covered = [c.roads_covered for c in contributions]
        assert covered == sorted(covered, reverse=True)

    def test_exclusive_bounded_by_covered(self, small_city):
        for c in route_contributions(small_city):
            assert 0 <= c.roads_exclusive <= c.roads_covered
            assert 0.0 <= c.redundancy <= 1.0

    def test_redundancy_histogram_sums_to_covered_roads(self, small_city):
        histogram = redundancy_histogram(small_city)
        covered_roads = {
            tuple(sorted(seg))
            for seg in small_city.route_network.covered_segments()
        }
        assert sum(histogram.values()) == len(covered_roads)
        assert all(k >= 1 for k in histogram)


class TestCoverageOverTime:
    def test_series(self, small_city):
        estimator = TrafficMapEstimator(small_city.network)
        seg = small_city.network.segment_ids[0]
        estimator.update(seg, 40.0, t=100.0)
        estimator.publish(at_s=200.0)
        series = coverage_over_time(estimator, [150.0, 250.0])
        assert series[0] == (150.0, 0.0)       # nothing published yet
        assert series[1][1] > 0.0

    def test_rejects_empty_times(self, small_city):
        estimator = TrafficMapEstimator(small_city.network)
        with pytest.raises(ValueError):
            coverage_over_time(estimator, [])


class TestAuditTrip:
    @pytest.fixture()
    def audit(self, small_city, traffic, database, sampler, config):
        server = BackendServer(
            small_city.network, small_city.route_network, database, config
        )
        route = small_city.route_network.route("179-0")
        rng = np.random.default_rng(41)
        trace = simulate_bus_trip(
            route, parse_hhmm("08:10"), traffic, itertools.count(), rng=rng
        )
        ride = max(trace.participants, key=lambda p: p.alight_order - p.board_order)
        agent = PhoneAgent(
            phone_id="audit", sampler=sampler, registry=small_city.registry,
            config=config, rng=rng,
        )
        upload = agent.ride_and_record(trace, ride)[0]
        return audit_trip(
            trace, upload, server, traffic, ride.board_order, ride.alight_order
        )

    def test_sensing_stage(self, audit):
        assert audit.taps_heard > 0
        assert 0.8 <= audit.detection_rate <= 1.1

    def test_matching_stage(self, audit):
        assert audit.matching_accuracy > 0.85

    def test_clustering_stage(self, audit):
        assert audit.clusters > 2
        assert audit.cluster_purity > 0.8

    def test_mapping_stage(self, audit):
        assert audit.stops_identified > 2
        assert audit.identification_accuracy > 0.85

    def test_estimation_stage(self, audit):
        assert audit.speed_mae_kmh is not None
        assert audit.speed_mae_kmh < 10.0

    def test_merge(self, audit):
        merged = merge_audits([audit, audit])
        assert merged.taps_heard == 2 * audit.taps_heard
        assert merged.matching_accuracy == pytest.approx(audit.matching_accuracy)

    def test_merge_rejects_empty(self):
        with pytest.raises(ValueError):
            merge_audits([])


class TestIncidentDetector:
    def make_series(self, drop_at=None, n=30, base=45.0):
        series = []
        for k in range(n):
            speed = base + 0.5 * np.sin(k)
            if drop_at is not None and drop_at <= k < drop_at + 4:
                speed = 15.0
            series.append((300.0 * k, speed))
        return series

    def test_clean_series_has_no_incidents(self):
        detector = IncidentDetector()
        assert detector.scan((0, 1), self.make_series()) == []

    def test_detects_injected_drop(self):
        detector = IncidentDetector()
        incidents = detector.scan((0, 1), self.make_series(drop_at=15))
        assert len(incidents) == 1
        incident = incidents[0]
        assert incident.start_s == pytest.approx(300.0 * 15)
        assert incident.end_s == pytest.approx(300.0 * 19)
        assert incident.severity > 0.5

    def test_single_frame_glitch_debounced(self):
        detector = IncidentDetector(min_frames=2)
        series = self.make_series()
        series[15] = (series[15][0], 10.0)
        assert detector.scan((0, 1), series) == []

    def test_open_incident_at_series_end(self):
        detector = IncidentDetector()
        series = self.make_series(drop_at=26)
        incidents = detector.scan((0, 1), series)
        assert len(incidents) == 1
        assert incidents[0].end_s is None

    def test_baseline_not_dragged_down(self):
        """A long incident must not normalise itself."""
        detector = IncidentDetector()
        series = self.make_series(n=40)
        series = series[:15] + [(t, 12.0) for t, _ in series[15:]]
        incidents = detector.scan((0, 1), series)
        assert len(incidents) == 1
        assert incidents[0].end_s is None       # still open at the end

    def test_validation(self):
        with pytest.raises(ValueError):
            IncidentDetector(baseline_frames=1)
        with pytest.raises(ValueError):
            IncidentDetector(drop_fraction=1.5)
        with pytest.raises(ValueError):
            IncidentDetector(min_frames=0)
        with pytest.raises(ValueError):
            IncidentDetector(lag_frames=-1)

    def test_gradual_glide_into_incident_detected(self):
        """The fused map descends over a few frames; the lagged baseline
        must still catch the drop (the motivating case for lag_frames)."""
        values = [42.0] * 10 + [35.7, 30.6, 26.5, 23.4, 20.9, 18.9,
                                24.0, 28.0, 31.1, 33.5, 42.0]
        series = [(300.0 * k, v) for k, v in enumerate(values)]
        incidents = IncidentDetector().scan((0, 1), series)
        assert len(incidents) == 1
        assert incidents[0].severity > 0.4

    def test_detect_incidents_over_map(self, small_city):
        estimator = TrafficMapEstimator(small_city.network)
        seg = small_city.network.segment_ids[0]
        times = []
        for k in range(25):
            t = 300.0 * (k + 1)
            speed = 45.0 if not 15 <= k < 20 else 14.0
            estimator.update(seg, speed, t=t - 10.0)
            estimator.publish(at_s=t)
            times.append(t + 1.0)
        incidents = detect_incidents(estimator, [seg], times)
        assert len(incidents) == 1
        assert incidents[0].segment_id == seg

    def test_detect_incidents_rejects_empty_times(self, small_city):
        estimator = TrafficMapEstimator(small_city.network)
        with pytest.raises(ValueError):
            detect_incidents(estimator, [], [])
