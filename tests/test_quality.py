"""Tests for participant quality scoring and incentive allocation."""

import itertools

import numpy as np
import pytest

from repro.analysis.quality import (
    allocate_rewards,
    leaderboard,
    participant_of,
    score_participants,
)
from repro.core import BackendServer
from repro.core.server import TripReport
from repro.phone import record_participant_trips
from repro.sim.bus import simulate_bus_trip
from repro.util.units import parse_hhmm


def synthetic_report(trip_key, accepted=5, discarded=1, segments=()):
    from repro.core.trip_mapping import MappedStop, MappedTrip

    mapped = None
    if segments:
        mapped = MappedTrip(
            stops=[
                MappedStop(station_id=k, arrival_s=100.0 * k, depart_s=100.0 * k + 10,
                           cluster_size=2, weight=5.0)
                for k in range(len(segments) + 1)
            ],
            score=1.0,
        )
    return TripReport(
        trip_key=trip_key,
        accepted_samples=accepted,
        discarded_samples=discarded,
        clusters=[],
        mapped=mapped,
        estimates=[(seg, 40.0, 1000.0) for seg in segments],
    )


class TestScoring:
    def test_participant_of(self):
        assert participant_of("rider-42#3") == "rider-42"
        assert participant_of("nokey") == "nokey"

    def test_aggregates_across_trips(self):
        reports = [
            synthetic_report("rider-1#0", segments=[(0, 1)]),
            synthetic_report("rider-1#1", segments=[(1, 2), (2, 3)]),
            synthetic_report("rider-2#0", segments=[(0, 1)]),
        ]
        scores = score_participants(reports)
        assert scores["rider-1"].trips == 2
        assert scores["rider-1"].distinct_segments == 3
        assert scores["rider-2"].trips == 1

    def test_acceptance_rate(self):
        scores = score_participants([synthetic_report("rider-1#0", 8, 2)])
        assert scores["rider-1"].acceptance_rate == pytest.approx(0.8)

    def test_empty_participant_zero_rate(self):
        scores = score_participants([synthetic_report("rider-1#0", 0, 0)])
        assert scores["rider-1"].acceptance_rate == 0.0


class TestAllocation:
    def test_scarce_coverage_pays_more(self):
        # rider-1 probes a segment nobody else does; rider-2 piles onto
        # a segment probed by three trips.
        reports = [
            synthetic_report("rider-1#0", segments=[(9, 10)]),
            synthetic_report("rider-2#0", segments=[(0, 1)]),
            synthetic_report("rider-2#1", segments=[(0, 1)]),
            synthetic_report("rider-3#0", segments=[(0, 1)]),
        ]
        rewards = allocate_rewards(score_participants(reports), budget=100.0)
        assert rewards["rider-1"] > rewards["rider-2"]
        assert rewards["rider-1"] > rewards["rider-3"]

    def test_budget_fully_distributed(self):
        reports = [
            synthetic_report("rider-1#0", segments=[(0, 1)]),
            synthetic_report("rider-2#0", segments=[(1, 2)]),
        ]
        rewards = allocate_rewards(score_participants(reports), budget=50.0)
        assert sum(rewards.values()) == pytest.approx(50.0)

    def test_no_contribution_no_reward(self):
        reports = [
            synthetic_report("rider-1#0", segments=[(0, 1)]),
            synthetic_report("rider-2#0", segments=[]),
        ]
        rewards = allocate_rewards(score_participants(reports), budget=50.0)
        assert rewards["rider-2"] == 0.0
        assert rewards["rider-1"] == pytest.approx(50.0)

    def test_all_zero_when_nothing_usable(self):
        rewards = allocate_rewards(
            score_participants([synthetic_report("rider-1#0", segments=[])]),
            budget=50.0,
        )
        assert rewards == {"rider-1": 0.0}

    def test_rejects_negative_budget(self):
        with pytest.raises(ValueError):
            allocate_rewards({}, budget=-1.0)


class TestLeaderboard:
    def test_orders_by_distinct_segments(self):
        reports = [
            synthetic_report("rider-1#0", segments=[(0, 1), (1, 2)]),
            synthetic_report("rider-2#0", segments=[(0, 1)]),
        ]
        board = leaderboard(score_participants(reports))
        assert board[0][0] == "rider-1"

    def test_top_limits(self):
        reports = [
            synthetic_report(f"rider-{k}#0", segments=[(k, k + 1)])
            for k in range(5)
        ]
        board = leaderboard(score_participants(reports), top=3)
        assert len(board) == 3

    def test_rejects_bad_top(self):
        with pytest.raises(ValueError):
            leaderboard({}, top=0)


class TestEndToEnd:
    def test_real_campaign_scoring(
        self, small_city, traffic, database, sampler, config
    ):
        server = BackendServer(
            small_city.network, small_city.route_network, database, config
        )
        rng = np.random.default_rng(71)
        counter = itertools.count()
        reports = []
        for k in range(2):
            trace = simulate_bus_trip(
                small_city.route_network.route("179-0"),
                parse_hhmm("08:00") + 900.0 * k, traffic, counter, rng=rng,
            )
            uploads = record_participant_trips(
                trace, small_city.registry, sampler, config, rng=rng
            )
            reports.extend(server.receive_trips(uploads))
        scores = score_participants(reports)
        assert scores
        rewards = allocate_rewards(scores, budget=100.0)
        assert sum(rewards.values()) == pytest.approx(100.0, abs=1e-6)
        for who, score in scores.items():
            assert score.acceptance_rate > 0.5, who
