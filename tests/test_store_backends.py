"""Backend-conformance matrix for the durable state tier.

Every :class:`~repro.store.base.StateStore` backend must speak the same
contract — WAL append/iterate with strict seq monotonicity, latest-wins
snapshots, durable metadata — and the persistent ones must survive a
close + reopen of the same path.  The append-log backend additionally
owns torn-write detection: a crash can only damage the tail of an
append-only file, and reopening must truncate exactly the bad suffix.
"""

import json
import struct

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.store import FSYNC_POLICIES, NULL_STORE, NullStateStore, open_store
from repro.store.appendlog import _FRAME, AppendLogStateStore
from repro.store.memory import MemoryStateStore
from repro.store.sqlite_store import SqliteStateStore


def _memory_factory(tmp_path):
    store = MemoryStateStore()
    return lambda: store


def _sqlite_factory(tmp_path):
    path = str(tmp_path / "state.db")
    return lambda: SqliteStateStore(path)


def _appendlog_factory(tmp_path):
    path = str(tmp_path / "state")
    return lambda: AppendLogStateStore(path)


FACTORIES = {
    "memory": _memory_factory,
    "sqlite": _sqlite_factory,
    "appendlog": _appendlog_factory,
}


@pytest.fixture(params=sorted(FACTORIES))
def factory(request, tmp_path):
    """Calling it opens the *same* store again (memory returns the same
    object; durable backends reopen the path)."""
    return FACTORIES[request.param](tmp_path)


class TestContract:
    def test_empty_store(self, factory):
        with factory() as store:
            assert store.last_seq() == 0
            assert list(store.wal_records()) == []
            assert store.latest_snapshot() is None
            assert store.get_meta("campaign") is None

    def test_append_and_read_back(self, factory):
        records = [
            {"seq": 1, "kind": "trip", "trip": {"key": "a#0"}},
            {"seq": 2, "kind": "publish", "at_s": 300.0},
            {"seq": 3, "kind": "day_end", "day": 0},
        ]
        with factory() as store:
            for record in records:
                assert store.append_wal(dict(record)) == record["seq"]
            assert store.last_seq() == 3
            assert list(store.wal_records()) == records
            assert list(store.wal_records(after_seq=2)) == records[2:]

    def test_seq_must_increase(self, factory):
        with factory() as store:
            store.append_wal({"seq": 5, "kind": "publish", "at_s": 1.0})
            for bad in (5, 4, 0, -1):
                with pytest.raises(ValueError, match="seq must increase"):
                    store.append_wal({"seq": bad, "kind": "publish"})
            store.append_wal({"seq": 6, "kind": "publish", "at_s": 2.0})

    def test_seq_must_be_int(self, factory):
        with factory() as store:
            for bad in (None, "7", 7.0, True):
                with pytest.raises(ValueError, match="integer 'seq'"):
                    store.append_wal({"seq": bad, "kind": "publish"})

    def test_snapshot_latest_wins(self, factory):
        with factory() as store:
            assert store.latest_snapshot() is None
            store.write_snapshot(10, {"v": 1, "n": 10})
            store.write_snapshot(25, {"v": 1, "n": 25})
            assert store.latest_snapshot() == (25, {"v": 1, "n": 25})

    def test_metadata_roundtrip(self, factory):
        with factory() as store:
            store.set_meta("campaign", "fingerprint-1")
            store.set_meta("campaign", "fingerprint-2")
            store.set_meta("other", "x")
            assert store.get_meta("campaign") == "fingerprint-2"
            assert store.get_meta("other") == "x"
            assert store.get_meta("missing") is None

    def test_float_payloads_roundtrip_exactly(self, factory):
        values = [0.1 + 0.2, 1e-17, 123456.789012345, -0.0]
        with factory() as store:
            store.append_wal({"seq": 1, "kind": "publish", "vals": values})
            (back,) = store.wal_records()
        assert back["vals"] == values
        assert [repr(v) for v in back["vals"]] == [repr(v) for v in values]

    def test_survives_reopen(self, factory):
        with factory() as store:
            persistent = store.persistent
            store.append_wal({"seq": 1, "kind": "trip", "trip": {}})
            store.append_wal({"seq": 2, "kind": "publish", "at_s": 60.0})
            store.write_snapshot(1, {"v": 1, "watermark": 1})
            store.set_meta("campaign", "fp")
        if not persistent:
            pytest.skip("memory backend does not persist across close")
        with factory() as store:
            assert store.last_seq() == 2
            assert len(list(store.wal_records())) == 2
            assert store.latest_snapshot() == (1, {"v": 1, "watermark": 1})
            assert store.get_meta("campaign") == "fp"
            # and the log keeps accepting appends where it left off
            store.append_wal({"seq": 3, "kind": "publish", "at_s": 120.0})
            assert store.last_seq() == 3

    def test_close_is_idempotent(self, factory):
        store = factory()
        store.append_wal({"seq": 1, "kind": "publish", "at_s": 0.5})
        store.sync()
        store.close()
        store.close()

    def test_observability_binding(self, factory):
        registry = MetricsRegistry()
        with factory() as store:
            assert store.bind_observability(registry=registry) is store
            store.append_wal({"seq": 1, "kind": "trip", "trip": {}})
            store.write_snapshot(1, {"v": 1})
        metrics = registry.as_dict()
        assert metrics["counters"]["store_wal_appends_total"] == 1
        assert metrics["counters"]["store_wal_bytes_total"] > 0
        assert metrics["counters"]["store_snapshots_total"] == 1
        assert metrics["histograms"]["store_wal_append_seconds"]["count"] == 1


class TestAppendLogTailRecovery:
    """Crash damage lands on the tail; reopening must cut exactly it."""

    def _seed_log(self, tmp_path, n=3):
        path = str(tmp_path / "state")
        with AppendLogStateStore(path) as store:
            for seq in range(1, n + 1):
                store.append_wal({"seq": seq, "kind": "publish", "at_s": seq})
        return path

    def test_clean_log_reports_no_truncation(self, tmp_path):
        path = self._seed_log(tmp_path)
        with AppendLogStateStore(path) as store:
            assert store.recovered_truncated_bytes == 0
            assert store.last_seq() == 3

    def test_torn_header_truncated(self, tmp_path):
        path = self._seed_log(tmp_path)
        wal = tmp_path / "state" / "wal.log"
        wal.write_bytes(wal.read_bytes() + b"\x09\x00")  # half a header
        with AppendLogStateStore(path) as store:
            assert store.recovered_truncated_bytes == 2
            assert store.last_seq() == 3
            assert len(list(store.wal_records())) == 3

    def test_torn_payload_truncated(self, tmp_path):
        path = self._seed_log(tmp_path)
        wal = tmp_path / "state" / "wal.log"
        # A full header promising 100 payload bytes, then the crash.
        torn = _FRAME.pack(4, 100, 0) + b"{\"seq\":4"
        wal.write_bytes(wal.read_bytes() + torn)
        with AppendLogStateStore(path) as store:
            assert store.recovered_truncated_bytes == len(torn)
            assert store.last_seq() == 3

    def test_corrupt_crc_truncated(self, tmp_path):
        path = self._seed_log(tmp_path)
        wal = tmp_path / "state" / "wal.log"
        data = bytearray(wal.read_bytes())
        data[-1] ^= 0xFF  # flip one payload byte of the last record
        wal.write_bytes(bytes(data))
        with AppendLogStateStore(path) as store:
            assert store.recovered_truncated_bytes > 0
            assert store.last_seq() == 2
            assert len(list(store.wal_records())) == 2

    def test_non_monotone_garbage_frame_truncated(self, tmp_path):
        path = self._seed_log(tmp_path)
        wal = tmp_path / "state" / "wal.log"
        import zlib

        payload = b'{"kind":"publish","seq":2}'
        frame = _FRAME.pack(2, len(payload), zlib.crc32(payload))
        wal.write_bytes(wal.read_bytes() + frame + payload)
        with AppendLogStateStore(path) as store:
            assert store.recovered_truncated_bytes == len(frame) + len(payload)
            assert store.last_seq() == 3

    def test_append_continues_after_truncation(self, tmp_path):
        path = self._seed_log(tmp_path)
        wal = tmp_path / "state" / "wal.log"
        wal.write_bytes(wal.read_bytes() + b"garbage-tail")
        with AppendLogStateStore(path) as store:
            store.append_wal({"seq": 4, "kind": "publish", "at_s": 4.0})
        with AppendLogStateStore(path) as store:
            assert store.recovered_truncated_bytes == 0
            assert [r["seq"] for r in store.wal_records()] == [1, 2, 3, 4]

    def test_unreadable_snapshot_falls_back_to_wal(self, tmp_path):
        path = self._seed_log(tmp_path)
        snap = tmp_path / "state" / "snapshot.json"
        snap.write_text("{not json", encoding="utf-8")
        with AppendLogStateStore(path) as store:
            assert store.latest_snapshot() is None
            assert store.last_seq() == 3


class TestOpenStore:
    def test_memory_sentinel(self):
        assert open_store(":memory:").backend == "memory"

    def test_sqlite_by_suffix(self, tmp_path):
        for suffix in (".db", ".sqlite", ".sqlite3"):
            with open_store(str(tmp_path / f"s{suffix}")) as store:
                assert store.backend == "sqlite"

    def test_appendlog_default(self, tmp_path):
        with open_store(str(tmp_path / "campaign-state")) as store:
            assert store.backend == "appendlog"

    def test_existing_directory_is_appendlog(self, tmp_path):
        # Even a sqlite-ish name: a directory can only be the log layout.
        root = tmp_path / "weird.db"
        root.mkdir()
        with open_store(str(root)) as store:
            assert store.backend == "appendlog"

    def test_backend_override_wins(self, tmp_path):
        with open_store(str(tmp_path / "x.db"), backend="appendlog") as store:
            assert store.backend == "appendlog"

    def test_unknown_backend_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="unknown store backend"):
            open_store(str(tmp_path / "x"), backend="postgres")

    def test_bad_fsync_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="unknown fsync policy"):
            open_store(str(tmp_path / "x"), fsync="sometimes")

    @pytest.mark.parametrize("policy", FSYNC_POLICIES)
    @pytest.mark.parametrize("backend", ["sqlite", "appendlog"])
    def test_fsync_policies_accepted(self, tmp_path, backend, policy):
        suffix = ".db" if backend == "sqlite" else ""
        path = str(tmp_path / f"s-{policy}{suffix}")
        with open_store(path, backend=backend, fsync=policy) as store:
            store.append_wal({"seq": 1, "kind": "publish", "at_s": 1.0})
            store.sync()
            assert store.last_seq() == 1


class TestNullStore:
    def test_everything_is_a_noop(self):
        assert isinstance(NULL_STORE, NullStateStore)
        assert NULL_STORE.persistent is False
        NULL_STORE.append_wal({"seq": 1})
        NULL_STORE.write_snapshot(1, {"v": 1})
        NULL_STORE.set_meta("k", "v")
        assert NULL_STORE.last_seq() == 0
        assert list(NULL_STORE.wal_records()) == []
        assert NULL_STORE.latest_snapshot() is None
        assert NULL_STORE.get_meta("k") is None
        NULL_STORE.sync()
        NULL_STORE.close()
