"""Tests for GTFS-like feed export/import."""

import os

import pytest

from repro.city.geometry import Point
from repro.city.gtfs import (
    FeedTrip,
    export_city,
    import_feed,
    planar_to_wgs84,
    wgs84_to_planar,
)


class TestCoordinateConversion:
    def test_round_trip(self):
        point = Point(1234.5, 678.9)
        lat, lon = planar_to_wgs84(point)
        back = wgs84_to_planar(lat, lon)
        assert back.x == pytest.approx(point.x, abs=0.01)
        assert back.y == pytest.approx(point.y, abs=0.01)

    def test_anchor_maps_to_origin(self):
        assert wgs84_to_planar(*planar_to_wgs84(Point(0, 0))).x == pytest.approx(0.0)

    def test_north_increases_latitude(self):
        lat0, _ = planar_to_wgs84(Point(0, 0))
        lat1, _ = planar_to_wgs84(Point(0, 1000))
        assert lat1 > lat0


class TestExportImport:
    @pytest.fixture()
    def feed_dir(self, small_city, tmp_path):
        directory = str(tmp_path / "feed")
        trip = FeedTrip(
            trip_id="t1",
            route_id="179-0",
            stop_ids=tuple(
                rs.stop_id for rs in small_city.route_network.route("179-0").stops[:4]
            ),
            arrival_s=(28800.0, 28920.0, 29040.0, 29160.0),
        )
        export_city(small_city, directory, trips=[trip])
        return directory

    def test_files_written(self, feed_dir):
        for name in ("agency.txt", "stops.txt", "routes.txt", "trips.txt",
                     "stop_times.txt", "route_stops.txt"):
            assert os.path.exists(os.path.join(feed_dir, name)), name

    def test_import_stops(self, small_city, feed_dir):
        feed = import_feed(feed_dir)
        assert len(feed.stops) == 2 * len(small_city.registry.stations)

    def test_import_route_sequences(self, small_city, feed_dir):
        feed = import_feed(feed_dir)
        route = small_city.route_network.route("179-0")
        assert feed.route_stop_sequences["179-0"] == [rs.stop_id for rs in route.stops]

    def test_import_trip(self, feed_dir):
        feed = import_feed(feed_dir)
        assert len(feed.trips) == 1
        trip = feed.trips[0]
        assert trip.route_id == "179-0"
        assert trip.arrival_s[0] == pytest.approx(28800.0)
        assert list(trip.arrival_s) == sorted(trip.arrival_s)

    def test_station_of(self, small_city, feed_dir):
        feed = import_feed(feed_dir)
        station = small_city.registry.stations[0]
        platform = station.stops[0]
        assert feed.station_of(platform.stop_id) == f"ST{station.station_id:04d}"

    def test_positions_survive_round_trip(self, small_city, feed_dir):
        feed = import_feed(feed_dir)
        platform = small_city.registry.stations[0].stops[0]
        imported = feed.stops[platform.stop_id]
        assert imported.position.distance_to(platform.position) < 1.0

    def test_validate_rejects_unknown_stop(self, feed_dir):
        feed = import_feed(feed_dir)
        feed.route_stop_sequences["bogus"] = ["NOPE", "NOPE2"]
        with pytest.raises(ValueError):
            feed.validate()

    def test_validate_rejects_non_monotonic_times(self, feed_dir):
        feed = import_feed(feed_dir)
        trip = feed.trips[0]
        feed.trips[0] = FeedTrip(
            trip.trip_id, trip.route_id, trip.stop_ids,
            tuple(reversed(trip.arrival_s)),
        )
        with pytest.raises(ValueError):
            feed.validate()
