"""Tests for publishing simulated traces as GTFS trips."""

import itertools

import numpy as np
import pytest

from repro.city.gtfs import export_city, import_feed, trips_from_traces
from repro.sim.bus import simulate_bus_trip
from repro.util.units import parse_hhmm


@pytest.fixture()
def traces(small_city, traffic):
    route = small_city.route_network.route("179-0")
    rng = np.random.default_rng(61)
    counter = itertools.count()
    return [
        simulate_bus_trip(route, parse_hhmm("08:00") + 900.0 * k, traffic,
                          counter, rng=rng)
        for k in range(3)
    ]


class TestTripsFromTraces:
    def test_one_feed_trip_per_trace(self, traces):
        feed_trips = trips_from_traces(traces)
        assert len(feed_trips) == 3

    def test_served_stops_only(self, traces):
        feed_trips = trips_from_traces(traces)
        for trace, trip in zip(traces, feed_trips):
            served = [v for v in trace.visits if v.served]
            assert len(trip.stop_ids) == len(served)

    def test_times_monotone(self, traces):
        for trip in trips_from_traces(traces):
            assert list(trip.arrival_s) == sorted(trip.arrival_s)

    def test_round_trip_through_feed(self, small_city, traces, tmp_path):
        directory = str(tmp_path / "feed")
        export_city(small_city, directory, trips=trips_from_traces(traces))
        feed = import_feed(directory)
        assert len(feed.trips) == 3
        for trip in feed.trips:
            assert trip.route_id == "179-0"

    def test_degenerate_trace_skipped(self, traces):
        from repro.sim.bus import BusTripTrace

        empty = BusTripTrace(trip_id="x@1", route_id="179-0", dispatch_s=0.0)
        assert trips_from_traces([empty]) == []
