"""Tests for the discrete-event simulation engine."""

import pytest

from repro.sim.events import Simulator


class TestScheduling:
    def test_runs_in_time_order(self):
        sim = Simulator()
        log = []
        sim.schedule(5.0, lambda s: log.append("b"))
        sim.schedule(1.0, lambda s: log.append("a"))
        sim.schedule(9.0, lambda s: log.append("c"))
        sim.run()
        assert log == ["a", "b", "c"]

    def test_ties_fire_in_schedule_order(self):
        sim = Simulator()
        log = []
        for tag in "xyz":
            sim.schedule(2.0, lambda s, t=tag: log.append(t))
        sim.run()
        assert log == ["x", "y", "z"]

    def test_clock_advances(self):
        sim = Simulator()
        seen = []
        sim.schedule(3.5, lambda s: seen.append(s.now))
        sim.run()
        assert seen == [3.5]
        assert sim.now == 3.5

    def test_scheduling_in_past_rejected(self):
        sim = Simulator(start_time=10.0)
        with pytest.raises(ValueError):
            sim.schedule(5.0, lambda s: None)

    def test_schedule_in(self):
        sim = Simulator(start_time=10.0)
        fired = []
        sim.schedule_in(2.5, lambda s: fired.append(s.now))
        sim.run()
        assert fired == [12.5]

    def test_schedule_in_negative_rejected(self):
        with pytest.raises(ValueError):
            Simulator().schedule_in(-1.0, lambda s: None)

    def test_events_may_schedule_events(self):
        sim = Simulator()
        log = []

        def chain(s):
            log.append(s.now)
            if s.now < 3:
                s.schedule_in(1.0, chain)

        sim.schedule(0.0, chain)
        sim.run()
        assert log == [0.0, 1.0, 2.0, 3.0]


class TestRunUntil:
    def test_stops_before_later_events(self):
        sim = Simulator()
        log = []
        sim.schedule(1.0, lambda s: log.append(1))
        sim.schedule(5.0, lambda s: log.append(5))
        sim.run(until=3.0)
        assert log == [1]
        assert sim.now == 3.0
        assert sim.pending == 1

    def test_resume_after_until(self):
        sim = Simulator()
        log = []
        sim.schedule(1.0, lambda s: log.append(1))
        sim.schedule(5.0, lambda s: log.append(5))
        sim.run(until=3.0)
        sim.run()
        assert log == [1, 5]


class TestPeriodic:
    def test_fires_until_bound(self):
        sim = Simulator()
        log = []
        sim.schedule_every(10.0, lambda s: log.append(s.now), first_at=10.0, until=45.0)
        sim.run()
        assert log == [10.0, 20.0, 30.0, 40.0]

    def test_rejects_nonpositive_period(self):
        with pytest.raises(ValueError):
            Simulator().schedule_every(0.0, lambda s: None)

    def test_unbounded_runs_until_horizon(self):
        sim = Simulator()
        log = []
        sim.schedule_every(1.0, lambda s: log.append(s.now), first_at=0.0)
        sim.run(until=4.5)
        assert log == [0.0, 1.0, 2.0, 3.0, 4.0]


class TestStep:
    def test_step_processes_one(self):
        sim = Simulator()
        log = []
        sim.schedule(1.0, lambda s: log.append("a"))
        sim.schedule(2.0, lambda s: log.append("b"))
        assert sim.step()
        assert log == ["a"]
        assert sim.step()
        assert not sim.step()

    def test_processed_counter(self):
        sim = Simulator()
        sim.schedule(1.0, lambda s: None)
        sim.schedule(2.0, lambda s: None)
        sim.run()
        assert sim.processed == 2
