"""Tests for the conformance testkit: oracles, golden traces, referee.

The testkit referees every future rewrite of the `core/` estimators, so
it gets its own tests: the oracles must be right about the spec, the
trace machinery must be canonical, and the differential runner must
actually fail when an implementation diverges.
"""

import json

import numpy as np
import pytest

from repro.config import ClusteringConfig, MatchingConfig
from repro.core import BackendServer
from repro.core.clustering import (
    MatchedSample,
    SampleCluster,
    cluster_trip_samples,
)
from repro.core.matching import MatchResult, SampleMatcher, smith_waterman
from repro.core.trip_mapping import DROP_EPSILON, map_trip
from repro.phone.cellular import CellularSample
from repro.phone.trip_recorder import TripUpload
from repro.testkit import (
    OracleMatcher,
    diff_traces,
    load_trace,
    oracle_cluster_trip_samples,
    oracle_map_variants,
    oracle_smith_waterman,
    render_trace,
    run_differential,
    write_trace,
)
from repro.testkit.conformance import check_golden, record_golden
from repro.testkit.golden import _norm, default_trace_path, trace_from_run
from repro.testkit.scenarios import (
    TableConstraint,
    build_golden_city,
    random_clustering_scenario,
    random_mapping_scenario,
    random_matching_scenario,
    run_golden,
)


def _matched(time_s: float, station: int, score: float) -> MatchedSample:
    return MatchedSample(
        sample=CellularSample(time_s=time_s, tower_ids=(1, 2)),
        match=MatchResult(station_id=station, score=score, common_ids=2),
    )


class TestOracleSmithWaterman:
    def test_table_i_worked_example(self):
        assert round(
            oracle_smith_waterman([1, 2, 3, 4, 5], [1, 7, 3, 5]), 1
        ) == 2.4

    def test_empty_sequences_score_zero(self):
        assert oracle_smith_waterman([], [1, 2]) == 0.0
        assert oracle_smith_waterman([1, 2], []) == 0.0

    def test_exactly_matches_optimized_on_random_pairs(self):
        rng = np.random.default_rng(11)
        config = MatchingConfig()
        for _ in range(50):
            a = [int(x) for x in rng.integers(-5, 15, size=rng.integers(0, 9))]
            b = [int(x) for x in rng.integers(-5, 15, size=rng.integers(0, 9))]
            assert oracle_smith_waterman(a, b, config) == smith_waterman(
                a, b, config
            )


class TestOracleMatcher:
    def test_common_id_tiebreak_prefers_more_shared_towers(self):
        # Both stops align [1, 2, 3] perfectly (score 3), but stop 9
        # shares one more id with the sample overall.
        fingerprints = {5: (1, 2, 3, 8), 9: (1, 2, 3, 4)}
        oracle = OracleMatcher(fingerprints)
        result = oracle.match((1, 2, 3, 4))
        assert result.station_id == 9
        assert result.common_ids == 4

    def test_full_tie_breaks_to_smaller_station_id(self):
        fingerprints = {7: (1, 2, 3), 3: (1, 2, 3)}
        assert OracleMatcher(fingerprints).match((1, 2, 3)).station_id == 3

    def test_below_gamma_is_rejected(self):
        oracle = OracleMatcher({4: (1, 2, 3, 4, 5)})
        result = oracle.match((1,))             # best score 1 < gamma=2
        assert result.station_id is None
        assert not result.accepted


class TestOracleClustering:
    def test_newest_cluster_wins_ties_like_optimized(self):
        # Two singleton clusters equidistant in time from a third sample
        # that matches neither station: pure time-term tie. Optimized
        # path resolves to the newest cluster; the oracle must agree.
        config = ClusteringConfig()
        samples = [
            _matched(0.0, 1, 5.0),
            _matched(20.0, 2, 5.0),
            _matched(10.0, 3, 5.0),
        ]
        optimized = cluster_trip_samples(samples, config)
        oracle = oracle_cluster_trip_samples(samples, config)
        assert [c.samples for c in optimized] == oracle

    def test_no_staleness_prune_in_oracle(self):
        # A sample far beyond 2*t0 of everything must open a new cluster
        # in both implementations (prune or no prune).
        config = ClusteringConfig()
        samples = [_matched(0.0, 1, 5.0), _matched(500.0, 1, 5.0)]
        optimized = cluster_trip_samples(samples, config)
        oracle = oracle_cluster_trip_samples(samples, config)
        assert len(optimized) == len(oracle) == 2
        assert [c.samples for c in optimized] == oracle


class TestOracleMapping:
    def test_reports_every_optimal_variant(self):
        # Two stations with identical weights and a symmetric R table:
        # both single-cluster choices are optimal.
        cluster = SampleCluster(
            samples=[_matched(0.0, 1, 4.0), _matched(1.0, 2, 4.0)]
        )
        constraint = TableConstraint({})
        outcome = oracle_map_variants([cluster], constraint)
        assert outcome is not None
        score, variants = outcome
        assert score == pytest.approx(2.0)      # p=0.5 * s=4.0
        assert len(variants) == 2
        assert {v[0].station_id for v in variants} == {1, 2}

    def test_drop_rule_matches_map_trip(self):
        # Second cluster's only candidate is unreachable (R=0): the
        # optimized mapper drops it; the oracle's variants must agree.
        first = SampleCluster(samples=[_matched(0.0, 1, 5.0)])
        second = SampleCluster(samples=[_matched(60.0, 2, 5.0)])
        constraint = TableConstraint({(1, 1): 0.5, (2, 2): 0.5})
        mapped = map_trip([first, second], constraint)
        outcome = oracle_map_variants([first, second], constraint)
        assert outcome is not None
        score, variants = outcome
        assert mapped is not None
        assert mapped.score == score
        assert mapped.stops in variants
        assert [s.station_id for s in mapped.stops] == [1]

    def test_unmappable_when_no_candidates(self):
        empty = SampleCluster(
            samples=[
                MatchedSample(
                    sample=CellularSample(time_s=0.0, tower_ids=(9,)),
                    match=MatchResult(station_id=None, score=0.0, common_ids=0),
                )
            ]
        )
        assert oracle_map_variants([empty], TableConstraint({})) is None
        assert map_trip([empty], TableConstraint({})) is None

    def test_drop_epsilon_shared_constant(self):
        assert DROP_EPSILON == 1e-9


class TestScenarioGenerators:
    def test_deterministic_given_seed(self):
        a = random_matching_scenario(np.random.default_rng(5))
        b = random_matching_scenario(np.random.default_rng(5))
        assert a.fingerprints == b.fingerprints
        assert a.samples == b.samples

    def test_clustering_scenarios_cover_staleness_horizon(self):
        # At least one generated scenario must include an inter-sample
        # gap beyond 2*t0, or the no-prune oracle check is vacuous.
        config = ClusteringConfig()
        saw_stale_gap = False
        for seed in range(30):
            scenario = random_clustering_scenario(np.random.default_rng(seed))
            times = sorted(m.time_s for m in scenario.matched)
            if any(
                b - a > 2.0 * config.max_interval_s
                for a, b in zip(times, times[1:])
            ):
                saw_stale_gap = True
                break
        assert saw_stale_gap

    def test_mapping_scenarios_reach_zero_weight_links(self):
        saw_zero = False
        for seed in range(10):
            scenario = random_mapping_scenario(np.random.default_rng(seed))
            if any(w == 0.0 for w in scenario.constraint.table.values()):
                saw_zero = True
                break
        assert saw_zero


class TestDifferentialRunner:
    def test_clean_on_the_real_implementation(self):
        assert run_differential(scenarios=5, seed=1) == []

    def test_catches_a_seeded_divergence(self, monkeypatch):
        # Sabotage the optimized matcher: break the common-id tiebreak.
        import repro.testkit.conformance as conformance

        class BrokenMatcher(SampleMatcher):
            def match(self, tower_ids):
                result = super().match(tower_ids)
                if result.accepted:
                    return MatchResult(
                        station_id=result.station_id,
                        score=result.score,
                        common_ids=result.common_ids + 1,
                    )
                return result

        monkeypatch.setattr(conformance, "SampleMatcher", BrokenMatcher)
        failures = conformance.run_differential(scenarios=5, seed=1)
        assert failures
        assert any("matching" in failure for failure in failures)

    def test_full_scan_mode_also_clean(self):
        assert run_differential(scenarios=5, seed=1, matcher="full") == []

    def test_unknown_matcher_mode_rejected(self):
        with pytest.raises(ValueError):
            run_differential(scenarios=1, matcher="sloppy")

    def test_indexed_and_full_reports_identical(self):
        """Both matcher modes are exact, so the conformance verdict —
        the whole serialized report — must not depend on the mode."""
        from repro.testkit.conformance import run_conformance

        indexed = run_conformance(scenarios=4, check=False, matcher="indexed")
        full = run_conformance(scenarios=4, check=False, matcher="full")
        assert indexed.ok and full.ok
        assert indexed.as_dict() == full.as_dict()


class TestKeepMatchesHook:
    def test_matches_recorded_only_when_asked(self, small_city, database, config):
        server = BackendServer(
            small_city.network, small_city.route_network, database, config
        )
        station = small_city.registry.stations[0]
        fingerprint = database.fingerprint(station.station_id)
        samples = tuple(
            CellularSample(time_s=10.0 * k, tower_ids=tuple(fingerprint))
            for k in range(3)
        )
        silent = server.receive_trip(TripUpload("plain", samples))
        assert silent.matches is None
        recorded = server.receive_trip(
            TripUpload("observed", samples), keep_matches=True
        )
        assert recorded.matches is not None
        assert len(recorded.matches) == len(samples)
        assert all(isinstance(m, MatchResult) for m in recorded.matches)
        # The hook is pure observation: identical pipeline outcome.
        assert recorded.accepted_samples == silent.accepted_samples
        assert recorded.discarded_samples == silent.discarded_samples


class TestGoldenTraceMachinery:
    def test_norm_collapses_negative_zero_and_rounds(self):
        assert _norm(-0.0) == 0.0
        assert str(_norm(-0.0)) == "0.0"
        assert _norm(0.1234567894) == 0.123456789

    def test_render_is_canonical_and_stable(self, tmp_path):
        trace = {"version": 1, "b": [1.5, {"y": 2, "x": 1}], "a": -0.0}
        text = render_trace(trace)
        assert text.endswith("\n")
        assert text.index('"a"') < text.index('"b"')
        path = tmp_path / "t.json"
        write_trace(trace, path)
        assert render_trace(load_trace(path)) == text

    def test_diff_traces_reports_paths(self):
        base = {"version": 1, "stats": {"trips": 3}, "reports": [{"k": 1.0}]}
        same = json.loads(json.dumps(base))
        assert diff_traces(base, same) == []
        changed = json.loads(json.dumps(base))
        changed["stats"]["trips"] = 4
        changed["reports"][0]["k"] = 2.0
        diff = diff_traces(base, changed)
        assert any("stats.trips" in line for line in diff)
        assert any("reports[0].k" in line for line in diff)

    def test_version_mismatch_is_terminal(self):
        diff = diff_traces({"version": 1}, {"version": 2})
        assert len(diff) == 1
        assert "schema mismatch" in diff[0]

    def test_missing_fixture_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="--record"):
            check_golden(tmp_path / "nope.json", worker_counts=(1,))


class TestGoldenEndToEnd:
    def test_committed_fixture_matches_serial_run(self):
        """The committed golden trace must replay byte-for-byte (serial)."""
        results = check_golden(worker_counts=(1,))
        assert results == {1: []}

    def test_fixture_is_canonically_rendered(self):
        path = default_trace_path()
        trace = load_trace(path)
        assert render_trace(trace) == path.read_text(encoding="utf-8")

    @pytest.mark.slow
    def test_parallel_runs_byte_identical(self):
        results = check_golden(worker_counts=(2, 4))
        assert results == {2: [], 4: []}

    @pytest.mark.slow
    def test_record_golden_round_trips(self, tmp_path):
        city = build_golden_city()
        trace = trace_from_run(run_golden(workers=1, city=city))
        fixture = tmp_path / "golden.json"
        path, failures = record_golden(fixture, worker_counts=(1,))
        assert failures == []
        assert render_trace(load_trace(path)) == render_trace(trace)
