"""Tests for the zero-copy shared fingerprint store and its satellites.

Covers the shared-memory ingest plumbing end to end: the flat-array
fingerprint encoding, the anti-diagonal vectorized Smith-Waterman
kernel (differential parity against the scalar reference, hypothesis
included), the columnar shard codec, shared-memory segment lifecycle
(shutdown and simulated worker crash), memo pre-warming, and the
worker-gauge quarantine in ``merge_dict``.
"""

import itertools
import os
import pickle
import signal

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import MatchingConfig, SystemConfig
from repro.core import BackendServer, IngestEngine
from repro.core.match_index import CachedMatch, MatchCache, MatchIndex
from repro.core.matching import (
    MatchResult,
    SampleMatcher,
    batch_smith_waterman,
    smith_waterman,
)
from repro.core.shared_store import (
    SHARD_MAGIC,
    FingerprintArrays,
    SharedFingerprintStore,
    active_segments,
    decode_shard,
    encode_shard,
)
from repro.obs import MetricsRegistry
from repro.phone import record_participant_trips
from repro.phone.cellular import CellularSample
from repro.phone.trip_recorder import TripUpload
from repro.sim.bus import simulate_bus_trip
from repro.util.units import parse_hhmm

FINGERPRINTS = {
    11: (1, 2, 3),
    12: (2, 3, 4, 5),
    13: (7, 8),
    14: (-3, 1, 9),          # negative ids exercise the sentinel rule
    15: (6,),
}


@pytest.fixture(scope="module")
def batch(small_city, traffic, sampler, config):
    """Uploads from two bus routes: a real multi-trip ingest batch."""
    rider_ids = itertools.count()
    uploads = []
    for k, route_id in enumerate(("179-0", "199-0")):
        route = small_city.route_network.route(route_id)
        trace = simulate_bus_trip(
            route, parse_hhmm("08:10") + 120.0 * k, traffic, rider_ids,
            rng=np.random.default_rng(21 + k),
        )
        uploads.extend(record_participant_trips(
            trace, small_city.registry, sampler, config,
            rng=np.random.default_rng(31 + k),
        ))
    assert len(uploads) >= 4
    return uploads


def make_server(small_city, database, config, registry=None):
    return BackendServer(
        small_city.network, small_city.route_network, database, config,
        registry=registry,
    )


# -- vectorized kernel: differential parity vs the scalar reference ----------


signed_seq = st.lists(
    st.integers(min_value=-40, max_value=40), min_size=0, max_size=9
)


class TestVectorizedParity:
    @pytest.mark.property
    @settings(deadline=None)
    @given(
        st.lists(st.tuples(signed_seq, signed_seq), min_size=0, max_size=8)
    )
    def test_batch_matches_scalar_exactly(self, pairs):
        """Bit-exact equality, not approx: same elementwise float ops."""
        cfg = MatchingConfig()
        uploads = [p[0] for p in pairs]
        databases = [p[1] for p in pairs]
        got = batch_smith_waterman(uploads, databases, cfg)
        want = [smith_waterman(u, d, cfg) for u, d in pairs]
        assert list(got) == want

    def test_empty_sequences_and_all_padding_rows(self):
        # One long pair forces heavy padding on every other row; empty
        # rows become all-padding rows inside the padded matrices.
        uploads = [[], [5], list(range(1, 10)), []]
        databases = [[1, 2], [], list(range(1, 12)), []]
        got = batch_smith_waterman(uploads, databases)
        want = [smith_waterman(u, d) for u, d in zip(uploads, databases)]
        assert list(got) == want

    def test_sentinel_collision_ids(self):
        # Ids one and two below the batch minimum — exactly where the
        # padding sentinels are derived — must still score correctly.
        uploads = [[-2, -1, 0], [-2, -1, 0]]
        databases = [[-2, -1, 0], [-4, -3]]
        got = batch_smith_waterman(uploads, databases)
        assert got[0] == smith_waterman(uploads[0], databases[0])
        assert got[1] == smith_waterman(uploads[1], databases[1])

    def test_matcher_pending_path_matches_per_sample(self):
        """match_many's array-gather scoring equals one-by-one match."""
        cfg = MatchingConfig(cache_size=0)
        batch_m = SampleMatcher(FINGERPRINTS, cfg)
        serial_m = SampleMatcher(FINGERPRINTS, cfg)
        samples = [
            (1, 2, 3), (5, 4, 3), (-3, 9), (8, 7), (42,), (), (6,),
            (1, 2, 3),                       # within-batch repeat
        ]
        got = batch_m.match_many(samples)
        want = [serial_m.match(s) for s in samples]
        assert got == want


# -- FingerprintArrays --------------------------------------------------------


class TestFingerprintArrays:
    def test_round_trips_the_database(self):
        arrays = FingerprintArrays.from_dict(FINGERPRINTS)
        assert arrays.as_dict() == FINGERPRINTS
        assert len(arrays) == len(FINGERPRINTS)
        assert arrays.min_id == -3
        assert arrays.ref_pad == -5

    def test_ref_pad_survives_full_width_first_row(self):
        # The longest fingerprint sorts first: its row has no padding,
        # so the sentinel must not be inferred from matrix contents.
        arrays = FingerprintArrays.from_dict({1: (5, 6, 7, 8), 2: (5,)})
        assert arrays.ref_pad == 3
        assert arrays.as_dict() == {1: (5, 6, 7, 8), 2: (5,)}

    def test_candidates_agree_with_dict_index(self):
        arrays = FingerprintArrays.from_dict(FINGERPRINTS)
        dict_index = MatchIndex(FINGERPRINTS)
        array_index = MatchIndex.from_arrays(arrays)
        probes = [(1,), (2, 3), (9, -3), (99,), (), (6, 7, 1)]
        for probe in probes:
            assert array_index.candidates(probe) == dict_index.candidates(
                probe
            ), probe
        for tower in (1, 2, 6, 7, 99):
            assert array_index.stations_for(tower) == dict_index.stations_for(
                tower
            )
        assert array_index.tower_count == dict_index.tower_count

    def test_store_backed_matcher_equals_dict_matcher(self):
        store = SharedFingerprintStore.create(FINGERPRINTS)
        try:
            shared = SampleMatcher(store=store)
            plain = SampleMatcher(FINGERPRINTS)
            for probe in [(1, 2, 3), (4, 5), (9,), (), (7, 8, 6)]:
                assert shared.match(probe) == plain.match(probe)
        finally:
            store.unlink()


# -- columnar shard codec -----------------------------------------------------


class TestShardCodec:
    def _shard(self):
        return [
            TripUpload(
                trip_key="rider-1#0",
                samples=(
                    CellularSample(1.5, (3, 1, 2), (-51.0, -60.5, -70.25)),
                    CellularSample(2.5, (3, 1, 2), (-50.0, -61.0, -71.0)),
                    CellularSample(9.0, (-4, 8), (-55.0, -58.0)),
                ),
            ),
            TripUpload(trip_key="rider-2#1", samples=()),
            TripUpload(
                trip_key="rider-3#0",
                samples=(CellularSample(0.123456789, (7,)),),
            ),
        ]

    def test_round_trip_is_exact_minus_rss(self):
        blob = encode_shard(self._shard(), keep_matches=True)
        assert blob.startswith(SHARD_MAGIC)
        decoded, keep_matches = decode_shard(blob)
        assert keep_matches is True
        for got, want in zip(decoded, self._shard()):
            assert got.trip_key == want.trip_key
            assert len(got.samples) == len(want.samples)
            for g, w in zip(got.samples, want.samples):
                assert g.time_s == w.time_s          # float64 bit pattern
                assert g.tower_ids == w.tower_ids
                assert g.rss_dbm == ()               # stripped on the wire

    def test_keep_matches_false_round_trips(self):
        _, keep_matches = decode_shard(
            encode_shard(self._shard(), keep_matches=False)
        )
        assert keep_matches is False

    def test_rejects_foreign_blob(self):
        with pytest.raises(ValueError):
            decode_shard(pickle.dumps(("not", "a", "shard")))

    def test_beats_pickle_on_real_uploads(self, batch):
        # This fixture is only a handful of trips, so the dictionary and
        # deflate window barely warm up; even so the codec must win big.
        # Full-size shards (the bench's ~140-trip ones) clear 10×.
        pickled = len(pickle.dumps((list(batch), False),
                                   pickle.HIGHEST_PROTOCOL))
        columnar = len(encode_shard(batch, False))
        assert pickled >= 8 * columnar, (pickled, columnar)


# -- shared-memory lifecycle --------------------------------------------------


class TestSharedMemoryLifecycle:
    def test_create_attach_close_unlink(self):
        store = SharedFingerprintStore.create(FINGERPRINTS, aux=b"hello")
        name = store.name
        assert name in active_segments()
        attached = SharedFingerprintStore.attach(store.meta)
        assert attached.as_dict() == FINGERPRINTS
        assert attached.aux_bytes == b"hello"
        with pytest.raises((ValueError, TypeError)):
            attached.arrays.matrix[0, 0] = 0         # read-only views
        attached.close()
        assert name in active_segments()             # owner still holds it
        store.unlink()
        assert name not in active_segments()
        store.unlink()                               # idempotent

    def test_engine_shutdown_unlinks_segment(
        self, small_city, database, config, batch
    ):
        server = make_server(small_city, database, config)
        with IngestEngine.for_server(server, workers=2) as engine:
            engine.prepare(batch)
            assert engine.mode == "shm"
            assert len(active_segments()) == 1
        assert active_segments() == []

    def test_worker_crash_still_unlinks_segment(
        self, small_city, database, config, batch
    ):
        """SIGKILLed workers must not leave /dev/shm segments behind.

        Workers attach untracked and never own the segment, so killing
        them mid-pool leaves nothing dangling; the engine's close() is
        the single cleanup point and must unlink even after the crash.
        (The pool itself may transparently respawn workers — the
        contract under test is segment lifecycle, not task recovery.)
        """
        server = make_server(small_city, database, config)
        engine = IngestEngine.for_server(server, workers=2)
        try:
            engine.start()
            assert len(active_segments()) == 1
            for proc in list(engine._pool._pool):
                os.kill(proc.pid, signal.SIGKILL)
        finally:
            engine.close()
        assert active_segments() == []

    def test_legacy_mode_creates_no_segment(
        self, small_city, database, config, batch
    ):
        server = make_server(small_city, database, config)
        with IngestEngine.for_server(
            server, workers=2, shared_store=False
        ) as engine:
            engine.prepare(batch)
            assert engine.mode == "legacy"
            assert active_segments() == []


# -- memo pre-warm protocol ---------------------------------------------------


def _entry(station_id, score=3.0):
    return CachedMatch(
        result=MatchResult(station_id=station_id, score=score, common_ids=3),
        candidates=2,
    )


class TestMemoPrewarm:
    def test_hottest_returns_mru_first(self):
        cache = MatchCache(maxsize=8)
        for key in [(1,), (2,), (3,)]:
            cache.put(key, _entry(key[0]))
        cache.get((1,))                              # refresh (1,)
        hottest = cache.hottest(2)
        assert [k for k, _ in hottest] == [(1,), (3,)]
        assert cache.hottest(0) == []

    def test_preload_preserves_recency_and_bound(self):
        registry = MetricsRegistry()
        cache = MatchCache(maxsize=2, registry=registry)
        cache.preload([((1,), _entry(1)), ((2,), _entry(2)),
                       ((3,), _entry(3))])
        # Hottest-first input, bounded at maxsize, hottest retained.
        assert set(cache.keys()) == {(1,), (2,)}
        assert cache.keys()[-1] == (1,)              # most recent last
        snapshot = registry.as_dict()
        assert snapshot["counters"].get("match_cache_hits_total", 0) == 0
        assert snapshot["counters"].get("match_cache_misses_total", 0) == 0
        assert snapshot["gauges"]["match_cache_entries"] == 2

    def test_preload_noop_when_disabled(self):
        cache = MatchCache(maxsize=0)
        cache.preload([((1,), _entry(1))])
        assert len(cache) == 0

    def test_workers_start_with_coordinator_verdicts(
        self, small_city, database, config, batch
    ):
        """A coordinator-warmed pool serves preloaded keys as cache hits."""
        registry = MetricsRegistry()
        server = make_server(small_city, database, config, registry=registry)
        # Warm the coordinator memo the way real traffic would.
        for upload in batch:
            server.matcher.match_many(
                [s.tower_ids for s in upload.samples]
            )
        assert len(server.matcher.cache) > 0
        before = registry.as_dict()["counters"]
        hits_before = before.get("match_cache_hits_total", 0)
        misses_before = before.get("match_cache_misses_total", 0)
        with IngestEngine.for_server(server, workers=2) as engine:
            engine.prepare(batch)
        after = registry.as_dict()["counters"]
        # Every worker lookup is of a sequence the coordinator already
        # settled, so the pre-warmed memos answer all of them: hits
        # accrue, and not a single worker miss merges back.
        assert after["match_cache_hits_total"] > hits_before
        assert after.get("match_cache_misses_total", 0) == misses_before


# -- gauge quarantine / merge semantics (satellite fixes) ---------------------


class TestGaugeMerge:
    def test_merge_dict_skips_prefixed_gauges(self):
        parent = MetricsRegistry()
        parent.gauge("match_cache_entries").set(1000.0)
        parent.gauge("fingerprint_db_stops").set(17.0)
        child = MetricsRegistry()
        child.counter("match_cache_hits_total").inc(3)
        child.gauge("match_cache_entries").set(5.0)
        child.gauge("fingerprint_db_stops").set(17.0)
        child.labeled_gauge("match_worker_depth", ("w",)).labels("a").set(9.0)
        parent.merge_dict(
            child.as_dict(), skip_gauge_prefixes=("match_",)
        )
        snapshot = parent.as_dict()
        assert snapshot["gauges"]["match_cache_entries"] == 1000.0
        assert snapshot["gauges"]["fingerprint_db_stops"] == 17.0
        assert snapshot["counters"]["match_cache_hits_total"] == 3
        assert "match_worker_depth" not in snapshot.get("labeled", {})

    @pytest.mark.parametrize("workers", [2, 4])
    def test_parallel_gauges_match_serial(
        self, small_city, database, config, batch, workers
    ):
        """Regression (satellite): a --workers N run must report the same
        gauge values as serial — worker snapshots must not clobber them."""
        serial_reg = MetricsRegistry()
        serial = make_server(small_city, database, config,
                             registry=serial_reg)
        serial.ingest_many(batch)

        parallel_reg = MetricsRegistry()
        parallel = make_server(small_city, database, config,
                               registry=parallel_reg)
        with IngestEngine.for_server(parallel, workers=workers) as engine:
            parallel.ingest_many(batch, engine=engine)

        serial_gauges = serial_reg.as_dict()["gauges"]
        parallel_gauges = parallel_reg.as_dict()["gauges"]
        for name, value in serial_gauges.items():
            if name.startswith(("ingest_", "match_")):
                # ingest_* exist only with an engine; match_* gauges are
                # worker-local physical levels, checked separately below.
                continue
            assert parallel_gauges.get(name) == value, name
        # The cache-fill gauge is the one the old merge clobbered with
        # whichever worker's shard snapshot landed last.  Quarantined,
        # it must report the parent's *own* level — the parallel
        # coordinator matched nothing itself, so that level is 0, not
        # some worker's shard-local count.
        assert parallel_gauges["match_cache_entries"] == len(
            parallel.matcher.cache
        )
        assert parallel_gauges["match_cache_entries"] == 0.0


# -- pickling / disabled-cache config (satellite fix) -------------------------


class TestMatcherPickleConfig:
    def test_disabled_cache_survives_pickle(self):
        matcher = SampleMatcher(
            FINGERPRINTS, MatchingConfig(cache_size=0, indexed=False)
        )
        clone = pickle.loads(pickle.dumps(matcher))
        assert clone.cache.maxsize == 0
        assert clone.cache.enabled is False
        assert clone.index is None
        clone.match((1, 2, 3))
        assert len(clone.cache) == 0                 # still disabled

    def test_disabled_cache_counters_stay_zero_serial_vs_sharded(
        self, small_city, database, config, batch
    ):
        """With the memo off, no cache counter may drift between modes."""
        cfg = dataclasses_replace_matching(config, cache_size=0)
        names = (
            "match_cache_hits_total", "match_cache_misses_total",
            "match_cache_evictions_total", "match_cache_invalidations_total",
        )
        serial_reg = MetricsRegistry()
        serial = make_server(small_city, database, cfg, registry=serial_reg)
        serial.ingest_many(batch)
        sharded_reg = MetricsRegistry()
        sharded = make_server(small_city, database, cfg,
                              registry=sharded_reg)
        with IngestEngine.for_server(sharded, workers=2) as engine:
            sharded.ingest_many(batch, engine=engine)
        for name in names:
            serial_val = serial_reg.as_dict()["counters"].get(name, 0)
            sharded_val = sharded_reg.as_dict()["counters"].get(name, 0)
            assert serial_val == 0, name
            assert sharded_val == 0, name
        assert sharded_reg.as_dict()["gauges"].get(
            "match_cache_entries", 0
        ) == 0


def dataclasses_replace_matching(config: SystemConfig, **changes):
    import dataclasses

    return dataclasses.replace(
        config, matching=dataclasses.replace(config.matching, **changes)
    )
