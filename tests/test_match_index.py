"""Candidate index and verdict memo: pruning, LRU behavior, invalidation.

Exactness of the pruned/memoized matcher is proven elsewhere (the
differential oracles, the property suite, the golden trace); this file
pins the *mechanics* — what the index returns, how the LRU rotates and
evicts, which metrics move on hits/misses/invalidations, and that each
ingest worker owns a private memo whose physical counters merge back
without disturbing the logical ``matcher_*`` accounting.
"""

import subprocess
import sys
from pathlib import Path

import pytest

from repro.config import MatchingConfig, SystemConfig
from repro.core import BackendServer, IngestEngine, SampleMatcher
from repro.core.match_index import (
    CachedMatch,
    MatchCache,
    MatchIndex,
    canonical_key,
)
from repro.core.matching import MatchResult
from repro.obs.metrics import MetricsRegistry

FINGERPRINTS = {
    1: (10, 11, 12, 13),
    2: (12, 13, 14),
    3: (20, 21, 22),
    4: (-5, -6, 30),            # negative ids are legal index keys
}


def _result(station=1, score=3.0, common=2):
    return MatchResult(station_id=station, score=score, common_ids=common)


class TestCanonicalKey:
    def test_container_and_scalar_type_insensitive(self):
        import numpy as np

        assert canonical_key([3, 1, 2]) == (3, 1, 2)
        assert canonical_key((3, 1, 2)) == canonical_key(
            np.array([3, 1, 2], dtype=np.int64)
        )

    def test_preserves_rss_order(self):
        assert canonical_key([2, 1]) != canonical_key([1, 2])


class TestMatchIndex:
    def test_candidates_are_exactly_overlapping_stations(self):
        index = MatchIndex(FINGERPRINTS)
        assert index.candidates([12]) == {1, 2}
        assert index.candidates([10, 20]) == {1, 3}
        assert index.candidates([-5]) == {4}
        assert index.candidates([99]) == set()
        assert index.candidates([]) == set()

    def test_stations_for_sorted_and_len(self):
        index = MatchIndex(FINGERPRINTS)
        assert index.stations_for(13) == (1, 2)
        assert index.stations_for(404) == ()
        assert len(index) == 4
        assert index.tower_count == len(
            {t for towers in FINGERPRINTS.values() for t in towers}
        )

    def test_empty_database_rejected(self):
        with pytest.raises(ValueError):
            MatchIndex({})

    def test_candidate_and_prune_metrics(self):
        registry = MetricsRegistry()
        index = MatchIndex(FINGERPRINTS, registry=registry)
        index.candidates([12])       # 2 of 4 stations → ratio 0.5
        index.candidates([99])       # 0 of 4 → cumulative ratio 0.75
        snapshot = registry.as_dict()
        assert snapshot["histograms"]["match_index_candidates"]["count"] == 2
        assert snapshot["gauges"]["match_prune_ratio"] == pytest.approx(0.75)


class TestMatchCacheLRU:
    def test_eviction_follows_recency_not_insertion(self):
        cache = MatchCache(2)
        entry = CachedMatch(_result(), candidates=2)
        cache.put((1,), entry)
        cache.put((2,), entry)
        assert cache.get((1,)) is entry      # refresh (1,): now (2,) is LRU
        cache.put((3,), entry)               # evicts (2,)
        assert cache.keys() == ((1,), (3,))
        assert cache.get((2,)) is None

    def test_put_refreshes_existing_key(self):
        cache = MatchCache(2)
        first = CachedMatch(_result(score=1.0), candidates=1)
        second = CachedMatch(_result(score=2.0), candidates=1)
        cache.put((1,), first)
        cache.put((2,), first)
        cache.put((1,), second)              # re-put refreshes, no growth
        assert len(cache) == 2
        assert cache.keys() == ((2,), (1,))
        assert cache.get((1,)) is second

    def test_zero_maxsize_disables_storage_and_miss_metric(self):
        registry = MetricsRegistry()
        cache = MatchCache(0, registry=registry)
        assert not cache.enabled
        cache.put((1,), CachedMatch(_result(), candidates=1))
        assert cache.get((1,)) is None
        assert len(cache) == 0
        counters = registry.as_dict()["counters"]
        assert counters["match_cache_misses_total"] == 0

    def test_negative_maxsize_rejected(self):
        with pytest.raises(ValueError):
            MatchCache(-1)

    def test_hit_miss_eviction_counters(self):
        registry = MetricsRegistry()
        cache = MatchCache(2, registry=registry)
        entry = CachedMatch(_result(), candidates=1)
        assert cache.get((1,)) is None       # miss
        cache.put((1,), entry)
        cache.put((2,), entry)
        assert cache.get((1,)) is entry      # hit
        cache.put((3,), entry)               # evicts (2,)
        snapshot = registry.as_dict()
        counters = snapshot["counters"]
        assert counters["match_cache_misses_total"] == 1
        assert counters["match_cache_hits_total"] == 1
        assert counters["match_cache_evictions_total"] == 1
        assert snapshot["gauges"]["match_cache_entries"] == 2

    def test_invalidate_clears_and_counts(self):
        registry = MetricsRegistry()
        cache = MatchCache(4, registry=registry)
        cache.put((1,), CachedMatch(_result(), candidates=1))
        cache.invalidate()
        assert len(cache) == 0
        snapshot = registry.as_dict()
        assert snapshot["counters"]["match_cache_invalidations_total"] == 1
        assert snapshot["gauges"]["match_cache_entries"] == 0


class TestMatcherCacheIntegration:
    SAMPLE = (10, 11, 12)

    def _matcher(self, registry=None, **overrides):
        config = MatchingConfig(**overrides) if overrides else MatchingConfig()
        return SampleMatcher(FINGERPRINTS, config, registry=registry)

    def test_repeat_match_hits_and_replays_logical_metrics(self):
        registry = MetricsRegistry()
        matcher = self._matcher(registry=registry)
        first = matcher.match(self.SAMPLE)
        second = matcher.match(self.SAMPLE)
        assert second == first
        counters = registry.as_dict()["counters"]
        assert counters["match_cache_hits_total"] == 1
        # Logical accounting is replayed on the hit: both samples count,
        # and both record the full candidate-pool pairs.
        assert counters["matcher_samples_total"] == 2
        assert counters["matcher_pairs_scored"] == 2 * len(
            matcher.candidate_stations(self.SAMPLE)
        )

    def test_match_many_deduplicates_within_batch(self):
        registry = MetricsRegistry()
        matcher = self._matcher(registry=registry)
        results = matcher.match_many([self.SAMPLE, (20, 21), self.SAMPLE])
        assert results[0] == results[2]
        counters = registry.as_dict()["counters"]
        # Two unique sequences computed, the repeat served from the memo;
        # the logical sample count still sees all three.
        assert counters["match_cache_misses_total"] == 2
        assert counters["matcher_samples_total"] == 3

    def test_cache_shared_between_match_and_match_many(self):
        registry = MetricsRegistry()
        matcher = self._matcher(registry=registry)
        matcher.match(self.SAMPLE)
        matcher.match_many([self.SAMPLE])
        counters = registry.as_dict()["counters"]
        assert counters["match_cache_hits_total"] == 1
        assert counters["match_cache_misses_total"] == 1

    def test_rebuild_invalidates_and_swaps_database(self):
        registry = MetricsRegistry()
        matcher = self._matcher(registry=registry)
        stale = matcher.match(self.SAMPLE)
        assert stale.station_id == 1
        # Re-surveyed database: station 9 now owns the sample's cells.
        matcher.rebuild({9: (10, 11, 12), 2: (14, 15, 16)})
        fresh = matcher.match(self.SAMPLE)
        assert fresh.station_id == 9
        counters = registry.as_dict()["counters"]
        assert counters["match_cache_invalidations_total"] == 1
        assert len(matcher.cache) == 1       # only the post-rebuild verdict

    def test_disabled_cache_and_full_scan_still_exact(self):
        plain = self._matcher(indexed=False, cache_size=0)
        tuned = self._matcher()
        for sample in [self.SAMPLE, (99,), (), (-5, 30), (12, 13, 14)]:
            assert tuned.match(sample) == plain.match(sample)
        assert plain.index is None
        assert not plain.cache.enabled

    def test_server_rebuild_fingerprints(self, small_city, database, config):
        server = BackendServer(
            small_city.network, small_city.route_network, database, config,
            registry=MetricsRegistry(),
        )
        sample = database.as_dict()[next(iter(database.as_dict()))]
        server.matcher.match(sample)
        assert len(server.matcher.cache) == 1
        server.rebuild_fingerprints(database)
        counters = server.registry.as_dict()["counters"]
        assert counters["match_cache_invalidations_total"] == 1
        assert len(server.matcher.cache) == 0
        assert server.registry.as_dict()["gauges"][
            "fingerprint_db_stops"
        ] == len(database)


class TestPerWorkerCacheIsolation:
    def test_parallel_run_merges_private_caches(
        self, small_city, database, config
    ):
        """Two workers each build a private index + memo; results match
        the serial run bit-for-bit and the merged physical counters see
        every worker's cache traffic."""
        import itertools

        import numpy as np

        from repro.phone import CellularSampler, record_participant_trips
        from repro.radio import (
            CellularScanner,
            PropagationModel,
            towers_for_city,
        )
        from repro.sim import (
            TrafficField,
            default_hotspots_for,
            simulate_bus_trip,
        )
        from repro.util.units import parse_hhmm

        spec = small_city.spec
        traffic = TrafficField(
            small_city.network,
            hotspots=default_hotspots_for(spec.width_m, spec.height_m),
            seed=9,
        )
        towers = towers_for_city(small_city, seed=5)
        scanner = CellularScanner(towers, PropagationModel(config.radio, seed=5),
                                  config.radio)
        sampler = CellularSampler(scanner)
        rider_ids = itertools.count()
        uploads = []
        for k, route_id in enumerate(("179-0", "199-0")):
            route = small_city.route_network.route(route_id)
            trace = simulate_bus_trip(
                route, parse_hhmm("08:10") + 120.0 * k, traffic, rider_ids,
                rng=np.random.default_rng(21 + k),
            )
            uploads.extend(record_participant_trips(
                trace, small_city.registry, sampler, config,
                rng=np.random.default_rng(31 + k),
            ))
        # Duplicate the batch so cross-shard repeats exist: a worker's
        # memo must serve them without leaking across processes.
        uploads = uploads + uploads

        def run(workers):
            registry = MetricsRegistry()
            engine = IngestEngine(
                database.as_dict(), small_city.route_network, config,
                workers=workers, registry=registry, shard_size=2,
            )
            with engine:
                prepared = engine.prepare(uploads, keep_matches=True)
            return prepared, registry.as_dict()

        serial_prepared, serial_metrics = run(1)
        parallel_prepared, parallel_metrics = run(2)

        def verdicts(prepared):
            return [
                (m.station_id, m.score, m.common_ids)
                for trip in prepared for m in trip.matches
            ]

        assert verdicts(parallel_prepared) == verdicts(serial_prepared)
        # Logical accounting is worker-invariant…
        for name in ("matcher_samples_total", "matcher_pairs_scored",
                     "matcher_samples_accepted"):
            assert (
                parallel_metrics["counters"][name]
                == serial_metrics["counters"][name]
            )
        # …while the physical cache counters merged back from both
        # workers account for every lookup (hits + misses = samples).
        for metrics in (serial_metrics, parallel_metrics):
            counters = metrics["counters"]
            assert (
                counters["match_cache_hits_total"]
                + counters["match_cache_misses_total"]
                == counters["matcher_samples_total"]
            )
            assert counters["match_cache_hits_total"] > 0


@pytest.mark.slow
class TestIngestParitySmoke:
    def test_script_reports_parity_across_worker_counts(self):
        """The CI smoke driver: `repro campaign --workers 2` must equal
        `--workers 1` counter-for-counter with per-worker memos live."""
        root = Path(__file__).resolve().parent.parent
        proc = subprocess.run(
            [sys.executable, str(root / "scripts" / "ingest_parity_smoke.py")],
            capture_output=True, text=True, cwd=str(root),
        )
        assert proc.returncode == 0, proc.stderr
        assert "parity ok" in proc.stdout
