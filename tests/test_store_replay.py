"""WAL replay idempotence and campaign-resume semantics.

The durability contract is replay idempotence: the ``applied_seq``
watermark means *any* WAL prefix, replayed any number of times, with a
snapshot/restore round-trip inserted at any offset, lands the server on
exactly the state a straight single pass produces — duplicate-upload
counters included.  The hypothesis suite drives that with random repeat
counts and snapshot offsets; equality is exact, via the testkit's
canonical golden-trace renderer (stats + traffic map + whitelisted
metrics).
"""

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import SystemConfig
from repro.obs.metrics import MetricsRegistry
from repro.sim.campaign import Campaign, CampaignPhase
from repro.sim.world import World
from repro.store import open_store
from repro.testkit.golden import render_trace, trace_from_server

START_S = 27000.0   # 07:30
END_S = 28200.0     # 07:50 — short day, ~30 trips
SEED = 11


def _world(small_city, store=None):
    return World(
        city=small_city,
        config=SystemConfig(),
        seed=SEED,
        registry=MetricsRegistry(),
        store=store,
    )


@pytest.fixture(scope="module")
def wal_case(small_city):
    """One journaled run: its WAL records, its golden trace, and a
    scratch world whose pristine state every example restores."""
    store = open_store(":memory:")
    world = _world(small_city, store=store)
    result = world.run(START_S, END_S, headway_s=1200.0,
                       with_official_feed=False)
    # Re-deliver two uploads (flaky-uplink retries): the duplicates are
    # journaled too, so replay must reproduce the duplicate counters.
    now = world.server.traffic_map.publish_times[-1] + 60.0
    for upload in result.uploads[:2]:
        world.server.receive_trip(upload, now_s=now)
    world.server.publish(now + 300.0)
    records = list(store.wal_records())
    golden = render_trace(trace_from_server(world.server))
    scratch = _world(small_city)
    pristine = scratch.server.state_dict()
    assert len(records) > 20
    return {
        "records": records,
        "golden": golden,
        "scratch": scratch,
        "pristine": pristine,
    }


def _replay_with(case, snapshot_offset, repeats):
    """Replay the whole WAL onto the pristine scratch server, round-
    tripping through a state snapshot at ``snapshot_offset`` and
    re-delivering record ``i`` ``repeats[i]`` times."""
    records = case["records"]
    server = case["scratch"].server
    server.restore_state(case["pristine"])
    for i, record in enumerate(records):
        if i == snapshot_offset:
            server.restore_state(server.state_dict())
        applied = server.replay_record(record)
        assert applied, f"first delivery of seq {record['seq']} must apply"
        for _ in range(repeats[i % len(repeats)] - 1):
            assert not server.replay_record(record)
    return server


@pytest.mark.property
class TestReplayIdempotence:
    @settings(max_examples=20, deadline=None)
    @given(data=st.data())
    def test_any_replay_schedule_lands_on_the_same_state(self, wal_case,
                                                         data):
        n = len(wal_case["records"])
        offset = data.draw(st.integers(min_value=0, max_value=n),
                           label="snapshot_offset")
        repeats = data.draw(
            st.lists(st.integers(min_value=1, max_value=3),
                     min_size=1, max_size=8),
            label="repeats",
        )
        server = _replay_with(wal_case, offset, repeats)
        assert render_trace(trace_from_server(server)) == wal_case["golden"]

    @settings(max_examples=10, deadline=None)
    @given(k=st.integers(min_value=2, max_value=4))
    def test_full_wal_replayed_k_times(self, wal_case, k):
        server = wal_case["scratch"].server
        server.restore_state(wal_case["pristine"])
        for round_no in range(k):
            applied = sum(
                server.replay_record(r) for r in wal_case["records"]
            )
            assert applied == (len(wal_case["records"]) if round_no == 0
                               else 0)
        assert render_trace(trace_from_server(server)) == wal_case["golden"]


class TestRecovery:
    def test_recover_from_wal_only(self, small_city, wal_case):
        store = open_store(":memory:")
        for record in wal_case["records"]:
            store.append_wal(dict(record))
        world = _world(small_city, store=store)
        replayed = world.server.recover()
        assert replayed == len(wal_case["records"])
        assert (render_trace(trace_from_server(world.server))
                == wal_case["golden"])

    @pytest.mark.parametrize("cut", [1, 7, -1])
    def test_recover_from_snapshot_plus_tail(self, small_city, wal_case,
                                             cut):
        records = wal_case["records"]
        cut = cut % len(records)
        store = open_store(":memory:")
        for record in records:
            store.append_wal(dict(record))
        # A first process applied a prefix and snapshotted at it...
        first = _world(small_city, store=store)
        for record in records[:cut]:
            first.server.replay_record(record)
        assert first.server.maybe_snapshot(force=True)
        # ...then a fresh process recovers: snapshot + tail replay.
        second = _world(small_city, store=store)
        replayed = second.server.recover()
        assert replayed == len(records) - cut
        assert (render_trace(trace_from_server(second.server))
                == wal_case["golden"])

    def test_snapshot_respects_cadence(self, small_city):
        config = SystemConfig(
            ingest=dataclasses.replace(
                SystemConfig().ingest, store_snapshot_every=5
            )
        )
        store = open_store(":memory:")
        world = World(city=small_city, config=config, seed=SEED, store=store)
        server = world.server
        for i in range(1, 5):
            server.journal_marker("day_start", day=i)
            assert not server.maybe_snapshot()
        server.journal_marker("day_start", day=5)
        assert server.maybe_snapshot()
        assert store.latest_snapshot()[0] == 5
        assert not server.maybe_snapshot()  # cadence counter reset


class TestCampaignResumeValidation:
    def _campaign(self, small_city, store):
        world = _world(small_city, store=store)
        return Campaign(world, start="08:00", end="08:20", headway_s=1200.0)

    def test_resume_without_store_rejected(self, small_city):
        campaign = self._campaign(small_city, store=None)
        phases = [CampaignPhase("sparse", 1, 0.05)]
        with pytest.raises(ValueError, match="requires a durable store"):
            campaign.run(phases, resume=True)

    def test_fresh_run_on_dirty_store_rejected(self, small_city):
        store = open_store(":memory:")
        phases = [CampaignPhase("sparse", 1, 0.05)]
        self._campaign(small_city, store).run(phases)
        with pytest.raises(ValueError, match="already holds campaign state"):
            self._campaign(small_city, store).run(phases)

    def test_resume_with_changed_config_rejected(self, small_city):
        store = open_store(":memory:")
        self._campaign(small_city, store).run(
            [CampaignPhase("sparse", 1, 0.05)]
        )
        with pytest.raises(ValueError, match="does not match the store"):
            self._campaign(small_city, store).run(
                [CampaignPhase("sparse", 1, 0.10)], resume=True
            )

    def test_resume_on_empty_store_is_fresh_start(self, small_city):
        store = open_store(":memory:")
        result = self._campaign(small_city, store).run(
            [CampaignPhase("sparse", 1, 0.05)], resume=True
        )
        assert len(result.days) == 1
        assert len(result.day_results) == 1

    def test_resume_after_completion_resimulates_nothing(self, small_city):
        store = open_store(":memory:")
        phases = [CampaignPhase("sparse", 1, 0.05),
                  CampaignPhase("intensive", 1, 0.2)]
        first = self._campaign(small_city, store).run(phases)
        golden = render_trace(trace_from_server(first.world.server))
        resumed = self._campaign(small_city, store).run(phases, resume=True)
        assert len(resumed.day_results) == 0      # nothing re-simulated
        assert [d.day_index for d in resumed.days] == [0, 1]
        assert resumed.days == first.days
        assert (render_trace(trace_from_server(resumed.world.server))
                == golden)

    def test_resume_restores_rider_counter(self, small_city):
        store = open_store(":memory:")
        phases = [CampaignPhase("sparse", 1, 0.05)]
        first = self._campaign(small_city, store).run(phases)
        position = first.world.rider_counter.value
        assert position > 0
        resumed = self._campaign(small_city, store).run(phases, resume=True)
        assert resumed.world.rider_counter.value == position
