"""Tests for the embedded metrics HTTP exporter (stdlib-only)."""

import json
import urllib.error
import urllib.request

import pytest

from repro.obs import (
    MetricsHTTPServer,
    MetricsRegistry,
    PROMETHEUS_CONTENT_TYPE,
    parse_prometheus_text,
)


@pytest.fixture()
def exporter():
    registry = MetricsRegistry()
    registry.counter("trips_received", help="trips").inc(5)
    registry.labeled_gauge(
        "map_route_freshness_s", ("route",)
    ).labels("179-0").set(120.0)
    server = MetricsHTTPServer(
        registry,
        port=0,
        stats_fn=lambda: {"command": "test", "stats": {"trips_received": 5}},
        freshness_fn=lambda: {"routes": {"179-0": {"freshness_s": 120.0}}},
        health_fn=lambda: {"trips_received": 5},
    )
    port = server.start()
    yield server, port
    server.stop()


def _get(port, path):
    with urllib.request.urlopen(
        f"http://127.0.0.1:{port}{path}", timeout=5
    ) as response:
        return response.status, response.headers, response.read().decode()


class TestEndpoints:
    def test_metrics_parseable_prometheus(self, exporter):
        _, port = exporter
        status, headers, body = _get(port, "/metrics")
        assert status == 200
        assert headers["Content-Type"] == PROMETHEUS_CONTENT_TYPE
        parsed = parse_prometheus_text(body)
        assert parsed["trips_received"]["samples"][0][2] == 5
        ((_, labels, value),) = parsed["map_route_freshness_s"]["samples"]
        assert labels == {"route": "179-0"}
        assert value == 120.0

    def test_healthz(self, exporter):
        _, port = exporter
        status, headers, body = _get(port, "/healthz")
        assert status == 200
        payload = json.loads(body)
        assert payload["status"] == "ok"
        assert payload["trips_received"] == 5
        assert payload["uptime_s"] >= 0

    def test_stats(self, exporter):
        _, port = exporter
        status, _, body = _get(port, "/stats")
        assert status == 200
        assert json.loads(body)["stats"]["trips_received"] == 5

    def test_freshness(self, exporter):
        _, port = exporter
        status, _, body = _get(port, "/freshness")
        assert status == 200
        assert json.loads(body)["routes"]["179-0"]["freshness_s"] == 120.0

    def test_index_lists_endpoints(self, exporter):
        _, port = exporter
        status, _, body = _get(port, "/")
        assert status == 200
        assert "/metrics" in body

    def test_unknown_path_404(self, exporter):
        _, port = exporter
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(port, "/nope")
        assert excinfo.value.code == 404

    def test_request_counts_accumulate(self, exporter):
        server, port = exporter
        _get(port, "/metrics")
        _get(port, "/metrics")
        assert server.request_counts["/metrics"] >= 2


class TestLifecycle:
    def test_live_registry_changes_visible(self, exporter):
        server, port = exporter
        server.registry.counter("trips_received").inc(3)
        _, _, body = _get(port, "/metrics")
        assert parse_prometheus_text(body)["trips_received"]["samples"][0][2] == 8

    def test_stop_closes_socket(self):
        server = MetricsHTTPServer(MetricsRegistry(), port=0)
        port = server.start()
        server.stop()
        with pytest.raises(urllib.error.URLError):
            urllib.request.urlopen(
                f"http://127.0.0.1:{port}/healthz", timeout=1
            )

    def test_double_start_rejected(self):
        server = MetricsHTTPServer(MetricsRegistry(), port=0)
        server.start()
        try:
            with pytest.raises(RuntimeError):
                server.start()
        finally:
            server.stop()

    def test_context_manager(self):
        with MetricsHTTPServer(MetricsRegistry(), port=0) as server:
            status, _, _ = _get(server.port, "/healthz")
            assert status == 200

    def test_freshness_without_source_is_error_payload(self):
        with MetricsHTTPServer(MetricsRegistry(), port=0) as server:
            status, _, body = _get(server.port, "/freshness")
            assert status == 200
            assert "error" in json.loads(body)
