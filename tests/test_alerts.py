"""Tests for the SLO alert-rule engine and the freshness acceptance demo."""

import json

import pytest

from repro.city import build_city
from repro.obs import (
    AlertEngine,
    AlertRule,
    MetricsRegistry,
    lint_rules,
    load_rules,
    parse_rule_expr,
    samples_from_document,
    samples_from_registry,
)

from conftest import SMALL_SPEC


class TestExprParsing:
    def test_plain_threshold(self):
        assert parse_rule_expr("match_accept_ratio > 0.6") == (
            "match_accept_ratio", {}, ">", 0.6
        )

    def test_matchers_and_wildcard(self):
        metric, matchers, op, threshold = parse_rule_expr(
            'map_route_freshness_s{route=*, stop="12"} < 900'
        )
        assert metric == "map_route_freshness_s"
        assert matchers == {"route": "*", "stop": "12"}
        assert (op, threshold) == ("<", 900.0)

    def test_all_operators(self):
        for op in ("<", "<=", ">", ">=", "==", "!="):
            assert parse_rule_expr(f"m {op} 1")[2] == op

    def test_scientific_notation(self):
        assert parse_rule_expr("m < 1.5e3")[3] == 1500.0

    def test_rejects_garbage(self):
        for expr in ("", "m", "m <", "< 3", "m ~ 3", "m{route} < 1",
                     "m{route=a,route=b} < 1", "m < one"):
            with pytest.raises(ValueError):
                parse_rule_expr(expr)


class TestRule:
    def test_healthy_is_the_slo_direction(self):
        rule = AlertRule("fresh", "map_route_freshness_s{route=*} < 900")
        assert rule.healthy(100.0)
        assert not rule.healthy(1200.0)

    def test_matches_requires_matcher_labels(self):
        rule = AlertRule("r", "m{route=*} < 1")
        assert rule.matches({"route": "179-0"})
        assert not rule.matches({})
        exact = AlertRule("r2", 'm{route="179-0"} < 1')
        assert exact.matches({"route": "179-0"})
        assert not exact.matches({"route": "179-1"})

    def test_validation(self):
        with pytest.raises(ValueError):
            AlertRule("", "m < 1")
        with pytest.raises(ValueError):
            AlertRule("r", "m < 1", for_count=0)
        with pytest.raises(ValueError):
            AlertRule("r", "not an expr")


class TestEngine:
    def test_fire_and_resolve_transitions(self):
        registry = MetricsRegistry()
        engine = AlertEngine(
            [AlertRule("fresh", "freshness < 900")], registry=registry
        )
        fired = engine.evaluate([("freshness", {}, 1200.0)], now=0.0)
        assert len(fired) == 1 and fired[0].fired
        assert registry.gauge("alerts_active").value == 1
        assert len(engine.active) == 1

        resolved = engine.evaluate([("freshness", {}, 30.0)], now=300.0)
        assert len(resolved) == 1 and not resolved[0].fired
        assert registry.gauge("alerts_active").value == 0
        assert engine.active == []

    def test_wildcard_fires_per_label_value(self):
        engine = AlertEngine(
            [AlertRule("fresh", "freshness{route=*} < 900")]
        )
        samples = [
            ("freshness", {"route": "179-0"}, 100.0),
            ("freshness", {"route": "179-1"}, 2000.0),
            ("freshness", {"route": "199-0"}, 3000.0),
        ]
        fired = engine.evaluate(samples, now=0.0)
        assert sorted(e.label_dict()["route"] for e in fired) == [
            "179-1", "199-0",
        ]

    def test_for_count_debounces(self):
        engine = AlertEngine(
            [AlertRule("r", "m < 1", for_count=3)]
        )
        bad = [("m", {}, 5.0)]
        assert engine.evaluate(bad, now=0.0) == []
        assert engine.evaluate(bad, now=1.0) == []
        fired = engine.evaluate(bad, now=2.0)
        assert len(fired) == 1
        # A healthy pass resets the streak.
        engine.evaluate([("m", {}, 0.0)], now=3.0)
        assert engine.evaluate(bad, now=4.0) == []

    def test_missing_sample_keeps_standing_alert(self):
        engine = AlertEngine([AlertRule("r", "m < 1")])
        engine.evaluate([("m", {}, 5.0)], now=0.0)
        assert engine.evaluate([("other", {}, 0.0)], now=1.0) == []
        assert len(engine.active) == 1

    def test_already_firing_does_not_refire(self):
        engine = AlertEngine([AlertRule("r", "m < 1")])
        engine.evaluate([("m", {}, 5.0)], now=0.0)
        assert engine.evaluate([("m", {}, 6.0)], now=1.0) == []
        assert len(engine.active) == 1


class TestRuleFiles:
    def _write(self, tmp_path, payload):
        path = tmp_path / "rules.json"
        path.write_text(json.dumps(payload))
        return str(path)

    def test_load_and_lint_ok(self, tmp_path):
        path = self._write(tmp_path, {"rules": [
            {"name": "a", "expr": "m < 1", "severity": "page", "for": 2},
        ]})
        rules = load_rules(path)
        assert rules[0].severity == "page"
        assert rules[0].for_count == 2
        assert lint_rules(path) == []

    def test_lint_reports_defects(self, tmp_path):
        assert lint_rules(str(tmp_path / "missing.json"))
        bad_json = tmp_path / "bad.json"
        bad_json.write_text("{nope")
        assert lint_rules(str(bad_json))
        for payload in (
            {"rules": [{"name": "a"}]},                       # no expr
            {"rules": [{"name": "a", "expr": "m <"}]},        # bad expr
            {"rules": [{"name": "a", "expr": "m < 1"},
                       {"name": "a", "expr": "m < 2"}]},      # dup name
            {"rules": [{"name": "a", "expr": "m < 1",
                        "bogus": True}]},                     # unknown key
            {"norules": []},
        ):
            assert lint_rules(self._write(tmp_path, payload))


class TestSampleSources:
    def test_samples_from_registry_flatten_everything(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(2)
        registry.gauge("g").set(1.5)
        registry.histogram("h", buckets=(1.0,)).observe(0.5)
        registry.labeled_counter("lc", ("route",)).labels("179-0").inc(3)
        samples = {
            (name, tuple(sorted(labels.items())), value)
            for name, labels, value in samples_from_registry(registry)
        }
        assert ("c", (), 2.0) in samples
        assert ("g", (), 1.5) in samples
        assert ("h_count", (), 1.0) in samples
        assert ("h_sum", (), 0.5) in samples
        assert ("lc", (("route", "179-0"),), 3.0) in samples

    def test_samples_from_document_includes_server_stats(self):
        document = {
            "stats": {"trips_received": 7},
            "metrics": {
                "counters": {"c": 1},
                "gauges": {},
                "histograms": {},
                "labeled": {
                    "lc": {"type": "counter", "labels": ["route"],
                           "overflow_total": 0,
                           "children": {'route="179-0"': 3}},
                },
            },
        }
        samples = samples_from_document(document)
        assert ("server_trips_received", {}, 7.0) in samples
        assert ("c", {}, 1.0) in samples
        assert ("lc", {"route": "179-0"}, 3.0) in samples


class TestFreshnessSLODemo:
    """The acceptance scenario: a route loses its riders mid-campaign."""

    @pytest.fixture(scope="class")
    def demo(self):
        from repro.sim.campaign import Campaign, CampaignPhase
        from repro.sim.world import World

        registry = MetricsRegistry()
        world = World(city=build_city(SMALL_SPEC), seed=11, registry=registry)
        all_routes = tuple(world.city.route_network.route_ids)
        kept = tuple(r for r in all_routes if not r.startswith("199"))
        dropped = tuple(r for r in all_routes if r.startswith("199"))
        assert dropped, "demo needs a route to drop"
        engine = AlertEngine(
            [AlertRule("route_map_fresh",
                       "map_route_freshness_s{route=*} < 900",
                       severity="page")],
            registry=registry,
        )
        world.server.attach_alerts(engine)
        campaign = Campaign(world, start="08:00", end="09:00",
                            headway_s=900.0)
        campaign.run([
            CampaignPhase("everyone", days=1, participation_rate=0.35),
            CampaignPhase("no-199", days=1, participation_rate=0.35,
                          route_ids=kept),
        ])
        return world, engine, dropped

    def test_dropped_route_freshness_alert_fires(self, demo):
        _, engine, dropped = demo
        firing = {e.label_dict()["route"] for e in engine.active}
        assert set(dropped) <= firing

    def test_alert_gauges_exported(self, demo):
        world, engine, _ = demo
        doc = world.registry.as_dict()
        assert doc["gauges"]["alerts_active"] == len(engine.active)
        assert world.registry.counter("alerts_fired_total").value >= len(
            engine.active
        )
        children = doc["labeled"]["alert_active"]["children"]
        assert children['rule="route_map_fresh"'] == len(engine.active)

    def test_freshness_report_shows_dropped_route_stale(self, demo):
        world, _, dropped = demo
        report = world.server.freshness.report()
        for route_id in dropped:
            entry = report["routes"][route_id]
            assert entry["freshness_s"] > 900.0
