"""Tests for wire formats and persistence."""

import io
import json

import pytest

from repro.core.fingerprint import FingerprintDatabase
from repro.core.traffic_map import TrafficMapEstimator
from repro.phone.cellular import CellularSample
from repro.phone.trip_recorder import TripUpload
from repro.wire import (
    database_from_dict,
    database_to_dict,
    dump_trips,
    load_database,
    load_trips,
    save_database,
    snapshot_to_geojson,
    trip_from_dict,
    trip_to_dict,
)


def make_upload(key="t1"):
    return TripUpload(
        trip_key=key,
        samples=(
            CellularSample(time_s=100.0, tower_ids=(5, 3, 9), rss_dbm=(-60.0, -70.0, -80.0)),
            CellularSample(time_s=130.0, tower_ids=(5, 9)),
        ),
    )


class TestTripCodec:
    def test_round_trip(self):
        upload = make_upload()
        decoded = trip_from_dict(trip_to_dict(upload))
        assert decoded.trip_key == upload.trip_key
        assert [s.time_s for s in decoded.samples] == [100.0, 130.0]
        assert decoded.samples[0].tower_ids == (5, 3, 9)

    def test_rss_never_leaves_the_phone(self):
        payload = trip_to_dict(make_upload())
        assert "rss" not in json.dumps(payload)

    def test_rejects_wrong_version(self):
        payload = trip_to_dict(make_upload())
        payload["v"] = 99
        with pytest.raises(ValueError):
            trip_from_dict(payload)

    def test_rejects_missing_fields(self):
        with pytest.raises(ValueError):
            trip_from_dict({"v": 1, "trip": "x"})

    def test_rejects_malformed_sample(self):
        payload = trip_to_dict(make_upload())
        payload["samples"][0] = {"t": "not a float", "cells": "nope"}
        with pytest.raises(ValueError):
            trip_from_dict(payload)

    def test_rejects_non_object(self):
        with pytest.raises(ValueError):
            trip_from_dict([1, 2, 3])

    def test_jsonl_round_trip(self):
        uploads = [make_upload("a"), make_upload("b")]
        buffer = io.StringIO()
        dump_trips(uploads, buffer)
        buffer.seek(0)
        loaded = load_trips(buffer)
        assert [u.trip_key for u in loaded] == ["a", "b"]

    def test_jsonl_skips_blank_lines(self):
        buffer = io.StringIO()
        dump_trips([make_upload()], buffer)
        buffer.write("\n\n")
        buffer.seek(0)
        assert len(load_trips(buffer)) == 1

    def test_jsonl_reports_bad_line(self):
        buffer = io.StringIO("this is not json\n")
        with pytest.raises(ValueError, match="line 1"):
            load_trips(buffer)


class TestDatabaseCodec:
    def test_round_trip(self):
        db = FingerprintDatabase()
        db.set_fingerprint(7, (10, 11, 12))
        db.set_fingerprint(8, (20, 21))
        decoded = database_from_dict(database_to_dict(db))
        assert decoded.as_dict() == db.as_dict()

    def test_file_round_trip(self, tmp_path):
        db = FingerprintDatabase()
        db.set_fingerprint(7, (10, 11, 12))
        path = str(tmp_path / "db.json")
        save_database(db, path)
        assert load_database(path).fingerprint(7) == (10, 11, 12)

    def test_rejects_wrong_version(self):
        with pytest.raises(ValueError):
            database_from_dict({"v": 2, "stops": {}})

    def test_rejects_malformed_entry(self):
        with pytest.raises(ValueError):
            database_from_dict({"v": 1, "stops": {"seven": ["x"]}})

    def test_rejects_missing_stops(self):
        with pytest.raises(ValueError):
            database_from_dict({"v": 1})


class TestSnapshotGeojson:
    def test_feature_collection(self, small_city):
        estimator = TrafficMapEstimator(small_city.network)
        segs = small_city.network.segment_ids[:3]
        for seg in segs:
            estimator.update(seg, 35.0, t=100.0)
        snapshot = estimator.snapshot(at_s=160.0)
        geojson = snapshot_to_geojson(snapshot, small_city.network)
        assert geojson["type"] == "FeatureCollection"
        assert len(geojson["features"]) == 3
        feature = geojson["features"][0]
        assert feature["geometry"]["type"] == "LineString"
        lon, lat = feature["geometry"]["coordinates"][0]
        assert 103.0 < lon < 104.5       # around the Jurong anchor
        assert 1.0 < lat < 2.0
        assert feature["properties"]["speed_kmh"] == pytest.approx(35.0)
        assert feature["properties"]["level"] == 3

    def test_serialisable(self, small_city):
        estimator = TrafficMapEstimator(small_city.network)
        estimator.update(small_city.network.segment_ids[0], 35.0, t=100.0)
        geojson = snapshot_to_geojson(estimator.snapshot(160.0), small_city.network)
        json.dumps(geojson)     # must not raise
