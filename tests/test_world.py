"""Integration tests: the full world simulation end to end."""

import numpy as np
import pytest

from repro.city import CitySpec, build_city
from repro.phone.app import DspMode
from repro.sim.world import World, simulate_day
from repro.util.units import parse_hhmm

from conftest import SMALL_SPEC


@pytest.fixture(scope="module")
def world():
    return World(city=build_city(SMALL_SPEC), seed=3)


@pytest.fixture(scope="module")
def result(world):
    return world.run(
        parse_hhmm("08:00"),
        parse_hhmm("09:30"),
        route_ids=["179-0", "179-1", "199-0"],
        headway_s=900.0,
    )


class TestCampaign:
    def test_buses_dispatched(self, result):
        assert len(result.traces) == 3 * 6

    def test_uploads_reach_server(self, result):
        assert result.uploads_processed > 10
        assert result.server.stats.trips_mapped > 0.7 * result.uploads_processed

    def test_reports_produced(self, result):
        assert len(result.reports) == result.uploads_processed

    def test_map_covers_run_routes(self, result, world):
        covered = {
            seg
            for rid in ("179-0", "179-1", "199-0")
            for seg in world.city.route_network.route(rid).segments
        }
        snap = result.server.traffic_map.snapshot(parse_hhmm("09:30"))
        assert len(set(snap.readings) & covered) > 0.4 * len(covered)
        # Nothing outside the run routes can have data.
        assert set(snap.readings) <= covered

    def test_estimates_track_ground_truth(self, result):
        snap = result.server.traffic_map.snapshot(parse_hhmm("09:30"))
        errors = [
            reading.speed_kmh - result.true_speed_kmh(seg, parse_hhmm("09:15"))
            for seg, reading in snap.readings.items()
        ]
        assert len(errors) > 10
        assert abs(np.mean(errors)) < 5.0
        assert np.mean(np.abs(errors)) < 9.0

    def test_publish_cycle_ran(self, result, world):
        times = result.server.traffic_map.publish_times
        assert len(times) > 10
        period = world.config.fusion.update_period_s
        diffs = np.diff(times)
        assert np.allclose(diffs, period)

    def test_official_feed_present(self, result, world):
        covered = sorted(world.city.route_network.covered_segments())
        with_data = sum(
            1 for seg in covered
            if result.official.speed_kmh(seg, parse_hhmm("08:30")) is not None
        )
        assert with_data == len(covered)

    def test_reproducible(self):
        a = World(city=build_city(SMALL_SPEC), seed=11).run(
            parse_hhmm("08:00"), parse_hhmm("08:30"),
            route_ids=["179-0"], with_official_feed=False,
        )
        b = World(city=build_city(SMALL_SPEC), seed=11).run(
            parse_hhmm("08:00"), parse_hhmm("08:30"),
            route_ids=["179-0"], with_official_feed=False,
        )
        assert a.server.stats == b.server.stats

    def test_run_rejects_bad_window(self, world):
        with pytest.raises(ValueError):
            world.run(100.0, 100.0)


class TestSimulateDay:
    def test_convenience_entry_point(self):
        result = simulate_day(
            city=build_city(SMALL_SPEC),
            seed=5,
            start="08:00",
            end="08:40",
            route_ids=["179-0"],
            headway_s=1200.0,
            with_official_feed=False,
        )
        assert result.traces
        assert result.server.stats.trips_received > 0


class TestGenerality:
    """§VI: 'our system can be easily adopted to other urban areas with
    slight modifications' — the pipeline must work, unchanged, on a city
    with a different geometry and service plan."""

    OTHER_SPEC = CitySpec(
        name="toa-payoh",
        width_m=4200.0,
        height_m=3400.0,
        spacing_m=380.0,
        major_every=2,
        services=("8", "26", "57", "88", "145"),
        partial_services=("145",),
        jogs_per_route=3,
        seed=99,
    )

    @pytest.mark.slow
    def test_pipeline_transfers_to_another_city(self):
        result = simulate_day(
            city=build_city(self.OTHER_SPEC),
            seed=4,
            start="08:00",
            end="09:00",
            headway_s=900.0,
            with_official_feed=False,
        )
        stats = result.server.stats
        assert stats.trips_received > 10
        assert stats.trips_mapped > 0.7 * stats.trips_received
        snap = result.server.traffic_map.published_snapshot(parse_hhmm("09:00"))
        errors = [
            reading.speed_kmh - result.true_speed_kmh(seg, parse_hhmm("08:50"))
            for seg, reading in snap.readings.items()
        ]
        assert errors
        assert float(np.mean(np.abs(errors))) < 9.0


class TestResultUploads:
    def test_uploads_retained_and_ordered_with_reports(self, result):
        assert len(result.uploads) == len(result.reports)
        processed = {r.trip_key for r in result.reports}
        assert {u.trip_key for u in result.uploads} == processed


class TestFullDspCampaign:
    def test_full_dsp_mode_matches_fast_mode_roughly(self):
        """A short campaign with real audio DSP lands near FAST mode."""
        fast = World(city=build_city(SMALL_SPEC), seed=21).run(
            parse_hhmm("08:00"), parse_hhmm("08:30"),
            route_ids=["179-0"], dsp_mode=DspMode.FAST,
            with_official_feed=False,
        )
        full = World(city=build_city(SMALL_SPEC), seed=21).run(
            parse_hhmm("08:00"), parse_hhmm("08:30"),
            route_ids=["179-0"], dsp_mode=DspMode.FULL,
            with_official_feed=False,
        )
        assert full.server.stats.samples_received >= 0.75 * fast.server.stats.samples_received
        assert full.server.stats.trips_mapped >= 0.6 * fast.server.stats.trips_mapped
