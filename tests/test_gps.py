"""Tests for the urban-canyon GPS error model (Fig. 1)."""

import numpy as np
import pytest

from repro.city.geometry import Point
from repro.config import GpsConfig
from repro.radio import GpsCondition, GpsErrorModel


@pytest.fixture()
def model():
    return GpsErrorModel()


class TestCalibration:
    def test_analytic_median_matches_config(self, model):
        assert model.median_error_m(GpsCondition.STATIONARY) == pytest.approx(40.0)
        assert model.median_error_m(GpsCondition.ON_BUS) == pytest.approx(68.0)

    def test_analytic_p90_matches_config(self, model):
        assert model.p90_error_m(GpsCondition.STATIONARY) == pytest.approx(75.0)
        assert model.p90_error_m(GpsCondition.ON_BUS) == pytest.approx(130.0)

    def test_sampled_median_matches(self, model, rng):
        errors = model.sample_errors(GpsCondition.STATIONARY, 20_000, rng)
        assert np.median(errors) == pytest.approx(40.0, rel=0.05)

    def test_sampled_p90_matches(self, model, rng):
        errors = model.sample_errors(GpsCondition.ON_BUS, 20_000, rng)
        assert np.percentile(errors, 90) == pytest.approx(130.0, rel=0.05)

    def test_onbus_worse_than_stationary(self, model, rng):
        stationary = model.sample_errors(GpsCondition.STATIONARY, 5_000, rng)
        onbus = model.sample_errors(GpsCondition.ON_BUS, 5_000, rng)
        assert np.median(onbus) > np.median(stationary)

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            GpsErrorModel(GpsConfig(stationary_median_m=80.0, stationary_p90_m=75.0))


class TestFixes:
    def test_fix_displacement_distribution(self, model, rng):
        origin = Point(100, 100)
        fixes = [model.fix(origin, GpsCondition.STATIONARY, rng) for _ in range(3000)]
        distances = [origin.distance_to(f) for f in fixes]
        assert np.median(distances) == pytest.approx(40.0, rel=0.1)

    def test_fix_bearing_is_uniform(self, model, rng):
        origin = Point(0, 0)
        fixes = [model.fix(origin, GpsCondition.STATIONARY, rng) for _ in range(3000)]
        mean_x = np.mean([f.x for f in fixes])
        mean_y = np.mean([f.y for f in fixes])
        assert abs(mean_x) < 5.0 and abs(mean_y) < 5.0

    def test_negative_count_rejected(self, model, rng):
        with pytest.raises(ValueError):
            model.sample_errors(GpsCondition.STATIONARY, -1, rng)
