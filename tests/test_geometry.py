"""Tests for planar geometry primitives."""

import math

import pytest

from repro.city.geometry import (
    Point,
    Polyline,
    bounding_box,
    heading,
    path_length,
    unit_normal,
)


class TestPoint:
    def test_distance(self):
        assert Point(0, 0).distance_to(Point(3, 4)) == pytest.approx(5.0)

    def test_offset(self):
        assert Point(1, 2).offset(3, -1) == Point(4, 1)

    def test_midpoint(self):
        assert Point(0, 0).midpoint(Point(2, 4)) == Point(1, 2)

    def test_as_tuple(self):
        assert Point(1.5, 2.5).as_tuple() == (1.5, 2.5)


class TestHeading:
    def test_east(self):
        assert heading(Point(0, 0), Point(1, 0)) == pytest.approx(0.0)

    def test_north(self):
        assert heading(Point(0, 0), Point(0, 1)) == pytest.approx(math.pi / 2)

    def test_unit_normal_is_perpendicular(self):
        nx, ny = unit_normal(Point(0, 0), Point(5, 0))
        assert (nx, ny) == pytest.approx((0.0, 1.0))

    def test_unit_normal_zero_length_raises(self):
        with pytest.raises(ValueError):
            unit_normal(Point(1, 1), Point(1, 1))


class TestPolyline:
    def test_needs_two_points(self):
        with pytest.raises(ValueError):
            Polyline([Point(0, 0)])

    def test_length(self):
        line = Polyline([Point(0, 0), Point(3, 0), Point(3, 4)])
        assert line.length == pytest.approx(7.0)

    def test_point_at_interpolates(self):
        line = Polyline([Point(0, 0), Point(10, 0)])
        assert line.point_at(4.0) == Point(4.0, 0.0)

    def test_point_at_crosses_vertices(self):
        line = Polyline([Point(0, 0), Point(3, 0), Point(3, 4)])
        assert line.point_at(5.0) == Point(3.0, 2.0)

    def test_point_at_clamps(self):
        line = Polyline([Point(0, 0), Point(10, 0)])
        assert line.point_at(-5.0) == Point(0, 0)
        assert line.point_at(50.0) == Point(10, 0)

    def test_sample_spacing(self):
        line = Polyline([Point(0, 0), Point(10, 0)])
        points = line.sample(2.5)
        assert points[0] == Point(0, 0)
        assert points[-1] == Point(10, 0)
        assert len(points) == 5

    def test_sample_includes_uneven_end(self):
        line = Polyline([Point(0, 0), Point(10, 0)])
        points = line.sample(3.0)
        assert points[-1] == Point(10, 0)

    def test_sample_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            Polyline([Point(0, 0), Point(1, 0)]).sample(0.0)


class TestHelpers:
    def test_path_length(self):
        assert path_length([Point(0, 0), Point(1, 0), Point(1, 1)]) == pytest.approx(2.0)

    def test_bounding_box(self):
        lo, hi = bounding_box([Point(1, 5), Point(-2, 3), Point(4, -1)])
        assert lo == Point(-2, -1)
        assert hi == Point(4, 5)

    def test_bounding_box_empty_raises(self):
        with pytest.raises(ValueError):
            bounding_box([])
