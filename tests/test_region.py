"""Tests for region-wide inference from covered segments (§VI extension)."""

import numpy as np
import pytest

from repro.core.region import infer_region_speeds, segment_adjacency
from repro.util.units import ms_to_kmh


class TestAdjacency:
    def test_symmetric(self, small_city):
        adjacency = segment_adjacency(small_city.network)
        for seg, neighbours in adjacency.items():
            for n in neighbours:
                assert seg in adjacency[n]

    def test_no_self_loops(self, small_city):
        adjacency = segment_adjacency(small_city.network)
        for seg, neighbours in adjacency.items():
            assert seg not in neighbours

    def test_reverse_is_neighbour(self, small_city):
        adjacency = segment_adjacency(small_city.network)
        seg = small_city.network.segment_ids[0]
        assert (seg[1], seg[0]) in adjacency[seg]


class TestInference:
    def test_observed_segments_pinned(self, small_city):
        seg = small_city.network.segment_ids[0]
        estimates = infer_region_speeds(small_city.network, {seg: 33.0})
        assert estimates[seg].observed
        assert estimates[seg].speed_kmh == pytest.approx(33.0)
        assert estimates[seg].hops_from_observed == 0

    def test_all_segments_estimated(self, small_city):
        seg = small_city.network.segment_ids[0]
        estimates = infer_region_speeds(small_city.network, {seg: 33.0})
        assert set(estimates) == set(small_city.network.segment_ids)

    def test_diffusion_pulls_neighbours_toward_observation(self, small_city):
        adjacency = segment_adjacency(small_city.network)
        seg = small_city.network.segment_ids[0]
        # Observe strong congestion on one segment only.
        segment = small_city.network.segment(seg)
        congested = 0.3 * ms_to_kmh(segment.free_speed_ms)
        estimates = infer_region_speeds(
            small_city.network, {seg: congested}, default_congestion=0.9
        )
        neighbour = adjacency[seg][0]
        neighbour_seg = small_city.network.segment(neighbour)
        factor = estimates[neighbour].speed_kmh / ms_to_kmh(neighbour_seg.free_speed_ms)
        assert factor < 0.9    # pulled below the prior by the observation

    def test_hops_increase_away_from_observed(self, small_city):
        seg = small_city.network.segment_ids[0]
        estimates = infer_region_speeds(small_city.network, {seg: 40.0})
        hops = [e.hops_from_observed for e in estimates.values()]
        assert max(hops) > 2

    def test_leave_out_accuracy_beats_prior(self, small_city, traffic):
        """Hide 30% of segments; inference beats the flat default."""
        rng = np.random.default_rng(4)
        t = 8.5 * 3600.0
        all_segments = small_city.network.segment_ids
        true = {
            seg: 3.6 * traffic.car_speed_ms(seg, t) for seg in all_segments
        }
        hidden = set(
            tuple(s) for s in rng.choice(all_segments, size=len(all_segments) // 3,
                                         replace=False)
        )
        observed = {seg: v for seg, v in true.items() if seg not in hidden}
        estimates = infer_region_speeds(small_city.network, observed)
        inferred_err = np.mean([
            abs(estimates[seg].speed_kmh - true[seg]) for seg in hidden
        ])
        default_err = np.mean([
            abs(0.85 * 3.6 * small_city.network.segment(seg).free_speed_ms - true[seg])
            for seg in hidden
        ])
        assert inferred_err < default_err

    def test_rejects_bad_iterations(self, small_city):
        with pytest.raises(ValueError):
            infer_region_speeds(small_city.network, {}, iterations=0)
