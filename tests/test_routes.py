"""Tests for bus routes and the route network relation R."""

import pytest

from repro.city.geometry import Point
from repro.city.road_network import RoadNetwork
from repro.city.routes import BusRoute, RouteNetwork
from repro.city.stops import StopRegistry, make_two_sided_station


@pytest.fixture()
def line_world():
    """Five stations in a line plus a branch off station 2."""
    net = RoadNetwork()
    for i in range(5):
        net.add_node(i, Point(i * 400.0, 0.0))
    net.add_node(10, Point(800.0, 400.0))     # branch node above station 2
    for i in range(4):
        net.add_road(i, i + 1)
    net.add_road(2, 10)

    reg = StopRegistry()
    for i in list(range(5)) + [10]:
        reg.add_station(
            make_two_sided_station(i, f"St {i}", net.node_position(i), 0.0)
        )
    return net, reg


@pytest.fixture()
def main_route(line_world):
    net, reg = line_world
    return BusRoute("A-0", "A", 0, [0, 1, 2, 3, 4], net, reg)


@pytest.fixture()
def branch_route(line_world):
    net, reg = line_world
    return BusRoute("B-0", "B", 0, [0, 1, 2, 10], net, reg)


class TestBusRoute:
    def test_requires_two_nodes(self, line_world):
        net, reg = line_world
        with pytest.raises(ValueError):
            BusRoute("X", "X", 0, [0], net, reg)

    def test_stop_order(self, main_route):
        assert main_route.station_sequence == [0, 1, 2, 3, 4]
        assert [rs.order for rs in main_route.stops] == [0, 1, 2, 3, 4]

    def test_cumulative_distance(self, main_route):
        assert main_route.stops[0].cumulative_m == 0.0
        assert main_route.stops[3].cumulative_m == pytest.approx(1200.0)
        assert main_route.length_m == pytest.approx(1600.0)

    def test_station_order_lookup(self, main_route):
        assert main_route.station_order(3) == 3
        assert main_route.station_order(10) is None
        assert main_route.serves(2)
        assert not main_route.serves(10)

    def test_segments_between(self, main_route):
        assert main_route.segments_between(1, 3) == [(1, 2), (2, 3)]

    def test_segments_between_invalid(self, main_route):
        with pytest.raises(ValueError):
            main_route.segments_between(3, 1)

    def test_distance_between(self, main_route):
        assert main_route.distance_between(0, 2) == pytest.approx(800.0)

    def test_platform_matches_direction(self, line_world):
        net, reg = line_world
        forward = BusRoute("A-0", "A", 0, [0, 1, 2, 3, 4], net, reg)
        backward = BusRoute("A-1", "A", 1, [4, 3, 2, 1, 0], net, reg)
        fwd_stop = forward.stops[1]
        bwd_stop = next(rs for rs in backward.stops if rs.station_id == 1)
        assert fwd_stop.stop_id != bwd_stop.stop_id  # opposite platforms


class TestRouteNetwork:
    def test_downstream_single_route(self, main_route, branch_route):
        rn = RouteNetwork([main_route, branch_route])
        assert rn.downstream(0, 4)
        assert rn.downstream(2, 10)
        assert not rn.downstream(4, 0)
        assert not rn.downstream(3, 10)

    def test_reachable_with_transfer(self, line_world, main_route):
        net, reg = line_world
        # Route C starts at station 3 and goes to the branch? No road; use
        # overlap at station 2 instead: C runs 4->3->2->10.
        route_c = BusRoute("C-0", "C", 0, [4, 3, 2, 10], net, reg)
        rn = RouteNetwork([main_route, route_c])
        # 0 -> 10 needs main route to 2 (or beyond) then C to 10.
        assert not rn.downstream(0, 10)
        assert rn.reachable_with_transfer(0, 10)

    def test_transfer_is_cached(self, main_route, branch_route):
        rn = RouteNetwork([main_route, branch_route])
        assert rn.reachable_with_transfer(0, 4) == rn.reachable_with_transfer(0, 4)

    def test_routes_serving(self, main_route, branch_route):
        rn = RouteNetwork([main_route, branch_route])
        assert {r.route_id for r in rn.routes_serving(2)} == {"A-0", "B-0"}
        assert {r.route_id for r in rn.routes_serving(4)} == {"A-0"}

    def test_covered_segments(self, main_route, branch_route):
        rn = RouteNetwork([main_route, branch_route])
        assert (2, 10) in rn.covered_segments()
        assert (10, 2) not in rn.covered_segments()

    def test_coverage_count(self, main_route, branch_route):
        rn = RouteNetwork([main_route, branch_route])
        counts = rn.segment_coverage_count()
        assert counts[(0, 1)] == 2
        assert counts[(3, 4)] == 1

    def test_duplicate_ids_rejected(self, main_route):
        with pytest.raises(ValueError):
            RouteNetwork([main_route, main_route])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            RouteNetwork([])

    def test_station_ids(self, main_route, branch_route):
        rn = RouteNetwork([main_route, branch_route])
        assert rn.station_ids == [0, 1, 2, 3, 4, 10]
