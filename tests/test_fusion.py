"""Tests for Bayesian speed fusion (Eq. 4)."""

import pytest

from repro.config import FusionConfig
from repro.core.fusion import BayesianSpeedFuser


@pytest.fixture()
def fuser():
    return BayesianSpeedFuser(FusionConfig(observation_sigma_kmh=4.0))


class TestUpdate:
    def test_first_observation_becomes_belief(self, fuser):
        belief = fuser.update("seg", 40.0, t=0.0)
        assert belief.mean_kmh == 40.0
        assert belief.observation_count == 1

    def test_eq4_precision_weighting(self, fuser):
        fuser.update("seg", 40.0, t=0.0)
        belief = fuser.update("seg", 50.0, t=10.0, sigma_kmh=4.0)
        # Equal variances → midpoint, halved variance.
        assert belief.mean_kmh == pytest.approx(45.0, abs=0.05)
        assert belief.variance == pytest.approx(8.0, rel=0.05)

    def test_tight_observation_dominates(self, fuser):
        fuser.update("seg", 40.0, t=0.0, sigma_kmh=10.0)
        belief = fuser.update("seg", 50.0, t=10.0, sigma_kmh=1.0)
        assert belief.mean_kmh > 49.0

    def test_variance_shrinks_with_observations(self, fuser):
        first = fuser.update("seg", 40.0, t=0.0)
        for k in range(5):
            latest = fuser.update("seg", 40.0 + 0.1 * k, t=10.0 * (k + 1))
        assert latest.variance < first.variance / 3

    def test_rejects_nonpositive_speed(self, fuser):
        with pytest.raises(ValueError):
            fuser.update("seg", 0.0, t=0.0)

    def test_keys_independent(self, fuser):
        fuser.update("a", 40.0, t=0.0)
        fuser.update("b", 20.0, t=0.0)
        assert fuser.current("a").mean_kmh == 40.0
        assert fuser.current("b").mean_kmh == 20.0
        assert len(fuser) == 2


class TestStaleness:
    def test_variance_inflates_over_time(self, fuser):
        fuser.update("seg", 40.0, t=0.0)
        fresh = fuser.current("seg", t=60.0)
        stale = fuser.current("seg", t=2 * 3600.0)
        assert stale.variance > fresh.variance

    def test_mean_unchanged_by_staleness(self, fuser):
        fuser.update("seg", 40.0, t=0.0)
        assert fuser.current("seg", t=3600.0).mean_kmh == 40.0

    def test_stale_belief_yields_to_fresh_data(self):
        fuser = BayesianSpeedFuser(
            FusionConfig(observation_sigma_kmh=4.0,
                         staleness_inflation_kmh_per_hr=6.0)
        )
        for k in range(10):
            fuser.update("seg", 50.0, t=60.0 * k)
        # Six hours later one observation of 20 km/h arrives.
        belief = fuser.update("seg", 20.0, t=6 * 3600.0)
        assert belief.mean_kmh < 30.0

    def test_unknown_key_is_none(self, fuser):
        assert fuser.current("nope") is None

    def test_without_time_returns_raw_belief(self, fuser):
        fuser.update("seg", 40.0, t=0.0)
        assert fuser.current("seg").variance == fuser.current("seg", t=0.0).variance
