"""Tests for the observability layer: metrics, tracing, structured logging."""

import io
import json
import logging
import math
import time

import pytest

from repro.obs import (
    JsonFormatter,
    KeyValueFormatter,
    MetricsRegistry,
    NULL_REGISTRY,
    NULL_TRACER,
    Tracer,
    configure,
    get_logger,
    log_event,
)
from repro.obs.metrics import Counter, Gauge, Histogram, NullRegistry
from repro.obs.tracing import StageTiming


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter("c").inc(-1)

    def test_reset(self):
        counter = Counter("c")
        counter.inc(3)
        counter.reset()
        assert counter.value == 0


class TestGauge:
    def test_set_inc_dec(self):
        gauge = Gauge("g")
        gauge.set(10)
        gauge.inc(2)
        gauge.dec(5)
        assert gauge.value == 7


class TestHistogram:
    def test_bucketing(self):
        hist = Histogram("h", buckets=(1.0, 5.0, 10.0))
        for value in (0.5, 1.0, 3.0, 7.0, 100.0):
            hist.observe(value)
        # le semantics: 1.0 lands in the first bucket.
        assert hist.bucket_counts == [2, 1, 1, 1]
        assert hist.count == 5
        assert hist.sum == pytest.approx(111.5)

    def test_cumulative_ends_at_count(self):
        hist = Histogram("h", buckets=(1.0, 2.0))
        for value in (0.0, 1.5, 99.0):
            hist.observe(value)
        pairs = hist.cumulative()
        assert pairs[-1] == (math.inf, 3)
        cumulative = [count for _, count in pairs]
        assert cumulative == sorted(cumulative)

    def test_rejects_nan_and_bad_buckets(self):
        with pytest.raises(ValueError):
            Histogram("h", buckets=())
        with pytest.raises(ValueError):
            Histogram("h", buckets=(1.0, 1.0))
        with pytest.raises(ValueError):
            Histogram("h", buckets=(1.0,)).observe(float("nan"))


class TestMetricsRegistry:
    def test_get_or_create_shares_instruments(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")

    def test_type_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.counter("a")
        with pytest.raises(ValueError):
            registry.gauge("a")

    def test_as_dict_round_trips_through_json(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(2)
        registry.gauge("g").set(1.5)
        registry.histogram("h", buckets=(1.0,)).observe(0.5)
        doc = json.loads(json.dumps(registry.as_dict()))
        assert doc["counters"]["c"] == 2
        assert doc["gauges"]["g"] == 1.5
        assert doc["histograms"]["h"]["count"] == 1
        assert doc["histograms"]["h"]["bucket_counts"] == [1, 0]

    def test_prometheus_render(self):
        registry = MetricsRegistry()
        registry.counter("trips", help="trips seen").inc(3)
        registry.histogram("lat", buckets=(0.1, 1.0)).observe(0.05)
        text = registry.render_prometheus()
        assert "# TYPE trips counter" in text
        assert "trips 3" in text
        assert '# TYPE lat histogram' in text
        assert 'lat_bucket{le="+Inf"} 1' in text
        assert "lat_count 1" in text

    def test_reset_zeroes_everything(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(9)
        registry.histogram("h", buckets=(1.0,)).observe(0.5)
        registry.reset()
        assert registry.counter("c").value == 0
        assert registry.histogram("h").count == 0

    def test_null_registry_swallows(self):
        assert isinstance(NULL_REGISTRY, NullRegistry)
        NULL_REGISTRY.counter("x").inc(100)
        NULL_REGISTRY.histogram("y").observe(1.0)
        NULL_REGISTRY.gauge("z").set(5)
        NULL_REGISTRY.labeled_counter("lc", ("route",)).labels("1").inc()
        assert NULL_REGISTRY.as_dict() == {
            "counters": {}, "gauges": {}, "histograms": {}, "labeled": {}
        }


class TestMergeDict:
    """merge_dict folds a worker registry's snapshot into a parent."""

    @staticmethod
    def _worker_registry():
        worker = MetricsRegistry()
        worker.counter("c").inc(3)
        worker.gauge("g").set(7.5)
        worker.histogram("h", buckets=(1.0, 5.0)).observe(0.5)
        worker.histogram("h").observe(2.0)
        fam = worker.labeled_counter("routes_total", ("route",))
        fam.labels("179-0").inc(2)
        fam.labels("199-0").inc(1)
        worker.labeled_histogram(
            "route_lat", ("route",), buckets=(1.0,)
        ).labels("179-0").observe(0.2)
        return worker

    def test_merge_into_empty_registry(self):
        parent = MetricsRegistry()
        parent.merge_dict(self._worker_registry().as_dict())
        assert parent.as_dict() == self._worker_registry().as_dict()

    def test_counters_and_histograms_add_gauges_adopt(self):
        parent = self._worker_registry()
        parent.merge_dict(self._worker_registry().as_dict())
        doc = parent.as_dict()
        assert doc["counters"]["c"] == 6
        assert doc["gauges"]["g"] == 7.5            # last writer wins
        assert doc["histograms"]["h"]["count"] == 4
        assert doc["histograms"]["h"]["sum"] == pytest.approx(5.0)
        assert doc["histograms"]["h"]["bucket_counts"] == [2, 2, 0]
        children = doc["labeled"]["routes_total"]["children"]
        assert children['route="179-0"'] == 4
        assert children['route="199-0"'] == 2
        hist_child = doc["labeled"]["route_lat"]["children"]['route="179-0"']
        assert hist_child["count"] == 2

    def test_repeated_shard_merges_accumulate(self):
        worker = MetricsRegistry()
        parent = MetricsRegistry()
        for shard in range(3):
            worker.reset()
            worker.counter("c").inc(shard + 1)
            parent.merge_dict(worker.as_dict())
        assert parent.counter("c").value == 6

    def test_histogram_ladder_mismatch_rejected(self):
        parent = MetricsRegistry()
        parent.histogram("h", buckets=(1.0, 2.0, 3.0))
        worker = MetricsRegistry()
        worker.histogram("h", buckets=(1.0,)).observe(0.5)
        with pytest.raises(ValueError):
            parent.merge_dict(worker.as_dict())

    def test_null_registry_merge_is_inert(self):
        NULL_REGISTRY.merge_dict(self._worker_registry().as_dict())
        assert NULL_REGISTRY.as_dict() == {
            "counters": {}, "gauges": {}, "histograms": {}, "labeled": {}
        }
        # The shared null histogram singleton must stay untouched.
        assert NULL_REGISTRY.histogram("h").count == 0


class TestMergeDictEdgeCases:
    """merge_dict on degenerate and adversarial snapshots."""

    def test_empty_snapshot_is_a_no_op(self):
        parent = self._populated()
        before = parent.as_dict()
        parent.merge_dict({})
        assert parent.as_dict() == before

    def test_empty_sections_are_a_no_op(self):
        parent = self._populated()
        before = parent.as_dict()
        parent.merge_dict(
            {"counters": {}, "gauges": {}, "histograms": {}, "labeled": {}}
        )
        assert parent.as_dict() == before

    @staticmethod
    def _populated():
        registry = MetricsRegistry()
        registry.counter("c").inc(2)
        registry.histogram("h", buckets=(1.0,)).observe(0.5)
        return registry

    def test_histogram_snapshot_without_bucket_counts_rejected(self):
        parent = MetricsRegistry()
        with pytest.raises(ValueError, match="bucket_counts"):
            parent.merge_dict(
                {"histograms": {"h": {"count": 1, "sum": 0.5, "bounds": [1.0]}}}
            )

    def test_labeled_histogram_ladder_mismatch_rejected(self):
        parent = MetricsRegistry()
        parent.labeled_histogram(
            "lat", ("stage",), buckets=(1.0, 2.0)
        ).labels("matching").observe(0.3)
        worker = MetricsRegistry()
        worker.labeled_histogram(
            "lat", ("stage",), buckets=(5.0,)
        ).labels("matching").observe(0.3)
        with pytest.raises(ValueError):
            parent.merge_dict(worker.as_dict())

    def test_labeled_family_unknown_type_rejected(self):
        parent = MetricsRegistry()
        with pytest.raises(ValueError, match="unknown type"):
            parent.merge_dict(
                {"labeled": {"fam": {"type": "summary", "labels": ["x"],
                                     "overflow_total": 0, "children": {}}}}
            )

    def test_overflow_children_merge_and_totals_add(self):
        from repro.obs.labels import OVERFLOW_LABEL_VALUE

        def overflowing_worker():
            worker = MetricsRegistry()
            fam = worker.labeled_counter("rt", ("route",), max_children=2)
            fam.labels("a").inc(1)
            fam.labels("b").inc(2)
            fam.labels("c").inc(5)          # beyond the cap -> _overflow child
            fam.labels("d").inc(7)          # shares the same _overflow child
            return worker

        snapshot = overflowing_worker().as_dict()
        overflow_key = f'route="{OVERFLOW_LABEL_VALUE}"'
        assert snapshot["labeled"]["rt"]["overflow_total"] == 2
        assert snapshot["labeled"]["rt"]["children"][overflow_key] == 12

        parent = MetricsRegistry()
        parent.merge_dict(snapshot)
        parent.merge_dict(overflowing_worker().as_dict())
        family = parent.as_dict()["labeled"]["rt"]
        # Counts add child-for-child (the _overflow child included) and the
        # overflow totals accumulate across merges.
        assert family["children"]['route="a"'] == 2
        assert family["children"]['route="b"'] == 4
        assert family["children"][overflow_key] == 24
        assert family["overflow_total"] == 4


class TestParsePrometheusIngestFamilies:
    """parse_prometheus_text round-trips the ingest_* telemetry families."""

    @staticmethod
    def _ingest_registry():
        from repro.obs.metrics import parse_prometheus_text  # noqa: F401

        registry = MetricsRegistry()
        registry.counter("ingest_batches_total").inc(2)
        registry.counter("ingest_shards_total").inc(6)
        registry.counter("ingest_trips_total").inc(40)
        registry.gauge("ingest_workers").set(4)
        registry.histogram(
            "ingest_shard_trips", buckets=(1, 2, 4, 8)
        ).observe(3)
        registry.histogram("ingest_batch_seconds").observe(0.25)
        fam = registry.labeled_histogram("ingest_stage_seconds", ("stage",))
        for stage, seconds in (
            ("matching", 0.12), ("clustering", 0.03), ("trip_mapping", 0.02)
        ):
            fam.labels(stage).observe(seconds)
        return registry

    def test_families_parse_back_with_types_and_values(self):
        from repro.obs.metrics import parse_prometheus_text

        families = parse_prometheus_text(
            self._ingest_registry().render_prometheus()
        )
        assert families["ingest_batches_total"]["type"] == "counter"
        assert families["ingest_workers"]["type"] == "gauge"
        assert families["ingest_shard_trips"]["type"] == "histogram"
        assert families["ingest_stage_seconds"]["type"] == "histogram"

        def sample(family, suffix, **labels):
            for name, sample_labels, value in families[family]["samples"]:
                if name.endswith(suffix) and all(
                    sample_labels.get(k) == v for k, v in labels.items()
                ):
                    return value
            raise AssertionError(f"no {family}{suffix} sample with {labels}")

        assert sample("ingest_batches_total", "ingest_batches_total") == 2
        assert sample("ingest_trips_total", "ingest_trips_total") == 40
        assert sample("ingest_workers", "ingest_workers") == 4
        assert sample("ingest_shard_trips", "_count") == 1
        assert sample("ingest_shard_trips", "_sum") == 3
        assert sample("ingest_stage_seconds", "_count", stage="matching") == 1
        assert sample(
            "ingest_stage_seconds", "_sum", stage="clustering"
        ) == pytest.approx(0.03)

    def test_per_stage_buckets_grouped_under_family(self):
        from repro.obs.metrics import parse_prometheus_text

        families = parse_prometheus_text(
            self._ingest_registry().render_prometheus()
        )
        stages = {
            labels["stage"]
            for name, labels, _ in families["ingest_stage_seconds"]["samples"]
            if name.endswith("_bucket")
        }
        assert stages == {"matching", "clustering", "trip_mapping"}
        # Every bucket series carries a le= boundary label.
        assert all(
            "le" in labels
            for name, labels, _ in families["ingest_stage_seconds"]["samples"]
            if name.endswith("_bucket")
        )


class TestParsePrometheusFleetFamilies:
    """parse_prometheus_text round-trips the high-cardinality fleet
    families — ``headway_seconds{route,stop}`` and
    ``od_flow_trips{origin,dest}`` — including the shared ``_overflow``
    child a capped family degrades into."""

    @staticmethod
    def _fleet_registry():
        from repro.obs.labels import OVERFLOW_LABEL_VALUE  # noqa: F401

        registry = MetricsRegistry()
        headway = registry.labeled_gauge(
            "headway_seconds", ("route", "stop"), max_children=4
        )
        for stop in range(4):
            headway.labels("179-0", str(stop)).set(600.0 + stop)
        # Beyond the cap: both land in the shared _overflow child.
        headway.labels("199-1", "9").set(120.0)
        headway.labels("199-1", "10").set(130.0)
        od = registry.labeled_counter(
            "od_flow_trips", ("origin", "dest"), max_children=3
        )
        od.labels("1", "2").inc(5)
        od.labels("1", "3").inc(2)
        od.labels("2", "3").inc(1)
        od.labels("7", "8").inc(4)         # overflow
        registry.labeled_gauge("bunching_rate", ("route",)).labels(
            "179-0"
        ).set(0.25)
        return registry

    def test_labeled_children_round_trip(self):
        from repro.obs.metrics import parse_prometheus_text

        families = parse_prometheus_text(
            self._fleet_registry().render_prometheus()
        )
        assert families["headway_seconds"]["type"] == "gauge"
        assert families["od_flow_trips"]["type"] == "counter"
        assert families["bunching_rate"]["type"] == "gauge"

        headways = {
            (labels["route"], labels["stop"]): value
            for _, labels, value in families["headway_seconds"]["samples"]
        }
        assert headways[("179-0", "0")] == 600.0
        assert headways[("179-0", "3")] == 603.0
        flows = {
            (labels["origin"], labels["dest"]): value
            for _, labels, value in families["od_flow_trips"]["samples"]
        }
        assert flows[("1", "2")] == 5
        assert flows[("2", "3")] == 1
        assert families["bunching_rate"]["samples"] == [
            ("bunching_rate", {"route": "179-0"}, 0.25)
        ]

    def test_overflow_child_survives_the_round_trip(self):
        from repro.obs.labels import OVERFLOW_LABEL_VALUE
        from repro.obs.metrics import parse_prometheus_text

        families = parse_prometheus_text(
            self._fleet_registry().render_prometheus()
        )
        overflow_key = (OVERFLOW_LABEL_VALUE, OVERFLOW_LABEL_VALUE)
        headways = {
            (labels["route"], labels["stop"]): value
            for _, labels, value in families["headway_seconds"]["samples"]
        }
        # Gauge overflow keeps the latest write beyond the cap.
        assert headways[overflow_key] == 130.0
        flows = {
            (labels["origin"], labels["dest"]): value
            for _, labels, value in families["od_flow_trips"]["samples"]
        }
        # Counter overflow accumulates every capped increment.
        assert flows[overflow_key] == 4
        # The capped identities themselves are NOT exported as children.
        assert ("199-1", "9") not in headways
        assert ("7", "8") not in flows


class TestTracer:
    def test_nested_spans_aggregate_by_name(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
            with tracer.span("inner"):
                pass
        stats = tracer.stage_stats()
        assert stats["outer"]["count"] == 1
        assert stats["inner"]["count"] == 2
        assert stats["outer"]["total_s"] >= stats["inner"]["total_s"]

    def test_depth_and_current_span(self):
        tracer = Tracer()
        assert tracer.depth == 0
        with tracer.span("a"):
            assert tracer.depth == 1
            assert tracer.current_span == "a"
            with tracer.span("b"):
                assert tracer.depth == 2
                assert tracer.current_span == "b"
        assert tracer.depth == 0
        assert tracer.current_span is None

    def test_durations_measured(self):
        tracer = Tracer()
        with tracer.span("sleep"):
            time.sleep(0.01)
        timing = tracer.timing("sleep")
        assert timing.count == 1
        assert timing.total_s >= 0.008
        assert timing.min_s <= timing.max_s

    def test_exception_still_closes_span(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("boom"):
                raise RuntimeError("x")
        assert tracer.depth == 0
        assert tracer.stage_stats()["boom"]["count"] == 1

    def test_reset(self):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        tracer.reset()
        assert tracer.stage_stats() == {}

    def test_reset_with_open_span_is_an_error(self):
        tracer = Tracer()
        span = tracer.span("a")
        span.__enter__()
        with pytest.raises(RuntimeError):
            tracer.reset()

    def test_null_tracer_is_free_and_silent(self):
        with NULL_TRACER.span("anything"):
            pass
        assert NULL_TRACER.stage_stats() == {}
        assert NULL_TRACER.depth == 0
        assert not NULL_TRACER.enabled


class TestStageTiming:
    def test_record_tracks_extremes(self):
        timing = StageTiming()
        timing.record(1.0)
        timing.record(3.0)
        assert timing.count == 2
        assert timing.mean_s == pytest.approx(2.0)
        assert timing.min_s == 1.0
        assert timing.max_s == 3.0
        assert timing.as_dict()["total_s"] == pytest.approx(4.0)

    def test_empty_as_dict(self):
        assert StageTiming().as_dict()["min_s"] == 0.0


class TestStructuredLogging:
    def test_key_value_formatter(self):
        stream = io.StringIO()
        configure(level="debug", stream=stream)
        log = get_logger("test.kv")
        log_event(log, "trip_done", trips=3, rate=0.51234567, note="two words")
        line = stream.getvalue().strip()
        assert "event=trip_done" in line
        assert "trips=3" in line
        assert "rate=0.512346" in line
        assert 'note="two words"' in line
        assert "logger=repro.test.kv" in line

    def test_json_formatter(self):
        stream = io.StringIO()
        configure(level="info", json=True, stream=stream)
        log = get_logger("test.json")
        log_event(log, "published", segments=17)
        payload = json.loads(stream.getvalue())
        assert payload["event"] == "published"
        assert payload["segments"] == 17
        assert payload["level"] == "info"

    def test_level_filtering(self):
        stream = io.StringIO()
        configure(level="warning", stream=stream)
        log_event(get_logger("test.lvl"), "quiet", level=logging.INFO)
        assert stream.getvalue() == ""

    def test_reconfigure_replaces_handler(self):
        a, b = io.StringIO(), io.StringIO()
        configure(level="info", stream=a)
        configure(level="info", stream=b)
        log_event(get_logger("test.re"), "once")
        assert a.getvalue() == ""
        assert b.getvalue().count("event=once") == 1

    def test_unknown_level_rejected(self):
        with pytest.raises(ValueError):
            configure(level="noisy")

    def test_get_logger_namespaces(self):
        assert get_logger("core.server").name == "repro.core.server"
        assert get_logger("repro.core.server").name == "repro.core.server"
        assert get_logger().name == "repro"

    def teardown_method(self):
        # Leave the shared namespace logger quiet for other tests.
        configure(level="warning", stream=io.StringIO())
