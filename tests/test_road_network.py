"""Tests for the directed road network."""

import pytest

from repro.city.geometry import Point
from repro.city.road_network import FREE_SPEED_MS, RoadClass, RoadNetwork


@pytest.fixture()
def triangle() -> RoadNetwork:
    net = RoadNetwork()
    net.add_node(0, Point(0, 0))
    net.add_node(1, Point(1000, 0))
    net.add_node(2, Point(1000, 1000))
    net.add_road(0, 1, RoadClass.MAJOR)
    net.add_road(1, 2, RoadClass.MINOR)
    return net


class TestConstruction:
    def test_roads_are_bidirectional(self, triangle):
        assert triangle.has_segment((0, 1))
        assert triangle.has_segment((1, 0))

    def test_segment_count(self, triangle):
        assert len(triangle.segment_ids) == 4

    def test_duplicate_node_same_position_ok(self, triangle):
        triangle.add_node(0, Point(0, 0))

    def test_duplicate_node_moved_raises(self, triangle):
        with pytest.raises(ValueError):
            triangle.add_node(0, Point(5, 5))

    def test_road_requires_existing_nodes(self, triangle):
        with pytest.raises(KeyError):
            triangle.add_road(0, 99)

    def test_self_loop_rejected(self, triangle):
        with pytest.raises(ValueError):
            triangle.add_road(1, 1)

    def test_free_speed_by_class(self, triangle):
        assert triangle.segment((0, 1)).free_speed_ms == FREE_SPEED_MS[RoadClass.MAJOR]
        assert triangle.segment((1, 2)).free_speed_ms == FREE_SPEED_MS[RoadClass.MINOR]

    def test_custom_free_speed(self):
        net = RoadNetwork()
        net.add_node(0, Point(0, 0))
        net.add_node(1, Point(100, 0))
        fwd, _ = net.add_road(0, 1, free_speed_ms=10.0)
        assert fwd.free_speed_ms == 10.0


class TestSegment:
    def test_length(self, triangle):
        assert triangle.segment((0, 1)).length_m == pytest.approx(1000.0)

    def test_free_travel_time(self, triangle):
        seg = triangle.segment((0, 1))
        assert seg.free_travel_time_s == pytest.approx(seg.length_m / seg.free_speed_ms)

    def test_reverse_id(self, triangle):
        assert triangle.segment((0, 1)).reverse_id == (1, 0)


class TestQueries:
    def test_neighbors(self, triangle):
        assert set(triangle.neighbors(1)) == {0, 2}

    def test_total_length_counts_roads_once(self, triangle):
        assert triangle.total_length_m() == pytest.approx(2000.0)

    def test_path_segments(self, triangle):
        segs = triangle.path_segments([0, 1, 2])
        assert [s.segment_id for s in segs] == [(0, 1), (1, 2)]

    def test_path_segments_invalid(self, triangle):
        with pytest.raises(KeyError):
            triangle.path_segments([0, 2])

    def test_undirected_ids_are_half(self, triangle):
        assert len(triangle.undirected_segment_ids()) == 2


class TestShortestPath:
    def test_direct(self, triangle):
        assert triangle.shortest_path(0, 2) == [0, 1, 2]

    def test_trivial(self, triangle):
        assert triangle.shortest_path(0, 0) == [0]

    def test_unknown_node(self, triangle):
        with pytest.raises(KeyError):
            triangle.shortest_path(0, 99)

    def test_unreachable(self):
        net = RoadNetwork()
        net.add_node(0, Point(0, 0))
        net.add_node(1, Point(10, 0))
        with pytest.raises(ValueError):
            net.shortest_path(0, 1)

    def test_prefers_fast_roads(self):
        # Square 0-1-2 vs direct 0-2: direct is minor and slow, detour major.
        net = RoadNetwork()
        net.add_node(0, Point(0, 0))
        net.add_node(1, Point(1000, 0))
        net.add_node(2, Point(1000, 1000))
        net.add_road(0, 1, free_speed_ms=30.0)
        net.add_road(1, 2, free_speed_ms=30.0)
        net.add_node(3, Point(0, 1000))
        net.add_road(0, 3, free_speed_ms=5.0)
        net.add_road(3, 2, free_speed_ms=5.0)
        assert net.shortest_path(0, 2) == [0, 1, 2]
