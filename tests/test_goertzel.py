"""Tests for the Goertzel algorithm and its FFT comparator."""

import math

import numpy as np
import pytest

from repro.phone.goertzel import (
    band_powers,
    fft_band_power,
    fft_op_count,
    goertzel_op_count,
    goertzel_power,
    goertzel_power_vectorized,
    total_power,
)

SR = 8000


def tone(freq, duration_s=0.1, amplitude=1.0, sr=SR):
    t = np.arange(int(duration_s * sr)) / sr
    return amplitude * np.sin(2 * np.pi * freq * t)


class TestGoertzelPower:
    def test_detects_matching_tone(self):
        # Pure unit sine at an exact bin: |X|²/N² = 1/4.
        signal = tone(1000.0)
        assert goertzel_power(signal, SR, 1000.0) == pytest.approx(0.25, rel=1e-6)

    def test_rejects_other_tone(self):
        signal = tone(1000.0)
        assert goertzel_power(signal, SR, 3000.0) < 1e-6

    def test_scales_with_amplitude_squared(self):
        weak = goertzel_power(tone(1000.0, amplitude=0.1), SR, 1000.0)
        strong = goertzel_power(tone(1000.0, amplitude=0.2), SR, 1000.0)
        assert strong == pytest.approx(4 * weak, rel=1e-6)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            goertzel_power(np.array([]), SR, 1000.0)

    def test_rejects_out_of_band_frequency(self):
        with pytest.raises(ValueError):
            goertzel_power(tone(1000.0), SR, 5000.0)


class TestAgreementAcrossImplementations:
    @pytest.mark.parametrize("freq", [500.0, 1000.0, 3000.0])
    def test_vectorized_equals_recurrence(self, freq, rng):
        signal = rng.standard_normal(1600)
        loop = goertzel_power(signal, SR, freq)
        fast = goertzel_power_vectorized(signal, SR, freq)
        assert fast == pytest.approx(loop, rel=1e-9)

    @pytest.mark.parametrize("freq", [1000.0, 3000.0])
    def test_fft_equals_goertzel_on_bin(self, freq, rng):
        signal = rng.standard_normal(1600)
        assert fft_band_power(signal, SR, freq) == pytest.approx(
            goertzel_power(signal, SR, freq), rel=1e-9
        )

    def test_band_powers_slow_and_fast_paths_agree(self, rng):
        signal = rng.standard_normal(800)
        fast = band_powers(signal, SR, (1000.0, 3000.0), fast=True)
        slow = band_powers(signal, SR, (1000.0, 3000.0), fast=False)
        assert fast == pytest.approx(slow, rel=1e-9)


class TestTotalPower:
    def test_unit_sine(self):
        assert total_power(tone(1000.0)) == pytest.approx(0.5, rel=1e-3)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            total_power(np.array([]))


class TestComplexityModels:
    def test_goertzel_linear_in_n_and_m(self):
        assert goertzel_op_count(2400, 2) == 2 * goertzel_op_count(2400, 1)
        assert goertzel_op_count(4800, 1) == 2 * goertzel_op_count(2400, 1)

    def test_fft_superlinear(self):
        assert fft_op_count(4800) > 2 * fft_op_count(2400)

    def test_goertzel_wins_for_few_tones(self):
        # §IV-D: M < log N (and K_g << K_f) makes Goertzel cheaper.
        n = 2400
        m = 2
        assert goertzel_op_count(n, m) < fft_op_count(n)

    def test_fft_wins_for_many_tones(self):
        n = 2400
        m = 64
        assert goertzel_op_count(n, m) > fft_op_count(n)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            goertzel_op_count(-1, 1)
        with pytest.raises(ValueError):
            fft_op_count(-1)
