"""Tests for multi-day campaigns (the paper's two-phase experiment)."""

import numpy as np
import pytest

from repro.city import build_city
from repro.sim.campaign import Campaign, CampaignPhase
from repro.sim.world import World

from conftest import SMALL_SPEC


@pytest.fixture(scope="module")
def campaign_result():
    world = World(city=build_city(SMALL_SPEC), seed=17)
    campaign = Campaign(world, start="08:00", end="09:30", headway_s=1200.0)
    phases = [
        CampaignPhase("sparse", days=2, participation_rate=0.03,
                      route_ids=("179-0", "179-1")),
        CampaignPhase("intensive", days=2, participation_rate=0.30),
    ]
    return campaign.run(phases)


class TestCampaign:
    def test_day_count(self, campaign_result):
        assert len(campaign_result.days) == 4
        assert [d.phase for d in campaign_result.days] == [
            "sparse", "sparse", "intensive", "intensive",
        ]

    def test_day_indices_sequential(self, campaign_result):
        assert [d.day_index for d in campaign_result.days] == [0, 1, 2, 3]

    def test_intensive_phase_yields_more_data(self, campaign_result):
        sparse = campaign_result.uploads_per_day("sparse")
        intensive = campaign_result.uploads_per_day("intensive")
        assert intensive > 3 * sparse

    def test_sparse_phase_concentrates_on_few_routes(self, campaign_result):
        # Sparse days ran only service 179, so daily bus trips differ.
        sparse_trips = campaign_result.phase_days("sparse")[0].bus_trips
        intensive_trips = campaign_result.phase_days("intensive")[0].bus_trips
        assert intensive_trips > sparse_trips

    def test_per_day_uploads_sum_to_server_total(self, campaign_result):
        total = sum(d.uploads for d in campaign_result.days)
        assert total == campaign_result.world.server.stats.trips_received

    def test_coverage_grows_with_intensity(self, campaign_result):
        sparse_cov = np.mean(
            [d.map_coverage for d in campaign_result.phase_days("sparse")]
        )
        intensive_cov = np.mean(
            [d.map_coverage for d in campaign_result.phase_days("intensive")]
        )
        assert intensive_cov > sparse_cov

    def test_publish_times_monotone_across_days(self, campaign_result):
        times = campaign_result.world.server.traffic_map.publish_times
        assert times == sorted(times)
        assert len(times) > 20

    def test_unknown_phase_raises(self, campaign_result):
        with pytest.raises(KeyError):
            campaign_result.uploads_per_day("nope")

    def test_config_restored_after_run(self, campaign_result):
        from repro.config import RiderConfig

        assert (
            campaign_result.world.config.riders.participation_rate
            == RiderConfig().participation_rate
        )


class TestPhaseValidation:
    def test_rejects_zero_days(self):
        with pytest.raises(ValueError):
            CampaignPhase("x", days=0, participation_rate=0.1)

    def test_rejects_bad_rate(self):
        with pytest.raises(ValueError):
            CampaignPhase("x", days=1, participation_rate=0.0)

    def test_rejects_empty_campaign(self):
        world = World(city=build_city(SMALL_SPEC), seed=1)
        with pytest.raises(ValueError):
            Campaign(world).run([])
