"""Tests for the power model (Table III)."""

import numpy as np
import pytest

from repro.phone.power import Handset, PowerModel, Sensor, TABLE_III_SETTINGS


@pytest.fixture()
def model():
    return PowerModel()


class TestMeanPower:
    def test_baseline_per_handset(self, model):
        assert model.mean_power_mw(Handset.HTC_SENSATION, []) == pytest.approx(70.0)
        assert model.mean_power_mw(Handset.NEXUS_ONE, []) == pytest.approx(84.0)

    def test_cellular_nearly_free(self, model):
        """§III-A: marginal energy of cellular sampling is negligible."""
        base = model.mean_power_mw(Handset.HTC_SENSATION, [])
        with_cell = model.mean_power_mw(Handset.HTC_SENSATION, [Sensor.CELLULAR])
        assert with_cell - base < 5.0

    def test_gps_dominates(self, model):
        """Fig. 1 motivation: GPS costs hundreds of mW."""
        base = model.mean_power_mw(Handset.HTC_SENSATION, [])
        with_gps = model.mean_power_mw(Handset.HTC_SENSATION, [Sensor.GPS])
        assert with_gps - base > 200.0

    def test_app_configuration_matches_paper(self, model):
        """§IV-D: the app (cellular + Goertzel mic) draws ≈82 mW on HTC."""
        app = model.mean_power_mw(
            Handset.HTC_SENSATION, [Sensor.CELLULAR, Sensor.MIC_GOERTZEL]
        )
        assert app == pytest.approx(82.0, abs=5.0)

    def test_gps_variant_much_worse(self, model):
        """§IV-D: with GPS instead of cellular the app draws ≈450 mW."""
        gps_app = model.mean_power_mw(
            Handset.HTC_SENSATION, [Sensor.GPS, Sensor.MIC_GOERTZEL]
        )
        assert gps_app == pytest.approx(450.0, abs=15.0)

    def test_goertzel_saving(self, model):
        """§IV-D: Goertzel saves ≈60 mW over FFT."""
        assert model.goertzel_saving_mw() == pytest.approx(60.0, abs=10.0)


class TestSessions:
    def test_measurement_noise(self, model):
        rng = np.random.default_rng(0)
        values = {
            model.measure_session_mw(Handset.NEXUS_ONE, [Sensor.GPS], rng=rng)
            for _ in range(5)
        }
        assert len(values) == 5

    def test_longer_sessions_less_noisy(self, model):
        rng = np.random.default_rng(1)
        short = np.std([
            model.measure_session_mw(Handset.NEXUS_ONE, [], duration_s=60, rng=rng)
            for _ in range(200)
        ])
        long = np.std([
            model.measure_session_mw(Handset.NEXUS_ONE, [], duration_s=3600, rng=rng)
            for _ in range(200)
        ])
        assert long < short

    def test_rejects_bad_duration(self, model):
        with pytest.raises(ValueError):
            model.measure_session_mw(Handset.NEXUS_ONE, [], duration_s=0.0)

    def test_session_energy(self, model):
        energy = model.session_energy_j(Handset.HTC_SENSATION, [], duration_s=600.0)
        assert energy == pytest.approx(70.0 / 1000.0 * 600.0)


class TestTableIII:
    def test_rows_and_columns(self, model):
        table = model.table_iii(rng=np.random.default_rng(2))
        assert len(table) == len(TABLE_III_SETTINGS)
        for row in table.values():
            assert set(row) == {"htc", "nexus"}

    def test_row_ordering_matches_paper(self, model):
        """GPS rows must dwarf cellular rows on both handsets."""
        table = model.table_iii(rng=np.random.default_rng(3))
        for handset in ("htc", "nexus"):
            assert table["GPS 0.5Hz"][handset][0] > 3 * table["Cellular 1Hz"][handset][0]
            assert (
                table["GPS+Mic(Goertzel)"][handset][0]
                > table["Cellular+Mic(Goertzel)"][handset][0]
            )
