"""Tests for the ground-truth traffic field."""

import numpy as np
import pytest

from repro.city.geometry import Point
from repro.sim.traffic import DailyProfile, Hotspot, TrafficField, default_hotspots_for
from repro.util.units import parse_hhmm


class TestCongestion:
    def test_bounded(self, small_city, traffic):
        for seg in small_city.network.segment_ids[:40]:
            for hour in range(0, 24, 3):
                c = traffic.congestion(seg, hour * 3600.0)
                assert TrafficField.MIN_CONGESTION <= c <= 1.0

    def test_deterministic(self, small_city, traffic):
        seg = small_city.network.segment_ids[0]
        assert traffic.congestion(seg, 30_000.0) == traffic.congestion(seg, 30_000.0)

    def test_morning_peak_slower_than_night(self, small_city, traffic):
        morning = parse_hhmm("08:30")
        night = parse_hhmm("03:00")
        slower = sum(
            1
            for seg in small_city.network.segment_ids
            if traffic.car_speed_ms(seg, morning) < traffic.car_speed_ms(seg, night)
        )
        assert slower > 0.8 * len(small_city.network.segment_ids)

    def test_hotspot_deepens_local_morning_congestion(self, small_city):
        spec = small_city.spec
        hotspot = Hotspot("uni", Point(spec.width_m / 2, spec.height_m / 2))
        with_spot = TrafficField(small_city.network, [hotspot], seed=1)
        without = TrafficField(small_city.network, [], seed=1)
        morning = parse_hhmm("08:30")
        # Segment heading toward the hotspot near it.
        target = min(
            small_city.network.segments,
            key=lambda s: s.start.midpoint(s.end).distance_to(hotspot.position),
        )
        assert (
            with_spot.congestion(target.segment_id, morning)
            <= without.congestion(target.segment_id, morning)
        )

    def test_directionality(self, small_city):
        """Somewhere in the region, opposite carriageways differ at peak."""
        traffic = TrafficField(
            small_city.network,
            default_hotspots_for(small_city.spec.width_m, small_city.spec.height_m),
            seed=1,
        )
        morning = parse_hhmm("08:30")
        diffs = [
            abs(
                traffic.congestion(seg, morning)
                - traffic.congestion((seg[1], seg[0]), morning)
            )
            for seg in small_city.network.undirected_segment_ids()
        ]
        assert max(diffs) > 0.05


class TestTravelTime:
    def test_positive_and_consistent(self, small_city, traffic):
        seg = small_city.network.segment_ids[0]
        tt = traffic.car_travel_time_s(seg, 30_000.0)
        segment = small_city.network.segment(seg)
        assert tt >= segment.length_m / segment.free_speed_ms - 1e-9

    def test_free_flow_at_night(self, small_city, traffic):
        seg = small_city.network.segment_ids[0]
        segment = small_city.network.segment(seg)
        tt = traffic.car_travel_time_s(seg, parse_hhmm("03:30"))
        assert tt == pytest.approx(segment.free_travel_time_s, rel=0.2)


class TestRegionStats:
    def test_mean_region_speed_dips_at_peak(self, traffic):
        peak = traffic.mean_region_speed_kmh(parse_hhmm("08:30"))
        off = traffic.mean_region_speed_kmh(parse_hhmm("03:00"))
        assert peak < off

    def test_speeds_in_urban_band(self, traffic):
        for hour in (7, 9, 13, 18, 22):
            speed = traffic.mean_region_speed_kmh(hour * 3600.0)
            assert 15.0 < speed < 70.0


class TestDailyProfile:
    def test_bumps_peak_at_configured_times(self):
        profile = DailyProfile()
        morning, _ = profile.bumps(profile.morning_peak_s)
        assert morning == pytest.approx(1.0)
        _, evening = profile.bumps(profile.evening_peak_s)
        assert evening == pytest.approx(1.0)

    def test_bumps_decay(self):
        profile = DailyProfile()
        m_at_peak, _ = profile.bumps(profile.morning_peak_s)
        m_later, _ = profile.bumps(profile.morning_peak_s + 3 * profile.morning_width_s)
        assert m_later < 0.05 * m_at_peak

    def test_profile_repeats_daily(self):
        """Multi-day campaigns rely on the profile wrapping at midnight."""
        profile = DailyProfile()
        t = profile.morning_peak_s
        assert profile.bumps(t) == profile.bumps(t + 86400.0)
        assert profile.bumps(t) == profile.bumps(t + 5 * 86400.0)
