"""Tests for audio and motion synthesis."""

import numpy as np
import pytest

from repro.config import AccelConfig, BeepConfig
from repro.phone.goertzel import band_powers, total_power
from repro.sim.audio import synthesize_cabin_audio, synthesize_motion


class TestCabinAudio:
    def test_length(self, config):
        audio = synthesize_cabin_audio(2.0, [], config.beep, rng=np.random.default_rng(0))
        assert len(audio) == 2 * config.beep.sample_rate_hz

    def test_rejects_nonpositive_duration(self, config):
        with pytest.raises(ValueError):
            synthesize_cabin_audio(0.0, [], config.beep)

    def test_rejects_out_of_range_beep(self, config):
        with pytest.raises(ValueError):
            synthesize_cabin_audio(2.0, [3.0], config.beep)

    def test_beep_raises_tone_band_energy(self, config):
        cfg = config.beep
        rng = np.random.default_rng(1)
        audio = synthesize_cabin_audio(3.0, [1.5], cfg, rng=rng)
        sr = cfg.sample_rate_hz
        beep_window = audio[int(1.5 * sr) : int(1.5 * sr) + int(0.12 * sr)]
        noise_window = audio[int(0.5 * sr) : int(0.5 * sr) + int(0.12 * sr)]
        beep_ratio = band_powers(beep_window, sr, cfg.tone_frequencies_hz).sum() / total_power(beep_window)
        noise_ratio = band_powers(noise_window, sr, cfg.tone_frequencies_hz).sum() / total_power(noise_window)
        assert beep_ratio > 10 * noise_ratio

    def test_noise_rms_calibrated(self, config):
        audio = synthesize_cabin_audio(
            2.0, [], config.beep, noise_rms=0.05, rng=np.random.default_rng(2)
        )
        assert np.sqrt(np.mean(audio**2)) == pytest.approx(0.05, rel=0.05)

    def test_noise_is_low_frequency_weighted(self, config):
        cfg = config.beep
        audio = synthesize_cabin_audio(2.0, [], cfg, rng=np.random.default_rng(3))
        spectrum = np.abs(np.fft.rfft(audio)) ** 2
        freqs = np.fft.rfftfreq(len(audio), 1.0 / cfg.sample_rate_hz)
        low = spectrum[(freqs > 20) & (freqs < 400)].mean()
        high = spectrum[(freqs > 2500) & (freqs < 3500)].mean()
        assert low > 5 * high


class TestMotion:
    def test_mode_recorded(self):
        trace = synthesize_motion("bus", 30.0, rng=np.random.default_rng(0))
        assert trace.mode == "bus"

    def test_invalid_mode(self):
        with pytest.raises(ValueError):
            synthesize_motion("bicycle", 30.0)

    def test_bus_rougher_than_train(self):
        rng = np.random.default_rng(1)
        bus = synthesize_motion("bus", 120.0, rng=rng)
        train = synthesize_motion("train", 120.0, rng=rng)
        assert np.var(bus.samples) > 5 * np.var(train.samples)

    def test_sample_rate(self):
        cfg = AccelConfig(sample_rate_hz=100.0)
        trace = synthesize_motion("train", 10.0, cfg, rng=np.random.default_rng(2))
        assert len(trace.samples) == 1000
        assert trace.sample_rate_hz == 100.0
