"""Tests for unit conversions and clock helpers."""

import pytest

from repro.util.units import SECONDS_PER_DAY, hhmm, kmh_to_ms, ms_to_kmh, parse_hhmm


class TestSpeedConversions:
    def test_kmh_to_ms(self):
        assert kmh_to_ms(36.0) == pytest.approx(10.0)

    def test_ms_to_kmh(self):
        assert ms_to_kmh(10.0) == pytest.approx(36.0)

    def test_round_trip(self):
        assert ms_to_kmh(kmh_to_ms(53.7)) == pytest.approx(53.7)


class TestClock:
    def test_parse_basic(self):
        assert parse_hhmm("08:30") == 8 * 3600 + 30 * 60

    def test_parse_with_seconds(self):
        assert parse_hhmm("08:30:15") == 8 * 3600 + 30 * 60 + 15

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_hhmm("8h30")

    def test_parse_rejects_bad_minutes(self):
        with pytest.raises(ValueError):
            parse_hhmm("08:75")

    def test_format(self):
        assert hhmm(8 * 3600 + 30 * 60) == "08:30"

    def test_format_wraps_past_midnight(self):
        assert hhmm(SECONDS_PER_DAY + 60) == "00:01"

    def test_round_trip(self):
        assert parse_hhmm(hhmm(parse_hhmm("17:45"))) == parse_hhmm("17:45")
