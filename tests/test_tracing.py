"""Tests for the span-tracing subsystem (obs/tracing.py).

Covers the tracer edge cases the issue calls out — the NULL_TRACER
zero-allocation path, nested-span parent linkage, deterministic head
sampling, exemplar eviction order — plus trace-context propagation,
the Chrome trace-event export/validator/summarizer, and an end-to-end
parallel-engine integration check.
"""

import json

import pytest

from repro.obs.tracing import (
    Exemplar,
    ExemplarStore,
    NULL_TRACER,
    SamplingPolicy,
    SpanRecord,
    StageTiming,
    TraceContext,
    Tracer,
    chrome_trace_document,
    format_trace_summary,
    summarize_chrome_trace,
    validate_chrome_trace,
)


@pytest.fixture(scope="module")
def batch(small_city, traffic, sampler, config):
    """Uploads from two bus routes (same recipe as test_ingest)."""
    import itertools as it

    import numpy as np

    from repro.phone import record_participant_trips
    from repro.sim.bus import simulate_bus_trip
    from repro.util.units import parse_hhmm

    rider_ids = it.count()
    uploads = []
    for k, route_id in enumerate(("179-0", "199-0")):
        route = small_city.route_network.route(route_id)
        trace = simulate_bus_trip(
            route, parse_hhmm("08:10") + 120.0 * k, traffic, rider_ids,
            rng=np.random.default_rng(21 + k),
        )
        uploads.extend(record_participant_trips(
            trace, small_city.registry, sampler, config,
            rng=np.random.default_rng(31 + k),
        ))
    assert len(uploads) >= 4
    return uploads


def make_record(name="matching", span_id="a.1", parent_id=None, start=0.0,
                dur=0.01, pid=1, worker=None, **attrs):
    return SpanRecord(
        name=name, trace_id="t", span_id=span_id, parent_id=parent_id,
        start_s=start, duration_s=dur, pid=pid, worker=worker, attrs=attrs,
    )


class TestNullTracer:
    def test_span_is_one_shared_object(self):
        # The null fast path allocates nothing per call: every span()
        # returns the same no-op context manager.
        a = NULL_TRACER.span("matching")
        b = NULL_TRACER.span("clustering", key="trip-1")
        assert a is b

    def test_records_nothing(self):
        with NULL_TRACER.span("matching", key="k"):
            pass
        NULL_TRACER.record_span("shard_serialize", start_s=0.0,
                                duration_s=1.0, bytes=10)
        assert NULL_TRACER.records() == []
        assert NULL_TRACER.stage_stats() == {}
        assert NULL_TRACER.exemplar_summaries() == []
        assert NULL_TRACER.wall_s == 0.0
        assert NULL_TRACER.chrome_trace()["traceEvents"] == []

    def test_ipc_context_and_absorb_are_noops(self):
        assert NULL_TRACER.ipc_context() is None
        state = NULL_TRACER.export_trace_state()
        assert state["records"] == [] and state["stages"] == {}
        NULL_TRACER.absorb({"stages": {"matching": {"count": 3}},
                            "records": [make_record()], "exemplars": [],
                            "dropped": 2})
        assert NULL_TRACER.stage_stats() == {}
        assert not NULL_TRACER.enabled


class TestAggregateBackCompat:
    """The original aggregate-only API must behave identically."""

    def test_stage_stats_shape_without_policy(self):
        tracer = Tracer()
        with tracer.span("matching"):
            with tracer.span("clustering"):
                pass
        stats = tracer.stage_stats()
        assert set(stats) == {"matching", "clustering"}
        assert stats["matching"]["count"] == 1
        assert not tracer.retaining
        assert tracer.records() == []

    def test_unbalanced_exit_raises(self):
        tracer = Tracer()
        outer = tracer.span("a")
        inner = tracer.span("b")
        outer.__enter__()
        inner.__enter__()
        with pytest.raises(RuntimeError, match="unbalanced span exit"):
            outer.__exit__(None, None, None)

    def test_reset_with_open_span_raises(self):
        tracer = Tracer()
        with tracer.span("a"):
            with pytest.raises(RuntimeError, match="still open"):
                tracer.reset()

    def test_wall_is_top_level_time_only(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        outer_total = tracer.timing("outer").total_s
        assert tracer.wall_s == pytest.approx(outer_total)


class TestStageTimingMerge:
    def test_merge_folds_counts_and_extremes(self):
        timing = StageTiming()
        timing.record(0.2)
        timing.merge({"count": 2, "total_s": 0.5, "min_s": 0.1, "max_s": 0.4})
        assert timing.count == 3
        assert timing.total_s == pytest.approx(0.7)
        assert timing.min_s == pytest.approx(0.1)
        assert timing.max_s == pytest.approx(0.4)

    def test_merge_empty_is_noop(self):
        timing = StageTiming()
        timing.record(0.2)
        timing.merge({"count": 0, "total_s": 0.0, "min_s": 0.0, "max_s": 0.0})
        assert timing.count == 1
        assert timing.min_s == pytest.approx(0.2)


class TestParentLinkage:
    def test_nested_spans_link_to_parents(self):
        tracer = Tracer(SamplingPolicy())
        with tracer.span("ingest"):
            with tracer.span("receive_trip", key="trip-1"):
                with tracer.span("matching"):
                    pass
        records = {r.name: r for r in tracer.records()}
        assert set(records) == {"ingest", "receive_trip", "matching"}
        assert records["ingest"].parent_id is None
        assert records["receive_trip"].parent_id == records["ingest"].span_id
        assert records["matching"].parent_id == records["receive_trip"].span_id
        assert len({r.trace_id for r in records.values()}) == 1
        assert len({r.span_id for r in records.values()}) == 3

    def test_record_span_parents_under_open_span(self):
        tracer = Tracer(SamplingPolicy())
        with tracer.span("ingest"):
            tracer.record_span("shard_serialize", start_s=0.0,
                               duration_s=0.001, bytes=42)
        records = {r.name: r for r in tracer.records()}
        serialize = records["shard_serialize"]
        assert serialize.parent_id == records["ingest"].span_id
        assert serialize.attrs["bytes"] == 42
        # record_span folds into aggregates exactly like a with-span.
        assert tracer.timing("shard_serialize").count == 1

    def test_span_ids_unique_across_tracers_same_process(self):
        # Regression: two tracers in one process (one per worker shard)
        # must never emit colliding span ids, or the export dedup
        # silently drops records.
        a, b = Tracer(SamplingPolicy()), Tracer(SamplingPolicy())
        with a.span("x"), b.span("y"):
            pass
        ids = [r.span_id for r in a.records()] + \
              [r.span_id for r in b.records()]
        assert len(ids) == len(set(ids)) == 2


class TestSampling:
    def test_decision_is_deterministic_per_key(self):
        policy = SamplingPolicy(head_rate=0.5, seed=7)
        one, two = Tracer(policy), Tracer(policy)
        keys = [f"trip-{i}" for i in range(200)]
        assert [one._sample(k) for k in keys] == [two._sample(k) for k in keys]
        kept = sum(one._sample(k) for k in keys)
        assert 60 <= kept <= 140        # unbiased-ish at rate 0.5

    def test_seed_changes_decisions(self):
        keys = [f"trip-{i}" for i in range(200)]
        a = Tracer(SamplingPolicy(head_rate=0.5, seed=1))
        b = Tracer(SamplingPolicy(head_rate=0.5, seed=2))
        assert [a._sample(k) for k in keys] != [b._sample(k) for k in keys]

    def test_rate_zero_drops_keyed_subtree_but_keeps_keyless(self):
        tracer = Tracer(SamplingPolicy(head_rate=0.0, slow_exemplars=0))
        with tracer.span("ingest"):
            with tracer.span("receive_trip", key="trip-1"):
                with tracer.span("matching"):
                    pass
        names = {r.name for r in tracer.records()}
        assert names == {"ingest"}
        # Aggregates still see everything: sampling gates records only.
        assert tracer.timing("matching").count == 1

    def test_rate_one_keeps_everything(self):
        tracer = Tracer(SamplingPolicy(head_rate=1.0))
        with tracer.span("receive_trip", key="trip-1"):
            with tracer.span("matching"):
                pass
        assert {r.name for r in tracer.records()} == \
            {"receive_trip", "matching"}

    def test_scope_buffer_cap_counts_drops(self):
        tracer = Tracer(SamplingPolicy(max_spans_per_trace=2))
        with tracer.span("receive_trip", key="trip-1"):
            for _ in range(5):
                with tracer.span("matching"):
                    pass
        assert tracer.records_dropped == 3
        names = [r.name for r in tracer.records()]
        assert names.count("matching") == 2

    def test_global_record_cap_evicts_oldest(self):
        tracer = Tracer(SamplingPolicy(max_records=3, slow_exemplars=0))
        for i in range(5):
            tracer.record_span(f"s{i}", start_s=float(i), duration_s=0.001)
        assert tracer.records_dropped == 2
        assert [r.name for r in tracer.records()] == ["s2", "s3", "s4"]


class TestExemplars:
    def test_store_keeps_slowest_n_in_order(self):
        store = ExemplarStore(capacity=3)
        for i, dur in enumerate([0.03, 0.01, 0.05, 0.02, 0.04]):
            store.offer(Exemplar(root=make_record(
                span_id=f"a.{i}", dur=dur, key=f"t{i}")))
        durations = [e.duration_s for e in store.items()]
        assert durations == [0.05, 0.04, 0.03]

    def test_faster_newcomer_is_rejected(self):
        store = ExemplarStore(capacity=1)
        assert store.offer(Exemplar(root=make_record(span_id="a.1", dur=0.5)))
        assert not store.offer(
            Exemplar(root=make_record(span_id="a.2", dur=0.1))
        )
        assert [e.duration_s for e in store.items()] == [0.5]

    def test_zero_capacity_keeps_nothing(self):
        store = ExemplarStore(capacity=0)
        assert not store.offer(Exemplar(root=make_record()))
        assert store.items() == []

    def test_exemplars_survive_head_sampling(self):
        # Tail retention is unconditional: rate 0 still keeps slow trips.
        tracer = Tracer(SamplingPolicy(head_rate=0.0, slow_exemplars=2))
        for i, dur in enumerate([0.01, 0.05, 0.02]):
            tracer.record_span("receive_trip", start_s=float(i),
                               duration_s=dur, key=f"trip-{i}")
        summaries = tracer.exemplar_summaries()
        assert [s["key"] for s in summaries] == ["trip-1", "trip-2"]
        # And their records appear in the export even though head
        # sampling rejected them.
        keys = {r.attrs.get("key") for r in tracer.records()}
        assert keys == {"trip-1", "trip-2"}

    def test_summary_breaks_down_child_stages(self):
        tracer = Tracer(SamplingPolicy(slow_exemplars=1))
        with tracer.span("receive_trip", key="trip-9"):
            with tracer.span("matching"):
                pass
            with tracer.span("clustering"):
                pass
        (summary,) = tracer.exemplar_summaries()
        assert summary["key"] == "trip-9"
        assert set(summary["stages"]) == {"matching", "clustering"}


class TestContextPropagation:
    def test_worker_spans_stitch_under_coordinator(self):
        coordinator = Tracer(SamplingPolicy())
        with coordinator.span("ingest"):
            ctx = coordinator.ipc_context()
            ingest_id = coordinator._stack[-1].span_id
        assert isinstance(ctx, TraceContext)
        assert ctx.span_id == ingest_id

        worker = Tracer(ctx.policy, context=ctx, worker="w-1")
        with worker.span("prepare_trip", key="trip-1"):
            with worker.span("matching"):
                pass
        state = worker.export_trace_state()
        coordinator.absorb(state)

        records = {r.name: r for r in coordinator.records()}
        prepare = records["prepare_trip"]
        assert prepare.trace_id == coordinator.trace_id
        assert prepare.parent_id == ingest_id
        assert prepare.worker == "w-1"
        assert records["matching"].parent_id == prepare.span_id

    def test_absorb_merges_aggregates_and_drop_counts(self):
        coordinator = Tracer(SamplingPolicy())
        with coordinator.span("matching"):
            pass
        coordinator.absorb({
            "stages": {"matching": {"count": 2, "total_s": 1.0,
                                    "min_s": 0.4, "max_s": 0.6}},
            "records": [make_record(span_id="w.1")],
            "exemplars": [],
            "dropped": 5,
        })
        timing = coordinator.timing("matching")
        assert timing.count == 3
        assert timing.max_s == pytest.approx(0.6)
        assert coordinator.records_dropped == 5
        assert any(r.span_id == "w.1" for r in coordinator.records())

    def test_export_state_is_picklable(self):
        import pickle

        tracer = Tracer(SamplingPolicy())
        with tracer.span("prepare_trip", key="t"):
            pass
        state = pickle.loads(pickle.dumps(tracer.export_trace_state()))
        assert state["stages"]["prepare_trip"]["count"] == 1
        assert state["records"][0].name == "prepare_trip"


class TestChromeExport:
    def records(self):
        return [
            make_record(name="ingest", span_id="a.1", start=1.0, dur=0.1),
            make_record(name="shard_serialize", span_id="a.2",
                        parent_id="a.1", start=1.01, dur=0.02, bytes=128),
            make_record(name="matching", span_id="b.1", parent_id="a.1",
                        start=1.05, dur=0.03, pid=2, worker="w-1"),
        ]

    def test_document_is_valid_and_normalized(self):
        doc = chrome_trace_document(self.records())
        assert validate_chrome_trace(doc) == []
        xs = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert min(e["ts"] for e in xs) == 0.0      # epoch-normalized
        assert all(e["dur"] >= 0 for e in xs)
        by_name = {e["name"]: e for e in xs}
        assert by_name["shard_serialize"]["cat"] == "ipc"
        assert by_name["matching"]["cat"] == "compute"
        assert by_name["matching"]["args"]["worker"] == "w-1"
        assert by_name["shard_serialize"]["args"]["bytes"] == 128
        metas = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        labels = {e["pid"]: e["args"]["name"] for e in metas}
        assert labels == {1: "coordinator", 2: "w-1"}

    def test_round_trips_through_json(self):
        doc = json.loads(json.dumps(chrome_trace_document(self.records())))
        assert validate_chrome_trace(doc) == []

    def test_validator_flags_problems(self):
        assert validate_chrome_trace([]) != []
        assert validate_chrome_trace({"traceEvents": "nope"}) != []
        bad_ts = {"traceEvents": [
            {"name": "a", "ph": "X", "pid": 1, "tid": 1, "ts": 5, "dur": 1},
            {"name": "b", "ph": "X", "pid": 1, "tid": 1, "ts": 2, "dur": 1},
        ]}
        assert any("backwards" in p for p in validate_chrome_trace(bad_ts))
        unmatched = {"traceEvents": [
            {"name": "a", "ph": "E", "pid": 1, "tid": 1, "ts": 0},
        ]}
        assert any("without matching B" in p
                   for p in validate_chrome_trace(unmatched))
        dangling = {"traceEvents": [
            {"name": "a", "ph": "B", "pid": 1, "tid": 1, "ts": 0},
        ]}
        assert any("unmatched B" in p for p in validate_chrome_trace(dangling))

    def test_summary_self_time_and_split(self):
        doc = chrome_trace_document(self.records())
        summary = summarize_chrome_trace(doc)
        # ingest (0.1s) minus its children (0.02 + 0.03) = 0.05 self.
        assert summary["by_name_s"]["ingest"]["self_s"] == \
            pytest.approx(0.05, abs=1e-9)
        assert summary["ipc_s"] == pytest.approx(0.02, abs=1e-9)
        assert summary["compute_s"] == pytest.approx(0.03, abs=1e-9)
        assert summary["ipc_share"] == pytest.approx(0.4)
        # The ingest root covers the whole trace wall on pid 1.
        assert summary["coordinator_coverage"] == pytest.approx(1.0)
        text = format_trace_summary(summary)
        assert "IPC vs compute" in text
        assert "coordinator" in text

    def test_empty_trace_summarizes(self):
        summary = summarize_chrome_trace(chrome_trace_document([]))
        assert summary["events"] == 0
        assert summary["wall_s"] == 0.0
        format_trace_summary(summary)    # must not raise


class TestEngineIntegration:
    def test_parallel_trace_stitches_and_results_match(
        self, small_city, database, config, batch
    ):
        from repro.core import BackendServer, IngestEngine
        from repro.obs import MetricsRegistry

        def server_with(tracer=None):
            return BackendServer(
                small_city.network, small_city.route_network, database,
                config, registry=MetricsRegistry(), tracer=tracer,
            )

        serial = server_with()
        expected = serial.ingest_many(batch)

        tracer = Tracer(SamplingPolicy())
        traced = server_with(tracer=tracer)
        with IngestEngine.for_server(traced, workers=2) as engine:
            reports = traced.ingest_many(batch, engine=engine)

        assert [r.trip_key for r in reports] == \
            [r.trip_key for r in expected]
        assert traced.stats.as_dict() == serial.stats.as_dict()

        doc = tracer.chrome_trace()
        assert validate_chrome_trace(doc) == []
        names = {e["name"] for e in doc["traceEvents"] if e["ph"] == "X"}
        assert {"fingerprint_broadcast", "shard_serialize",
                "shard_deserialize", "pool_queue_wait", "pool_result_wait",
                "result_merge", "prepare_trip", "matching"} <= names
        workers = {e["args"].get("worker")
                   for e in doc["traceEvents"]
                   if e["ph"] == "X" and e["args"].get("worker")}
        assert workers          # worker spans carry their process label
        # Worker spans joined the coordinator's trace.
        trace_ids = {e["args"]["trace_id"]
                     for e in doc["traceEvents"] if e["ph"] == "X"}
        assert trace_ids == {tracer.trace_id}

    def test_null_tracer_parallel_path_untouched(
        self, small_city, database, config, batch
    ):
        from repro.core import BackendServer, IngestEngine
        from repro.obs import MetricsRegistry

        server = BackendServer(
            small_city.network, small_city.route_network, database,
            config, registry=MetricsRegistry(),
        )
        with IngestEngine.for_server(server, workers=2) as engine:
            reports = server.ingest_many(batch, engine=engine)
        assert len(reports) == len(batch)
        assert server.tracer.records() == []
        # Worker stage aggregates still reach the parent histograms.
        family = server.registry.as_dict()["labeled"][
            "ingest_stage_seconds"
        ]
        assert any("matching" in child for child in family["children"])


class TestTraceCli:
    def make_trace_file(self, tmp_path):
        tracer = Tracer(SamplingPolicy())
        with tracer.span("ingest"):
            tracer.record_span("shard_serialize", start_s=0.0,
                               duration_s=0.001, bytes=64)
            with tracer.span("receive_trip", key="trip-1"):
                with tracer.span("matching"):
                    pass
        path = tmp_path / "trace.json"
        path.write_text(json.dumps(tracer.chrome_trace()))
        return path

    def test_trace_summary_and_validate(self, tmp_path, capsys):
        from repro.cli import main

        path = self.make_trace_file(tmp_path)
        assert main(["trace", str(path)]) == 0
        out = capsys.readouterr().out
        assert "IPC vs compute" in out
        assert main(["trace", "--validate", str(path)]) == 0
        assert "OK" in capsys.readouterr().out

    def test_trace_rejects_bad_documents(self, tmp_path, capsys):
        from repro.cli import main

        missing = tmp_path / "nope.json"
        assert main(["trace", str(missing)]) == 2
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"traceEvents": [
            {"name": "a", "ph": "E", "pid": 1, "tid": 1, "ts": 0},
        ]}))
        assert main(["trace", str(bad)]) == 1
        assert "schema problem" in capsys.readouterr().err

    def test_stats_wall_share_and_hint(self, tmp_path, capsys):
        from repro.cli import main

        document = {
            "command": "campaign",
            "stats": {},
            "wall_s": 2.0,
            "stages": {
                "matching": {"count": 10, "total_s": 0.5,
                             "mean_s": 0.05, "min_s": 0.01, "max_s": 0.2},
            },
            "metrics": {},
            "exemplars": [
                {"name": "receive_trip", "key": "trip-1", "worker": None,
                 "duration_s": 0.2, "stages": {"matching": 0.15}},
            ],
        }
        path = tmp_path / "metrics.json"
        path.write_text(json.dumps(document))
        assert main(["stats", str(path)]) == 0
        out = capsys.readouterr().out
        assert "% of wall" in out
        assert "25.0%" in out               # 0.5 / 2.0
        assert "Slow-trip exemplars" in out
        assert "hint:" in out               # 200 ms > default 50 ms bar

    def test_stats_hint_respects_threshold(self, tmp_path, capsys):
        from repro.cli import main

        document = {
            "command": "campaign", "stats": {}, "wall_s": 1.0,
            "stages": {"matching": {"count": 1, "total_s": 0.1,
                                    "mean_s": 0.1, "min_s": 0.1,
                                    "max_s": 0.1}},
            "metrics": {},
            "exemplars": [{"name": "receive_trip", "key": "t",
                           "worker": None, "duration_s": 0.03,
                           "stages": {}}],
        }
        path = tmp_path / "metrics.json"
        path.write_text(json.dumps(document))
        assert main(["stats", str(path)]) == 0
        assert "hint:" not in capsys.readouterr().out   # 30 ms < 50 ms
        assert main(["stats", str(path), "--slow-trip-ms", "10"]) == 0
        assert "hint:" in capsys.readouterr().out


class TestHttpTraceEndpoint:
    def test_trace_endpoint_serves_document(self):
        import urllib.request

        from repro.obs import MetricsHTTPServer, MetricsRegistry

        tracer = Tracer(SamplingPolicy())
        with tracer.span("ingest"):
            pass
        with MetricsHTTPServer(
            MetricsRegistry(), trace_fn=tracer.chrome_trace
        ) as exporter:
            with urllib.request.urlopen(f"{exporter.url}/trace") as resp:
                doc = json.load(resp)
        assert validate_chrome_trace(doc) == []
        assert any(e["name"] == "ingest" for e in doc["traceEvents"])

    def test_trace_endpoint_unwired_reports_error(self):
        import urllib.request

        from repro.obs import MetricsHTTPServer, MetricsRegistry

        with MetricsHTTPServer(MetricsRegistry()) as exporter:
            with urllib.request.urlopen(f"{exporter.url}/trace") as resp:
                doc = json.load(resp)
        assert "error" in doc
