"""Tests for the GPS-probe baseline (VTrack-style comparator)."""

import itertools

import numpy as np
import pytest

from repro.baseline import (
    GpsProbeEstimator,
    MapMatcher,
    simulate_gps_probe_trace,
)
from repro.baseline.gps_probe import GpsFix, GpsTrace, bus_position_at
from repro.city.geometry import Point
from repro.radio.gps import GpsErrorModel
from repro.sim.bus import simulate_bus_trip
from repro.util.units import parse_hhmm


@pytest.fixture()
def trace(small_city, traffic):
    route = small_city.route_network.route("179-0")
    return simulate_bus_trip(
        route, parse_hhmm("08:00"), traffic, itertools.count(),
        rng=np.random.default_rng(8),
    )


class TestBusPosition:
    def test_on_segment_interpolates(self, small_city, trace):
        traversal = trace.traversals[0]
        mid_t = (traversal.enter_s + traversal.exit_s) / 2
        position = bus_position_at(trace, small_city.network, mid_t)
        segment = small_city.network.segment(traversal.segment_id)
        expected = segment.start.midpoint(segment.end)
        assert position.distance_to(expected) < 1.0

    def test_during_dwell_at_stop(self, small_city, trace):
        visit = next(v for v in trace.visits if v.depart_s > v.arrival_s)
        position = bus_position_at(
            trace, small_city.network, (visit.arrival_s + visit.depart_s) / 2
        )
        node = small_city.network.node_position(visit.station_id)
        assert position.distance_to(node) < 1.0

    def test_outside_trip_is_none(self, small_city, trace):
        assert bus_position_at(trace, small_city.network, 0.0) is None


class TestGpsTrace:
    def test_rate_respected(self, small_city, trace):
        gps = simulate_gps_probe_trace(
            trace, small_city.network, rate_hz=0.5, rng=np.random.default_rng(1)
        )
        duration = trace.visits[-1].arrival_s - trace.visits[0].arrival_s
        assert len(gps) == pytest.approx(duration / 2.0, abs=2)

    def test_fix_error_matches_model(self, small_city, trace):
        gps = simulate_gps_probe_trace(
            trace, small_city.network, rng=np.random.default_rng(2)
        )
        errors = []
        for fix in gps.fixes:
            truth = bus_position_at(trace, small_city.network, fix.time_s)
            errors.append(truth.distance_to(fix.position))
        assert 40.0 < np.median(errors) < 110.0      # Fig. 1 on-bus regime

    def test_rejects_bad_rate(self, small_city, trace):
        with pytest.raises(ValueError):
            simulate_gps_probe_trace(trace, small_city.network, rate_hz=0.0)


class TestMapMatcher:
    def test_snaps_to_nearest_road(self, small_city):
        matcher = MapMatcher(small_city.network)
        segment = small_city.network.segments[0]
        midpoint = segment.start.midpoint(segment.end)
        matched = matcher.match(midpoint.offset(0.0, 5.0))
        assert matched is not None
        physical = tuple(sorted(matched))
        assert physical == tuple(sorted(segment.segment_id))

    def test_heading_selects_carriageway(self, small_city):
        matcher = MapMatcher(small_city.network)
        segment = small_city.network.segments[0]
        midpoint = segment.start.midpoint(segment.end)
        dx = segment.end.x - segment.start.x
        dy = segment.end.y - segment.start.y
        norm = (dx * dx + dy * dy) ** 0.5
        forward = matcher.match(midpoint, (dx / norm, dy / norm))
        backward = matcher.match(midpoint, (-dx / norm, -dy / norm))
        assert forward == segment.segment_id
        assert backward == segment.reverse_id

    def test_far_away_is_none(self, small_city):
        matcher = MapMatcher(small_city.network, max_snap_m=100.0)
        assert matcher.match(Point(-5000.0, -5000.0)) is None


class TestGpsProbeEstimator:
    def test_produces_segment_speeds(self, small_city, trace):
        estimator = GpsProbeEstimator(small_city.network)
        gps = simulate_gps_probe_trace(
            trace, small_city.network, rng=np.random.default_rng(3)
        )
        updates = estimator.ingest(gps)
        assert updates > 10
        snap = estimator.traffic_map.snapshot(trace.end_s)
        assert snap.coverage > 0

    def test_discards_stopped_and_glitchy_pairs(self, small_city, trace):
        estimator = GpsProbeEstimator(small_city.network)
        gps = simulate_gps_probe_trace(
            trace, small_city.network, rng=np.random.default_rng(4)
        )
        estimator.ingest(gps)
        assert estimator.pairs_discarded > 0

    def test_accuracy_worse_than_cellular_system(
        self, small_city, traffic, database, sampler, config
    ):
        """The headline comparison: same trips, GPS baseline vs our system."""
        from repro.core import BackendServer
        from repro.phone import record_participant_trips

        route = small_city.route_network.route("179-0")
        rng = np.random.default_rng(5)
        server = BackendServer(
            small_city.network, small_city.route_network, database, config
        )
        gps_estimator = GpsProbeEstimator(small_city.network)
        counter = itertools.count()
        end_s = 0.0
        for k in range(4):
            trip = simulate_bus_trip(
                route, parse_hhmm("08:00") + 1200.0 * k, traffic, counter, rng=rng
            )
            end_s = max(end_s, trip.end_s)
            server.receive_trips(
                record_participant_trips(
                    trip, small_city.registry, sampler, config, rng=rng
                )
            )
            gps_estimator.ingest(
                simulate_gps_probe_trace(trip, small_city.network, rng=rng)
            )

        def mae(traffic_map):
            errors = []
            snap = traffic_map.snapshot(end_s)
            for seg, reading in snap.readings.items():
                truth = 3.6 * traffic.car_speed_ms(seg, end_s)
                errors.append(abs(reading.speed_kmh - truth))
            return float(np.mean(errors)) if errors else float("inf")

        ours = mae(server.traffic_map)
        gps = mae(gps_estimator.traffic_map)
        # Urban-canyon GPS noise degrades the probe baseline; ours should
        # be at least as accurate on the same rides.
        assert ours <= gps + 1.0
