"""Shared fixtures: a small fast city plus its radio stack.

Most tests use the ``small_city`` world (≈3×2 km, 4 services) so the
whole suite stays quick; integration tests that need the paper-scale
region build their own.
"""

from __future__ import annotations

import os

import numpy as np
import pytest
from hypothesis import settings

# CI caps property-test example counts via HYPOTHESIS_MAX_EXAMPLES so the
# tier-1 suite stays fast; locally the hypothesis default applies.
_max_examples = os.environ.get("HYPOTHESIS_MAX_EXAMPLES")
if _max_examples:
    settings.register_profile("capped", max_examples=int(_max_examples))
    settings.load_profile("capped")

from repro.city import CitySpec, build_city
from repro.config import SystemConfig
from repro.core import FingerprintDatabase
from repro.phone import CellularSampler
from repro.radio import CellularScanner, PropagationModel, towers_for_city
from repro.sim import TrafficField, default_hotspots_for

SMALL_SPEC = CitySpec(
    name="testville",
    width_m=3000.0,
    height_m=2000.0,
    spacing_m=420.0,
    services=("179", "199", "243", "103"),
    partial_services=("103",),
    jogs_per_route=1,
    seed=42,
)


@pytest.fixture(scope="session")
def config() -> SystemConfig:
    return SystemConfig()


@pytest.fixture(scope="session")
def small_city():
    return build_city(SMALL_SPEC)


@pytest.fixture(scope="session")
def radio_stack(small_city, config):
    towers = towers_for_city(small_city, seed=5)
    propagation = PropagationModel(config.radio, seed=5)
    scanner = CellularScanner(towers, propagation, config.radio)
    return towers, propagation, scanner


@pytest.fixture(scope="session")
def scanner(radio_stack):
    return radio_stack[2]


@pytest.fixture(scope="session")
def sampler(scanner):
    return CellularSampler(scanner)


@pytest.fixture(scope="session")
def database(small_city, scanner, config) -> FingerprintDatabase:
    return FingerprintDatabase.survey(
        small_city.registry,
        scanner,
        samples_per_stop=5,
        config=config.matching,
        rng=np.random.default_rng(123),
    )


@pytest.fixture(scope="session")
def traffic(small_city) -> TrafficField:
    spec = small_city.spec
    return TrafficField(
        small_city.network,
        hotspots=default_hotspots_for(spec.width_m, spec.height_m),
        seed=9,
    )


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(2024)
