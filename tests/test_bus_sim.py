"""Tests for bus trip simulation."""

import itertools

import numpy as np
import pytest

from repro.config import BusConfig, RiderConfig
from repro.sim.bus import (
    BUS_FREE_SPEED_MS,
    bus_running_time_s,
    dispatch_times,
    simulate_bus_trip,
)
from repro.util.units import parse_hhmm


@pytest.fixture()
def trace(small_city, traffic):
    route = small_city.route_network.route("179-0")
    return simulate_bus_trip(
        route,
        parse_hhmm("08:00"),
        traffic,
        itertools.count(),
        rng=np.random.default_rng(1),
    )


class TestBusRunningTime:
    def test_free_flow_equals_bus_free_time(self):
        # Car at free flow: no extra congestion delay for the bus.
        btt = bus_running_time_s(420.0, 25.0, 25.0, b=0.5)
        assert btt == pytest.approx(420.0 / BUS_FREE_SPEED_MS)

    def test_congestion_delay_scaled_by_inverse_b(self):
        free = 420.0 / BUS_FREE_SPEED_MS
        btt = bus_running_time_s(420.0, 45.0, 25.0, b=0.5)
        assert btt == pytest.approx(free + (45.0 - 25.0) / 0.5)

    def test_clamped_to_max_speed(self):
        btt = bus_running_time_s(420.0, 1.0, 25.0, b=0.5, max_speed_ms=13.9)
        assert btt >= 420.0 / 13.9 - 1e-9

    def test_rejects_nonpositive_b(self):
        with pytest.raises(ValueError):
            bus_running_time_s(420.0, 30.0, 25.0, b=0.0)

    def test_noise_is_multiplicative(self):
        rng = np.random.default_rng(0)
        values = {
            bus_running_time_s(420.0, 45.0, 25.0, b=0.5, rng=rng, noise_std=0.1)
            for _ in range(5)
        }
        assert len(values) == 5


class TestSimulateBusTrip:
    def test_visits_every_stop(self, small_city, trace):
        route = small_city.route_network.route("179-0")
        assert len(trace.visits) == len(route.stops)

    def test_times_monotonic(self, trace):
        for a, b in zip(trace.visits, trace.visits[1:]):
            assert a.depart_s >= a.arrival_s
            assert b.arrival_s > a.depart_s - 1e-9

    def test_traversals_cover_route(self, small_city, trace):
        route = small_city.route_network.route("179-0")
        assert [t.segment_id for t in trace.traversals] == route.segments

    def test_traversals_contiguous(self, trace):
        for a, b in zip(trace.traversals, trace.traversals[1:]):
            assert b.enter_s >= a.exit_s - 1e-9

    def test_taps_only_at_served_stops(self, trace):
        served = {v.stop_order for v in trace.visits if v.served}
        assert all(t.stop_order in served for t in trace.taps)

    def test_tap_times_within_dwell(self, trace):
        visits = {v.stop_order: v for v in trace.visits}
        for tap in trace.taps:
            visit = visits[tap.stop_order]
            assert visit.arrival_s < tap.time_s <= visit.depart_s + 1.0

    def test_everyone_off_at_terminal(self, trace):
        last = trace.visits[-1]
        boarded = sum(v.boarders for v in trace.visits)
        alighted = sum(v.alighters for v in trace.visits)
        assert boarded == alighted
        assert last.boarders == 0

    def test_participants_subset_of_taps(self, trace):
        tap_riders = {t.rider_id for t in trace.taps}
        assert {p.rider_id for p in trace.participants} <= tap_riders

    def test_participant_rides_forward(self, trace):
        for ride in trace.participants:
            assert ride.alight_order > ride.board_order or (
                ride.alight_order == ride.board_order
            )

    def test_unserved_stop_has_zero_dwell(self, small_city, traffic):
        # Starve demand so stops get skipped.
        config = RiderConfig(boarding_rate_per_stop=0.05)
        route = small_city.route_network.route("179-0")
        trace = simulate_bus_trip(
            route,
            parse_hhmm("08:00"),
            traffic,
            itertools.count(),
            rng=np.random.default_rng(2),
            rider_config=config,
        )
        skipped = [v for v in trace.visits if not v.served]
        assert skipped
        for visit in skipped:
            assert visit.depart_s == visit.arrival_s

    def test_rider_ids_unique_across_trips(self, small_city, traffic):
        counter = itertools.count()
        route = small_city.route_network.route("179-0")
        t1 = simulate_bus_trip(route, parse_hhmm("08:00"), traffic, counter,
                               rng=np.random.default_rng(3))
        t2 = simulate_bus_trip(route, parse_hhmm("09:00"), traffic, counter,
                               rng=np.random.default_rng(4))
        ids1 = {t.rider_id for t in t1.taps}
        ids2 = {t.rider_id for t in t2.taps}
        assert not ids1 & ids2

    def test_peak_demand_exceeds_offpeak(self, small_city, traffic):
        route = small_city.route_network.route("179-0")
        rng = np.random.default_rng(5)
        peak = [
            len(simulate_bus_trip(route, parse_hhmm("08:30"), traffic,
                                  itertools.count(), rng=rng).taps)
            for _ in range(5)
        ]
        off = [
            len(simulate_bus_trip(route, parse_hhmm("14:00"), traffic,
                                  itertools.count(), rng=rng).taps)
            for _ in range(5)
        ]
        assert np.mean(peak) > np.mean(off)


class TestDispatchTimes:
    def test_spacing(self):
        times = dispatch_times(0.0, 3600.0, 600.0, rng=np.random.default_rng(0))
        assert len(times) == 6
        assert all(t >= 0.0 for t in times)

    def test_jitter_bounded(self):
        times = dispatch_times(0.0, 6000.0, 600.0, rng=np.random.default_rng(0),
                               jitter_fraction=0.1)
        for i, t in enumerate(times):
            assert abs(t - i * 600.0) <= 60.0 + 1e-9

    def test_rejects_bad_headway(self):
        with pytest.raises(ValueError):
            dispatch_times(0.0, 100.0, 0.0)
