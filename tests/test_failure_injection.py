"""Failure-injection tests: the backend under hostile/flaky conditions.

A crowdsourced system cannot trust its inputs: phones retry uploads,
clocks drift, databases are partially built, and payloads arrive from
the wrong city entirely.  The backend must degrade gracefully — discard,
never crash, never corrupt the map.
"""

import itertools

import numpy as np
import pytest

from repro.config import UplinkConfig
from repro.core import BackendServer, FingerprintDatabase
from repro.phone import record_participant_trips
from repro.phone.cellular import CellularSample
from repro.phone.trip_recorder import TripUpload
from repro.sim.bus import simulate_bus_trip
from repro.sim.uplink import UplinkChannel
from repro.util.units import parse_hhmm


@pytest.fixture()
def server(small_city, database, config):
    return BackendServer(
        small_city.network, small_city.route_network, database, config
    )


@pytest.fixture()
def real_uploads(small_city, traffic, sampler, config):
    route = small_city.route_network.route("179-0")
    rng = np.random.default_rng(51)
    counter = itertools.count()
    uploads = []
    for k in range(3):
        trace = simulate_bus_trip(
            route, parse_hhmm("08:10") + 900.0 * k, traffic, counter, rng=rng
        )
        uploads.extend(
            record_participant_trips(
                trace, small_city.registry, sampler, config, rng=rng
            )
        )
    assert len(uploads) >= 3
    return uploads


class TestDuplicateUploads:
    def test_retry_is_idempotent(self, server, real_uploads):
        upload = max(real_uploads, key=lambda u: len(u.samples))
        first = server.receive_trip(upload)
        updates_after_first = server.stats.segments_updated
        second = server.receive_trip(upload)
        assert server.stats.trips_duplicate == 1
        assert server.stats.trips_received == 1
        assert server.stats.segments_updated == updates_after_first
        assert second.mapped is None

    def test_distinct_trips_not_deduplicated(self, server, real_uploads):
        for upload in real_uploads[:3]:
            server.receive_trip(upload)
        assert server.stats.trips_received == 3
        assert server.stats.trips_duplicate == 0


class TestGarbageInputs:
    def test_empty_trip(self, server):
        report = server.receive_trip(TripUpload("empty", ()))
        assert report.mapped is None

    def test_unknown_towers_everywhere(self, server):
        samples = tuple(
            CellularSample(time_s=100.0 + 5 * k, tower_ids=(10**6 + k, 10**6 + k + 1))
            for k in range(10)
        )
        report = server.receive_trip(TripUpload("alien-city", samples))
        assert report.discarded_samples == 10
        assert report.mapped is None
        assert server.stats.segments_updated == 0

    def test_single_sample_trip(self, server, small_city, sampler, rng):
        station = small_city.registry.stations[0]
        sample = sampler.sample(station.stops[0].position, 100.0, rng)
        report = server.receive_trip(TripUpload("one", (sample,)))
        assert report.estimates == []

    def test_duplicate_timestamps_within_trip(self, server, small_city, sampler, rng):
        station = small_city.registry.stations[0]
        sample = sampler.sample(station.stops[0].position, 100.0, rng)
        report = server.receive_trip(
            TripUpload("same-time", (sample, sample, sample))
        )
        assert report.accepted_samples <= 3       # must simply not crash

    def test_teleporting_trip_produces_no_estimates(
        self, server, small_city, sampler, rng
    ):
        """Samples hopping across the city violate every route order."""
        stations = small_city.registry.stations
        picks = [stations[0], stations[-1], stations[len(stations) // 2]]
        samples = tuple(
            sampler.sample(st.stops[0].position, 100.0 + 40.0 * k, rng)
            for k, st in enumerate(picks)
        )
        report = server.receive_trip(TripUpload("teleport", samples))
        # Legs between unreachable stops are rejected by the constraint
        # or the speed plausibility filter.
        for segment_id, speed_kmh, _ in report.estimates:
            assert 2.0 <= speed_kmh <= 120.0

    def test_impossibly_fast_leg_rejected(self, server, small_city, sampler, rng):
        """Adjacent stops 'reached' in two seconds: speed filter drops it."""
        route = small_city.route_network.route("179-0")
        samples = []
        for k, route_stop in enumerate(route.stops[:3]):
            platform = small_city.registry.platform(route_stop.stop_id)
            samples.append(sampler.sample(platform.position, 100.0 + 40.0 * k, rng))
            samples.append(sampler.sample(platform.position, 101.0 + 40.0 * k, rng))
        # Shrink inter-stop gaps to 2 s.
        squeezed = tuple(
            CellularSample(time_s=100.0 + 2.0 * i, tower_ids=s.tower_ids)
            for i, s in enumerate(samples)
        )
        before = server.stats.segments_updated
        server.receive_trip(TripUpload("rocket", squeezed))
        assert server.stats.segments_updated == before


class TestPartialDatabase:
    def test_half_surveyed_city_still_works(
        self, small_city, traffic, sampler, config
    ):
        """Stops missing from the DB are skipped; known ones still map."""
        full_db = FingerprintDatabase.survey(
            small_city.registry,
            sampler._scanner,
            samples_per_stop=3,
            rng=np.random.default_rng(53),
        )
        half_db = FingerprintDatabase()
        for station_id in full_db.station_ids[::2]:
            half_db.set_fingerprint(station_id, full_db.fingerprint(station_id))
        server = BackendServer(
            small_city.network, small_city.route_network, half_db, config
        )
        route = small_city.route_network.route("179-0")
        trace = simulate_bus_trip(
            route, parse_hhmm("08:10"), traffic, itertools.count(),
            rng=np.random.default_rng(54),
        )
        uploads = record_participant_trips(
            trace, small_city.registry, sampler, config,
            rng=np.random.default_rng(55),
        )
        reports = server.receive_trips(uploads)
        assert any(r.mapped for r in reports)
        # Estimates remain physically plausible despite the gaps.
        for report in reports:
            for _, speed_kmh, _ in report.estimates:
                assert 2.0 <= speed_kmh <= 120.0


class TestUplinkFailures:
    """Uploads crossing a lossy, delaying, reordering uplink channel."""

    @staticmethod
    def _ingest_delivered(server, delivered):
        """Feed (arrival, upload) pairs in delivery order, by trip key."""
        return {
            upload.trip_key: server.receive_trip(upload, now_s=arrival)
            for arrival, upload in delivered
        }

    def _fresh_server(self, small_city, database, config):
        return BackendServer(
            small_city.network, small_city.route_network, database, config
        )

    def test_out_of_order_delivery_consistent(
        self, server, small_city, database, config, real_uploads
    ):
        """Reordered arrival must not change any per-trip outcome or stat.

        The per-trip half (match → cluster → map) is pure, so reports,
        stats and the *set* of updated segments are delivery-order
        independent; only fused means may differ (the Eq. 4 fuser is
        fed in delivery order by design).
        """
        ready = [
            (upload.end_s + 600.0, upload)
            for upload in real_uploads
            if upload.samples
        ]
        channel = UplinkChannel(
            UplinkConfig(
                loss_probability=0.0, base_delay_s=5.0,
                mean_extra_delay_s=3000.0,
            ),
            rng=np.random.default_rng(77),
        )
        delivered = channel.transmit_all(ready)
        assert channel.stats.delivered == len(ready)
        offered_keys = [upload.trip_key for _, upload in ready]
        delivered_keys = [upload.trip_key for _, upload in delivered]
        assert delivered_keys != offered_keys, "channel failed to reorder"

        out_of_order = self._ingest_delivered(server, delivered)
        reference = self._fresh_server(small_city, database, config)
        in_order = self._ingest_delivered(
            reference, sorted(delivered, key=lambda pair: pair[1].start_s)
        )

        assert set(out_of_order) == set(in_order)
        for trip_key, report in out_of_order.items():
            expected = in_order[trip_key]
            assert report.accepted_samples == expected.accepted_samples
            assert report.discarded_samples == expected.discarded_samples
            got_seq = report.mapped.station_sequence() if report.mapped else None
            want_seq = (
                expected.mapped.station_sequence() if expected.mapped else None
            )
            assert got_seq == want_seq
            assert report.estimates == expected.estimates
        assert server.stats.as_dict() == reference.stats.as_dict()
        assert set(server.traffic_map.fuser.keys) == set(
            reference.traffic_map.fuser.keys
        )

    def test_duplicate_retry_over_uplink(self, server, real_uploads):
        """A phone retrying the same TripUpload must not touch the map."""
        upload = max(real_uploads, key=lambda u: len(u.samples))
        channel = UplinkChannel(
            UplinkConfig(loss_probability=0.0, base_delay_s=60.0,
                         mean_extra_delay_s=0.0),
            rng=np.random.default_rng(78),
        )
        ready_s = upload.end_s + 600.0
        first = channel.transmit(ready_s, upload)
        retry = channel.transmit(ready_s + 900.0, upload)     # impatient retry
        assert first is not None and retry is not None

        server.receive_trip(upload, now_s=first[0])
        beliefs_before = {
            key: server.traffic_map.segment_estimate(key)
            for key in server.traffic_map.fuser.keys
        }
        stats_before = server.stats.as_dict()

        report = server.receive_trip(upload, now_s=retry[0])
        assert report.mapped is None
        assert report.discarded_samples == len(upload.samples)
        assert server.stats.trips_duplicate == stats_before["trips_duplicate"] + 1
        assert server.stats.trips_received == stats_before["trips_received"]
        assert server.stats.samples_duplicate == (
            stats_before["samples_duplicate"] + len(upload.samples)
        )
        assert server.stats.segments_updated == stats_before["segments_updated"]
        # The fuser saw nothing: identical beliefs, same observation counts.
        assert set(server.traffic_map.fuser.keys) == set(beliefs_before)
        for key, before in beliefs_before.items():
            assert server.traffic_map.segment_estimate(key) == before

    def test_lost_then_resent_counts_once(
        self, server, small_city, database, config, real_uploads
    ):
        """A lost upload re-sent later lands exactly once, as if never lost."""
        upload = max(real_uploads, key=lambda u: len(u.samples))
        lossy = UplinkChannel(
            UplinkConfig(loss_probability=0.999999, base_delay_s=60.0,
                         mean_extra_delay_s=0.0),
            rng=np.random.default_rng(79),
        )
        ready_s = upload.end_s + 600.0
        assert lossy.transmit(ready_s, upload) is None
        assert lossy.stats.lost == 1 and lossy.stats.delivered == 0

        clean = UplinkChannel(
            UplinkConfig(loss_probability=0.0, base_delay_s=60.0,
                         mean_extra_delay_s=0.0),
            rng=np.random.default_rng(80),
        )
        resent = clean.transmit(ready_s + 3600.0, upload)     # next WiFi window
        assert resent is not None
        report = server.receive_trip(upload, now_s=resent[0])

        reference = self._fresh_server(small_city, database, config)
        direct = reference.receive_trip(upload, now_s=ready_s + 60.0)
        assert report.accepted_samples == direct.accepted_samples
        assert report.discarded_samples == direct.discarded_samples
        got_seq = report.mapped.station_sequence() if report.mapped else None
        want_seq = direct.mapped.station_sequence() if direct.mapped else None
        assert got_seq == want_seq
        assert report.estimates == direct.estimates
        assert server.stats.trips_received == 1
        assert server.stats.trips_duplicate == 0
        assert server.stats.as_dict() == reference.stats.as_dict()


class TestClockSkew:
    def test_skewed_trip_is_internally_consistent(self, server, real_uploads):
        """A phone with a wrong (but stable) clock still maps: the
        pipeline only uses time *differences* within a trip."""
        upload = max(real_uploads, key=lambda u: len(u.samples))
        skewed = TripUpload(
            trip_key="skewed",
            samples=tuple(
                CellularSample(time_s=s.time_s + 7200.0, tower_ids=s.tower_ids)
                for s in upload.samples
            ),
        )
        report = server.receive_trip(skewed)
        assert report.mapped is not None
        assert len(report.mapped.stops) >= 2
