"""Tests for the fleet-health analytics stage (headways, ghosts, O-D)."""

import json

import pytest

from repro.analysis.fleet import (
    FleetHealthAnalytics,
    GhostDetector,
    HeadwayTracker,
    ODFlowMatrix,
    excess_wait_s,
)
from repro.config import AnalyticsConfig
from repro.core.trip_mapping import MappedStop, MappedTrip
from repro.obs import AlertEngine, AlertRule, MetricsRegistry


@pytest.fixture(scope="module")
def small_world(small_city):
    from repro.sim.world import World

    return World(city=small_city, seed=3)


class _StubRoute:
    """Just enough of a BusRoute for the analytics stage."""

    def __init__(self, route_id, stations):
        self.route_id = route_id
        self._order = {station: i for i, station in enumerate(stations)}

    def station_order(self, station_id):
        return self._order.get(station_id)


class _StubNetwork:
    def __init__(self, routes):
        self.routes = routes


def _mapped(stop_times):
    """A MappedTrip visiting (station, arrival) pairs."""
    return MappedTrip(
        stops=[
            MappedStop(station_id=s, arrival_s=t, depart_s=t + 20.0,
                       cluster_size=3, weight=1.0)
            for s, t in stop_times
        ],
        score=1.0,
    )


class TestHeadwayTracker:
    def test_first_event_yields_no_headway(self):
        tracker = HeadwayTracker()
        assert tracker.observe_arrival("r", 1, 1000.0) == []

    def test_consecutive_events_yield_gaps(self):
        tracker = HeadwayTracker()
        tracker.observe_arrival("r", 1, 1000.0)
        observed = tracker.observe_arrival("r", 1, 1600.0)
        assert observed == [("r", 1, 600.0, 1600.0)]
        assert tracker.headways("r", 1) == [600.0]

    def test_same_bus_seen_by_second_rider_deduplicates(self):
        tracker = HeadwayTracker(AnalyticsConfig(arrival_dedup_s=120.0))
        tracker.observe_arrival("r", 1, 1000.0)
        assert tracker.observe_arrival("r", 1, 1090.0) == []
        assert len(tracker) == 1

    def test_late_upload_splits_known_gap(self):
        tracker = HeadwayTracker()
        tracker.observe_arrival("r", 1, 1000.0)
        tracker.observe_arrival("r", 1, 2200.0)
        observed = tracker.observe_arrival("r", 1, 1600.0)
        # Both halves of the split interval are emitted for the windows.
        assert ("r", 1, 600.0, 1600.0) in observed
        assert ("r", 1, 600.0, 2200.0) in observed
        assert tracker.headways("r", 1) == [600.0, 600.0]

    def test_event_lists_are_bounded(self):
        tracker = HeadwayTracker(AnalyticsConfig(max_arrivals_per_stop=8))
        for i in range(40):
            tracker.observe_arrival("r", 1, 1000.0 * i)
        assert len(tracker) == 8

    def test_route_summary_bunching_and_ewt(self):
        config = AnalyticsConfig(bunching_factor=0.5, arrival_dedup_s=50.0)
        tracker = HeadwayTracker(config, scheduled_headway_s=600.0)
        # Gaps at stop 1: 100 (bunched, < 300), 500, 600.
        for t in (0.0, 100.0, 600.0, 1200.0):
            tracker.observe_arrival("r", 1, t)
        summary = tracker.route_summary("r")
        assert summary["bus_events"] == 4
        assert summary["headways"] == 3
        assert summary["mean_headway_s"] == pytest.approx(400.0)
        assert summary["bunching_rate"] == pytest.approx(1 / 3)
        # Observed service (mean 400 s) beats the 600 s timetable, so
        # EWT clamps to zero rather than going negative.
        assert summary["excess_wait_s"] == 0.0

    def test_summary_ignores_other_routes(self):
        tracker = HeadwayTracker()
        tracker.observe_arrival("a", 1, 0.0)
        tracker.observe_arrival("a", 1, 500.0)
        tracker.observe_arrival("b", 1, 0.0)
        assert tracker.route_summary("b")["headways"] == 0

    def test_reset(self):
        tracker = HeadwayTracker()
        tracker.observe_arrival("r", 1, 0.0)
        tracker.reset()
        assert len(tracker) == 0
        assert tracker.routes() == []


class TestExcessWait:
    def test_even_service_has_no_excess(self):
        # Perfectly even 600 s headways: E[H²]/2E[H] = 300 = H_sched/2.
        assert excess_wait_s(600.0, 600.0**2, 600.0) == 0.0

    def test_uneven_service_pays(self):
        # Alternating 200/1000 s: mean 600, E[H²] = (200²+1000²)/2.
        second = (200.0**2 + 1000.0**2) / 2
        expected = second / (2 * 600.0) - 300.0
        assert excess_wait_s(600.0, second, 600.0) == pytest.approx(expected)
        assert expected > 0

    def test_no_data_is_zero(self):
        assert excess_wait_s(0.0, 0.0, 600.0) == 0.0


class TestGhostDetector:
    def _detector(self, **kwargs):
        config = AnalyticsConfig(**kwargs)
        return GhostDetector({"r": None}, config, scheduled_headway_s=600.0)

    def test_never_observed_route_ages_from_first_tick(self):
        ghosts = self._detector(ghost_staleness_factor=2.0)
        ghosts.observe_tick(1000.0)
        status = ghosts.assess_route("r", 1000.0)
        assert status["ghost_vehicles"] == 0
        status = ghosts.assess_route("r", 1000.0 + 3 * 600.0)
        assert status["staleness_score"] >= 1.0
        assert status["ghost_vehicles"] == 3

    def test_observed_route_is_healthy(self):
        ghosts = self._detector()
        ghosts.observe_tick(0.0)
        ghosts.observe_event("r", 900.0)
        status = ghosts.assess_route("r", 1000.0)
        assert status["ghost_vehicles"] == 0
        assert status["last_seen_age_s"] == pytest.approx(100.0)

    def test_ghost_count_capped(self):
        ghosts = self._detector(max_ghosts_per_route=12)
        ghosts.observe_tick(0.0)
        status = ghosts.assess_route("r", 600.0 * 1000)
        assert status["ghost_vehicles"] == 12

    def test_event_resolves_ghosts(self):
        ghosts = self._detector()
        ghosts.observe_tick(0.0)
        assert ghosts.ghost_routes(3 * 600.0) == ["r"]
        ghosts.observe_event("r", 3 * 600.0)
        assert ghosts.ghost_routes(3 * 600.0 + 1.0) == []


class TestODFlowMatrix:
    def test_counts_trips(self):
        od = ODFlowMatrix()
        od.observe_trip(1, 2)
        od.observe_trip(1, 2)
        od.observe_trip(2, 3)
        assert od.trips(1, 2) == 2
        assert od.total_trips == 3
        assert len(od) == 2

    def test_top_flows_deterministic_order(self):
        od = ODFlowMatrix()
        od.observe_trip(5, 6)
        od.observe_trip(1, 2)
        od.observe_trip(1, 2)
        od.observe_trip(3, 4)
        assert od.top_flows(3) == [(1, 2, 2), (3, 4, 1), (5, 6, 1)]

    def test_overflow_bucket_bounds_matrix(self):
        od = ODFlowMatrix(AnalyticsConfig(max_od_pairs=2))
        od.observe_trip(1, 2)
        od.observe_trip(3, 4)
        assert od.observe_trip(5, 6) is False
        # An already-tracked pair still counts exactly.
        assert od.observe_trip(1, 2) is True
        assert len(od) == 2
        assert od.overflow_trips == 1
        assert od.total_trips == 4
        doc = od.as_dict()
        assert doc["overflow_trips"] == 1
        assert doc["total_trips"] == 4


class TestFleetHealthAnalytics:
    def _stage(self, registry=None, **kwargs):
        network = _StubNetwork([
            _StubRoute("r1", [1, 2, 3]),
            _StubRoute("r2", [7, 8, 9]),
        ])
        config = AnalyticsConfig(**kwargs)
        return FleetHealthAnalytics(
            network, config, scheduled_headway_s=600.0, registry=registry,
        )

    def test_trip_feeds_headways_ghosts_and_od(self):
        stage = self._stage()
        stage.observe_trip(_mapped([(1, 100.0), (2, 200.0), (3, 300.0)]),
                           "r1")
        stage.observe_trip(_mapped([(1, 700.0), (2, 800.0), (3, 900.0)]),
                           "r1")
        report = stage.report(1000.0)
        row = report["routes"]["r1"]
        assert row["bus_events"] == 6
        assert row["headways"] == 3
        assert row["mean_headway_s"] == pytest.approx(600.0)
        assert report["od"]["total_trips"] == 2
        assert report["od"]["top_flows"][0] == {
            "origin": 1, "dest": 3, "trips": 2
        }

    def test_stops_off_the_route_are_skipped(self):
        stage = self._stage()
        # Stop 7 belongs to r2; only 1 and 2 count for r1's headways.
        stage.observe_trip(_mapped([(1, 100.0), (7, 150.0), (2, 200.0)]),
                           "r1")
        assert stage.report(300.0)["routes"]["r1"]["bus_events"] == 2

    def test_unattributed_trip_still_counts_od(self):
        stage = self._stage()
        stage.observe_trip(_mapped([(1, 100.0), (3, 300.0)]), None)
        report = stage.report(400.0)
        assert report["od"]["total_trips"] == 1
        assert report["routes"]["r1"]["bus_events"] == 0

    def test_registry_families_exported(self):
        registry = MetricsRegistry()
        stage = self._stage(registry=registry)
        stage.observe_trip(_mapped([(1, 100.0), (2, 200.0)]), "r1")
        stage.observe_trip(_mapped([(1, 700.0), (2, 800.0)]), "r1")
        stage.observe_publish(900.0)
        doc = registry.as_dict()
        assert doc["counters"]["fleet_od_trips_total"] == 2
        assert doc["counters"]["fleet_bus_events_total"] == 4
        labeled = doc["labeled"]
        assert 'route="r1",stop="1"' in labeled["headway_seconds"]["children"]
        assert 'route="r1"' in labeled["bunching_rate"]["children"]
        assert 'route="r2"' in labeled["ghost_vehicles"]["children"]
        assert 'origin="1",dest="2"' in labeled["od_flow_trips"]["children"]

    def test_null_registry_still_serves_samples(self):
        stage = self._stage()
        stage.observe_trip(_mapped([(1, 100.0), (2, 200.0)]), "r1")
        stage.observe_trip(_mapped([(1, 700.0), (2, 800.0)]), "r1")
        names = {name for name, _, _ in stage.samples(900.0)}
        assert names == {
            "ghost_vehicles", "ghost_last_seen_seconds",
            "bunching_rate", "excess_wait_seconds",
        }

    def test_bind_schedule_rebuilds_bunching_threshold(self):
        stage = self._stage(bunching_factor=0.25)
        assert stage.headways.bunching_threshold_s == pytest.approx(150.0)
        stage.bind_schedule(1200.0)
        assert stage.headways.bunching_threshold_s == pytest.approx(300.0)
        assert stage.ghosts.scheduled_headway_s == 1200.0
        with pytest.raises(ValueError):
            stage.bind_schedule(0.0)

    def test_report_renders_at_last_publish_when_unclocked(self):
        stage = self._stage()
        stage.observe_trip(_mapped([(1, 100.0), (2, 200.0)]), "r1")
        stage.observe_publish(500.0)
        assert stage.report()["at_s"] == 500.0

    def test_reset_forgets_everything(self):
        stage = self._stage()
        stage.observe_trip(_mapped([(1, 100.0), (2, 200.0)]), "r1")
        stage.reset()
        report = stage.report(900.0)
        assert report["routes"]["r1"]["bus_events"] == 0
        assert report["od"]["total_trips"] == 0

    def test_ghost_alert_fires_and_resolves(self):
        """The shipped ghost rule goes through a full fired→resolved cycle."""
        stage = self._stage()
        engine = AlertEngine([
            AlertRule(name="no_ghost_buses",
                      expr="ghost_vehicles{route=*} < 1"),
        ])
        stage.observe_trip(_mapped([(1, 0.0), (2, 100.0)]), "r1")
        stage.observe_trip(_mapped([(1, 600.0), (2, 700.0)]), "r1")
        transitions = engine.evaluate(stage.samples(800.0), now=800.0)
        assert transitions == []

        # Nothing seen on r1 for several scheduled headways: fired.
        stale_at = 700.0 + 4 * 600.0
        transitions = engine.evaluate(stage.samples(stale_at), now=stale_at)
        fired = [t for t in transitions
                 if t.fired and t.label_dict().get("route") == "r1"]
        assert fired and fired[0].rule == "no_ghost_buses"

        # A fresh sighting brings the route back: resolved.
        stage.observe_trip(_mapped([(1, stale_at), (2, stale_at + 90.0)]),
                           "r1")
        transitions = engine.evaluate(
            stage.samples(stale_at + 120.0), now=stale_at + 120.0
        )
        resolved = [t for t in transitions
                    if not t.fired and t.label_dict().get("route") == "r1"]
        assert resolved and resolved[0].rule == "no_ghost_buses"


class TestServerIntegration:
    @pytest.fixture(scope="class")
    def sim(self, small_world):
        result = small_world.run(7 * 3600.0, 8 * 3600.0,
                                 with_official_feed=False)
        return small_world, result

    def test_backend_builds_the_stage_by_default(self, sim):
        world, _ = sim
        assert world.server.analytics is not None

    def test_campaign_produces_fleet_products(self, sim):
        world, result = sim
        report = world.server.analytics.report(result.end_s)
        assert any(
            row["bus_events"] > 0 for row in report["routes"].values()
        )
        assert report["od"]["total_trips"] > 0

    def test_alert_samples_include_fleet_indicators(self, sim):
        world, result = sim
        names = {n for n, _, _ in world.server.alert_samples(result.end_s)}
        assert "ghost_vehicles" in names
        assert "bunching_rate" in names
        assert "excess_wait_seconds" in names

    def test_report_is_json_serializable(self, sim):
        world, result = sim
        json.dumps(world.server.analytics.report(result.end_s))

    def test_disabled_stage_costs_one_none_check(self, small_world):
        import dataclasses

        from repro.core.server import BackendServer

        config = dataclasses.replace(
            small_world.config, analytics=AnalyticsConfig(enabled=False)
        )
        server = BackendServer(
            small_world.city.network,
            small_world.city.route_network,
            small_world.database,
            config,
        )
        assert server.analytics is None
        server.publish(0.0)             # must not trip on the None stage
