"""Tests for the live traffic map estimator."""

import pytest

from repro.core.traffic_map import SpeedLevel, TrafficMapEstimator, speed_level


class TestSpeedLevels:
    @pytest.mark.parametrize(
        "speed,level",
        [
            (10.0, SpeedLevel.VERY_SLOW),
            (25.0, SpeedLevel.SLOW),
            (35.0, SpeedLevel.MODERATE),
            (45.0, SpeedLevel.NORMAL),
            (60.0, SpeedLevel.FAST),
        ],
    )
    def test_bands(self, speed, level):
        assert speed_level(speed) is level

    def test_boundaries(self):
        assert speed_level(19.999) is SpeedLevel.VERY_SLOW
        assert speed_level(20.0) is SpeedLevel.SLOW
        assert speed_level(50.0) is SpeedLevel.FAST


@pytest.fixture()
def estimator(small_city):
    return TrafficMapEstimator(small_city.network, max_age_s=1800.0)


class TestUpdatesAndSnapshots:
    def test_update_unknown_segment_rejected(self, estimator):
        with pytest.raises(KeyError):
            estimator.update((999, 998), 40.0, t=0.0)

    def test_snapshot_contains_fresh_reading(self, small_city, estimator):
        seg = small_city.network.segment_ids[0]
        estimator.update(seg, 42.0, t=100.0)
        snap = estimator.snapshot(at_s=200.0)
        assert seg in snap.readings
        reading = snap.readings[seg]
        assert reading.speed_kmh == pytest.approx(42.0)
        assert reading.level is SpeedLevel.NORMAL
        assert reading.age_s == pytest.approx(100.0)

    def test_stale_readings_dropped(self, small_city, estimator):
        seg = small_city.network.segment_ids[0]
        estimator.update(seg, 42.0, t=100.0)
        snap = estimator.snapshot(at_s=100.0 + 3600.0)
        assert seg not in snap.readings

    def test_coverage(self, small_city, estimator):
        segs = small_city.network.segment_ids[:5]
        for seg in segs:
            estimator.update(seg, 40.0, t=0.0)
        snap = estimator.snapshot(at_s=60.0)
        assert snap.coverage == pytest.approx(5 / len(small_city.network.segment_ids))

    def test_level_histogram(self, small_city, estimator):
        segs = small_city.network.segment_ids
        estimator.update(segs[0], 10.0, t=0.0)
        estimator.update(segs[1], 60.0, t=0.0)
        histogram = estimator.snapshot(at_s=1.0).level_histogram()
        assert histogram[SpeedLevel.VERY_SLOW] == 1
        assert histogram[SpeedLevel.FAST] == 1
        assert histogram[SpeedLevel.SLOW] == 0

    def test_mean_speed(self, small_city, estimator):
        segs = small_city.network.segment_ids
        estimator.update(segs[0], 20.0, t=0.0)
        estimator.update(segs[1], 40.0, t=0.0)
        assert estimator.snapshot(at_s=1.0).mean_speed_kmh() == pytest.approx(30.0)


class TestPublishedHistory:
    def test_published_speed_uses_latest_frame_at_or_before(self, small_city, estimator):
        seg = small_city.network.segment_ids[0]
        estimator.update(seg, 30.0, t=100.0)
        estimator.publish(at_s=300.0)
        estimator.update(seg, 50.0, t=400.0)
        estimator.publish(at_s=600.0)
        assert estimator.published_speed(seg, 350.0) == pytest.approx(30.0)
        # The second frame carries the Eq. 4 fusion of both observations.
        later = estimator.published_speed(seg, 700.0)
        assert 30.0 < later <= 50.0

    def test_before_first_publish_is_none(self, small_city, estimator):
        seg = small_city.network.segment_ids[0]
        estimator.update(seg, 30.0, t=100.0)
        assert estimator.published_speed(seg, 50.0) is None

    def test_publish_times_must_increase(self, estimator):
        estimator.publish(at_s=100.0)
        with pytest.raises(ValueError):
            estimator.publish(at_s=100.0)

    def test_unseen_segment_is_none(self, small_city, estimator):
        estimator.publish(at_s=100.0)
        assert estimator.published_speed(small_city.network.segment_ids[0], 200.0) is None

    def test_published_snapshot_is_historical(self, small_city, estimator):
        """Unlike live snapshots, the published view survives later updates."""
        seg = small_city.network.segment_ids[0]
        estimator.update(seg, 30.0, t=100.0)
        estimator.publish(at_s=300.0)
        # Much later data moves the live belief but not the 300 s frame.
        estimator.update(seg, 55.0, t=7000.0)
        snap = estimator.published_snapshot(350.0)
        assert snap.readings[seg].speed_kmh == pytest.approx(30.0)
        assert snap.readings[seg].age_s == pytest.approx(200.0)

    def test_published_snapshot_before_history_is_empty(self, small_city, estimator):
        snap = estimator.published_snapshot(10.0)
        assert snap.readings == {}
        assert snap.coverage == 0.0

    def test_published_snapshot_levels(self, small_city, estimator):
        seg = small_city.network.segment_ids[0]
        estimator.update(seg, 15.0, t=100.0)
        estimator.publish(at_s=200.0)
        snap = estimator.published_snapshot(250.0)
        assert snap.readings[seg].level is SpeedLevel.VERY_SLOW
