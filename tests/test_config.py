"""Tests pinning the paper's constants in the default configuration.

If someone "tunes" a default away from the paper's published value,
these tests make that a conscious, reviewed decision.
"""

import dataclasses

import pytest

from repro.config import DEFAULT_CONFIG, SystemConfig


class TestPaperConstants:
    def test_beep_tones_are_singapore(self):
        assert DEFAULT_CONFIG.beep.tone_frequencies_hz == (1000.0, 3000.0)

    def test_audio_rate_8khz(self):
        assert DEFAULT_CONFIG.beep.sample_rate_hz == 8000

    def test_sliding_window_300ms(self):
        assert DEFAULT_CONFIG.beep.window_ms == 300.0

    def test_jump_threshold_3_sigma(self):
        assert DEFAULT_CONFIG.beep.jump_sigma == 3.0

    def test_trip_timeout_10_minutes(self):
        assert DEFAULT_CONFIG.trip_recorder.trip_timeout_s == 600.0

    def test_smith_waterman_scoring(self):
        matching = DEFAULT_CONFIG.matching
        assert matching.match_score == 1.0
        assert matching.mismatch_penalty == 0.3
        assert matching.gap_penalty == 0.3
        assert matching.accept_threshold == 2.0

    def test_clustering_parameters(self):
        clustering = DEFAULT_CONFIG.clustering
        assert clustering.max_similarity == 7.0     # s0
        assert clustering.max_interval_s == 30.0    # t0
        assert clustering.threshold == 0.6          # ε

    def test_traffic_model_b(self):
        assert DEFAULT_CONFIG.traffic_model.b == 0.5

    def test_fusion_period_5_minutes(self):
        assert DEFAULT_CONFIG.fusion.update_period_s == 300.0

    def test_gps_calibration_fig1(self):
        gps = DEFAULT_CONFIG.gps
        assert gps.stationary_median_m == 40.0
        assert gps.onbus_median_m == 68.0
        assert gps.stationary_p90_m == 75.0
        assert gps.onbus_p90_m == 130.0

    def test_neighbour_list_band(self):
        assert DEFAULT_CONFIG.radio.max_visible == 7


class TestConfigHygiene:
    def test_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            DEFAULT_CONFIG.matching.match_score = 2.0

    def test_replace_produces_independent_config(self):
        custom = dataclasses.replace(
            SystemConfig(),
            matching=dataclasses.replace(
                SystemConfig().matching, accept_threshold=3.0
            ),
        )
        assert custom.matching.accept_threshold == 3.0
        assert DEFAULT_CONFIG.matching.accept_threshold == 2.0

    def test_default_instance_matches_fresh_instance(self):
        assert DEFAULT_CONFIG == SystemConfig()
