"""Tests of the public API surface: exports exist and stay importable."""

import importlib

import pytest

import repro

PACKAGES = [
    "repro.city",
    "repro.radio",
    "repro.sim",
    "repro.phone",
    "repro.core",
    "repro.eval",
    "repro.analysis",
    "repro.baseline",
]


class TestTopLevel:
    def test_version(self):
        assert repro.__version__

    def test_lazy_exports_resolve(self):
        assert callable(repro.build_city)
        assert callable(repro.simulate_day)
        assert repro.BackendServer is not None
        assert repro.FingerprintDatabase is not None
        assert repro.CitySpec is not None
        assert repro.SimulationResult is not None

    def test_unknown_attribute_raises(self):
        with pytest.raises(AttributeError):
            repro.does_not_exist

    def test_default_config_exported(self):
        assert repro.DEFAULT_CONFIG == repro.SystemConfig()


class TestPackageAllLists:
    @pytest.mark.parametrize("package_name", PACKAGES)
    def test_every_all_entry_exists(self, package_name):
        package = importlib.import_module(package_name)
        for name in package.__all__:
            assert hasattr(package, name), f"{package_name}.{name} missing"

    @pytest.mark.parametrize("package_name", PACKAGES)
    def test_no_duplicate_all_entries(self, package_name):
        package = importlib.import_module(package_name)
        assert len(package.__all__) == len(set(package.__all__))


class TestDocstrings:
    @pytest.mark.parametrize("package_name", PACKAGES + ["repro", "repro.wire",
                                                         "repro.cli", "repro.config"])
    def test_module_docstrings_present(self, package_name):
        module = importlib.import_module(package_name)
        assert module.__doc__ and module.__doc__.strip()

    @pytest.mark.parametrize("package_name", PACKAGES)
    def test_public_callables_documented(self, package_name):
        package = importlib.import_module(package_name)
        undocumented = [
            name
            for name in package.__all__
            if callable(getattr(package, name)) and not getattr(package, name).__doc__
        ]
        assert not undocumented, f"undocumented: {undocumented}"
