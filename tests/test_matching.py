"""Tests for Smith-Waterman matching (§III-C1, Table I)."""

import numpy as np
import pytest

from repro.config import MatchingConfig
from repro.core.matching import (
    SampleMatcher,
    batch_smith_waterman,
    common_id_count,
    smith_waterman,
)


class TestSmithWaterman:
    def test_paper_table_i_instance(self):
        """Table I: 3 matches + 1 gap + 1 mismatch → 2.4."""
        score = smith_waterman([1, 2, 3, 4, 5], [1, 7, 3, 5])
        assert score == pytest.approx(2.4)

    def test_identical_sequences_score_length(self):
        assert smith_waterman([4, 8, 15], [4, 8, 15]) == pytest.approx(3.0)

    def test_disjoint_sequences_score_zero(self):
        assert smith_waterman([1, 2, 3], [4, 5, 6]) == 0.0

    def test_empty_scores_zero(self):
        assert smith_waterman([], [1, 2]) == 0.0
        assert smith_waterman([1, 2], []) == 0.0

    def test_symmetric(self):
        a, b = [1, 2, 3, 4], [2, 1, 4, 3]
        assert smith_waterman(a, b) == pytest.approx(smith_waterman(b, a))

    def test_score_bounded_by_shorter_length(self):
        assert smith_waterman([1, 2], [1, 2, 3, 4, 5, 6, 7]) <= 2.0

    def test_local_alignment_ignores_prefix_garbage(self):
        # The shared suffix aligns cleanly regardless of a junk prefix.
        score = smith_waterman([99, 98, 1, 2, 3], [1, 2, 3])
        assert score == pytest.approx(3.0)

    def test_one_rank_swap_costs_about_1_3(self):
        clean = smith_waterman([1, 2, 3, 4, 5], [1, 2, 3, 4, 5])
        swapped = smith_waterman([1, 3, 2, 4, 5], [1, 2, 3, 4, 5])
        assert clean - swapped == pytest.approx(1.3, abs=0.31)

    def test_penalty_config_respected(self):
        harsh = MatchingConfig(mismatch_penalty=0.9, gap_penalty=0.9)
        score = smith_waterman([1, 2, 3, 4, 5], [1, 7, 3, 5], harsh)
        assert score < smith_waterman([1, 2, 3, 4, 5], [1, 7, 3, 5])


class TestBatchSmithWaterman:
    def test_matches_scalar_implementation(self, rng):
        uploads, dbs = [], []
        for _ in range(40):
            uploads.append(list(rng.choice(20, size=rng.integers(1, 8), replace=False)))
            dbs.append(list(rng.choice(20, size=rng.integers(1, 8), replace=False)))
        batch = batch_smith_waterman(uploads, dbs)
        for upload, db, score in zip(uploads, dbs, batch):
            assert score == pytest.approx(smith_waterman(upload, db))

    def test_negative_ids_match_scalar(self, rng):
        """Regression: padding sentinels must live outside the alphabet.

        The old implementation padded with the constants −1/−2, so an
        upstream decoder emitting negative tower ids (e.g. unknown-cell
        markers) could collide with the padding and score phantom
        matches.  Sentinels are now derived below the smallest observed
        id, so batch == scalar even over negative alphabets.
        """
        alphabet = np.arange(-10, 10)
        uploads, dbs = [], []
        for _ in range(40):
            uploads.append(list(rng.choice(alphabet, size=rng.integers(1, 8),
                                           replace=False)))
            dbs.append(list(rng.choice(alphabet, size=rng.integers(1, 8),
                                       replace=False)))
        batch = batch_smith_waterman(uploads, dbs)
        for upload, db, score in zip(uploads, dbs, batch):
            assert score == pytest.approx(smith_waterman(upload, db))

    def test_sentinel_collision_case(self):
        """The exact collision: an id equal to the old −1 query pad
        aligned against padding used to score a spurious match."""
        uploads = [[-1, -2], [-1]]
        dbs = [[-2, -1], [7]]
        scores = batch_smith_waterman(uploads, dbs)
        assert scores[0] == pytest.approx(smith_waterman([-1, -2], [-2, -1]))
        assert scores[1] == pytest.approx(0.0)

    def test_empty_batch(self):
        assert batch_smith_waterman([], []).shape == (0,)

    def test_empty_sequences_in_batch(self):
        scores = batch_smith_waterman([[], [1, 2]], [[1], []])
        assert scores == pytest.approx([0.0, 0.0])

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError):
            batch_smith_waterman([[1]], [])


class TestSampleMatcher:
    @pytest.fixture()
    def matcher(self):
        fingerprints = {
            1: (10, 11, 12, 13, 14),
            2: (20, 21, 22, 23, 24),
            3: (10, 11, 12, 15, 16),    # overlaps stop 1
        }
        return SampleMatcher(fingerprints)

    def test_exact_match(self, matcher):
        result = matcher.match((20, 21, 22, 23, 24))
        assert result.station_id == 2
        assert result.score == pytest.approx(5.0)

    def test_below_threshold_rejected(self, matcher):
        result = matcher.match((20, 99, 98, 97))
        assert not result.accepted
        assert result.station_id is None

    def test_tie_broken_by_common_ids(self, matcher):
        # (10,11,12) aligns equally with stops 1 and 3; extend with an id
        # unique to stop 3's tail to tip the common-id count.
        result = matcher.match((10, 11, 12, 15))
        assert result.station_id == 3

    def test_match_many_equals_match(self, matcher, rng):
        samples = [
            tuple(rng.choice([10, 11, 12, 13, 14, 20, 21, 15, 16, 99],
                             size=5, replace=False))
            for _ in range(30)
        ]
        singles = [matcher.match(s) for s in samples]
        batch = matcher.match_many(samples)
        assert [m.station_id for m in batch] == [m.station_id for m in singles]
        assert [m.score for m in batch] == pytest.approx([m.score for m in singles])

    def test_match_many_empty(self, matcher):
        assert matcher.match_many([]) == []

    def test_scores_exposes_all_stops(self, matcher):
        scores = matcher.scores((10, 11, 12))
        assert set(scores) == {1, 2, 3}

    def test_pickle_round_trip_matches(self, matcher):
        """A matcher crossing a process boundary must match identically
        (the parallel ingest engine pickles worker payloads)."""
        import pickle

        clone = pickle.loads(pickle.dumps(matcher))
        for sample in [(20, 21, 22, 23, 24), (10, 11, 12, 15), (99, 98)]:
            assert clone.match(sample) == matcher.match(sample)

    def test_requires_fingerprints(self):
        with pytest.raises(ValueError):
            SampleMatcher({})

    def test_common_id_count(self):
        assert common_id_count([1, 2, 3], [2, 3, 4]) == 2


class TestEndToEndDiscrimination:
    def test_survey_database_identifies_stops(self, small_city, scanner, database, config):
        """Per-sample matching accuracy on the small city stays high."""
        matcher = SampleMatcher(database.as_dict(), config.matching)
        rng = np.random.default_rng(77)
        total = correct = 0
        for station in small_city.registry.stations:
            for rep in range(3):
                platform = station.stops[rep % 2]
                obs = scanner.scan(platform.position, rng)
                result = matcher.match(obs.tower_ids)
                total += 1
                if result.station_id == station.station_id:
                    correct += 1
        assert correct / total > 0.9
