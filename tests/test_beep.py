"""Tests for the sliding-window beep detector."""

import numpy as np
import pytest

from repro.config import BeepConfig
from repro.phone.beep import BeepDetector, detect_beeps
from repro.sim.audio import synthesize_cabin_audio


def make_audio(beep_times, duration=8.0, seed=0, **kwargs):
    return synthesize_cabin_audio(
        duration, beep_times, BeepConfig(), rng=np.random.default_rng(seed), **kwargs
    )


class TestDetection:
    def test_detects_single_beep(self):
        events = detect_beeps(make_audio([3.0]))
        assert len(events) == 1
        # Window end lands just after the beep.
        assert events[0].time_s == pytest.approx(3.15, abs=0.35)

    def test_detects_multiple_beeps(self):
        events = detect_beeps(make_audio([2.0, 4.0, 6.0]))
        assert len(events) == 3

    def test_no_false_positives_on_noise(self):
        for seed in range(5):
            assert detect_beeps(make_audio([], seed=seed)) == []

    def test_scores_exceed_threshold(self, config):
        events = detect_beeps(make_audio([3.0]))
        assert events[0].score > config.beep.jump_sigma

    def test_detection_rate_high_over_trials(self):
        detected = 0
        for seed in range(20):
            if detect_beeps(make_audio([4.0], seed=seed)):
                detected += 1
        assert detected >= 19

    def test_close_taps_merge_into_refractory_gap(self):
        # Two taps 150 ms apart: the refractory gap yields one event.
        events = detect_beeps(make_audio([3.0, 3.15]))
        assert len(events) == 1

    def test_works_at_lower_snr(self):
        audio = make_audio([3.0], noise_rms=0.1, beep_amplitude=0.2)
        assert len(detect_beeps(audio)) == 1


class TestStreaming:
    def test_chunked_equals_oneshot(self):
        audio = make_audio([2.0, 5.0])
        oneshot = [e.time_s for e in detect_beeps(audio)]
        detector = BeepDetector()
        chunked = []
        for start in range(0, len(audio), 1000):
            chunked.extend(e.time_s for e in detector.process(audio[start : start + 1000]))
        assert chunked == pytest.approx(oneshot)

    def test_rejects_multidim_chunk(self):
        with pytest.raises(ValueError):
            BeepDetector().process(np.zeros((10, 2)))

    def test_needs_warmup(self):
        # A beep in the very first windows cannot fire (no noise stats yet).
        cfg = BeepConfig()
        audio = make_audio([0.15])
        events = detect_beeps(audio)
        assert all(e.time_s > 0.5 for e in events)

    def test_window_samples(self):
        detector = BeepDetector(BeepConfig(window_ms=300.0, sample_rate_hz=8000))
        assert detector.window_samples == 2400
