"""Tests for the parallel sharded ingest engine.

The contract under test: ``ingest_many`` with N>1 workers produces
bit-identical reports, ``ServerStats`` and traffic-map output to the
serial path, and the workers' telemetry merges back into the parent
registry so counter totals match a serial run too.
"""

import dataclasses
import itertools

import numpy as np
import pytest

from repro.core import BackendServer, IngestEngine, PreparedTrip
from repro.obs import MetricsRegistry
from repro.phone import record_participant_trips
from repro.phone.cellular import CellularSample
from repro.phone.trip_recorder import TripUpload
from repro.sim.bus import simulate_bus_trip
from repro.util.units import parse_hhmm


@pytest.fixture(scope="module")
def batch(small_city, traffic, sampler, config):
    """Uploads from two bus routes: a real multi-trip ingest batch."""
    rider_ids = itertools.count()
    uploads = []
    for k, route_id in enumerate(("179-0", "199-0")):
        route = small_city.route_network.route(route_id)
        trace = simulate_bus_trip(
            route, parse_hhmm("08:10") + 120.0 * k, traffic, rider_ids,
            rng=np.random.default_rng(21 + k),
        )
        uploads.extend(record_participant_trips(
            trace, small_city.registry, sampler, config,
            rng=np.random.default_rng(31 + k),
        ))
    assert len(uploads) >= 4
    return uploads


def make_server(small_city, database, config, registry=None):
    return BackendServer(
        small_city.network, small_city.route_network, database, config,
        registry=registry,
    )


def report_key(report):
    """Everything a TripReport asserts about a trip, hashable-ish."""
    return (
        report.trip_key,
        report.accepted_samples,
        report.discarded_samples,
        [len(c) for c in report.clusters],
        report.mapped.station_sequence() if report.mapped else None,
        report.estimates,
    )


def map_state(server, at_s=parse_hhmm("12:00")):
    snapshot = server.traffic_map.published_snapshot(at_s)
    return {
        seg: dataclasses.astuple(reading)
        for seg, reading in snapshot.readings.items()
    }


class TestPrepareApplySplit:
    def test_prepare_then_apply_equals_receive(
        self, small_city, database, config, batch
    ):
        serial = make_server(small_city, database, config)
        split = make_server(small_city, database, config)
        for upload in batch:
            expected = serial.receive_trip(upload)
            got = split.apply_prepared(split.prepare_upload(upload))
            assert report_key(got) == report_key(expected)
        assert split.stats.as_dict() == serial.stats.as_dict()
        assert map_state(split) == map_state(serial)

    def test_skipped_stub_shape(self, batch):
        upload = batch[0]
        stub = PreparedTrip.skipped(upload)
        assert stub.trip_key == upload.trip_key
        assert stub.samples_total == len(upload.samples)
        assert stub.accepted == 0 and stub.discarded == 0
        assert stub.clusters == [] and stub.mapped is None

    def test_apply_detects_duplicate(self, small_city, database, config, batch):
        server = make_server(small_city, database, config)
        upload = batch[0]
        server.receive_trip(upload)
        report = server.apply_prepared(server.prepare_upload(upload))
        assert report.mapped is None
        assert server.stats.trips_duplicate == 1
        assert server.stats.samples_duplicate == len(upload.samples)


class TestIngestEngine:
    def test_prepare_preserves_order_across_shards(
        self, small_city, database, config, batch
    ):
        serial = make_server(small_city, database, config)
        expected = [serial.prepare_upload(u) for u in batch]
        for shard_size in (1, 3, None):
            with IngestEngine.for_server(
                serial, workers=2, shard_size=shard_size
            ) as engine:
                prepared = engine.prepare(batch)
            assert [p.trip_key for p in prepared] == [
                u.trip_key for u in batch
            ]
            for got, want in zip(prepared, expected):
                assert got.accepted == want.accepted
                assert got.discarded == want.discarded
                assert [len(c) for c in got.clusters] == [
                    len(c) for c in want.clusters
                ]
                if want.mapped is None:
                    assert got.mapped is None
                else:
                    assert (
                        got.mapped.station_sequence()
                        == want.mapped.station_sequence()
                    )

    def test_empty_batch_needs_no_pool(self, small_city, database, config):
        server = make_server(small_city, database, config)
        engine = IngestEngine.for_server(server, workers=2)
        assert engine.prepare([]) == []
        assert engine._pool is None      # never spawned
        engine.close()

    def test_validates_arguments(self, small_city, database, config):
        server = make_server(small_city, database, config)
        with pytest.raises(ValueError):
            IngestEngine.for_server(server, workers=0)
        with pytest.raises(ValueError):
            IngestEngine.for_server(server, workers=2, shard_size=0)


class TestParallelParity:
    @pytest.mark.parametrize("workers", [2, 4])
    def test_ingest_many_bit_identical_to_serial(
        self, small_city, database, config, batch, workers
    ):
        serial = make_server(small_city, database, config)
        parallel = make_server(small_city, database, config)
        expected = serial.ingest_many(batch)
        got = parallel.ingest_many(batch, workers=workers)
        assert [report_key(r) for r in got] == [
            report_key(r) for r in expected
        ]
        assert parallel.stats.as_dict() == serial.stats.as_dict()
        assert map_state(parallel) == map_state(serial)

    def test_duplicates_filtered_before_dispatch(
        self, small_city, database, config, batch
    ):
        doped = list(batch) + [batch[0], batch[-1]]
        serial = make_server(small_city, database, config)
        parallel = make_server(small_city, database, config)
        expected = serial.ingest_many(doped)
        got = parallel.ingest_many(doped, workers=2)
        assert [report_key(r) for r in got] == [
            report_key(r) for r in expected
        ]
        assert parallel.stats.trips_duplicate == 2
        assert parallel.stats.as_dict() == serial.stats.as_dict()

    def test_worker_metrics_merge_back(
        self, small_city, database, config, batch
    ):
        serial_reg = MetricsRegistry()
        parallel_reg = MetricsRegistry()
        serial = make_server(small_city, database, config, registry=serial_reg)
        parallel = make_server(
            small_city, database, config, registry=parallel_reg
        )
        serial.ingest_many(batch)
        parallel.ingest_many(batch, workers=2)
        a, b = serial_reg.as_dict(), parallel_reg.as_dict()
        for name in (
            "matcher_samples_total", "matcher_samples_accepted",
            "matcher_pairs_scored", "clustering_samples_total",
            "clustering_clusters_total",
        ):
            assert b["counters"][name] == a["counters"][name], name
        assert (
            b["histograms"]["matcher_candidates_per_sample"]
            == a["histograms"]["matcher_candidates_per_sample"]
        )
        assert (
            b["labeled"]["matcher_stop_matches_total"]["children"]
            == a["labeled"]["matcher_stop_matches_total"]["children"]
        )
        # Engine-side telemetry only exists on the parallel run.
        assert b["counters"]["ingest_batches_total"] == 1
        assert b["counters"]["ingest_trips_total"] == len(batch)
        assert b["counters"]["ingest_shards_total"] >= 1
        assert b["gauges"]["ingest_workers"] == 2
        assert "ingest_batches_total" not in a["counters"]

    def test_explicit_engine_reused_across_batches(
        self, small_city, database, config, batch
    ):
        serial = make_server(small_city, database, config)
        parallel = make_server(small_city, database, config)
        half = len(batch) // 2
        serial.ingest_many(batch[:half])
        serial.ingest_many(batch[half:])
        with IngestEngine.for_server(parallel, workers=2) as engine:
            parallel.ingest_many(batch[:half], engine=engine)
            parallel.ingest_many(batch[half:], engine=engine)
        assert parallel.stats.as_dict() == serial.stats.as_dict()
        assert map_state(parallel) == map_state(serial)


class TestWorldWorkers:
    @pytest.mark.slow
    def test_world_run_parity(self, small_city, config):
        from repro.sim.world import World

        def run(workers):
            world = World(city=small_city, config=config, seed=11)
            result = world.run(
                parse_hhmm("08:00"), parse_hhmm("08:45"),
                route_ids=["179-0", "199-0"], with_official_feed=False,
                workers=workers,
            )
            return (
                world.server.stats.as_dict(),
                map_state(world.server),
                [report_key(r) for r in result.reports],
            )

        serial = run(1)
        parallel = run(2)
        assert parallel == serial
