"""Tests for the cellular radio substrate: towers, propagation, scanning."""

import numpy as np
import pytest

from repro.city.geometry import Point
from repro.config import RadioConfig
from repro.radio import (
    CellTower,
    CellularScanner,
    Observation,
    PropagationModel,
    deploy_towers,
)


class TestDeployment:
    def test_covers_region_with_margin(self):
        towers = deploy_towers(2000, 1000, inter_site_m=500, seed=1)
        xs = [t.position.x for t in towers]
        ys = [t.position.y for t in towers]
        assert min(xs) < 0 and max(xs) > 2000
        assert min(ys) < 0 and max(ys) > 1000

    def test_ids_unique(self):
        towers = deploy_towers(2000, 1000, inter_site_m=500, seed=1)
        assert len({t.tower_id for t in towers}) == len(towers)

    def test_deterministic(self):
        a = deploy_towers(1000, 1000, seed=3)
        b = deploy_towers(1000, 1000, seed=3)
        assert [t.position for t in a] == [t.position for t in b]

    def test_rejects_bad_spacing(self):
        with pytest.raises(ValueError):
            deploy_towers(1000, 1000, inter_site_m=0)


class TestPropagation:
    @pytest.fixture()
    def model(self):
        return PropagationModel(RadioConfig(), seed=11)

    @pytest.fixture()
    def tower(self):
        return CellTower(tower_id=1, position=Point(0, 0))

    def test_mean_rss_decreases_with_distance(self, model, tower):
        # Shadowing varies per location, so compare at well-separated ranges.
        near = model.mean_rss_dbm(tower, Point(50, 0))
        far = model.mean_rss_dbm(tower, Point(3000, 0))
        assert near > far + 20

    def test_mean_rss_is_stable(self, model, tower):
        where = Point(500, 300)
        assert model.mean_rss_dbm(tower, where) == model.mean_rss_dbm(tower, where)

    def test_measurement_fluctuates(self, model, tower):
        where = Point(500, 300)
        rng = np.random.default_rng(0)
        values = {model.measure_rss_dbm(tower, where, rng) for _ in range(5)}
        assert len(values) == 5

    def test_measurement_noise_is_zero_mean(self, model, tower):
        where = Point(500, 300)
        rng = np.random.default_rng(0)
        mean_field = model.mean_rss_dbm(tower, where)
        samples = [model.measure_rss_dbm(tower, where, rng) for _ in range(400)]
        assert np.mean(samples) == pytest.approx(mean_field, abs=0.5)

    def test_shadowing_is_smooth(self, model, tower):
        # Two points 5 m apart must have nearly equal shadowing.
        a = model.mean_rss_dbm(tower, Point(500, 300))
        b = model.mean_rss_dbm(tower, Point(505, 300))
        assert abs(a - b) < 3.0

    def test_seed_changes_shadow_field(self, tower):
        a = PropagationModel(RadioConfig(), seed=1).mean_rss_dbm(tower, Point(500, 300))
        b = PropagationModel(RadioConfig(), seed=2).mean_rss_dbm(tower, Point(500, 300))
        assert a != b


class TestObservation:
    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError):
            Observation(tower_ids=(1, 2), rss_dbm=(-50.0,))

    def test_rejects_unsorted_rss(self):
        with pytest.raises(ValueError):
            Observation(tower_ids=(1, 2), rss_dbm=(-70.0, -50.0))

    def test_serving_tower(self):
        obs = Observation(tower_ids=(9, 4), rss_dbm=(-50.0, -60.0))
        assert obs.serving_tower == 9

    def test_empty_has_no_serving_tower(self):
        with pytest.raises(ValueError):
            Observation(tower_ids=(), rss_dbm=()).serving_tower


class TestScanner:
    def test_visible_count_in_paper_band(self, small_city, scanner):
        counts = [
            scanner.visible_count(st.position) for st in small_city.registry.stations
        ]
        assert min(counts) >= 2
        assert max(counts) <= 7          # capped at the neighbour-list size
        assert np.median(counts) >= 4    # §III-A: typically 4–7 visible

    def test_scan_ordered_by_rss(self, small_city, scanner, rng):
        obs = scanner.scan(small_city.registry.stations[0].position, rng)
        assert list(obs.rss_dbm) == sorted(obs.rss_dbm, reverse=True)

    def test_mean_scan_deterministic(self, small_city, scanner):
        where = small_city.registry.stations[3].position
        assert scanner.mean_scan(where).tower_ids == scanner.mean_scan(where).tower_ids

    def test_scan_noise_reorders_mid_list(self, small_city, scanner):
        where = small_city.registry.stations[3].position
        rng = np.random.default_rng(1)
        orders = {scanner.scan(where, rng).tower_ids for _ in range(12)}
        assert len(orders) > 1           # temporal noise swaps weak neighbours

    def test_requires_towers(self, config):
        with pytest.raises(ValueError):
            CellularScanner([], PropagationModel(config.radio, seed=0))
