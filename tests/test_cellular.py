"""Tests for the phone-side cellular sampling layer."""

import numpy as np
import pytest

from repro.phone.cellular import CellularSample, CellularSampler
from repro.radio.scanner import Observation


class TestCellularSample:
    def test_rejects_mismatched_rss(self):
        with pytest.raises(ValueError):
            CellularSample(time_s=0.0, tower_ids=(1, 2), rss_dbm=(-50.0,))

    def test_rss_optional(self):
        sample = CellularSample(time_s=0.0, tower_ids=(1, 2))
        assert sample.rss_dbm == ()
        assert len(sample) == 2

    def test_from_observation(self):
        obs = Observation(tower_ids=(9, 4), rss_dbm=(-50.0, -60.0))
        sample = CellularSample.from_observation(123.0, obs)
        assert sample.time_s == 123.0
        assert sample.tower_ids == (9, 4)
        assert sample.rss_dbm == (-50.0, -60.0)

    def test_immutable(self):
        sample = CellularSample(time_s=0.0, tower_ids=(1,))
        with pytest.raises(AttributeError):
            sample.time_s = 5.0


class TestCellularSampler:
    def test_sample_carries_time_and_order(self, small_city, sampler, rng):
        where = small_city.registry.stations[0].stops[0].position
        sample = sampler.sample(where, 456.0, rng)
        assert sample.time_s == 456.0
        assert len(sample.tower_ids) >= 1
        assert list(sample.rss_dbm) == sorted(sample.rss_dbm, reverse=True)

    def test_repeated_samples_share_strongest_cell_mostly(
        self, small_city, sampler
    ):
        where = small_city.registry.stations[5].stops[0].position
        rng = np.random.default_rng(7)
        serving = [
            sampler.sample(where, float(k), rng).tower_ids[0] for k in range(10)
        ]
        most_common = max(set(serving), key=serving.count)
        assert serving.count(most_common) >= 7
