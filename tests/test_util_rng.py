"""Tests for deterministic RNG plumbing."""

import numpy as np
import pytest

from repro.util.rng import derive_rng, ensure_rng, field_rng, stable_hash


class TestEnsureRng:
    def test_none_gives_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_int_seed_is_reproducible(self):
        a = ensure_rng(42).integers(0, 1_000_000)
        b = ensure_rng(42).integers(0, 1_000_000)
        assert a == b

    def test_generator_passes_through(self):
        gen = np.random.default_rng(1)
        assert ensure_rng(gen) is gen

    def test_different_seeds_differ(self):
        draws_a = ensure_rng(1).integers(0, 2**31, size=8)
        draws_b = ensure_rng(2).integers(0, 2**31, size=8)
        assert not np.array_equal(draws_a, draws_b)


class TestDeriveRng:
    def test_same_seed_and_label_match(self):
        a = derive_rng(7, "traffic").integers(0, 2**31, size=4)
        b = derive_rng(7, "traffic").integers(0, 2**31, size=4)
        assert np.array_equal(a, b)

    def test_labels_give_independent_streams(self):
        a = derive_rng(7, "traffic").integers(0, 2**31, size=4)
        b = derive_rng(7, "phones").integers(0, 2**31, size=4)
        assert not np.array_equal(a, b)

    def test_derivation_from_generator_advances_parent(self):
        parent = np.random.default_rng(3)
        before = parent.bit_generator.state["state"]["state"]
        derive_rng(parent, "child")
        after = parent.bit_generator.state["state"]["state"]
        assert before != after


class TestFieldRng:
    def test_order_independent(self):
        first = field_rng(5, "shadow", 10, 1, 2).standard_normal()
        # Draw other keys in between; the keyed stream must not care.
        field_rng(5, "shadow", 99, 0, 0).standard_normal()
        second = field_rng(5, "shadow", 10, 1, 2).standard_normal()
        assert first == second

    def test_keys_decorrelate(self):
        a = field_rng(5, "shadow", 10, 1, 2).standard_normal()
        b = field_rng(5, "shadow", 10, 1, 3).standard_normal()
        assert a != b

    def test_rejects_live_generator(self):
        with pytest.raises(TypeError):
            field_rng(np.random.default_rng(0), "shadow", 1)


class TestStableHash:
    def test_deterministic(self):
        assert stable_hash("a", 1) == stable_hash("a", 1)

    def test_sensitive_to_parts(self):
        assert stable_hash("a", 1) != stable_hash("a", 2)
        assert stable_hash("ab") != stable_hash("a", "b")
