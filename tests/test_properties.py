"""Property-based tests (hypothesis) on core algorithms and invariants."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.city.geometry import Point, Polyline
from repro.config import ClusteringConfig, FusionConfig, MatchingConfig
from repro.core.clustering import MatchedSample, cluster_trip_samples
from repro.core.fusion import BayesianSpeedFuser
from repro.core.matching import (
    SampleMatcher,
    batch_smith_waterman,
    smith_waterman,
)
from repro.core.traffic_model import TrafficModel
from repro.eval.metrics import Cdf
from repro.phone.cellular import CellularSample
from repro.core.matching import MatchResult
from repro.sim.events import Simulator

# -- strategies ----------------------------------------------------------------

cell_sequences = st.lists(
    st.integers(min_value=0, max_value=30), min_size=0, max_size=8, unique=True
)
nonempty_cells = st.lists(
    st.integers(min_value=0, max_value=30), min_size=1, max_size=8, unique=True
)
signed_cells = st.lists(
    st.integers(min_value=-30, max_value=30), min_size=0, max_size=8, unique=True
)
signed_nonempty_cells = st.lists(
    st.integers(min_value=-30, max_value=30), min_size=1, max_size=8, unique=True
)


class TestSmithWatermanProperties:
    @given(cell_sequences, cell_sequences)
    def test_non_negative(self, a, b):
        assert smith_waterman(a, b) >= 0.0

    @given(cell_sequences, cell_sequences)
    def test_symmetric(self, a, b):
        assert smith_waterman(a, b) == pytest.approx(smith_waterman(b, a))

    @given(nonempty_cells)
    def test_self_similarity_equals_length(self, a):
        assert smith_waterman(a, a) == pytest.approx(float(len(a)))

    @given(cell_sequences, cell_sequences)
    def test_bounded_by_min_length(self, a, b):
        assert smith_waterman(a, b) <= min(len(a), len(b)) + 1e-9

    @given(cell_sequences, cell_sequences)
    def test_disjoint_is_zero(self, a, b):
        b_shifted = [x + 100 for x in b]
        assert smith_waterman(a, b_shifted) == 0.0

    @given(st.lists(st.tuples(cell_sequences, cell_sequences), max_size=12))
    def test_batch_equals_scalar(self, pairs):
        uploads = [p[0] for p in pairs]
        dbs = [p[1] for p in pairs]
        batch = batch_smith_waterman(uploads, dbs)
        for upload, db, score in zip(uploads, dbs, batch):
            assert score == pytest.approx(smith_waterman(upload, db))

    @given(nonempty_cells, nonempty_cells, nonempty_cells)
    def test_subsequence_monotonicity(self, a, b, extra):
        """Appending fresh ids to the database never lowers the score."""
        extension = [x + 100 for x in extra]
        assert smith_waterman(a, b + extension) >= smith_waterman(a, b) - 1e-9

    @pytest.mark.property
    @given(st.lists(st.tuples(signed_cells, signed_cells), max_size=12))
    def test_batch_equals_scalar_signed_alphabet(self, pairs):
        """Batch == scalar over alphabets containing negative tower ids
        (the padding sentinels must never collide with real ids)."""
        uploads = [p[0] for p in pairs]
        dbs = [p[1] for p in pairs]
        batch = batch_smith_waterman(uploads, dbs)
        for upload, db, score in zip(uploads, dbs, batch):
            assert score == pytest.approx(smith_waterman(upload, db))


@pytest.mark.property
class TestMatcherBoundaryProperties:
    """`match` vs `match_many` parity, pinned at the γ acceptance boundary.

    The vectorised path must agree with the scalar path not only on
    well-separated scores but when a candidate's score lands *exactly*
    on γ (and one float step either side of it), where any rounding
    difference between the two DP implementations would flip a verdict.
    """

    @given(
        st.dictionaries(
            st.integers(min_value=1, max_value=6), nonempty_cells,
            min_size=1, max_size=5,
        ),
        st.lists(nonempty_cells, min_size=1, max_size=6),
        st.integers(min_value=0, max_value=10_000),
    )
    def test_match_many_parity_at_gamma_boundary(self, db, samples, pick):
        fingerprints = {sid: tuple(seq) for sid, seq in db.items()}
        probe = SampleMatcher(fingerprints)
        achieved = sorted({
            score
            for sample in samples
            for score in probe.scores(sample).values()
            if score > 0.0
        })
        gammas = [MatchingConfig().accept_threshold]
        if achieved:
            boundary = achieved[pick % len(achieved)]
            gammas += [
                boundary,                           # score == γ: rejected
                float(np.nextafter(boundary, -np.inf)),  # just under: accepted
                float(np.nextafter(boundary, np.inf)),   # just over: rejected
            ]
        for gamma in gammas:
            matcher = SampleMatcher(
                fingerprints, MatchingConfig(accept_threshold=float(gamma))
            )
            singles = [matcher.match(s) for s in samples]
            batch = matcher.match_many(samples)
            assert [m.accepted for m in batch] == [m.accepted for m in singles]
            assert [m.station_id for m in batch] == [
                m.station_id for m in singles
            ]
            assert [m.common_ids for m in batch] == [
                m.common_ids for m in singles
            ]
            assert [m.score for m in batch] == pytest.approx(
                [m.score for m in singles]
            )


@pytest.mark.property
class TestIndexedMatcherOracleEquivalence:
    """Candidate-pruned, memoized matching ≡ the full-matrix oracle.

    The inverted cell-id index only skips stations sharing zero cells
    with the sample, and the LRU memo only replays verdicts already
    computed — so the production matcher must equal the spec-literal
    :class:`OracleMatcher` *exactly* (``==`` on floats) on every random
    database, including negative tower ids (index keys below the
    padding-sentinel range) and γ pinned on an achieved score where one
    ULP of drift would flip a verdict.
    """

    @given(
        st.dictionaries(
            st.integers(min_value=1, max_value=8), signed_nonempty_cells,
            min_size=1, max_size=6,
        ),
        st.lists(signed_cells, min_size=1, max_size=8),
        st.integers(min_value=0, max_value=10_000),
    )
    def test_indexed_cached_equals_oracle_at_gamma_boundary(
        self, db, samples, pick
    ):
        from repro.testkit.oracles import OracleMatcher

        fingerprints = {sid: tuple(seq) for sid, seq in db.items()}
        achieved = sorted({
            score
            for result in OracleMatcher(
                fingerprints, MatchingConfig(accept_threshold=0.0)
            ).match_many(samples)
            for score in [result.score]
            if score > 0.0
        })
        gammas = [MatchingConfig().accept_threshold]
        if achieved:
            boundary = achieved[pick % len(achieved)]
            gammas += [
                boundary,
                float(np.nextafter(boundary, -np.inf)),
                float(np.nextafter(boundary, np.inf)),
            ]
        # Replay every sample twice so the second round is all cache
        # hits — memoized verdicts must equal freshly computed ones.
        replayed = samples + samples
        for gamma in gammas:
            config = MatchingConfig(
                accept_threshold=float(gamma), indexed=True, cache_size=64
            )
            matcher = SampleMatcher(fingerprints, config)
            oracle = OracleMatcher(fingerprints, config)
            expected = oracle.match_many(replayed)
            assert [matcher.match(s) for s in replayed] == expected
            assert matcher.match_many(replayed) == expected

    @given(
        st.dictionaries(
            st.integers(min_value=1, max_value=8), signed_nonempty_cells,
            min_size=1, max_size=6,
        ),
        st.lists(signed_cells, min_size=1, max_size=8),
    )
    def test_candidate_pool_never_drops_a_scoring_station(self, db, samples):
        """Pruning soundness: any station with a positive Smith-Waterman
        score against the sample shares a cell id, so it is in the pool."""
        fingerprints = {sid: tuple(seq) for sid, seq in db.items()}
        matcher = SampleMatcher(fingerprints, MatchingConfig(indexed=True))
        for sample in samples:
            pool = matcher.candidate_stations(sample)
            for station_id, fingerprint in fingerprints.items():
                if smith_waterman(sample, fingerprint) > 0.0:
                    assert station_id in pool


def _matched(t, station, score):
    return MatchedSample(
        sample=CellularSample(time_s=t, tower_ids=(1,)),
        match=MatchResult(station_id=station, score=score, common_ids=1),
    )


class TestClusteringProperties:
    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=2000.0),
                st.integers(min_value=0, max_value=5),
                st.floats(min_value=2.0, max_value=7.0),
            ),
            max_size=25,
        )
    )
    def test_partition(self, entries):
        """Clustering is a partition: every sample in exactly one cluster."""
        samples = [_matched(t, s, sc) for t, s, sc in entries]
        clusters = cluster_trip_samples(samples)
        flattened = [m for c in clusters for m in c.samples]
        assert len(flattened) == len(samples)
        assert {id(m) for m in flattened} == {id(m) for m in samples}

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=2000.0),
                st.integers(min_value=0, max_value=5),
            ),
            max_size=25,
        )
    )
    def test_clusters_time_ordered(self, entries):
        samples = [_matched(t, s, 5.0) for t, s in entries]
        clusters = cluster_trip_samples(samples)
        arrivals = [c.arrival_s for c in clusters]
        assert arrivals == sorted(arrivals)

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=500.0),
                st.integers(min_value=0, max_value=3),
            ),
            min_size=1,
            max_size=15,
        )
    )
    def test_candidate_probabilities_sum_to_at_most_one(self, entries):
        samples = [_matched(t, s, 5.0) for t, s in entries]
        for cluster in cluster_trip_samples(samples):
            total = sum(c.probability for c in cluster.candidates())
            assert total <= 1.0 + 1e-9


class TestFusionProperties:
    @given(
        st.lists(st.floats(min_value=5.0, max_value=90.0), min_size=1, max_size=30)
    )
    def test_mean_stays_within_observation_hull(self, speeds):
        fuser = BayesianSpeedFuser(FusionConfig(staleness_inflation_kmh_per_hr=0.0))
        for k, speed in enumerate(speeds):
            belief = fuser.update("seg", speed, t=float(k))
        assert min(speeds) - 1e-6 <= belief.mean_kmh <= max(speeds) + 1e-6

    @given(
        st.lists(st.floats(min_value=5.0, max_value=90.0), min_size=2, max_size=30)
    )
    def test_variance_monotone_without_staleness(self, speeds):
        fuser = BayesianSpeedFuser(FusionConfig(staleness_inflation_kmh_per_hr=0.0))
        variances = []
        for k, speed in enumerate(speeds):
            variances.append(fuser.update("seg", speed, t=float(k)).variance)
        assert all(b <= a + 1e-9 for a, b in zip(variances, variances[1:]))


class TestTrafficModelProperties:
    @given(
        st.floats(min_value=30.0, max_value=600.0),
        st.floats(min_value=100.0, max_value=1000.0),
        st.floats(min_value=8.0, max_value=25.0),
    )
    def test_att_monotone_in_btt(self, btt, length, free_speed):
        model = TrafficModel()
        att_a = model.estimate_att_s(btt, length, free_speed)
        att_b = model.estimate_att_s(btt * 1.5, length, free_speed)
        assert att_b >= att_a - 1e-9

    @given(
        st.floats(min_value=30.0, max_value=600.0),
        st.floats(min_value=100.0, max_value=1000.0),
        st.floats(min_value=8.0, max_value=25.0),
    )
    def test_speed_within_clamps(self, btt, length, free_speed):
        model = TrafficModel()
        estimate = model.estimate(btt, length, free_speed)
        assert model.config.min_speed_ms - 1e-9 <= estimate.speed_ms
        assert estimate.speed_ms <= model.config.max_speed_ms + 1e-9


class TestPolylineProperties:
    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=-1e4, max_value=1e4),
                st.floats(min_value=-1e4, max_value=1e4),
            ),
            min_size=2,
            max_size=10,
        ),
        st.floats(min_value=0.0, max_value=1.0),
    )
    def test_point_at_lies_within_bounding_box(self, coords, fraction):
        line = Polyline([Point(x, y) for x, y in coords])
        point = line.point_at(fraction * line.length)
        xs = [p.x for p in line.points]
        ys = [p.y for p in line.points]
        assert min(xs) - 1e-6 <= point.x <= max(xs) + 1e-6
        assert min(ys) - 1e-6 <= point.y <= max(ys) + 1e-6


class TestSimulatorProperties:
    @given(
        st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1, max_size=50)
    )
    def test_events_fire_in_nondecreasing_time(self, times):
        sim = Simulator()
        fired = []
        for t in times:
            sim.schedule(t, lambda s: fired.append(s.now))
        sim.run()
        assert fired == sorted(fired)
        assert len(fired) == len(times)


class TestWireProperties:
    @given(
        st.text(
            alphabet=st.characters(min_codepoint=33, max_codepoint=126),
            min_size=1,
            max_size=40,
        ),
        st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=1e7),
                st.lists(st.integers(min_value=0, max_value=10**7),
                         min_size=1, max_size=7, unique=True),
            ),
            max_size=20,
        ),
    )
    def test_trip_codec_round_trips(self, key, entries):
        from repro.phone.trip_recorder import TripUpload
        from repro.wire import trip_from_dict, trip_to_dict

        entries.sort(key=lambda e: e[0])
        upload = TripUpload(
            trip_key=key,
            samples=tuple(
                CellularSample(time_s=t, tower_ids=tuple(cells))
                for t, cells in entries
            ),
        )
        decoded = trip_from_dict(trip_to_dict(upload))
        assert decoded.trip_key == upload.trip_key
        assert [s.tower_ids for s in decoded.samples] == [
            s.tower_ids for s in upload.samples
        ]
        assert [s.time_s for s in decoded.samples] == [
            s.time_s for s in upload.samples
        ]


class TestUplinkProperties:
    @given(
        st.lists(st.floats(min_value=0.0, max_value=1e6), max_size=40),
        st.floats(min_value=0.0, max_value=0.9),
        st.integers(min_value=0, max_value=2**31),
    )
    def test_delivery_conserves_and_orders(self, ready_times, loss, seed):
        import numpy as np

        from repro.config import UplinkConfig
        from repro.phone.trip_recorder import TripUpload
        from repro.sim.uplink import UplinkChannel

        channel = UplinkChannel(
            UplinkConfig(loss_probability=loss),
            rng=np.random.default_rng(seed),
        )
        offered = [
            (t, TripUpload(trip_key=f"t{i}", samples=()))
            for i, t in enumerate(ready_times)
        ]
        delivered = channel.transmit_all(offered)
        # No duplication, no invention, arrival ≥ ready + base delay.
        assert len(delivered) <= len(offered)
        arrivals = [t for t, _ in delivered]
        assert arrivals == sorted(arrivals)
        ready_by_key = {u.trip_key: t for t, u in offered}
        for arrival, upload in delivered:
            assert arrival >= ready_by_key[upload.trip_key] + channel.config.base_delay_s
        assert channel.stats.delivered + channel.stats.lost == len(offered)


class TestCdfProperties:
    @given(
        st.lists(
            st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=200
        )
    )
    def test_fraction_below_monotone(self, values):
        cdf = Cdf.of(values)
        points = sorted([min(values), max(values), 0.0])
        fractions = [cdf.fraction_below(p) for p in points]
        assert fractions == sorted(fractions)
        assert cdf.fraction_below(max(values)) == 1.0
