"""Commuter-facing tools on top of the traffic map.

Shows the two applications §I motivates beyond the map itself:

1. **Arrival prediction** — a rider's phone has mapped the first stops
   of their bus trip; predict when the bus reaches every stop ahead.
2. **Incident detection** — the operator's console flags a segment
   whose speed collapses below its recent norm (we inject a synthetic
   incident into the fused map to demonstrate).

Run:  python examples/commuter_tools.py          (~40 seconds)
"""

from __future__ import annotations

import itertools

import numpy as np

from repro.analysis import IncidentDetector, detect_incidents
from repro.city import build_city
from repro.core.arrival import ArrivalPredictor
from repro.sim.bus import simulate_bus_trip
from repro.sim.world import World
from repro.util.units import hhmm, parse_hhmm

SEED = 29


def main() -> None:
    city = build_city()
    world = World(city=city, seed=SEED)
    result = world.run(
        parse_hhmm("07:30"), parse_hhmm("09:30"), with_official_feed=False
    )
    print(f"Warmed the map with {result.uploads_processed} uploads "
          f"until 09:30.\n")

    # -- 1. arrival prediction ------------------------------------------------
    route = city.route_network.route("179-0")
    trace = simulate_bus_trip(
        route, parse_hhmm("09:15"), world.traffic, itertools.count(),
        rng=np.random.default_rng(SEED),
        bus_config=world.config.bus, rider_config=world.config.riders,
    )
    anchor = trace.visits[3]
    predictor = ArrivalPredictor(
        city.route_network, world.server.traffic_map,
        model=world.config.traffic_model,
    )
    predictions = predictor.predict(
        "179-0", anchor.station_id, anchor.depart_s, max_horizon=8
    )
    actual = {v.stop_order: v.arrival_s for v in trace.visits}
    print(f"Bus on route 179-0 leaving station {anchor.station_id} "
          f"at {hhmm(anchor.depart_s)}; predicted arrivals:")
    print(f"  {'stop':>5} {'predicted':>10} {'actual':>8} {'error':>7}")
    for p in predictions:
        err = p.arrival_s - actual[p.stop_order]
        print(f"  {p.station_id:>5} {hhmm(p.arrival_s):>10} "
              f"{hhmm(actual[p.stop_order]):>8} {err:+6.0f}s")

    # -- 2. incident detection ---------------------------------------------------
    target = route.segments[5]
    traffic_map = world.server.traffic_map
    # Continue publishing after the campaign's own 5-minute cycle ended.
    t = max(traffic_map.publish_times) + 300.0
    print(f"\nInjecting a breakdown on segment {target} after {hhmm(t)}...")
    times = []
    for k in range(14):
        t += 300.0
        speed = 12.0 if 4 <= k < 10 else 42.0
        traffic_map.update(target, speed, t=t - 5.0)
        traffic_map.publish(at_s=t)
        times.append(t + 1.0)
    incidents = detect_incidents(
        traffic_map, [target], times, IncidentDetector(baseline_frames=4)
    )
    for incident in incidents:
        end = hhmm(incident.end_s) if incident.end_s else "ongoing"
        print(f"  INCIDENT on {incident.segment_id}: from "
              f"{hhmm(incident.start_s)} to {end}, severity "
              f"{100 * incident.severity:.0f}% (baseline "
              f"{incident.baseline_kmh:.0f} km/h, worst "
              f"{incident.worst_speed_kmh:.0f} km/h)")
    if not incidents:
        print("  no incident detected (unexpected)")


if __name__ == "__main__":
    main()
