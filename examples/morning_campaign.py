"""Morning campaign: a city-wide participatory sensing run.

Simulates the whole system over the paper-scale region for a morning
(07:30–11:00): buses on all 16 directed routes, crowd riders tapping
IC cards, phones uploading trips, the backend fusing speeds — then
prints the 8:45 AM traffic map, compares it against ground truth and
the official taxi feed, and shows one congested segment's time series.

Run:  python examples/morning_campaign.py        (~1 minute)
"""

from __future__ import annotations

import numpy as np

from repro.city import build_city
from repro.core.traffic_map import SpeedLevel
from repro.eval import GoogleMapsIndicator, segment_time_series
from repro.sim.world import World
from repro.util.units import hhmm, parse_hhmm

SEED = 11


def main() -> None:
    city = build_city()
    world = World(city=city, seed=SEED)
    print(f"Simulating {city.name}: {len(city.route_network.routes)} directed "
          f"routes, {len(city.registry.stations)} stations, seed={SEED}")

    result = world.run(parse_hhmm("07:30"), parse_hhmm("11:00"))
    stats = world.server.stats
    print(f"\nCampaign: {len(result.traces)} bus trips, "
          f"{stats.trips_received} uploads, {stats.trips_mapped} mapped, "
          f"{stats.samples_received} cellular samples "
          f"({stats.samples_discarded} discarded)")

    # -- the live map at the height of the rush ------------------------------
    snap = world.server.traffic_map.published_snapshot(parse_hhmm("08:45"))
    histogram = snap.level_histogram()
    print(f"\nTraffic map @ 08:45 — {100 * snap.coverage:.0f}% of roads covered, "
          f"mean {snap.mean_speed_kmh():.1f} km/h")
    for level in SpeedLevel:
        bar = "#" * int(50 * histogram[level] / max(1, len(snap.readings)))
        print(f"  {level.name:<9} {histogram[level]:4d}  {bar}")

    errors = [
        reading.speed_kmh - result.true_speed_kmh(seg, parse_hhmm("08:40"))
        for seg, reading in snap.readings.items()
    ]
    print(f"vs ground truth: bias {np.mean(errors):+.1f} km/h, "
          f"MAE {np.mean(np.abs(errors)):.1f} km/h over {len(errors)} segments")

    # -- one congested segment through the morning ---------------------------
    slowest = min(snap.readings.values(), key=lambda r: r.speed_kmh)
    google = GoogleMapsIndicator(city.network, world.traffic,
                                 world.config.google_maps, seed=SEED)
    series = segment_time_series(
        slowest.segment_id,
        world.server.traffic_map,
        result.official,
        parse_hhmm("08:00"),
        parse_hhmm("11:00"),
        google=google,
    )
    print(f"\nSegment {slowest.segment_id} (slowest at 08:45):")
    print(f"  {'window':<7} {'v_A':>6} {'v_T':>6}  google")
    for point in series:
        v_a = "-" if point.estimated_kmh is None else f"{point.estimated_kmh:5.1f}"
        v_t = "-" if point.official_kmh is None else f"{point.official_kmh:5.1f}"
        level = point.google_level.name if point.google_level else "-"
        print(f"  {hhmm(point.time_s):<7} {v_a:>6} {v_t:>6}  {level}")


if __name__ == "__main__":
    main()
