"""Region-wide traffic from bus-covered roads (the paper's future work).

The 8 studied services cover ~59% of the region's roads.  §VI proposes
deriving the *overall* region traffic from those covered segments; this
example runs a short sensing campaign, diffuses the estimated
congestion over the road graph, and scores the inferred speeds of the
roads no bus ever probed.

It also exports the city as a GTFS-like feed, the interchange format a
deployment would publish.

Run:  python examples/region_inference.py        (~30 seconds)
"""

from __future__ import annotations

import os
import tempfile

import numpy as np

from repro.city import build_city
from repro.city.gtfs import export_city, import_feed
from repro.core.region import infer_region_speeds
from repro.sim.world import World
from repro.util.units import parse_hhmm

SEED = 23


def main() -> None:
    city = build_city()
    world = World(city=city, seed=SEED)
    result = world.run(
        parse_hhmm("08:00"), parse_hhmm("10:00"), with_official_feed=False
    )
    at = parse_hhmm("09:45")
    snap = world.server.traffic_map.published_snapshot(at)
    print(f"Campaign until 10:00 — {len(snap.readings)} road segments carry "
          f"crowd-sensed speeds ({100 * snap.coverage:.0f}% of the region)")

    # -- diffuse congestion to the unprobed roads ---------------------------
    observed = {seg: r.speed_kmh for seg, r in snap.readings.items()}
    estimates = infer_region_speeds(city.network, observed)
    hidden = [seg for seg in city.network.segment_ids if seg not in observed]
    errors = [
        abs(estimates[seg].speed_kmh - result.true_speed_kmh(seg, at))
        for seg in hidden
    ]
    by_hops: dict = {}
    for seg in hidden:
        by_hops.setdefault(estimates[seg].hops_from_observed, []).append(
            abs(estimates[seg].speed_kmh - result.true_speed_kmh(seg, at))
        )
    print(f"\nInferred the remaining {len(hidden)} segments by graph diffusion:")
    print(f"  overall MAE {np.mean(errors):.1f} km/h")
    for hops in sorted(by_hops):
        values = by_hops[hops]
        print(f"  {hops} hop(s) from a probed road: "
              f"MAE {np.mean(values):.1f} km/h over {len(values)} segments")

    # -- publish the transit feed -------------------------------------------
    with tempfile.TemporaryDirectory() as tmp:
        feed_dir = os.path.join(tmp, "gtfs")
        export_city(city, feed_dir)
        feed = import_feed(feed_dir)
        print(f"\nExported GTFS-like feed: {len(feed.stops)} platforms, "
              f"{len(feed.route_stop_sequences)} route patterns "
              f"(validated round-trip at {feed_dir})")


if __name__ == "__main__":
    main()
