"""Phone energy study: why the app samples cellular signals, not GPS.

Reproduces the paper's §IV-D energy argument end to end:

1. Table III — power draw of each sensor configuration on both handsets.
2. The Goertzel-vs-FFT beep detection trade-off (op counts + power).
3. Battery-life projections for a commuter running each configuration.

Run:  python examples/power_study.py
"""

from __future__ import annotations

import numpy as np

from repro.config import BeepConfig
from repro.phone.goertzel import fft_op_count, goertzel_op_count
from repro.phone.power import Handset, PowerModel, Sensor, TABLE_III_SETTINGS

#: Typical smartphone battery of the paper's era (Nexus One: 1400 mAh @ 3.7 V).
BATTERY_WH = 5.2


def main() -> None:
    model = PowerModel()

    print("Table III — mean power draw (mW), 10-minute sessions, screen off")
    print(f"  {'sensor setting':<26} {'HTC Sensation':>14} {'Nexus One':>10}")
    rng = np.random.default_rng(0)
    for label, sensors in TABLE_III_SETTINGS:
        htc = model.measure_session_mw(Handset.HTC_SENSATION, sensors, rng=rng)
        nexus = model.measure_session_mw(Handset.NEXUS_ONE, sensors, rng=rng)
        print(f"  {label:<26} {htc:>14.0f} {nexus:>10.0f}")

    config = BeepConfig()
    n = int(config.window_ms / 1000.0 * config.sample_rate_hz)
    m = len(config.tone_frequencies_hz)
    print(f"\nBeep detection on a {config.window_ms:.0f} ms window "
          f"({n} samples @ {config.sample_rate_hz} Hz, {m} target tones):")
    print(f"  Goertzel ops  K_g*N*M      = {goertzel_op_count(n, m):>10.0f}")
    print(f"  FFT ops       K_f*N*log2 N = {fft_op_count(n):>10.0f}")
    print(f"  power saved by Goertzel: {model.goertzel_saving_mw():.0f} mW "
          "(paper: ~60 mW)")

    print(f"\nBattery-life projection ({BATTERY_WH:.1f} Wh battery, "
          "sensing continuously):")
    for label, sensors in TABLE_III_SETTINGS:
        power_w = model.mean_power_mw(Handset.NEXUS_ONE, sensors) / 1000.0
        hours = BATTERY_WH / power_w
        print(f"  {label:<26} {hours:>6.1f} h")
    app = model.mean_power_mw(Handset.NEXUS_ONE, [Sensor.CELLULAR, Sensor.MIC_GOERTZEL])
    gps = model.mean_power_mw(Handset.NEXUS_ONE, [Sensor.GPS, Sensor.MIC_GOERTZEL])
    print(f"\nThe app costs {app:.0f} mW; a GPS-based variant would cost "
          f"{gps:.0f} mW — {gps / app:.1f}x more. That gap is what makes "
          "crowd participation viable (§IV-D).")


if __name__ == "__main__":
    main()
