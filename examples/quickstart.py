"""Quickstart: one bus ride through the whole system, step by step.

Builds the synthetic city, surveys the bus-stop fingerprint database,
simulates a single bus trip with riders, records one participant's
phone trace, and walks the upload through the backend pipeline —
printing what each §III stage produced.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import itertools

import numpy as np

from repro.city import build_city
from repro.config import SystemConfig
from repro.core import BackendServer, FingerprintDatabase
from repro.phone import CellularSampler, PhoneAgent
from repro.radio import CellularScanner, PropagationModel, towers_for_city
from repro.sim import TrafficField, default_hotspots_for, simulate_bus_trip
from repro.util.units import hhmm, parse_hhmm

SEED = 7


def main() -> None:
    config = SystemConfig()

    # -- the city and its radio environment --------------------------------
    city = build_city()
    print(f"City: {len(city.registry.stations)} stations, "
          f"{len(city.route_network.routes)} directed routes, "
          f"{city.area_km2:.0f} km², "
          f"{100 * city.route_coverage_ratio():.0f}% of roads on a bus route")

    towers = towers_for_city(city, seed=SEED)
    scanner = CellularScanner(towers, PropagationModel(config.radio, seed=SEED))
    print(f"Radio: {len(towers)} cell towers deployed")

    # -- offline survey: the bus-stop fingerprint database ------------------
    database = FingerprintDatabase.survey(
        city.registry, scanner, samples_per_stop=5, rng=np.random.default_rng(SEED)
    )
    example = city.registry.stations[10]
    print(f"Fingerprint DB: {len(database)} stops; e.g. station "
          f"{example.station_id} -> cells {database.fingerprint(example.station_id)}")

    # -- one morning bus trip ------------------------------------------------
    traffic = TrafficField(
        city.network,
        hotspots=default_hotspots_for(city.spec.width_m, city.spec.height_m),
        seed=SEED,
    )
    route = city.route_network.route("179-0")
    trace = simulate_bus_trip(
        route,
        dispatch_s=parse_hhmm("08:15"),
        traffic=traffic,
        rider_ids=itertools.count(),
        rng=np.random.default_rng(SEED),
        bus_config=config.bus,
        rider_config=config.riders,
    )
    print(f"\nBus {route.route_id} dispatched 08:15: "
          f"{len(trace.served_visits())}/{len(trace.visits)} stops served, "
          f"{len(trace.taps)} IC-card taps, "
          f"{len(trace.participants)} riders carry the app")

    # -- one participant's phone ----------------------------------------------
    ride = max(trace.participants, key=lambda p: p.alight_order - p.board_order)
    agent = PhoneAgent(
        phone_id=f"rider-{ride.rider_id}",
        sampler=CellularSampler(scanner),
        registry=city.registry,
        config=config,
        rng=np.random.default_rng(SEED + 1),
    )
    uploads = agent.ride_and_record(trace, ride)
    upload = uploads[0]
    print(f"Phone of rider {ride.rider_id}: rode stops "
          f"{ride.board_order}->{ride.alight_order}, "
          f"uploaded {len(upload.samples)} beep-triggered cellular samples")

    # -- the backend pipeline ---------------------------------------------------
    server = BackendServer(city.network, city.route_network, database, config)
    report = server.receive_trip(upload)
    print(f"\nBackend: {report.accepted_samples} samples matched "
          f"({report.discarded_samples} discarded), "
          f"{len(report.clusters)} stop clusters, "
          f"mapped to stations {report.mapped.station_sequence()}")
    true_sequence = [
        v.station_id
        for v in trace.visits
        if v.served and ride.board_order <= v.stop_order <= ride.alight_order
    ]
    print(f"Ground truth stations:  {true_sequence}")

    print("\nPer-segment automobile speed estimates:")
    for segment_id, speed_kmh, t in report.estimates[:8]:
        true_kmh = 3.6 * traffic.car_speed_ms(segment_id, t)
        print(f"  segment {segment_id}: estimated {speed_kmh:5.1f} km/h "
              f"(ground truth {true_kmh:5.1f}) at {hhmm(t)}")


if __name__ == "__main__":
    main()
