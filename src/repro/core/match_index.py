"""Candidate pruning and memoization for per-sample matching (§III-C1).

Per-sample matching is the backend's hottest path: naively, every
uploaded cellular sample runs a Smith-Waterman alignment against every
stop fingerprint, O(stops × |seq|²) per sample.  Two observations make
that cost avoidable without changing a single verdict:

* **Zero-overlap pruning is exact.**  Smith-Waterman only ever adds a
  positive term on a *matching* cell id; a fingerprint sharing no id
  with the sample can accumulate only mismatch/gap penalties, which the
  local-alignment clamp floors at 0.  Its score is therefore exactly
  0.0 < γ = 2, so it can never be accepted *and* never participate in
  a tie-break (ties only form at or above γ).  Scoring only the
  stations that share at least one cell id with the sample —
  :class:`MatchIndex`, an inverted cell-id → stations map — provably
  returns the same verdict as the full scan.

* **Verdicts are a pure function of the sequence.**  For a fixed
  fingerprint database, the full ``(station, score, common_ids)``
  verdict depends only on the RSS-ordered cell-id sequence, so repeat
  sequences (phones idling at the same stop, re-processed batches,
  repeated scans at a surveyed platform) can be answered from a memo.
  :class:`MatchCache` is a bounded LRU over
  :func:`canonical_key`-normalised sequences; it must be invalidated
  whenever the fingerprint database is rebuilt
  (:meth:`~repro.core.matching.SampleMatcher.rebuild` does this).

Telemetry: physical-work metrics live here — ``match_index_candidates``
(candidate pool per index lookup), ``match_prune_ratio`` (fraction of
the database pruned away, run-to-date), ``match_cache_hits_total`` /
``match_cache_misses_total`` / ``match_cache_evictions_total`` /
``match_cache_invalidations_total`` and the ``match_cache_entries``
gauge.  They are deliberately *not* ``matcher_``-prefixed: the golden
trace snapshots ``matcher_*`` as a deterministic function of the upload
stream, whereas cache hits and index lookups depend on sharding and
worker count.
"""

from __future__ import annotations

from collections import OrderedDict
from itertools import islice
from typing import (
    TYPE_CHECKING, Dict, Iterable, List, NamedTuple, Optional, Sequence, Set,
    Tuple,
)

from repro.obs.metrics import MetricsRegistry, NULL_REGISTRY, NullRegistry

if TYPE_CHECKING:                        # matching.py imports this module
    from repro.core.matching import MatchResult
    from repro.core.shared_store import FingerprintArrays

__all__ = ["CachedMatch", "MatchCache", "MatchIndex", "canonical_key"]


def canonical_key(tower_ids: Sequence[int]) -> Tuple[int, ...]:
    """The canonical, hashable form of an RSS-ordered cell-id sequence.

    Samples arrive as lists, tuples or numpy rows; the memo key is the
    plain int tuple so equal sequences hash equally regardless of the
    container (or numpy scalar type) they arrived in.  The RSS *order*
    is preserved — it is part of what Smith-Waterman scores.
    """
    return tuple(int(t) for t in tower_ids)


class MatchIndex:
    """Inverted cell-id → candidate-station index over a fingerprint DB.

    ``candidates(sample)`` returns every station whose fingerprint
    shares at least one cell id with the sample — the only stations a
    Smith-Waterman scan can score above 0.0 (see the module docstring
    for the exactness argument).  The index is immutable once built;
    rebuild it when the database changes.
    """

    __slots__ = (
        "_stations_by_tower", "_station_count", "_arrays", "_observing",
        "_h_candidates", "_g_prune_ratio", "_lookups", "_candidates_seen",
    )

    def __init__(
        self,
        fingerprints: Dict[int, Tuple[int, ...]],
        *,
        registry: Optional[MetricsRegistry] = None,
    ):
        if not fingerprints:
            raise ValueError("match index needs a non-empty fingerprint database")
        stations_by_tower: Dict[int, list] = {}
        for station_id, towers in fingerprints.items():
            for tower in set(towers):
                stations_by_tower.setdefault(int(tower), []).append(
                    int(station_id)
                )
        self._stations_by_tower: Optional[Dict[int, Tuple[int, ...]]] = {
            tower: tuple(sorted(stations))
            for tower, stations in stations_by_tower.items()
        }
        self._arrays = None
        self._station_count = len(fingerprints)
        self._init_metrics(registry)

    @classmethod
    def from_arrays(
        cls,
        arrays: "FingerprintArrays",
        *,
        registry: Optional[MetricsRegistry] = None,
    ) -> "MatchIndex":
        """An index answering straight from :class:`FingerprintArrays`.

        The CSR-style ``towers → station ordinals`` arrays *are* the
        inverted index — when they live in shared memory the worker pays
        no per-process rebuild and shares the coordinator's pages.
        Candidate sets, lookup metrics and exactness guarantees are
        identical to the dict-backed constructor.
        """
        if not len(arrays):
            raise ValueError("match index needs a non-empty fingerprint database")
        index = cls.__new__(cls)
        index._stations_by_tower = None
        index._arrays = arrays
        index._station_count = len(arrays)
        index._init_metrics(registry)
        return index

    def _init_metrics(self, registry: Optional[MetricsRegistry]) -> None:
        reg = registry if registry is not None else NULL_REGISTRY
        self._observing = not isinstance(reg, NullRegistry)
        self._h_candidates = reg.histogram(
            "match_index_candidates",
            buckets=(0, 1, 2, 5, 10, 20, 50),
            help="candidate stations per inverted-index lookup",
        )
        self._g_prune_ratio = reg.gauge(
            "match_prune_ratio",
            help="fraction of (sample, station) pairs the index pruned away",
        )
        self._lookups = 0
        self._candidates_seen = 0

    def __len__(self) -> int:
        """Number of indexed stations."""
        return self._station_count

    @property
    def tower_count(self) -> int:
        """Number of distinct cell ids across all fingerprints."""
        if self._arrays is not None:
            return self._arrays.tower_count
        return len(self._stations_by_tower)

    def stations_for(self, tower_id: int) -> Tuple[int, ...]:
        """The stations whose fingerprint contains ``tower_id`` (sorted)."""
        if self._arrays is not None:
            return self._arrays.stations_for(tower_id)
        return self._stations_by_tower.get(int(tower_id), ())

    def candidates(self, tower_ids: Iterable[int]) -> Set[int]:
        """Stations sharing at least one cell id with the sample.

        Only these can score above zero; the differential oracle scans
        the whole database and must agree — any station pruned here
        that could still win is a bug.
        """
        if self._arrays is not None:
            found = self._arrays.candidate_set(tower_ids)
        else:
            lookup = self._stations_by_tower
            found = set()
            for tower in tower_ids:
                stations = lookup.get(tower)
                if stations:
                    found.update(stations)
        if self._observing:
            self._lookups += 1
            self._candidates_seen += len(found)
            self._h_candidates.observe(len(found))
            self._g_prune_ratio.set(
                1.0 - self._candidates_seen
                / (self._lookups * self._station_count)
            )
        return found


class CachedMatch(NamedTuple):
    """A memoized verdict plus the candidate-pool size that produced it.

    The pool size rides along so a cache hit can replay the exact
    ``matcher_*`` accounting (samples, candidates histogram, pairs) the
    uncached path would have recorded — those metrics are part of the
    golden trace and must stay a deterministic function of the upload
    stream, cache or no cache.
    """

    result: "MatchResult"
    candidates: int


class MatchCache:
    """A bounded LRU memo of full match verdicts.

    Keys are :func:`canonical_key` sequences; values are
    :class:`CachedMatch`.  ``maxsize=0`` disables the cache (every
    lookup misses, nothing is stored) so one code path serves both
    configurations.  Not thread-safe — each ingest worker owns its own
    instance, exactly like its matcher.
    """

    __slots__ = (
        "maxsize", "_entries", "_observing",
        "_c_hits", "_c_misses", "_c_evictions", "_c_invalidations",
        "_g_entries",
    )

    def __init__(
        self,
        maxsize: int,
        *,
        registry: Optional[MetricsRegistry] = None,
    ):
        if maxsize < 0:
            raise ValueError("cache maxsize cannot be negative")
        self.maxsize = maxsize
        self._entries: "OrderedDict[Tuple[int, ...], CachedMatch]" = OrderedDict()
        reg = registry if registry is not None else NULL_REGISTRY
        self._observing = not isinstance(reg, NullRegistry)
        self._c_hits = reg.counter(
            "match_cache_hits_total", help="match verdicts served from the memo"
        )
        self._c_misses = reg.counter(
            "match_cache_misses_total", help="match memo lookups that missed"
        )
        self._c_evictions = reg.counter(
            "match_cache_evictions_total",
            help="memo entries evicted by the LRU bound",
        )
        self._c_invalidations = reg.counter(
            "match_cache_invalidations_total",
            help="full memo flushes (fingerprint DB rebuilds)",
        )
        self._g_entries = reg.gauge(
            "match_cache_entries", help="live entries in the match memo"
        )

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def enabled(self) -> bool:
        return self.maxsize > 0

    def get(self, key: Tuple[int, ...]) -> Optional[CachedMatch]:
        """The memoized verdict for ``key``, refreshing its recency."""
        entry = self.peek(key)
        self.record_lookup(entry is not None)
        return entry

    def peek(self, key: Tuple[int, ...]) -> Optional[CachedMatch]:
        """:meth:`get` without the hit/miss accounting.

        Batch matching peeks while planning its scan, then replays
        serial-equivalent accounting per sample occurrence via
        :meth:`record_lookup` — a within-batch repeat must count as the
        hit it would have been had the samples arrived one by one.
        """
        entry = self._entries.get(key)
        if entry is not None:
            self._entries.move_to_end(key)
        return entry

    def record_lookup(self, hit: bool) -> None:
        """Account one logical memo lookup (no-op when disabled)."""
        if not (self.maxsize and self._observing):
            return
        (self._c_hits if hit else self._c_misses).inc()

    def put(self, key: Tuple[int, ...], entry: CachedMatch) -> None:
        """Memoize ``entry``, evicting the least recently used on overflow."""
        if not self.maxsize:
            return
        entries = self._entries
        if key in entries:
            entries.move_to_end(key)
        entries[key] = entry
        if len(entries) > self.maxsize:
            entries.popitem(last=False)
            if self._observing:
                self._c_evictions.inc()
        if self._observing:
            self._g_entries.set(len(entries))

    def hottest(
        self, n: int
    ) -> List[Tuple[Tuple[int, ...], CachedMatch]]:
        """The ``n`` most recently used entries, hottest first.

        This is the coordinator half of the worker memo pre-warm
        protocol: the entries ship to each pool worker at init so its
        memo starts hot instead of re-scoring the very sequences the
        coordinator already settled.  Verdicts are pure functions of the
        sequence for a fixed database, so pre-warming can never change a
        result — only skip physical work.
        """
        if n <= 0:
            return []
        return list(islice(reversed(self._entries.items()), n))

    def preload(
        self, entries: Iterable[Tuple[Tuple[int, ...], CachedMatch]]
    ) -> None:
        """Silently adopt verdicts (worker half of the pre-warm protocol).

        Entries arrive hottest-first and are inserted coldest-first so
        recency order survives; the LRU bound is respected and no
        hit/miss/eviction counters move — pre-warming is not lookup
        traffic, and counting it would skew the physical cache stats.
        """
        if not self.maxsize:
            return
        store = self._entries
        for key, entry in reversed(list(entries)):
            if key in store:
                store.move_to_end(key)
            store[key] = entry
            if len(store) > self.maxsize:
                store.popitem(last=False)
        if self._observing:
            self._g_entries.set(len(store))

    def invalidate(self) -> None:
        """Drop every entry — required whenever the fingerprint DB changes."""
        self._entries.clear()
        if self._observing:
            self._c_invalidations.inc()
            self._g_entries.set(0)

    def keys(self) -> Tuple[Tuple[int, ...], ...]:
        """Current keys, least recently used first (test/debug helper)."""
        return tuple(self._entries.keys())
