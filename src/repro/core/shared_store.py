"""Zero-copy fingerprint store and compact shard wire codec (§III-C1 at scale).

The parallel ingest engine used to broadcast the fingerprint database to
every worker as a pickled dict and ship every shard as a pickled list of
:class:`~repro.phone.trip_recorder.TripUpload` objects.  Both payloads
are IPC hot spots (PR 7's ``fingerprint_broadcast`` / ``shard_serialize``
spans put numbers on them); this module replaces them with flat numpy
encodings:

* :class:`FingerprintArrays` — the fingerprint database *and* its
  inverted cell-id candidate index as a handful of int arrays: a padded
  ``(stops, max_len)`` fingerprint matrix the vectorised Smith-Waterman
  kernel scores directly, plus CSR-style ``towers → station ordinals``
  index arrays for candidate pruning.  Pure data, no behaviour — the
  exactness arguments live in :mod:`repro.core.match_index`.

* :class:`SharedFingerprintStore` — the same arrays placed in one
  ``multiprocessing.shared_memory`` segment.  The coordinator
  :meth:`~SharedFingerprintStore.create`\\ s it once; each pool worker
  :meth:`~SharedFingerprintStore.attach`\\ es read-only views in its
  initializer, so the per-worker broadcast payload shrinks to a tiny
  metadata descriptor no matter how large the database grows.  An
  opaque ``aux`` blob rides in the same segment for the remaining
  read-only state (route network, memo warm set) so it crosses the
  process boundary via shared pages instead of per-worker pipes.
  Lifecycle is explicit: the owner ``unlink``\\ s, attachers ``close``;
  attachers are deliberately *not* registered with the resource tracker
  (a tracked attach would unlink the segment when the first worker
  exits, yanking it out from under its siblings).

* :func:`encode_shard` / :func:`decode_shard` — a columnar wire format
  for upload shards: trip keys, sample times, and dictionary-encoded
  tower-id sequences as byte-shuffled, deflate-compressed arrays.
  Lossless by construction (times stay float64 bit patterns, ids stay
  ints) — but deliberately *without* the per-sample ``rss_dbm`` vector,
  which no server-side stage reads.  The engine restores the original
  sample objects coordinator-side (see ``IngestEngine``), so end state
  stays bit-identical while the wire carries an order of magnitude
  fewer bytes.

Sentinel rule (shared with :func:`repro.core.matching.batch_smith_waterman`):
the fingerprint matrix is padded with ``min(all ids) - 2`` and query
rows with ``min(all ids) - 1`` — two distinct values below the smallest
id either side can contain, so padding can never score a match and
local-alignment maxima are unchanged.
"""

from __future__ import annotations

import pickle
import zlib
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.phone.cellular import CellularSample
from repro.phone.trip_recorder import TripUpload

__all__ = [
    "FingerprintArrays",
    "SharedFingerprintStore",
    "SHM_PREFIX",
    "active_segments",
    "encode_shard",
    "decode_shard",
    "SHARD_MAGIC",
]

#: Shared-memory segment name prefix — leak checks scan /dev/shm for it.
SHM_PREFIX = "repro-fp-"

#: First bytes of a columnar shard blob (a raw pickle starts with b"\x80").
SHARD_MAGIC = b"RSH1"

#: zlib level for shard blobs: byte-shuffled arrays are regular enough
#: that deflate's default level buys ~8% over level 3 for ~1 ms per
#: shard — worth it, since shard bytes are the pipe's dominant cost.
_SHARD_ZLIB_LEVEL = 6


# -- array encodings ----------------------------------------------------------


@dataclass(frozen=True)
class FingerprintArrays:
    """The fingerprint DB + inverted candidate index as flat int arrays.

    ``station_ids`` is sorted ascending, and every other array refers to
    stations by *ordinal* (position in ``station_ids``) so lookups are
    O(log S) searchsorted instead of dict probes.  ``matrix`` is the
    padded ``(stops, max_len)`` fingerprint table the batched
    Smith-Waterman kernel scores directly; real ids sit left-aligned,
    the rest of each row is ``ref_pad``.
    """

    station_ids: np.ndarray       # (S,)   int64, sorted
    lengths: np.ndarray           # (S,)   int64 fingerprint lengths
    matrix: np.ndarray            # (S, L) int64, padded with ref_pad
    towers: np.ndarray            # (T,)   int64, sorted distinct cell ids
    tower_offsets: np.ndarray     # (T+1,) int64 CSR offsets
    tower_stations: np.ndarray    # (E,)   int64 station ordinals, sorted per tower
    pads: np.ndarray              # (1,)   int64 [ref_pad] — kept as an array
                                  #        so it rides the same shm layout

    @property
    def min_id(self) -> int:
        """Smallest id across all fingerprints (pads derive from it)."""
        return int(self.ref_pad) + 2

    @property
    def ref_pad(self) -> int:
        """The sentinel the fingerprint matrix is padded with."""
        return int(self.pads[0])

    @classmethod
    def from_dict(
        cls, fingerprints: Dict[int, Tuple[int, ...]]
    ) -> "FingerprintArrays":
        if not fingerprints:
            raise ValueError("fingerprint arrays need a non-empty database")
        station_ids = np.array(sorted(fingerprints), dtype=np.int64)
        seqs = [fingerprints[int(sid)] for sid in station_ids]
        lengths = np.array([len(s) for s in seqs], dtype=np.int64)
        width = int(lengths.max(initial=0))
        lowest = int(min((min(s) for s in seqs if len(s)), default=0))
        ref_pad = lowest - 2
        matrix = np.full((len(seqs), max(width, 1)), ref_pad, dtype=np.int64)
        for row, seq in enumerate(seqs):
            matrix[row, : len(seq)] = seq
        towers_map: Dict[int, List[int]] = {}
        for ordinal, seq in enumerate(seqs):
            for tower in set(seq):
                towers_map.setdefault(int(tower), []).append(ordinal)
        towers = np.array(sorted(towers_map), dtype=np.int64)
        tower_offsets = np.zeros(len(towers) + 1, dtype=np.int64)
        chunks: List[List[int]] = []
        for pos, tower in enumerate(towers):
            stations = sorted(towers_map[int(tower)])
            chunks.append(stations)
            tower_offsets[pos + 1] = tower_offsets[pos] + len(stations)
        tower_stations = (
            np.concatenate([np.asarray(c, dtype=np.int64) for c in chunks])
            if chunks
            else np.zeros(0, dtype=np.int64)
        )
        return cls(
            station_ids=station_ids,
            lengths=lengths,
            matrix=matrix,
            towers=towers,
            tower_offsets=tower_offsets,
            tower_stations=tower_stations,
            pads=np.array([ref_pad], dtype=np.int64),
        )

    # -- lookups --------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.station_ids)

    def as_dict(self) -> Dict[int, Tuple[int, ...]]:
        """Materialize the plain ``{station_id: fingerprint}`` dict."""
        return {
            int(sid): tuple(int(t) for t in self.matrix[row, : self.lengths[row]])
            for row, sid in enumerate(self.station_ids)
        }

    def ordinals_for(self, station_ids: Sequence[int]) -> np.ndarray:
        """Station ordinals for sorted ``station_ids`` (must all exist)."""
        return np.searchsorted(self.station_ids, np.asarray(station_ids))

    def candidate_ordinals(self, tower_ids: Iterable[int]) -> np.ndarray:
        """Sorted ordinals of stations sharing a cell id with the sample."""
        sample = np.asarray(list(tower_ids), dtype=np.int64)
        if sample.size == 0 or len(self.towers) == 0:
            return np.zeros(0, dtype=np.int64)
        pos = np.minimum(
            np.searchsorted(self.towers, sample), len(self.towers) - 1
        )
        hits = np.nonzero(self.towers[pos] == sample)[0]
        if hits.size == 0:
            return np.zeros(0, dtype=np.int64)
        pieces = [
            self.tower_stations[self.tower_offsets[p]: self.tower_offsets[p + 1]]
            for p in pos[hits]
        ]
        return np.unique(np.concatenate(pieces))

    def candidate_set(self, tower_ids: Iterable[int]) -> Set[int]:
        """Candidate stations as a plain id set (API-compat helper)."""
        ords = self.candidate_ordinals(tower_ids)
        return {int(sid) for sid in self.station_ids[ords]}

    def stations_for(self, tower_id: int) -> Tuple[int, ...]:
        """Stations whose fingerprint contains ``tower_id`` (sorted)."""
        pos = int(np.searchsorted(self.towers, int(tower_id)))
        if pos >= len(self.towers) or int(self.towers[pos]) != int(tower_id):
            return ()
        lo, hi = int(self.tower_offsets[pos]), int(self.tower_offsets[pos + 1])
        return tuple(
            int(sid) for sid in self.station_ids[self.tower_stations[lo:hi]]
        )

    @property
    def tower_count(self) -> int:
        return len(self.towers)


_ARRAY_FIELDS: Tuple[str, ...] = (
    "station_ids", "lengths", "matrix", "towers", "tower_offsets",
    "tower_stations", "pads",
)


# -- shared-memory store ------------------------------------------------------


def _attach_segment(name: str):
    """Attach an existing segment without taking over its lifecycle.

    On Python ≥ 3.13, ``track=False`` says exactly that.  Earlier
    versions register every attach with the resource tracker; under the
    ``fork`` start method the pool workers share the creator's tracker
    daemon, so their registration is an idempotent re-add of a name the
    creator already registered — harmless, and the tracker stays a
    safety net that unlinks the segment if the whole coordinator dies
    without cleanup.  (An explicit ``unregister`` here would unbalance
    that shared ledger and make the owner's eventual ``unlink`` spray
    KeyError noise from the tracker daemon.)
    """
    from multiprocessing import shared_memory

    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:                                  # Python < 3.13
        return shared_memory.SharedMemory(name=name)


def active_segments() -> List[str]:
    """Names of live ``SHM_PREFIX`` segments on this host (leak checks)."""
    import os

    shm_dir = "/dev/shm"
    if not os.path.isdir(shm_dir):                     # pragma: no cover
        return []
    return sorted(
        entry for entry in os.listdir(shm_dir) if entry.startswith(SHM_PREFIX)
    )


class SharedFingerprintStore:
    """:class:`FingerprintArrays` (+ an aux blob) in one shm segment.

    Coordinator::

        store = SharedFingerprintStore.create(fingerprints, aux=blob)
        initargs = (store.meta, ...)       # tiny, picklable
        ...
        store.unlink()                     # when the pool is gone

    Worker (pool initializer)::

        store = SharedFingerprintStore.attach(meta)   # zero-copy views
    """

    def __init__(self, segment, arrays: FingerprintArrays, meta: Dict,
                 *, owner: bool):
        self._segment = segment
        self.arrays = arrays
        self.meta = meta
        self._owner = owner
        self._closed = False

    # -- construction ---------------------------------------------------------

    @classmethod
    def create(
        cls,
        fingerprints: Dict[int, Tuple[int, ...]],
        *,
        aux: bytes = b"",
    ) -> "SharedFingerprintStore":
        from multiprocessing import shared_memory
        import os
        import secrets

        arrays = FingerprintArrays.from_dict(fingerprints)
        layout: Dict[str, Tuple[int, Tuple[int, ...], str]] = {}
        cursor = 0
        for field in _ARRAY_FIELDS:
            arr = getattr(arrays, field)
            layout[field] = (cursor, arr.shape, arr.dtype.str)
            cursor += arr.nbytes
        aux_offset, aux_len = cursor, len(aux)
        cursor += aux_len
        name = f"{SHM_PREFIX}{os.getpid()}-{secrets.token_hex(4)}"
        segment = shared_memory.SharedMemory(
            name=name, create=True, size=max(cursor, 1)
        )
        for field in _ARRAY_FIELDS:
            offset, shape, dtype = layout[field]
            view = np.ndarray(shape, dtype=dtype, buffer=segment.buf,
                              offset=offset)
            view[...] = getattr(arrays, field)
        if aux_len:
            segment.buf[aux_offset: aux_offset + aux_len] = aux
        meta = {
            "name": segment.name,
            "layout": layout,
            "aux": (aux_offset, aux_len),
        }
        return cls(segment, cls._views(segment, layout), meta, owner=True)

    @classmethod
    def attach(cls, meta: Dict) -> "SharedFingerprintStore":
        segment = _attach_segment(meta["name"])
        return cls(segment, cls._views(segment, meta["layout"]), meta,
                   owner=False)

    @staticmethod
    def _views(segment, layout) -> FingerprintArrays:
        views = {}
        for field, (offset, shape, dtype) in layout.items():
            view = np.ndarray(shape, dtype=dtype, buffer=segment.buf,
                              offset=offset)
            view.flags.writeable = False
            views[field] = view
        return FingerprintArrays(**views)

    # -- data -----------------------------------------------------------------

    @property
    def name(self) -> str:
        return self.meta["name"]

    @property
    def aux_bytes(self) -> bytes:
        offset, length = self.meta["aux"]
        return bytes(self._segment.buf[offset: offset + length])

    def as_dict(self) -> Dict[int, Tuple[int, ...]]:
        return self.arrays.as_dict()

    # -- lifecycle ------------------------------------------------------------

    def close(self) -> None:
        """Release this process's mapping (idempotent)."""
        if self._closed:
            return
        self._closed = True
        # The numpy views hold buffer exports; drop them before close().
        self.arrays = None
        try:
            self._segment.close()
        except BufferError:                            # pragma: no cover
            pass

    def unlink(self) -> None:
        """Destroy the segment (owner side; tolerates repeats/crashes)."""
        try:
            self._segment.unlink()
        except FileNotFoundError:
            pass
        self.close()

    def __enter__(self) -> "SharedFingerprintStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.unlink() if self._owner else self.close()

    def __del__(self):                                 # pragma: no cover
        try:
            if self._owner and not self._closed:
                self.unlink()
            else:
                self.close()
        except Exception:
            pass


# -- columnar shard codec -----------------------------------------------------


def _shuffle(array: np.ndarray) -> bytes:
    """Byte-plane transpose: groups the slowly-varying high bytes of
    ints/floats together so deflate sees long runs.  Exactly reversible."""
    flat = np.ascontiguousarray(array)
    if flat.size == 0:
        return b""
    planes = flat.view(np.uint8).reshape(-1, flat.dtype.itemsize)
    return np.ascontiguousarray(planes.T).tobytes()


def _unshuffle(blob: bytes, dtype: str, count: int) -> np.ndarray:
    dt = np.dtype(dtype)
    if count == 0:
        return np.zeros(0, dtype=dt)
    planes = np.frombuffer(blob, dtype=np.uint8).reshape(dt.itemsize, count)
    return np.ascontiguousarray(planes.T).reshape(-1).view(dt).copy()


def encode_shard(
    uploads: Sequence[TripUpload], keep_matches: bool
) -> bytes:
    """One upload shard as a compressed columnar blob.

    Times ship as exact float64 bit patterns and tower sequences as a
    per-shard dictionary (unique RSS-ordered sequences stored once), so
    decoding reproduces every pipeline-relevant value bit-for-bit.  The
    per-sample ``rss_dbm`` vectors — dead weight for the pure stages —
    are *not* shipped; the coordinator swaps the original sample objects
    back into the results, which is what keeps parallel output
    bit-identical to serial anyway.
    """
    keys = [u.trip_key.encode("utf-8") for u in uploads]
    counts = np.array([len(u.samples) for u in uploads], dtype=np.int32)
    total = int(counts.sum())
    times = np.empty(total, dtype=np.float64)
    seq_idx = np.empty(total, dtype=np.int32)
    seq_table: Dict[Tuple[int, ...], int] = {}
    cursor = 0
    for upload in uploads:
        for sample in upload.samples:
            times[cursor] = sample.time_s
            seq_idx[cursor] = seq_table.setdefault(
                sample.tower_ids, len(seq_table)
            )
            cursor += 1
    seq_lengths = np.array([len(s) for s in seq_table], dtype=np.int32)
    seq_values = np.empty(int(seq_lengths.sum()), dtype=np.int64)
    cursor = 0
    for seq in seq_table:
        seq_values[cursor: cursor + len(seq)] = seq
        cursor += len(seq)
    columns = {
        "keys": b"\x00".join(keys),
        "key_lengths": _shuffle(np.array([len(k) for k in keys],
                                         dtype=np.int32)),
        "counts": _shuffle(counts),
        "times": _shuffle(times),
        "seq_idx": _shuffle(seq_idx),
        "seq_lengths": _shuffle(seq_lengths),
        "seq_values": _shuffle(seq_values),
        "n_trips": len(uploads),
        "n_samples": total,
        "n_seqs": len(seq_table),
        "keep_matches": keep_matches,
    }
    packed = pickle.dumps(columns, pickle.HIGHEST_PROTOCOL)
    return SHARD_MAGIC + zlib.compress(packed, _SHARD_ZLIB_LEVEL)


def decode_shard(blob: bytes) -> Tuple[List[TripUpload], bool]:
    """Inverse of :func:`encode_shard` (samples come back without rss)."""
    if not blob.startswith(SHARD_MAGIC):
        raise ValueError("not a columnar shard blob")
    columns = pickle.loads(zlib.decompress(blob[len(SHARD_MAGIC):]))
    n_trips = columns["n_trips"]
    n_samples = columns["n_samples"]
    n_seqs = columns["n_seqs"]
    key_lengths = _unshuffle(columns["key_lengths"], "<i4", n_trips)
    keys: List[str] = []
    blob_keys = columns["keys"]
    cursor = 0
    for length in key_lengths:
        keys.append(blob_keys[cursor: cursor + length].decode("utf-8"))
        cursor += int(length) + 1                      # skip the NUL joiner
    counts = _unshuffle(columns["counts"], "<i4", n_trips)
    times = _unshuffle(columns["times"], "<f8", n_samples)
    seq_idx = _unshuffle(columns["seq_idx"], "<i4", n_samples)
    seq_lengths = _unshuffle(columns["seq_lengths"], "<i4", n_seqs)
    seq_values = _unshuffle(columns["seq_values"], "<i8",
                            int(seq_lengths.sum()))
    sequences: List[Tuple[int, ...]] = []
    cursor = 0
    for length in seq_lengths:
        sequences.append(
            tuple(int(t) for t in seq_values[cursor: cursor + int(length)])
        )
        cursor += int(length)
    uploads: List[TripUpload] = []
    cursor = 0
    times_list = times.tolist()
    seq_list = seq_idx.tolist()
    for key, count in zip(keys, counts):
        samples = tuple(
            CellularSample(
                time_s=times_list[k], tower_ids=sequences[seq_list[k]]
            )
            for k in range(cursor, cursor + int(count))
        )
        cursor += int(count)
        uploads.append(TripUpload(trip_key=key, samples=samples))
    return uploads, bool(columns["keep_matches"])
