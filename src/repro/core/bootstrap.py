"""Online fingerprint-database bootstrap.

§III-B notes the bus-stop database "can be built online/offline", and
§VI proposes bootstrapping a new deployment by having *bus drivers*
install the app first: a driver's phone rides a known route end to end,
so every burst of beeps it hears can be labelled with the next stop of
that route — no war-driving needed.

:class:`DatabaseBootstrapper` consumes such driver trips.  A driver
trip is a *survey ride*: the driver phone records a sample burst at
**every** stop of the route in order (buses open their doors — and the
driver app chirps — at each stop on a survey run), so burst k labels
stop k.  Samples accumulate per station and a station is promoted into
the database once enough consistent samples have arrived (medoid
selection, as in the offline survey).  Convergence is measurable with
:meth:`coverage_fraction`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.city.routes import BusRoute
from repro.config import ClusteringConfig, MatchingConfig
from repro.core.fingerprint import FingerprintDatabase
from repro.phone.trip_recorder import TripUpload


@dataclass
class BootstrapStats:
    """Progress counters of the online bootstrap."""

    driver_trips: int = 0
    samples_consumed: int = 0
    stations_pending: int = 0
    stations_promoted: int = 0


class DatabaseBootstrapper:
    """Builds a :class:`FingerprintDatabase` from driver-phone trips."""

    def __init__(
        self,
        matching: Optional[MatchingConfig] = None,
        clustering: Optional[ClusteringConfig] = None,
        min_samples_to_promote: int = 3,
    ):
        if min_samples_to_promote < 1:
            raise ValueError("need at least one sample to promote a station")
        self.matching = matching or MatchingConfig()
        self.clustering = clustering or ClusteringConfig()
        self.min_samples_to_promote = min_samples_to_promote
        self.database = FingerprintDatabase(self.matching)
        self._pending: Dict[int, List[Tuple[int, ...]]] = {}
        self.stats = BootstrapStats()

    def ingest_driver_trip(
        self,
        upload: TripUpload,
        route: BusRoute,
        first_stop_order: int = 0,
    ) -> int:
        """Consume one driver trip along ``route``.

        The driver boards at ``first_stop_order`` (usually the terminal,
        0) and rides to the end, so the k-th beep burst heard belongs to
        the route's (first_stop_order + k)-th stop.  Returns the number
        of stations promoted into the database by this trip.
        """
        self.stats.driver_trips += 1
        # Split the driver's samples into per-stop bursts by time gap —
        # no database exists yet to match against, but taps at one stop
        # arrive within t0 of each other while stops are further apart.
        bursts: List[List] = []
        for sample in upload.samples:
            if not sample.tower_ids:
                continue
            if bursts and sample.time_s - bursts[-1][-1].time_s <= self.clustering.max_interval_s:
                bursts[-1].append(sample)
            else:
                bursts.append([sample])

        promoted = 0
        stop_order = first_stop_order
        for burst in bursts:
            if stop_order >= len(route.stops):
                break
            station_id = route.stops[stop_order].station_id
            for sample in burst:
                self._pending.setdefault(station_id, []).append(sample.tower_ids)
                self.stats.samples_consumed += 1
            promoted += self._maybe_promote(station_id)
            stop_order += 1
        self.stats.stations_pending = sum(
            1 for sid in self._pending if sid not in self.database
        )
        return promoted

    def _maybe_promote(self, station_id: int) -> int:
        samples = self._pending.get(station_id, [])
        if station_id in self.database or len(samples) < self.min_samples_to_promote:
            return 0
        self.database.set_from_samples(station_id, samples)
        self.stats.stations_promoted += 1
        return 1

    def coverage_fraction(self, station_ids: Sequence[int]) -> float:
        """Fraction of the given stations already in the database."""
        if not station_ids:
            raise ValueError("no stations to measure coverage over")
        return sum(1 for sid in station_ids if sid in self.database) / len(station_ids)
