"""Per-sample fingerprint matching with a modified Smith-Waterman score.

§III-C1: cellular samples and bus-stop fingerprints are sequences of
cell tower ids ordered by descending RSS.  Absolute RSS varies between
visits but the *rank order* largely survives, so similarity is scored
by local sequence alignment: the modified Smith-Waterman algorithm with
match +1 and tuned gap/mismatch penalties of 0.3 (the paper sweeps
0.1–0.9 and picks 0.3).  Table I's worked example — 3 matches, 1 gap,
1 mismatch → 2.4 — is a doctest below.

A sample is assigned to the best-scoring stop if that score clears the
acceptance threshold γ = 2; ties are broken by the number of common
cell ids (§III-C1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.config import MatchingConfig
from repro.core.match_index import (
    CachedMatch,
    MatchCache,
    MatchIndex,
    canonical_key,
)
from repro.core.shared_store import FingerprintArrays, SharedFingerprintStore
from repro.obs.metrics import MetricsRegistry, NULL_REGISTRY, NullRegistry


def smith_waterman(
    upload: Sequence[int],
    database: Sequence[int],
    config: Optional[MatchingConfig] = None,
) -> float:
    """Local-alignment similarity of two ordered cell-id sequences.

    >>> cfg = MatchingConfig()
    >>> round(smith_waterman([1, 2, 3, 4, 5], [1, 7, 3, 5], cfg), 1)
    2.4
    """
    config = config or MatchingConfig()
    n, m = len(upload), len(database)
    if n == 0 or m == 0:
        return 0.0
    match = config.match_score
    mismatch = -config.mismatch_penalty
    gap = -config.gap_penalty

    best = 0.0
    previous = np.zeros(m + 1)
    current = np.zeros(m + 1)
    for i in range(1, n + 1):
        current[0] = 0.0
        a = upload[i - 1]
        for j in range(1, m + 1):
            substitution = previous[j - 1] + (match if a == database[j - 1] else mismatch)
            value = max(0.0, substitution, previous[j] + gap, current[j - 1] + gap)
            current[j] = value
            if value > best:
                best = value
        previous, current = current, previous
    return float(best)


def _sw_kernel(
    query: np.ndarray, ref: np.ndarray, config: MatchingConfig
) -> np.ndarray:
    """Anti-diagonal Smith-Waterman over padded ``(B, n)`` / ``(B, m)``
    int matrices; returns the ``(B,)`` best local-alignment scores.

    The DP recurrence couples cell ``(i, j)`` to ``(i-1, j-1)``,
    ``(i-1, j)`` and ``(i, j-1)`` — all on the two *previous
    anti-diagonals* ``i + j - 2`` and ``i + j - 1``.  Sweeping
    diagonals therefore vectorises every cell of a diagonal across the
    whole batch at once (``n + m`` numpy steps instead of ``n × m``
    Python iterations) while computing each cell with *exactly* the
    elementwise adds and maxes of the scalar recurrence, in float64 —
    bit-identical scores, not merely close ones.  Diagonal ``d`` is
    stored indexed by row ``i`` (``diag[d][i] = H[i][d - i]``); row 0
    and the never-written tail of each buffer carry the zero boundary.

    Callers own the padding contract: query rows padded with one
    sentinel, ref rows with a *different* one, both below every real
    id, so padding never scores a match and the maxima of the real
    region are untouched.
    """
    batch, n = query.shape
    m = ref.shape[1]
    best = np.zeros(batch)
    if batch == 0 or n == 0 or m == 0:
        return best
    match = config.match_score
    mismatch = -config.mismatch_penalty
    gap = -config.gap_penalty
    prev2 = np.zeros((batch, n + 1))       # diagonal d-2, indexed by i
    prev1 = np.zeros((batch, n + 1))       # diagonal d-1, indexed by i
    for d in range(2, n + m + 1):
        i_lo = max(1, d - m)        # 1 ≤ i_lo ≤ i_hi always holds here
        i_hi = min(n, d - 1)
        q = query[:, i_lo - 1: i_hi]                    # rows i_lo..i_hi
        r = ref[:, d - i_hi - 1: d - i_lo][:, ::-1]     # cols d-i, aligned
        s = np.where(q == r, match, mismatch)
        value = prev2[:, i_lo - 1: i_hi] + s            # diag move
        np.maximum(value, prev1[:, i_lo - 1: i_hi] + gap, out=value)
        np.maximum(value, prev1[:, i_lo: i_hi + 1] + gap, out=value)
        np.maximum(value, 0.0, out=value)
        current = np.zeros((batch, n + 1))
        current[:, i_lo: i_hi + 1] = value
        np.maximum(best, value.max(axis=1), out=best)
        prev2, prev1 = prev1, current
    return best


def batch_smith_waterman(
    uploads: Sequence[Sequence[int]],
    databases: Sequence[Sequence[int]],
    config: Optional[MatchingConfig] = None,
) -> np.ndarray:
    """Smith-Waterman scores for B (upload, database) pairs at once.

    Identical results to :func:`smith_waterman` pair by pair, but the DP
    runs through the anti-diagonal :func:`_sw_kernel` — a handful of
    array ops per diagonal instead of per-pair Python loops — the hot
    path when the server matches every sample of an upload against its
    candidate stops.  Sequences are padded with two distinct sentinels
    derived *below* the smallest observed id, so no tower id an upstream
    decoder emits (including negative unknown-cell markers) can ever
    collide with padding; padding therefore never scores a match and
    local-alignment maxima are unchanged.
    """
    if len(uploads) != len(databases):
        raise ValueError("uploads and databases must pair up")
    config = config or MatchingConfig()
    batch = len(uploads)
    if batch == 0:
        return np.zeros(0)
    n_max = max((len(u) for u in uploads), default=0)
    m_max = max((len(d) for d in databases), default=0)
    if n_max == 0 or m_max == 0:
        return np.zeros(batch)

    lowest = min(
        min((min(u) for u in uploads if len(u)), default=0),
        min((min(d) for d in databases if len(d)), default=0),
    )
    query_pad, ref_pad = lowest - 1, lowest - 2
    query = np.full((batch, n_max), query_pad, dtype=np.int64)
    ref = np.full((batch, m_max), ref_pad, dtype=np.int64)
    for idx, (u, d) in enumerate(zip(uploads, databases)):
        query[idx, : len(u)] = u
        ref[idx, : len(d)] = d
    return _sw_kernel(query, ref, config)


def common_id_count(a: Sequence[int], b: Sequence[int]) -> int:
    """Number of cell ids shared by two sequences."""
    return len(set(a) & set(b))


@dataclass(frozen=True)
class MatchResult:
    """Outcome of matching one cellular sample against the database."""

    station_id: Optional[int]       # None: score below γ → sample discarded
    score: float
    common_ids: int

    @property
    def accepted(self) -> bool:
        """True when the sample was assigned to a stop."""
        return self.station_id is not None


class SampleMatcher:
    """Matches ordered cell-id sequences against stop fingerprints.

    Two exact optimizations sit in front of the Smith-Waterman scan
    (see :mod:`repro.core.match_index` for why neither can change a
    verdict):

    * candidate pruning — only stations sharing a cell id with the
      sample are scored (``config.indexed``; ``False`` restores the
      full-database reference scan);
    * memoization — repeat sequences are answered from a bounded LRU
      (``config.cache_size``; ``0`` disables it).

    The ``matcher_*`` metrics count *logical* work — what a scan
    without cache or index would have recorded — so they stay a
    deterministic function of the upload stream (the golden trace
    snapshots them).  Physical cache/index behaviour is reported by the
    worker-dependent ``match_*`` families instead.
    """

    def __init__(
        self,
        fingerprints: Optional[Dict[int, Tuple[int, ...]]] = None,
        config: Optional[MatchingConfig] = None,
        *,
        registry: Optional[MetricsRegistry] = None,
        store: Optional[SharedFingerprintStore] = None,
    ):
        if store is not None:
            # Zero-copy mode: the DB and inverted index are read
            # straight out of the coordinator's shared-memory arrays.
            arrays = store.arrays
            fingerprints = arrays.as_dict()
        elif fingerprints:
            arrays = FingerprintArrays.from_dict(fingerprints)
        else:
            raise ValueError("matcher needs a non-empty fingerprint database")
        self.config = config or MatchingConfig()
        reg = registry if registry is not None else NULL_REGISTRY
        # Per-sample instrumentation sits on the server's hottest loop, so
        # it is branch-guarded rather than relying on null-object calls.
        self._observing = not isinstance(reg, NullRegistry)
        self._m_samples = reg.counter(
            "matcher_samples_total", help="cellular samples matched"
        )
        self._m_accepted = reg.counter(
            "matcher_samples_accepted", help="samples clearing the γ threshold"
        )
        self._m_pairs = reg.counter(
            "matcher_pairs_scored", help="(sample, stop) Smith-Waterman scorings"
        )
        self._m_candidates = reg.histogram(
            "matcher_candidates_per_sample",
            buckets=(0, 1, 2, 5, 10, 20, 50),
            help="candidate stops sharing a tower with a sample",
        )
        self._fam_verdicts = reg.labeled_counter(
            "matcher_verdicts_total", ("verdict",),
            help="per-verdict sample matching outcomes",
        )
        self._c_accepted_verdict = self._fam_verdicts.labels("accepted")
        self._c_rejected_verdict = self._fam_verdicts.labels("rejected")
        self._fam_stop_matches = reg.labeled_counter(
            "matcher_stop_matches_total", ("stop",),
            help="accepted samples per matched bus stop",
        )
        self._registry = reg
        self._fingerprints = dict(fingerprints)
        self._arrays = arrays
        self._index = (
            MatchIndex.from_arrays(arrays, registry=reg)
            if self.config.indexed
            else None
        )
        self._cache = MatchCache(self.config.cache_size, registry=reg)

    @property
    def index(self) -> Optional[MatchIndex]:
        """The inverted cell-id index (None in full-scan mode)."""
        return self._index

    @property
    def cache(self) -> MatchCache:
        """The verdict memo (disabled when ``config.cache_size == 0``)."""
        return self._cache

    def rebuild(self, fingerprints: Dict[int, Tuple[int, ...]]) -> None:
        """Swap in a rebuilt fingerprint database.

        Rebuilds the inverted index and invalidates the memo — a cached
        verdict against the old database would otherwise be served
        against the new one.
        """
        if not fingerprints:
            raise ValueError("matcher needs a non-empty fingerprint database")
        self._fingerprints = dict(fingerprints)
        self._arrays = FingerprintArrays.from_dict(self._fingerprints)
        if self._index is not None:
            self._index = MatchIndex.from_arrays(
                self._arrays, registry=self._registry
            )
        self._cache.invalidate()

    def __getstate__(self) -> Dict:
        """Pickle only the data a worker needs to rebuild the matcher.

        Registry instruments (null-singleton or parent-owned) must not
        cross a process boundary, so an unpickled matcher comes back
        unobserved; the parallel ingest workers attach their own
        registry by constructing matchers directly.
        """
        return {"fingerprints": self._fingerprints, "config": self.config}

    def __setstate__(self, state: Dict) -> None:
        self.__init__(state["fingerprints"], state["config"])

    def similarity(self, tower_ids: Sequence[int], station_id: int) -> float:
        """Smith-Waterman similarity of a sample to one stop's fingerprint."""
        return smith_waterman(tower_ids, self._fingerprints[station_id], self.config)

    def candidate_stations(self, tower_ids: Sequence[int]) -> set:
        """Stops sharing at least one cell id with the sample.

        Only these can score above zero, so they bound the search; the
        differential oracle scans the whole database instead and must
        agree — any stop this prunes away that could still win is a bug.
        In full-scan mode (``config.indexed=False``) every stop is a
        candidate, which *is* the oracle's search space.
        """
        if self._index is None:
            return set(self._fingerprints)
        return self._index.candidates(tower_ids)

    def _observe_verdict(self, result: MatchResult, candidates: int) -> None:
        """Record one sample's logical matcher_* accounting."""
        self._m_samples.inc()
        self._m_candidates.observe(candidates)
        self._m_pairs.inc(candidates)
        if result.accepted:
            self._m_accepted.inc()
            self._c_accepted_verdict.inc()
            self._fam_stop_matches.labels(str(result.station_id)).inc()
        else:
            self._c_rejected_verdict.inc()

    def _scan(self, tower_ids: Sequence[int]) -> CachedMatch:
        """Score the candidate pool for one sample (the uncached path)."""
        candidates = self.candidate_stations(tower_ids)
        best: Optional[Tuple[float, int, int]] = None   # (score, common, station)
        for station_id in candidates:
            score = self.similarity(tower_ids, station_id)
            if score < self.config.accept_threshold:
                continue
            common = common_id_count(tower_ids, self._fingerprints[station_id])
            key = (score, common, -station_id)          # deterministic tiebreak
            if best is None or key > best:
                best = key
        if best is None:
            result = MatchResult(station_id=None, score=0.0, common_ids=0)
        else:
            score, common, neg_station = best
            result = MatchResult(
                station_id=-neg_station, score=score, common_ids=common
            )
        return CachedMatch(result=result, candidates=len(candidates))

    def _score_pairs(
        self,
        pending: Sequence[Tuple[int, ...]],
        owner_rows: Sequence[int],
        pair_station: Sequence[int],
    ) -> np.ndarray:
        """Smith-Waterman scores for (pending[row], station) pairs.

        Feeds :func:`_sw_kernel` straight from the matcher's padded
        fingerprint matrix: query rows are padded once per batch and
        gathered per pair, reference rows are gathered by station
        ordinal — no per-pair Python sequence building.  Sentinels
        follow the same below-alphabet-min rule as
        :func:`batch_smith_waterman`: the fingerprint matrix comes
        pre-padded with ``db_min - 2``, and only when a sample carries
        an id below every database id (lowering the derived sentinels)
        are the gathered rows re-padded to keep both sentinels under
        the live alphabet.
        """
        if not owner_rows:
            return np.zeros(0)
        n_max = max((len(k) for k in pending), default=0)
        if n_max == 0:
            return np.zeros(len(owner_rows))
        arrays = self._arrays
        lowest = min(
            arrays.min_id,
            min((min(k) for k in pending if k), default=arrays.min_id),
        )
        query_pad, ref_pad = lowest - 1, lowest - 2
        query_rows = np.full((len(pending), n_max), query_pad, dtype=np.int64)
        for row, key in enumerate(pending):
            query_rows[row, : len(key)] = key
        query = query_rows[np.asarray(owner_rows, dtype=np.intp)]
        ref = arrays.matrix[arrays.ordinals_for(pair_station)]
        if ref_pad != arrays.ref_pad:
            ref = np.where(ref == arrays.ref_pad, ref_pad, ref)
        return _sw_kernel(query, ref, self.config)

    def match(self, tower_ids: Sequence[int]) -> MatchResult:
        """Best stop for a sample, or a rejection below the γ threshold."""
        key = canonical_key(tower_ids)
        entry = self._cache.get(key)
        if entry is None:
            entry = self._scan(key)
            self._cache.put(key, entry)
        if self._observing:
            self._observe_verdict(entry.result, entry.candidates)
        return entry.result

    def match_many(
        self, samples: Sequence[Sequence[int]]
    ) -> List[MatchResult]:
        """Match a batch of samples (one upload) in one vectorised pass.

        Produces exactly the same results as calling :meth:`match` per
        sample.  Memoized sequences are answered from the cache,
        duplicates within the batch are scored once, and the remaining
        unique sequences run through candidate filtering plus the
        batched Smith-Waterman.
        """
        if not samples:
            return []
        keys = [canonical_key(sample) for sample in samples]
        verdicts: Dict[Tuple[int, ...], CachedMatch] = {}
        pending: List[Tuple[int, ...]] = []    # unique uncached keys, in order
        for key in keys:
            if key in verdicts:
                continue
            entry = self._cache.peek(key)
            if entry is not None:
                verdicts[key] = entry
            elif key not in pending:
                pending.append(key)

        if pending:
            pair_owner: List[Tuple[int, ...]] = []
            pair_station: List[int] = []
            pool_sizes: Dict[Tuple[int, ...], int] = {}
            owner_rows: List[int] = []      # row of `pending` per pair
            for row, key in enumerate(pending):
                candidates = self.candidate_stations(key)
                pool_sizes[key] = len(candidates)
                for station_id in sorted(candidates):
                    pair_owner.append(key)
                    pair_station.append(station_id)
                    owner_rows.append(row)
            scores = self._score_pairs(pending, owner_rows, pair_station)
            threshold = self.config.accept_threshold
            best: Dict[Tuple[int, ...], Tuple[float, int, int]] = {}
            # Only accepted pairs need the Python-side tie-break walk;
            # everything below γ was settled inside the kernel.
            for hit in np.nonzero(scores >= threshold)[0]:
                owner, station_id = pair_owner[hit], pair_station[hit]
                common = common_id_count(owner, self._fingerprints[station_id])
                contender = (float(scores[hit]), common, -station_id)
                incumbent = best.get(owner)
                if incumbent is None or contender > incumbent:
                    best[owner] = contender
            for key in pending:
                chosen = best.get(key)
                if chosen is None:
                    result = MatchResult(station_id=None, score=0.0, common_ids=0)
                else:
                    score, common, neg_station = chosen
                    result = MatchResult(
                        station_id=-neg_station, score=score, common_ids=common
                    )
                entry = CachedMatch(result=result, candidates=pool_sizes[key])
                verdicts[key] = entry
                self._cache.put(key, entry)

        results = [verdicts[key].result for key in keys]
        if self._observing:
            # Replay serial-equivalent accounting: had the samples
            # arrived one by one, only the *first* occurrence of each
            # uncached sequence would have missed the memo.
            first_scan = set(pending)
            for key in keys:
                self._cache.record_lookup(key not in first_scan)
                first_scan.discard(key)
                self._observe_verdict(
                    verdicts[key].result, verdicts[key].candidates
                )
        return results

    def scores(self, tower_ids: Sequence[int]) -> Dict[int, float]:
        """Similarity against every stop (analysis helper; no threshold)."""
        return {
            station_id: self.similarity(tower_ids, station_id)
            for station_id in self._fingerprints
        }
