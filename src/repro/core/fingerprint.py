"""The bus-stop cellular fingerprint database.

Each bus stop is signatured by its visible cell towers ordered by RSS
(§III-A).  The database can be built two ways, both from the paper:

* **survey** — visit each stop several times (standing there or riding
  past on a bus) and keep the sample "with the highest similarity with
  the rest samples" as the stored fingerprint (§IV-A); or
* **online** — start empty and fold in high-confidence crowd samples
  over time (the database "can be built online/offline", §III-B).

Fingerprints are stored per *station*: the paper aggregates the two
platforms facing each other across the road into one location
reference, since their cellular environments are nearly identical.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.city.stops import StopRegistry
from repro.config import MatchingConfig
from repro.core.matching import smith_waterman
from repro.radio.scanner import CellularScanner
from repro.util.rng import SeedLike, ensure_rng


@dataclass(frozen=True)
class StoredFingerprint:
    """One stop's stored signature."""

    station_id: int
    tower_ids: Tuple[int, ...]


class FingerprintDatabase:
    """Station → ordered cell-id fingerprint, with builders."""

    def __init__(self, config: Optional[MatchingConfig] = None):
        self.config = config or MatchingConfig()
        self._fingerprints: Dict[int, Tuple[int, ...]] = {}

    # -- container basics ------------------------------------------------------

    def __len__(self) -> int:
        return len(self._fingerprints)

    def __contains__(self, station_id: int) -> bool:
        return station_id in self._fingerprints

    def fingerprint(self, station_id: int) -> Tuple[int, ...]:
        """The stored ordered cell-id sequence of a station."""
        return self._fingerprints[station_id]

    def as_dict(self) -> Dict[int, Tuple[int, ...]]:
        """Copy of the underlying mapping (for :class:`SampleMatcher`)."""
        return dict(self._fingerprints)

    @property
    def station_ids(self) -> List[int]:
        """All fingerprinted stations."""
        return list(self._fingerprints)

    # -- building ---------------------------------------------------------------

    def set_fingerprint(self, station_id: int, tower_ids: Sequence[int]) -> None:
        """Store (or overwrite) one station's fingerprint."""
        if not tower_ids:
            raise ValueError("a fingerprint needs at least one tower id")
        if len(set(tower_ids)) != len(tower_ids):
            raise ValueError("fingerprint tower ids must be unique")
        self._fingerprints[station_id] = tuple(tower_ids)

    def set_from_samples(
        self, station_id: int, samples: Sequence[Sequence[int]]
    ) -> None:
        """Store the medoid of repeated samples at one stop (§IV-A).

        The kept sample is the one with the highest total Smith-Waterman
        similarity to the others — robust to the odd outlier scan.
        """
        samples = [tuple(s) for s in samples if len(s) > 0]
        if not samples:
            raise ValueError("need at least one non-empty sample")
        if len(samples) == 1:
            self.set_fingerprint(station_id, samples[0])
            return
        totals = []
        for i, candidate in enumerate(samples):
            total = sum(
                smith_waterman(candidate, other, self.config)
                for j, other in enumerate(samples)
                if j != i
            )
            totals.append(total)
        self.set_fingerprint(station_id, samples[int(np.argmax(totals))])

    @classmethod
    def survey(
        cls,
        registry: StopRegistry,
        scanner: CellularScanner,
        samples_per_stop: int = 5,
        config: Optional[MatchingConfig] = None,
        rng: SeedLike = None,
    ) -> "FingerprintDatabase":
        """War-drive the city: sample every station and store medoids.

        Samples alternate between the station's platforms (the surveyor
        stands on either side / rides past on buses both ways), so the
        stored fingerprint represents the aggregated location.
        """
        if samples_per_stop < 1:
            raise ValueError("samples_per_stop must be >= 1")
        rng = ensure_rng(rng)
        db = cls(config)
        for station in registry.stations:
            platforms = station.stops or [None]
            samples = []
            for k in range(samples_per_stop):
                platform = platforms[k % len(platforms)]
                where = platform.position if platform is not None else station.position
                observation = scanner.scan(where, rng)
                if len(observation):
                    samples.append(observation.tower_ids)
            if samples:
                db.set_from_samples(station.station_id, samples)
        return db

    def update_online(
        self, station_id: int, tower_ids: Sequence[int], min_score: float = 4.0
    ) -> bool:
        """Online refinement: adopt a crowd sample as the new fingerprint.

        Accepted only when the sample is highly similar to the current
        fingerprint (so drift is gradual) and longer (so the signature
        gains towers).  Returns True if the database changed.  For an
        unknown station the sample bootstraps the entry.
        """
        if station_id not in self._fingerprints:
            self.set_fingerprint(station_id, tower_ids)
            return True
        current = self._fingerprints[station_id]
        score = smith_waterman(tower_ids, current, self.config)
        if score >= min_score and len(tower_ids) > len(current):
            self.set_fingerprint(station_id, tower_ids)
            return True
        return False
