"""Traffic-map freshness: how stale is each segment / route right now?

The paper's map is only useful where a bus ride refreshed it recently
(coverage tracks rider participation per route, Fig. 8–9), so the
operational question is *staleness*: seconds since each road segment —
and, aggregated, each bus route — last received a fused observation in
the published map.

:class:`FreshnessTracker` sits next to the
:class:`~repro.core.traffic_map.TrafficMapEstimator`:

* the backend reports every leg estimate (``observe_update``), which
  pins each route's *last refresh time*;
* every publish tick (``observe_publish``) recomputes staleness, sets
  the ``map_route_freshness_s`` / ``map_route_covered_segments``
  labeled gauges, and caches a JSON-ready report for the exporter's
  ``/freshness`` endpoint.

A route that nobody rides simply stops refreshing, so its freshness
grows without bound — exactly the signal the
``map_route_freshness_s{route=*} < 900`` SLO rule watches.

Routes that have never been refreshed age from the tracker's epoch (the
first publish tick), so a dead route alerts even if it never produced a
single estimate.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.city.road_network import SegmentId
from repro.city.routes import RouteNetwork
from repro.core.traffic_map import TrafficMapEstimator
from repro.obs.metrics import MetricsRegistry, NULL_REGISTRY

__all__ = ["FreshnessTracker"]


class FreshnessTracker:
    """Per-segment / per-route staleness of the published map."""

    def __init__(
        self,
        route_network: RouteNetwork,
        traffic_map: TrafficMapEstimator,
        *,
        registry: Optional[MetricsRegistry] = None,
    ):
        self.traffic_map = traffic_map
        self._route_segments: Dict[str, Tuple[SegmentId, ...]] = {
            route.route_id: tuple(route.segments)
            for route in route_network.routes
        }
        reg = registry if registry is not None else NULL_REGISTRY
        self._g_route_freshness = reg.labeled_gauge(
            "map_route_freshness_s", ("route",),
            help="seconds since the route last refreshed any map segment",
        )
        self._g_route_covered = reg.labeled_gauge(
            "map_route_covered_segments", ("route",),
            help="route segments present in the latest published frame",
        )
        self._g_worst = reg.gauge(
            "map_freshness_worst_s",
            help="staleness of the least recently refreshed route",
        )
        #: Route id -> time of its most recent accepted leg estimate.
        self._route_last_update: Dict[str, float] = {}
        #: Epoch for never-refreshed routes: the first publish tick.
        self._epoch_s: Optional[float] = None
        self._last_report: Optional[Dict] = None

    # -- feeding -------------------------------------------------------------

    def observe_update(self, route_id: str, t: float) -> None:
        """Record that ``route_id`` refreshed some segment at time ``t``."""
        last = self._route_last_update.get(route_id)
        if last is None or t > last:
            self._route_last_update[route_id] = t

    def observe_publish(self, at_s: float) -> Dict:
        """Recompute staleness at a publish tick; returns the report."""
        if self._epoch_s is None:
            self._epoch_s = at_s
        report = self.report(at_s)
        worst = 0.0
        for route_id, entry in report["routes"].items():
            freshness = entry["freshness_s"]
            self._g_route_freshness.labels(route_id).set(freshness)
            self._g_route_covered.labels(route_id).set(
                entry["covered_segments"]
            )
            worst = max(worst, freshness)
        self._g_worst.set(worst)
        self._last_report = report
        return report

    # -- reading -------------------------------------------------------------

    def route_freshness_s(self, route_id: str, at_s: float) -> float:
        """Seconds since the route last refreshed anything (see module doc)."""
        last = self._route_last_update.get(route_id)
        if last is None:
            last = self._epoch_s if self._epoch_s is not None else at_s
        return max(0.0, at_s - last)

    def report(self, at_s: Optional[float] = None) -> Dict:
        """The JSON document ``/freshness`` serves.

        With ``at_s=None`` the most recent publish-tick report is
        returned (so the exporter thread never races the simulation
        clock); pass a time to compute a fresh one.
        """
        if at_s is None:
            if self._last_report is not None:
                return self._last_report
            at_s = self._epoch_s if self._epoch_s is not None else 0.0
        segment_ages = self.traffic_map.published_freshness(at_s)
        routes: Dict[str, Dict] = {}
        for route_id, segments in sorted(self._route_segments.items()):
            ages = [
                segment_ages[segment]
                for segment in segments
                if segment in segment_ages
            ]
            routes[route_id] = {
                "freshness_s": round(self.route_freshness_s(route_id, at_s), 3),
                "covered_segments": len(ages),
                "total_segments": len(segments),
                "oldest_covered_s": round(max(ages), 3) if ages else None,
                "newest_covered_s": round(min(ages), 3) if ages else None,
            }
        return {
            "at_s": at_s,
            "published_frames": len(self.traffic_map.publish_times),
            "segments": {
                # GeoJSON-free wire form: "u-v" -> age in seconds.
                f"{u}-{v}": round(age, 3)
                for (u, v), age in sorted(segment_ages.items())
            },
            "routes": routes,
        }

    def samples(self, at_s: float) -> List[Tuple[str, Dict[str, str], float]]:
        """Alert-engine samples: one ``map_route_freshness_s`` per route."""
        out: List[Tuple[str, Dict[str, str], float]] = []
        for route_id in self._route_segments:
            out.append((
                "map_route_freshness_s",
                {"route": route_id},
                self.route_freshness_s(route_id, at_s),
            ))
        return out

    def state_dict(self) -> Dict:
        """JSON-ready refresh history (``_last_report`` is already JSON)."""
        return {
            "route_last_update": dict(sorted(self._route_last_update.items())),
            "epoch_s": self._epoch_s,
            "last_report": self._last_report,
        }

    def restore_state(self, state: Dict) -> None:
        """Adopt refresh history from :meth:`state_dict`."""
        self._route_last_update = {
            str(route): float(t)
            for route, t in state["route_last_update"].items()
        }
        epoch = state["epoch_s"]
        self._epoch_s = None if epoch is None else float(epoch)
        self._last_report = state["last_report"]

    def reset(self) -> None:
        """Forget refresh history (e.g. between back-to-back campaigns)."""
        self._route_last_update.clear()
        self._epoch_s = None
        self._last_report = None
