"""Bus arrival-time prediction on top of the live traffic map.

The paper grew out of the authors' bus-arrival predictor (MobiSys'12,
their ref. [27]) and §I lists commuter travel planning as the first
consumer of the traffic map.  This module closes that loop: given where
a bus currently is (e.g. the last stop a rider's mapped trip resolved),
predict its arrival time at every downstream stop by

* reading the fused automobile speed of each remaining segment from the
  traffic map (free-flow fallback where the map has no data),
* inverting the Eq. 3 transit model to get the expected *bus* running
  time, and
* adding the expected dwell at each intermediate stop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.city.routes import BusRoute, RouteNetwork
from repro.config import BusConfig, RiderConfig, TrafficModelConfig
from repro.core.traffic_map import TrafficMapEstimator
from repro.core.trip_mapping import MappedTrip
from repro.sim.bus import BUS_FREE_SPEED_MS
from repro.util.units import kmh_to_ms


@dataclass(frozen=True)
class ArrivalPrediction:
    """Predicted arrival at one downstream stop."""

    station_id: int
    stop_order: int
    arrival_s: float
    horizon_stops: int          # how many stops ahead of the bus


def expected_dwell_s(
    bus: Optional[BusConfig] = None, riders: Optional[RiderConfig] = None
) -> float:
    """Expected dwell at a served stop under the rider model.

    E[dwell] = base + per-passenger * E[boarders + alighters]; in steady
    state as many riders alight as board, so the expectation doubles the
    boarding rate.
    """
    bus = bus or BusConfig()
    riders = riders or RiderConfig()
    return bus.dwell_base_s + bus.dwell_per_passenger_s * 2.0 * riders.boarding_rate_per_stop


class ArrivalPredictor:
    """Predicts downstream arrival times for buses on known routes."""

    def __init__(
        self,
        route_network: RouteNetwork,
        traffic_map: TrafficMapEstimator,
        model: Optional[TrafficModelConfig] = None,
        bus_free_speed_ms: float = BUS_FREE_SPEED_MS,
        dwell_s: Optional[float] = None,
    ):
        self.route_network = route_network
        self.traffic_map = traffic_map
        self.model = model or TrafficModelConfig()
        self.bus_free_speed_ms = bus_free_speed_ms
        self.dwell_s = dwell_s if dwell_s is not None else expected_dwell_s()

    # -- prediction -------------------------------------------------------------

    def predict(
        self,
        route_id: str,
        from_station: int,
        depart_s: float,
        max_horizon: Optional[int] = None,
    ) -> List[ArrivalPrediction]:
        """Arrival times at every stop after ``from_station`` on the route.

        ``depart_s`` is when the bus leaves ``from_station``.  The
        traffic map is read as of ``depart_s`` (its latest fused state).
        """
        route = self.route_network.route(route_id)
        start_order = route.station_order(from_station)
        if start_order is None:
            raise ValueError(
                f"station {from_station} is not on route {route_id}"
            )
        predictions: List[ArrivalPrediction] = []
        t = depart_s
        last_order = len(route.stops) - 1
        if max_horizon is not None:
            last_order = min(last_order, start_order + max_horizon)
        network = self.traffic_map.network
        for order in range(start_order + 1, last_order + 1):
            for segment_id in route.segments_between(order - 1, order):
                segment = network.segment(segment_id)
                t += self._segment_btt_s(segment, depart_s)
            predictions.append(
                ArrivalPrediction(
                    station_id=route.stops[order].station_id,
                    stop_order=order,
                    arrival_s=t,
                    horizon_stops=order - start_order,
                )
            )
            if order != last_order:
                t += self.dwell_s
        return predictions

    def _segment_btt_s(self, segment, at_s: float) -> float:
        """Expected bus running time over one segment, from the map."""
        belief = self.traffic_map.segment_estimate(segment.segment_id, at_s)
        if belief is None:
            car_speed_ms = segment.free_speed_ms
        else:
            car_speed_ms = max(kmh_to_ms(belief.mean_kmh), 0.5)
        att = segment.length_m / car_speed_ms
        a = segment.free_travel_time_s
        btt_free = segment.length_m / self.bus_free_speed_ms
        # Invert Eq. 3 (delay form): BTT = BTT_free + (ATT - a) / b.
        btt = btt_free + max(0.0, att - a) / self.model.b
        return btt

    # -- live-trip entry point -----------------------------------------------------

    def predict_for_trip(
        self, mapped: MappedTrip, max_horizon: Optional[int] = None
    ) -> List[ArrivalPrediction]:
        """Predictions for a rider's live (partially mapped) trip.

        Infers which route the bus is running from the mapped station
        sequence, anchors at the last resolved stop, and predicts the
        rest of that route.
        """
        route = infer_route(mapped, self.route_network)
        if route is None:
            raise ValueError("trip is not consistent with any known route")
        last = mapped.stops[-1]
        return self.predict(
            route.route_id, last.station_id, last.depart_s, max_horizon
        )


def infer_route(mapped: MappedTrip, route_network: RouteNetwork) -> Optional[BusRoute]:
    """The route best explaining a mapped station sequence.

    Scores each route by the number of consecutive mapped pairs that
    appear in its stop order (adjacent or with skips); requires the last
    mapped station to be on the route so prediction can anchor there.
    """
    sequence = mapped.station_sequence()
    if not sequence:
        return None
    best: Optional[Tuple[int, BusRoute]] = None
    for route in route_network.routes:
        if route.station_order(sequence[-1]) is None:
            continue
        score = 0
        for x, y in zip(sequence, sequence[1:]):
            ox = route.station_order(x)
            oy = route.station_order(y)
            if ox is not None and oy is not None and oy > ox:
                score += 1
        if best is None or score > best[0]:
            best = (score, route)
    if best is None or (len(sequence) > 1 and best[0] == 0):
        return None
    return best[1]
