"""The bus→automobile linear traffic model (§III-D, Eq. 3).

The paper converts bus travel time (BTT) between stops into general
automobile travel time (ATT) with a linear transit model after [10]:

    ATT = a + b · BTT,     a = road length / free travel speed

with b fitted by linear regression (their data put b in [0.3, 0.8];
they fix b = 0.5).  Read literally the model is inconsistent at free
flow (ATT → a requires BTT → 0, but an empty road still takes the bus
``length / bus free speed``), so — as in the transit literature the
paper cites — we treat b as the coupling between *congestion delays*:

    ATT = a + b · (BTT − BTT_free),   BTT_free = length / bus free speed

which preserves the paper's a, its b, and its regression procedure,
while being exact at free flow.  Both forms are provided; the delay
form is the default everywhere.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.config import TrafficModelConfig
from repro.sim.bus import BUS_FREE_SPEED_MS
from repro.util.units import ms_to_kmh


@dataclass(frozen=True)
class SpeedEstimate:
    """One automobile-speed observation for a road segment."""

    segment_length_m: float
    att_s: float

    @property
    def speed_ms(self) -> float:
        """Estimated automobile speed in m/s."""
        return self.segment_length_m / self.att_s

    @property
    def speed_kmh(self) -> float:
        """Estimated automobile speed in km/h."""
        return ms_to_kmh(self.speed_ms)


class TrafficModel:
    """Converts measured bus running times into automobile travel times."""

    def __init__(
        self,
        config: Optional[TrafficModelConfig] = None,
        bus_free_speed_ms: float = BUS_FREE_SPEED_MS,
        delay_form: bool = True,
    ):
        self.config = config or TrafficModelConfig()
        self.bus_free_speed_ms = bus_free_speed_ms
        self.delay_form = delay_form

    def estimate_att_s(
        self, btt_s: float, length_m: float, free_speed_ms: float
    ) -> float:
        """Automobile travel time from a measured bus running time."""
        if btt_s <= 0 or length_m <= 0 or free_speed_ms <= 0:
            raise ValueError("btt, length and free speed must be positive")
        a = length_m / free_speed_ms
        if self.delay_form:
            btt_free = length_m / self.bus_free_speed_ms
            att = a + self.config.b * max(0.0, btt_s - btt_free)
        else:
            att = a + self.config.b * btt_s
        # Clamp to a physically sensible speed band.
        att = max(att, length_m / self.config.max_speed_ms)
        att = min(att, length_m / self.config.min_speed_ms)
        return float(att)

    def estimate(
        self, btt_s: float, length_m: float, free_speed_ms: float
    ) -> SpeedEstimate:
        """Full speed estimate for one segment traversal."""
        return SpeedEstimate(
            segment_length_m=length_m,
            att_s=self.estimate_att_s(btt_s, length_m, free_speed_ms),
        )


def fit_b(
    btt_s: Sequence[float],
    att_s: Sequence[float],
    length_m: Sequence[float],
    free_speed_ms: Sequence[float],
    bus_free_speed_ms: float = BUS_FREE_SPEED_MS,
    delay_form: bool = True,
) -> float:
    """Least-squares fit of the model's b from paired (BTT, ATT) data.

    This is the paper's regression step ("the value of b can be
    determined using linear regression", §III-D).  In the delay form the
    regression is through the origin on (BTT−BTT_free, ATT−a).
    """
    btt = np.asarray(btt_s, dtype=float)
    att = np.asarray(att_s, dtype=float)
    length = np.asarray(length_m, dtype=float)
    free = np.asarray(free_speed_ms, dtype=float)
    if not (len(btt) == len(att) == len(length) == len(free)):
        raise ValueError("all inputs must have equal length")
    if len(btt) < 2:
        raise ValueError("need at least two observations to fit b")
    a = length / free
    if delay_form:
        x = btt - length / bus_free_speed_ms
        y = att - a
    else:
        x = btt
        y = att - a
    denominator = float(np.dot(x, x))
    if denominator <= 0:
        raise ValueError("degenerate regression: no BTT variation")
    return float(np.dot(x, y) / denominator)
