"""Batched, sharded, parallel trip ingest: scaling §III across cores.

The server pipeline is embarrassingly parallel per trip: matching,
clustering and route-constrained mapping read only the (static)
fingerprint database and route network, and every trip is independent
until the final traffic-map update.  This module splits the pipeline
accordingly:

* :func:`prepare_trip` — the **pure** per-trip half
  (match → cluster → map).  It touches no server state, so any number
  of processes can run it concurrently.
* :class:`PreparedTrip` — the pickle-safe result a worker sends back.
* :class:`IngestEngine` — a ``multiprocessing`` pool that shards an
  upload batch, broadcasts the fingerprint database and route
  constraint **once per worker** (pool initializer, not per task), and
  returns the prepared trips **in upload order**.

The mutating half — dedup ledger, stats, traffic map, freshness,
sliding windows — stays single-writer on the server
(:meth:`~repro.core.server.BackendServer.apply_prepared`), which merges
prepared results in deterministic upload order.  Because the serial
path runs *the same* :func:`prepare_trip` followed by the same apply
stage, a sharded run is bit-identical to a serial one at any worker
count.

Telemetry: each worker records matcher/clustering/mapping metrics into
a private registry; after every shard the snapshot is folded back into
the parent registry (:meth:`~repro.obs.metrics.MetricsRegistry.merge_dict`),
so a parallel run exports the same counter totals as a serial one.  The
engine additionally exports ``ingest_*`` counters and per-stage
histograms on the parent side.

IPC cost attribution: the coordinator serializes each shard itself
(``shard_serialize`` span with a ``bytes`` attribute), captures a
dispatch timestamp, and ships the blob; the worker times the decode
(``shard_deserialize``), reports the dispatch→receipt gap
(``pool_queue_wait`` — ``time.perf_counter`` is CLOCK_MONOTONIC on
Linux, so coordinator and worker clocks agree), and wraps every trip in
a keyed ``prepare_trip`` span.  The coordinator also records the
one-time ``fingerprint_broadcast`` (pool-initializer payload size) and
``worker_init`` costs, the per-shard ``pool_result_wait`` (idle,
blocked on a worker) and ``result_merge`` (fold results + telemetry).
Worker span records travel back inside the shard outcome and stitch
under the coordinator's open span via a propagated
:class:`~repro.obs.tracing.TraceContext` — every worker-scaling cost
has a named number.  With :data:`NULL_TRACER` (the default) all of it
degrades to no-ops.

Those spans are why the engine runs one of two explicit IPC modes
(``config.ingest.shared_store``):

* ``shm`` (default) — the fingerprint DB + inverted candidate index
  ride as flat int arrays in one ``multiprocessing.shared_memory``
  segment (:mod:`repro.core.shared_store`) that workers attach
  read-only; the route network and the coordinator's hottest verdict
  memos ride in the same segment's aux blob; the pool initargs shrink
  to a metadata descriptor.  Shards cross the pipe through the
  columnar codec (rss stripped on the wire, original sample objects
  swapped back in during ``result_merge``, so end state stays
  bit-identical), and shard batching coarsens to one shard per worker
  — dispatch overhead amortizes instead of multiplying.
* ``legacy`` — the PR-7 pickled broadcast + pickled shards, kept as
  the A/B baseline the IPC benchmarks diff against.

Both modes run the same :func:`prepare_trip`, so both are bit-identical
to serial ingest at any worker count; only the bytes-on-the-wire and
wall clock differ.
"""

from __future__ import annotations

import multiprocessing
import pickle
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.city.routes import RouteNetwork
from repro.config import SystemConfig
from repro.core.clustering import (
    MatchedSample,
    SampleCluster,
    cluster_trip_samples,
)
from repro.core.matching import MatchResult, SampleMatcher
from repro.core.shared_store import (
    SHARD_MAGIC,
    SharedFingerprintStore,
    decode_shard,
    encode_shard,
)
from repro.core.trip_mapping import MappedTrip, RouteConstraint, map_trip
from repro.obs.metrics import MetricsRegistry, NULL_REGISTRY
from repro.obs.tracing import NULL_TRACER, Tracer
from repro.phone.trip_recorder import TripUpload

__all__ = ["PreparedTrip", "IngestEngine", "prepare_trip"]

#: Worker-exported gauge families that are point-in-time levels of
#: *worker-local* state (cache fill, run-to-date prune ratio).  Folding
#: them into the coordinator registry would clobber the coordinator's
#: own level with whichever shard merged last — they stay worker-side.
WORKER_GAUGE_QUARANTINE: Tuple[str, ...] = ("match_",)

#: The pure per-trip stages, in pipeline order (span / histogram names).
PREPARE_STAGES: Tuple[str, ...] = ("matching", "clustering", "trip_mapping")


@dataclass(frozen=True)
class PreparedTrip:
    """Everything the pure stages learned about one upload (picklable)."""

    trip_key: str
    samples_total: int
    end_s: Optional[float]          # last sample time; None for empty trips
    accepted: int
    discarded: int
    clusters: List[SampleCluster]
    mapped: Optional[MappedTrip]
    #: Per-sample match verdicts in upload order; only populated when
    #: :func:`prepare_trip` runs with ``keep_matches=True`` (golden-trace
    #: recording) — the hot path never pays for carrying them.
    matches: Optional[Tuple[MatchResult, ...]] = None

    @classmethod
    def skipped(cls, upload: TripUpload) -> "PreparedTrip":
        """A stub for an upload the pure stages never ran on.

        Used for duplicates filtered out before dispatch: the apply
        stage only needs the key and sample count to account for them,
        exactly as the serial path drops duplicates before matching.
        """
        return cls(
            trip_key=upload.trip_key,
            samples_total=len(upload.samples),
            end_s=upload.samples[-1].time_s if upload.samples else None,
            accepted=0,
            discarded=0,
            clusters=[],
            mapped=None,
        )


def prepare_trip(
    upload: TripUpload,
    *,
    matcher: SampleMatcher,
    clustering_config,
    constraint: RouteConstraint,
    registry: Optional[MetricsRegistry] = None,
    tracer=NULL_TRACER,
    keep_matches: bool = False,
) -> PreparedTrip:
    """Run the pure per-trip pipeline half: match → cluster → map.

    This is the exact code path both the serial server and every pool
    worker execute, which is what makes parallel results bit-identical
    to serial ones.  ``keep_matches=True`` additionally records the
    per-sample match verdicts on the result — a pure observation hook
    for the golden-trace recorder; it changes no pipeline decision.
    """
    registry = registry if registry is not None else NULL_REGISTRY
    matched: List[MatchedSample] = []
    discarded = 0
    with tracer.span("matching"):
        results = matcher.match_many([s.tower_ids for s in upload.samples])
        for sample, result in zip(upload.samples, results):
            if result.accepted:
                matched.append(MatchedSample(sample=sample, match=result))
            else:
                discarded += 1
    with tracer.span("clustering"):
        clusters = cluster_trip_samples(
            matched, clustering_config, registry=registry
        )
    with tracer.span("trip_mapping"):
        mapped = (
            map_trip(clusters, constraint, registry=registry)
            if clusters
            else None
        )
    return PreparedTrip(
        trip_key=upload.trip_key,
        samples_total=len(upload.samples),
        end_s=upload.samples[-1].time_s if upload.samples else None,
        accepted=len(matched),
        discarded=discarded,
        clusters=clusters,
        mapped=mapped,
        matches=tuple(results) if keep_matches else None,
    )


@dataclass
class _ShardOutcome:
    """One shard's results plus the worker-side telemetry to merge back."""

    prepared: List[PreparedTrip]
    metrics: Dict
    #: The worker tracer's exported state: stage aggregates always, plus
    #: retained span records / exemplars when the coordinator propagated
    #: a sampling policy (see :meth:`Tracer.export_trace_state`).
    trace: Dict[str, Any]
    #: Columnar-shard runs only: per trip, per cluster, the positions of
    #: each clustered sample in the original upload — the recipe the
    #: coordinator uses to swap the riders' original sample objects
    #: (rss and all) back into the results during ``result_merge``.
    sample_indexes: Optional[List[List[List[int]]]] = None


class _WorkerState:
    """Per-process state built once by the pool initializer.

    The matcher's inverted candidate index is built here, once per
    worker (not per shard) — or, in shared-store mode, simply *attached*
    from the coordinator's shared-memory arrays — and its verdict memo
    is per-worker private: caches never cross process boundaries, and
    the memo survives shard boundaries so repeat sequences hit across a
    whole run.  Both knobs travel inside the pickled
    ``matching_config``, so a full-scan or cache-disabled configuration
    on the parent reproduces identically in every worker.
    """

    def __init__(
        self,
        fingerprints: Optional[Dict[int, Tuple[int, ...]]],
        matching_config,
        clustering_config,
        route_network: RouteNetwork,
        trip_mapping_config,
        *,
        store: Optional[SharedFingerprintStore] = None,
        warm_entries: Sequence = (),
    ):
        self.registry = MetricsRegistry()
        self.store = store
        self.matcher = SampleMatcher(
            fingerprints, matching_config, registry=self.registry,
            store=store,
        )
        if warm_entries:
            # Coordinator's hottest verdicts: adopted silently, so the
            # memo starts hot without skewing hit/miss accounting.
            self.matcher.cache.preload(warm_entries)
        self.clustering_config = clustering_config
        self.constraint = RouteConstraint(route_network, trip_mapping_config)


_WORKER_STATE: Optional[_WorkerState] = None
#: ``(start, duration)`` of this worker's initializer, shipped back once
#: with its first shard so the coordinator can account pool-warmup cost.
_WORKER_INIT: Optional[Tuple[float, float]] = None


def _init_worker(mode: str, *payload) -> None:
    """Pool initializer: broadcast the read-only state once per worker.

    ``legacy`` receives everything pickled through the pool pipe;
    ``shm`` receives a tiny segment descriptor plus the small configs,
    attaches the fingerprint arrays zero-copy, and unpickles the route
    network and memo warm set out of the segment's aux blob.
    """
    global _WORKER_STATE, _WORKER_INIT
    started = time.perf_counter()
    if mode == "shm":
        meta, matching_config, clustering_config, trip_mapping_config = payload
        store = SharedFingerprintStore.attach(meta)
        route_network, warm_entries = pickle.loads(store.aux_bytes)
        _WORKER_STATE = _WorkerState(
            None, matching_config, clustering_config, route_network,
            trip_mapping_config, store=store, warm_entries=warm_entries,
        )
    else:
        _WORKER_STATE = _WorkerState(*payload)
    _WORKER_INIT = (started, time.perf_counter() - started)


def _prepare_shard(
    blob: bytes, context=None, dispatched_at: Optional[float] = None
) -> _ShardOutcome:
    """Task body: run the pure stages over one pickled shard of uploads."""
    global _WORKER_INIT
    received_at = time.perf_counter()
    state = _WORKER_STATE
    if state is None:
        raise RuntimeError("ingest worker used before initialisation")
    worker = multiprocessing.current_process().name
    tracer = Tracer(
        context.policy if context is not None else None,
        context=context,
        worker=worker,
    )
    if _WORKER_INIT is not None:
        init_start, init_dur = _WORKER_INIT
        _WORKER_INIT = None
        tracer.record_span(
            "worker_init", start_s=init_start, duration_s=init_dur,
        )
    if dispatched_at is not None:
        # perf_counter is CLOCK_MONOTONIC on Linux, so the coordinator's
        # dispatch timestamp is comparable with our receipt time: the gap
        # is pool pickling + pipe transfer + queue wait for a free worker.
        tracer.record_span(
            "pool_queue_wait",
            start_s=dispatched_at,
            duration_s=received_at - dispatched_at,
        )
    columnar = blob.startswith(SHARD_MAGIC)
    with tracer.span("shard_deserialize", bytes=len(blob)):
        if columnar:
            shard, keep_matches = decode_shard(blob)
        else:
            shard, keep_matches = pickle.loads(blob)
    # The worker registry is reset per shard and its snapshot shipped
    # back, so the parent can merge shard deltas without double counting.
    state.registry.reset()
    prepared = []
    for upload in shard:
        with tracer.span("prepare_trip", key=upload.trip_key):
            prepared.append(
                prepare_trip(
                    upload,
                    matcher=state.matcher,
                    clustering_config=state.clustering_config,
                    constraint=state.constraint,
                    registry=state.registry,
                    tracer=tracer,
                    keep_matches=keep_matches,
                )
            )
    sample_indexes = None
    if columnar:
        # Columnar shards decode to rss-less sample objects; record each
        # clustered sample's position in its upload so the coordinator
        # can restore the originals.  Clustering wraps (never copies)
        # the decoded sample objects, so identity lookup is exact.
        sample_indexes = []
        for upload, trip in zip(shard, prepared):
            positions = {id(s): k for k, s in enumerate(upload.samples)}
            sample_indexes.append(
                [
                    [positions[id(member.sample)] for member in cluster.samples]
                    for cluster in trip.clusters
                ]
            )
    return _ShardOutcome(
        prepared=prepared,
        metrics=state.registry.as_dict(),
        trace=tracer.export_trace_state(),
        sample_indexes=sample_indexes,
    )


class IngestEngine:
    """A sharded ``multiprocessing`` fan-out for the pure pipeline half.

    Use as a context manager (the pool is started lazily on first
    :meth:`prepare` and torn down on exit)::

        with IngestEngine.for_server(server, workers=4) as engine:
            reports = server.ingest_many(uploads, engine=engine)

    Determinism guarantee: shards are formed from the input sequence in
    order, dispatched with ``apply_async`` and gathered in submission
    order, and shard results are concatenated in that order — so
    ``prepare(batch)`` returns exactly ``[prepare_trip(u) for u in
    batch]`` regardless of worker count or scheduling.  (Shards round
    trip through an explicit pickle so the serialize cost is a named,
    measured span; pickling preserves every value bit-exactly, and the
    pool would have pickled the same objects anyway.)
    """

    def __init__(
        self,
        fingerprints: Dict[int, Tuple[int, ...]],
        route_network: RouteNetwork,
        config: Optional[SystemConfig] = None,
        *,
        workers: int,
        shard_size: Optional[int] = None,
        registry: Optional[MetricsRegistry] = None,
        tracer=None,
        shared_store: Optional[bool] = None,
        warm_source=None,
    ):
        if workers < 1:
            raise ValueError("ingest engine needs at least one worker")
        if shard_size is not None and shard_size < 1:
            raise ValueError("shard_size must be positive")
        config = config or SystemConfig()
        self.workers = workers
        self.shard_size = shard_size
        self.registry = registry if registry is not None else NULL_REGISTRY
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.mode = (
            "shm"
            if (
                config.ingest.shared_store
                if shared_store is None
                else shared_store
            )
            else "legacy"
        )
        self._memo_warm = config.ingest.memo_warm
        #: Called at pool start; returns the coordinator's hottest memo
        #: entries so workers begin with a warm verdict cache.
        self._warm_source = warm_source
        self._payload = (
            dict(fingerprints),
            config.matching,
            config.clustering,
            route_network,
            config.trip_mapping,
        )
        self._store: Optional[SharedFingerprintStore] = None
        self._pool: Optional[multiprocessing.pool.Pool] = None
        reg = self.registry
        self._c_batches = reg.counter(
            "ingest_batches_total", help="upload batches fanned out"
        )
        self._c_shards = reg.counter(
            "ingest_shards_total", help="shards dispatched to ingest workers"
        )
        self._c_trips = reg.counter(
            "ingest_trips_total", help="trips prepared by the ingest engine"
        )
        reg.gauge(
            "ingest_workers", help="worker processes of the ingest engine"
        ).set(workers)
        self._h_shard_trips = reg.histogram(
            "ingest_shard_trips",
            buckets=(1, 2, 4, 8, 16, 32, 64, 128),
            help="trips per dispatched shard",
        )
        self._h_batch_seconds = reg.histogram(
            "ingest_batch_seconds",
            help="wall seconds per prepared batch (fan-out + merge)",
        )
        self._fam_stage_seconds = reg.labeled_histogram(
            "ingest_stage_seconds", ("stage",),
            help="per-shard worker seconds spent in each traced stage",
        )

    @classmethod
    def for_server(cls, server, workers: int, **kwargs) -> "IngestEngine":
        """An engine broadcasting ``server``'s database and constraints.

        Worker metrics merge into the server's registry, so parallel
        runs export the same matcher/clustering/mapping totals as
        serial ones.
        """
        kwargs.setdefault("tracer", server.tracer)
        warm = server.config.ingest.memo_warm
        kwargs.setdefault(
            "warm_source",
            (lambda: server.matcher.cache.hottest(warm)) if warm else None,
        )
        return cls(
            server.database.as_dict(),
            server.route_network,
            server.config,
            workers=workers,
            registry=server.registry,
            **kwargs,
        )

    # -- lifecycle -----------------------------------------------------------

    def _initargs(self) -> Tuple:
        """The per-worker broadcast: mode-tagged pool initargs.

        In ``shm`` mode this is where the shared store is created: the
        fingerprint arrays land in the segment, the route network and
        the coordinator's hottest memo entries ride its aux blob, and
        only a metadata descriptor plus the small configs cross the
        pool pipe.  Falls back to ``legacy`` if the host cannot provide
        shared memory.
        """
        fingerprints, matching, clustering, route_network, mapping = (
            self._payload
        )
        if self.mode == "shm":
            warm = self._warm_source() if self._warm_source else []
            if self._memo_warm:
                warm = list(warm)[: self._memo_warm]
            try:
                self._store = SharedFingerprintStore.create(
                    fingerprints,
                    aux=pickle.dumps(
                        (route_network, warm), pickle.HIGHEST_PROTOCOL
                    ),
                )
            except OSError:
                self.mode = "legacy"
            else:
                return (
                    "shm", self._store.meta, matching, clustering, mapping,
                )
        return ("legacy",) + self._payload

    def start(self) -> "IngestEngine":
        """Spawn the worker pool (idempotent)."""
        if self._pool is None:
            initargs = self._initargs()
            if self.tracer.enabled:
                # Measure what the pool is about to broadcast to every
                # worker.  Legacy mode ships the whole fingerprint DB +
                # route network per worker; shm mode ships a descriptor
                # and parks the bulk in the shared segment (reported
                # separately as shm_bytes — paid once, not per worker).
                t0 = time.perf_counter()
                payload_bytes = len(
                    pickle.dumps(initargs[1:], pickle.HIGHEST_PROTOCOL)
                )
                self.tracer.record_span(
                    "fingerprint_broadcast",
                    start_s=t0,
                    duration_s=time.perf_counter() - t0,
                    bytes=payload_bytes,
                    workers=self.workers,
                    mode=self.mode,
                    shm_bytes=(
                        self._store._segment.size if self._store else 0
                    ),
                )
            self._pool = multiprocessing.Pool(
                processes=self.workers,
                initializer=_init_worker,
                initargs=initargs,
            )
        return self

    def close(self) -> None:
        """Tear the worker pool down and destroy the shared segment.

        Runs the unlink even when the pool refuses to die cleanly (a
        crashed worker, an interrupted batch): the segment's lifetime
        is bound to the engine, never to the worker processes — they
        attach untracked and simply unmap on exit.
        """
        try:
            if self._pool is not None:
                self._pool.terminate()
                self._pool.join()
                self._pool = None
        finally:
            if self._store is not None:
                self._store.unlink()
                self._store = None

    def __enter__(self) -> "IngestEngine":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- fan-out -------------------------------------------------------------

    def _shards(self, uploads: Sequence[TripUpload]) -> List[List[TripUpload]]:
        """Cut the batch into ordered shards.

        Legacy mode keeps ~4 shards per worker (fine-grained balancing
        compensates for its per-shard pickle tax).  Shared-store mode
        coarsens to one shard per worker: the per-shard costs —
        serialize, queue hop, result wait, merge — are then paid
        ``workers`` times per batch instead of ``4 × workers``, and the
        columnar codec compresses better over bigger shards.
        """
        size = self.shard_size
        if size is None:
            per_worker = 1 if self.mode == "shm" else 4
            size = max(1, -(-len(uploads) // (self.workers * per_worker)))
        return [
            list(uploads[i: i + size]) for i in range(0, len(uploads), size)
        ]

    def _encode_shard(self, shard, keep_matches: bool) -> bytes:
        if self.mode == "shm":
            return encode_shard(shard, keep_matches)
        return pickle.dumps((shard, keep_matches), pickle.HIGHEST_PROTOCOL)

    @staticmethod
    def _rehydrate(shard, outcome: _ShardOutcome) -> None:
        """Swap the riders' original sample objects back into the results.

        Columnar shards travel without the per-sample rss vectors (the
        pure stages never read them), so the decoded-on-the-worker
        sample objects inside each cluster are rss-less copies.  Every
        cluster slot is rewritten in place with the original
        :class:`CellularSample` at the recorded upload position — after
        this, results are indistinguishable object-for-object from a
        serial run's.
        """
        if outcome.sample_indexes is None:
            return
        for upload, trip, index_lists in zip(
            shard, outcome.prepared, outcome.sample_indexes
        ):
            for cluster, positions in zip(trip.clusters, index_lists):
                cluster.samples[:] = [
                    MatchedSample(
                        sample=upload.samples[position], match=member.match
                    )
                    for position, member in zip(positions, cluster.samples)
                ]

    def prepare(
        self, uploads: Sequence[TripUpload], *, keep_matches: bool = False
    ) -> List[PreparedTrip]:
        """Fan the pure stages out over the pool; results in input order."""
        if not uploads:
            return []
        self.start()
        tracer = self.tracer
        started = time.perf_counter()
        shards = self._shards(uploads)
        handles = []
        for index, shard in enumerate(shards):
            t0 = time.perf_counter()
            blob = self._encode_shard(shard, keep_matches)
            tracer.record_span(
                "shard_serialize",
                start_s=t0,
                duration_s=time.perf_counter() - t0,
                bytes=len(blob),
                shard=index,
                trips=len(shard),
            )
            handles.append(
                self._pool.apply_async(
                    _prepare_shard,
                    (blob, tracer.ipc_context(), time.perf_counter()),
                )
            )
        prepared: List[PreparedTrip] = []
        for index, (shard, handle) in enumerate(zip(shards, handles)):
            w0 = time.perf_counter()
            outcome = handle.get()
            tracer.record_span(
                "pool_result_wait",
                start_s=w0,
                duration_s=time.perf_counter() - w0,
                shard=index,
            )
            with tracer.span("result_merge", shard=index):
                self._rehydrate(shard, outcome)
                prepared.extend(outcome.prepared)
                self.registry.merge_dict(
                    outcome.metrics,
                    skip_gauge_prefixes=WORKER_GAUGE_QUARANTINE,
                )
                self._c_shards.inc()
                self._h_shard_trips.observe(len(shard))
                for stage, timing in outcome.trace["stages"].items():
                    self._fam_stage_seconds.labels(stage).observe(
                        timing.get("total_s", 0.0)
                    )
            tracer.absorb(outcome.trace)
        self._c_batches.inc()
        self._c_trips.inc(len(uploads))
        self._h_batch_seconds.observe(time.perf_counter() - started)
        return prepared
