"""Sequential Bayesian fusion of per-segment speed estimates (§III-D, Eq. 4).

Many trips report speeds for the same road segment.  The paper fuses
them with a precision-weighted normal update:

    v_new = (v/σ² + v̄/σ̄²) / (1/σ² + 1/σ̄²)
    σ²_new = 1 / (1/σ² + 1/σ̄²)

i.e. "the inverse of the estimation variance weighs the historic
estimation and the updated estimations".  The fused estimate refreshes
on a period of T = 5 minutes.

One addition is required for a *live* map: without decay, σ² shrinks
monotonically and hours-old data would dominate fresh evidence.  We
inflate the variance linearly with the time since the last update
(a standard random-walk process model); with the paper's dense 5-minute
updates the inflation is negligible, so Eq. (4) behaviour is preserved.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Optional, Tuple

from repro.config import FusionConfig


@dataclass(frozen=True)
class FusedSpeed:
    """Fused speed belief for one segment."""

    mean_kmh: float
    variance: float             # km/h squared
    last_update_s: float
    observation_count: int

    @property
    def sigma_kmh(self) -> float:
        """Standard deviation of the belief in km/h."""
        return self.variance**0.5


class BayesianSpeedFuser:
    """Keeps one normal belief per key and folds in observations."""

    def __init__(self, config: Optional[FusionConfig] = None):
        self.config = config or FusionConfig()
        self._beliefs: Dict[object, FusedSpeed] = {}

    def __len__(self) -> int:
        return len(self._beliefs)

    def __contains__(self, key: object) -> bool:
        return key in self._beliefs

    @property
    def keys(self):
        """Keys with at least one observation."""
        return self._beliefs.keys()

    def update(
        self,
        key: object,
        speed_kmh: float,
        t: float,
        sigma_kmh: Optional[float] = None,
    ) -> FusedSpeed:
        """Fold one observation into the belief for ``key`` (Eq. 4)."""
        if speed_kmh <= 0:
            raise ValueError("speed must be positive")
        obs_var = (sigma_kmh or self.config.observation_sigma_kmh) ** 2
        prior = self._beliefs.get(key)
        if prior is None:
            belief = FusedSpeed(
                mean_kmh=speed_kmh,
                variance=obs_var,
                last_update_s=t,
                observation_count=1,
            )
        else:
            inflated = self._inflate(prior, t)
            precision = 1.0 / inflated.variance + 1.0 / obs_var
            mean = (
                inflated.mean_kmh / inflated.variance + speed_kmh / obs_var
            ) / precision
            belief = FusedSpeed(
                mean_kmh=mean,
                variance=1.0 / precision,
                # Uploads can arrive late and out of order (flaky 3G);
                # a stale observation must not rewind the freshness clock.
                last_update_s=max(t, prior.last_update_s),
                observation_count=prior.observation_count + 1,
            )
        self._beliefs[key] = belief
        return belief

    def current(self, key: object, t: Optional[float] = None) -> Optional[FusedSpeed]:
        """Current belief, staleness-inflated to time ``t`` when given."""
        belief = self._beliefs.get(key)
        if belief is None or t is None:
            return belief
        return self._inflate(belief, t)

    def state_dict(self) -> list:
        """JSON-ready beliefs.  Tuple keys (segment ids) become lists;
        :meth:`restore_state` turns lists back into tuples."""
        out = []
        for key in sorted(self._beliefs):
            b = self._beliefs[key]
            wire_key = list(key) if isinstance(key, tuple) else key
            out.append([
                wire_key, b.mean_kmh, b.variance,
                b.last_update_s, b.observation_count,
            ])
        return out

    def restore_state(self, state: list) -> None:
        """Adopt beliefs from :meth:`state_dict` (replaces everything)."""
        beliefs: Dict[object, FusedSpeed] = {}
        for wire_key, mean, variance, last, count in state:
            key = tuple(wire_key) if isinstance(wire_key, list) else wire_key
            beliefs[key] = FusedSpeed(
                mean_kmh=float(mean),
                variance=float(variance),
                last_update_s=float(last),
                observation_count=int(count),
            )
        self._beliefs = beliefs

    def _inflate(self, belief: FusedSpeed, t: float) -> FusedSpeed:
        elapsed_hr = max(0.0, t - belief.last_update_s) / 3600.0
        extra = (self.config.staleness_inflation_kmh_per_hr * elapsed_hr) ** 2
        if extra == 0.0:
            return belief
        return replace(belief, variance=belief.variance + extra)
