"""The backend server: the full §III pipeline over uploaded trips.

For every anonymous :class:`TripUpload` the server runs

    per-sample matching  →  per-bus-stop clustering  →  per-trip mapping
    →  travel-time extraction  →  BTT→ATT model  →  Bayesian map update

exactly as Fig. 4 sketches, and maintains the live traffic map with its
T = 5 min publication cycle.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.city.road_network import RoadNetwork, SegmentId
from repro.city.routes import BusRoute, RouteNetwork
from repro.config import SystemConfig
from repro.core.clustering import MatchedSample, SampleCluster, cluster_trip_samples
from repro.core.fingerprint import FingerprintDatabase
from repro.core.matching import SampleMatcher
from repro.core.traffic_map import TrafficMapEstimator
from repro.core.traffic_model import TrafficModel
from repro.core.trip_mapping import MappedTrip, RouteConstraint, map_trip
from repro.phone.trip_recorder import TripUpload
from repro.util.units import ms_to_kmh

#: Plausibility band for a measured bus leg; outside it the reading is junk.
_MIN_BUS_SPEED_KMH = 2.0
_MAX_BUS_SPEED_KMH = 65.0


@dataclass
class ServerStats:
    """Counters over everything the server has processed."""

    trips_received: int = 0
    trips_duplicate: int = 0
    trips_mapped: int = 0
    samples_received: int = 0
    samples_discarded: int = 0
    clusters_formed: int = 0
    legs_estimated: int = 0
    legs_rejected: int = 0
    segments_updated: int = 0


@dataclass
class TripReport:
    """Diagnostics of one trip's journey through the pipeline."""

    trip_key: str
    accepted_samples: int
    discarded_samples: int
    clusters: List[SampleCluster]
    mapped: Optional[MappedTrip]
    estimates: List[Tuple[SegmentId, float, float]] = field(default_factory=list)
    # (segment, speed_kmh, observation time)


class BackendServer:
    """Receives crowd uploads and maintains the city traffic map."""

    def __init__(
        self,
        network: RoadNetwork,
        route_network: RouteNetwork,
        database: FingerprintDatabase,
        config: Optional[SystemConfig] = None,
    ):
        self.config = config or SystemConfig()
        self.network = network
        self.route_network = route_network
        self.database = database
        self.matcher = SampleMatcher(database.as_dict(), self.config.matching)
        self.constraint = RouteConstraint(route_network, self.config.trip_mapping)
        self.model = TrafficModel(self.config.traffic_model)
        self.traffic_map = TrafficMapEstimator(network, self.config.fusion)
        self.stats = ServerStats()
        self._seen_trip_keys: set = set()

    # -- ingestion ---------------------------------------------------------------

    def receive_trip(self, upload: TripUpload) -> TripReport:
        """Run one uploaded trip through the full pipeline.

        Re-delivered uploads (flaky phone connectivity retries the POST)
        are detected by trip key and ignored, so a trip never counts
        twice in the fused map.
        """
        if upload.trip_key in self._seen_trip_keys:
            self.stats.trips_duplicate += 1
            return TripReport(
                trip_key=upload.trip_key,
                accepted_samples=0,
                discarded_samples=len(upload.samples),
                clusters=[],
                mapped=None,
            )
        self._seen_trip_keys.add(upload.trip_key)
        self.stats.trips_received += 1
        self.stats.samples_received += len(upload.samples)

        matched: List[MatchedSample] = []
        discarded = 0
        results = self.matcher.match_many([s.tower_ids for s in upload.samples])
        for sample, result in zip(upload.samples, results):
            if result.accepted:
                matched.append(MatchedSample(sample=sample, match=result))
            else:
                discarded += 1
        self.stats.samples_discarded += discarded

        clusters = cluster_trip_samples(matched, self.config.clustering)
        self.stats.clusters_formed += len(clusters)

        mapped = map_trip(clusters, self.constraint) if clusters else None
        report = TripReport(
            trip_key=upload.trip_key,
            accepted_samples=len(matched),
            discarded_samples=discarded,
            clusters=clusters,
            mapped=mapped,
        )
        if mapped is None or len(mapped.stops) < 2:
            return report
        self.stats.trips_mapped += 1
        self._estimate_legs(mapped, report)
        return report

    def receive_trips(self, uploads: Sequence[TripUpload]) -> List[TripReport]:
        """Process a batch of uploads in time order."""
        ordered = sorted(uploads, key=lambda u: u.start_s if u.samples else 0.0)
        return [self.receive_trip(upload) for upload in ordered]

    def publish(self, at_s: float) -> None:
        """Publish the current map (the T = 5 min refresh cycle)."""
        self.traffic_map.publish(at_s)

    # -- travel-time extraction (§III-D) -------------------------------------------

    def _estimate_legs(self, mapped: MappedTrip, report: TripReport) -> None:
        for prev, cur in zip(mapped.stops, mapped.stops[1:]):
            if prev.station_id == cur.station_id:
                continue                      # duplicate cluster of one stop
            # The "departing point" is the last tap heard at the stop, but
            # doors stay open a little longer — subtract the calibrated
            # dwell tail so the leg time is true running time.
            btt = (
                cur.arrival_s
                - prev.depart_s
                - self.config.traffic_model.dwell_tail_s
            )
            if btt <= 0:
                self.stats.legs_rejected += 1
                continue
            segments = self._segments_between(prev.station_id, cur.station_id)
            if not segments:
                self.stats.legs_rejected += 1
                continue
            total_length = sum(self.network.segment(s).length_m for s in segments)
            bus_speed_kmh = ms_to_kmh(total_length / btt)
            if not (_MIN_BUS_SPEED_KMH <= bus_speed_kmh <= _MAX_BUS_SPEED_KMH):
                self.stats.legs_rejected += 1
                continue
            self.stats.legs_estimated += 1
            # A missing stop merges adjacent road segments into one leg
            # (§III-D); the running time is split over the spanned
            # segments in proportion to their length, which assumes a
            # uniform speed over the leg.
            for segment_id in segments:
                segment = self.network.segment(segment_id)
                seg_btt = btt * segment.length_m / total_length
                estimate = self.model.estimate(
                    seg_btt, segment.length_m, segment.free_speed_ms
                )
                self.traffic_map.update(
                    segment_id, estimate.speed_kmh, cur.arrival_s
                )
                self.stats.segments_updated += 1
                report.estimates.append(
                    (segment_id, estimate.speed_kmh, cur.arrival_s)
                )

    def _segments_between(self, x: int, y: int) -> List[SegmentId]:
        """Directed segments a bus covers from station x to station y.

        When several routes serve the pair, the one with the fewest
        intermediate stops is the natural explanation of the leg.
        """
        best: Optional[Tuple[int, List[SegmentId]]] = None
        for route in self.route_network.routes:
            from_order = route.station_order(x)
            to_order = route.station_order(y)
            if from_order is None or to_order is None or to_order <= from_order:
                continue
            hops = to_order - from_order
            if best is None or hops < best[0]:
                best = (hops, route.segments_between(from_order, to_order))
        return best[1] if best else []
