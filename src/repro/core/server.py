"""The backend server: the full §III pipeline over uploaded trips.

For every anonymous :class:`TripUpload` the server runs

    per-sample matching  →  per-bus-stop clustering  →  per-trip mapping
    →  travel-time extraction  →  BTT→ATT model  →  Bayesian map update

exactly as Fig. 4 sketches, and maintains the live traffic map with its
T = 5 min publication cycle.
"""

from __future__ import annotations

import logging

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.city.road_network import RoadNetwork, SegmentId
from repro.city.routes import BusRoute, RouteNetwork
from repro.config import SystemConfig
from repro.core.clustering import MatchedSample, SampleCluster, cluster_trip_samples
from repro.core.fingerprint import FingerprintDatabase
from repro.core.freshness import FreshnessTracker
from repro.core.ingest import IngestEngine, PreparedTrip, prepare_trip
from repro.core.matching import SampleMatcher
from repro.core.traffic_map import TrafficMapEstimator
from repro.core.traffic_model import TrafficModel
from repro.core.trip_mapping import MappedTrip, RouteConstraint, map_trip
from repro.obs.alerts import AlertEngine, Sample
from repro.obs.logging import get_logger, log_event
from repro.obs.metrics import NULL_REGISTRY, MetricsRegistry, NullRegistry
from repro.obs.tracing import NULL_TRACER
from repro.obs.windows import WindowSet
from repro.phone.trip_recorder import TripUpload
from repro.store import NULL_STORE, NullStateStore, StateStore
from repro.store.faults import fault_point
from repro.util.units import ms_to_kmh
from repro.wire import trip_from_dict, trip_to_dict

#: Plausibility band for a measured bus leg; outside it the reading is junk.
_MIN_BUS_SPEED_KMH = 2.0
_MAX_BUS_SPEED_KMH = 65.0

_log = get_logger(__name__)

#: The counters a :class:`ServerStats` exposes, in reporting order.
STAT_FIELDS: Tuple[str, ...] = (
    "trips_received",
    "trips_duplicate",
    "trips_mapped",
    "samples_received",
    "samples_discarded",
    "samples_duplicate",
    "clusters_formed",
    "legs_estimated",
    "legs_rejected",
    "segments_updated",
)


class ServerStats:
    """Counters over everything the server has processed.

    The attribute API is unchanged from the original dataclass
    (``stats.trips_received``, ``stats.trips_mapped += 1``, …) but every
    field is now backed by a ``server_<field>`` counter in a
    :class:`~repro.obs.metrics.MetricsRegistry`, so the same numbers
    flow out through ``--metrics-out`` / Prometheus export without
    double bookkeeping.
    """

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        namespace: str = "server",
        **initial: int,
    ):
        # Stats must always count — they are the server's public record —
        # so a do-nothing registry is swapped for a private recording one.
        private = registry is None or isinstance(registry, NullRegistry)
        if private:
            registry = MetricsRegistry()
        self.__dict__["_registry"] = registry
        self.__dict__["_private_registry"] = private
        self.__dict__["_counters"] = {
            name: registry.counter(
                f"{namespace}_{name}",
                help=f"server pipeline counter: {name.replace('_', ' ')}",
            )
            for name in STAT_FIELDS
        }
        for name, value in initial.items():
            if name not in STAT_FIELDS:
                raise TypeError(f"unknown stats field {name!r}")
            setattr(self, name, value)

    def __getattr__(self, name: str):
        counters = self.__dict__.get("_counters", {})
        if name in counters:
            return int(counters[name].value)
        raise AttributeError(
            f"{type(self).__name__!s} object has no attribute {name!r}"
        )

    def __setattr__(self, name: str, value) -> None:
        counters = self.__dict__.get("_counters", {})
        if name in counters:
            counter = counters[name]
            if value < 0:
                raise ValueError(
                    f"stats counter {name!r} cannot be set negative "
                    f"(got {value!r})"
                )
            delta = value - counter.value
            if delta >= 0:
                counter.inc(delta)
            else:                       # rollback (e.g. a test resetting a field)
                counter.reset()
                counter.inc(value)
        else:
            self.__dict__[name] = value

    def as_dict(self) -> Dict[str, int]:
        """All counters as a plain dict, in :data:`STAT_FIELDS` order."""
        return {name: getattr(self, name) for name in STAT_FIELDS}

    def reset(self) -> None:
        """Zero every counter (e.g. between campaign phases).

        When the stats own a private registry (the default), the whole
        registry is reset — histogram bucket counts and labeled children
        included — so back-to-back runs never leak counts.  On a shared
        pipeline registry only the stats' own counters are touched; use
        :meth:`BackendServer.reset_metrics` for a full telemetry reset.
        """
        if self.__dict__["_private_registry"]:
            self.__dict__["_registry"].reset()
        else:
            for counter in self.__dict__["_counters"].values():
                counter.reset()

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ServerStats):
            return NotImplemented
        return self.as_dict() == other.as_dict()

    def __repr__(self) -> str:
        fields = ", ".join(f"{k}={v}" for k, v in self.as_dict().items())
        return f"ServerStats({fields})"


@dataclass
class TripReport:
    """Diagnostics of one trip's journey through the pipeline."""

    trip_key: str
    accepted_samples: int
    discarded_samples: int
    clusters: List[SampleCluster]
    mapped: Optional[MappedTrip]
    estimates: List[Tuple[SegmentId, float, float]] = field(default_factory=list)
    # (segment, speed_kmh, observation time)
    #: Per-sample match verdicts in upload order; populated only when the
    #: trip was ingested with ``keep_matches=True`` (golden-trace runs).
    matches: Optional[Tuple] = None


class BackendServer:
    """Receives crowd uploads and maintains the city traffic map."""

    def __init__(
        self,
        network: RoadNetwork,
        route_network: RouteNetwork,
        database: FingerprintDatabase,
        config: Optional[SystemConfig] = None,
        *,
        registry: Optional[MetricsRegistry] = None,
        tracer=None,
        store: Optional[StateStore] = None,
    ):
        self.config = config or SystemConfig()
        self.network = network
        self.route_network = route_network
        self.database = database
        # Disabled by default: pipeline components get the no-op registry
        # so per-sample instrumentation costs nothing unless requested.
        # ServerStats swaps in its own private recording registry, so the
        # public counters always count either way.
        self.registry = registry if registry is not None else NULL_REGISTRY
        self.tracer = tracer if tracer is not None else NULL_TRACER
        # Per-trip dimensional instrumentation is branch-guarded on this
        # flag so the NULL_REGISTRY fast path stays within ~2% of the
        # uninstrumented baseline.
        self._observing = not isinstance(self.registry, NullRegistry)
        self.matcher = SampleMatcher(
            database.as_dict(), self.config.matching, registry=self.registry
        )
        self.constraint = RouteConstraint(route_network, self.config.trip_mapping)
        self.model = TrafficModel(self.config.traffic_model)
        self.traffic_map = TrafficMapEstimator(
            network, self.config.fusion,
            registry=self.registry, tracer=self.tracer,
        )
        self.freshness = FreshnessTracker(
            route_network, self.traffic_map, registry=self.registry
        )
        self.stats = ServerStats(registry=self.registry)
        self.registry.gauge(
            "fingerprint_db_stops",
            help="bus stops with a surveyed fingerprint (freshness denominator)",
        ).set(len(database))
        self._fam_route_trips = self.registry.labeled_counter(
            "trips_uploaded_total", ("route",),
            help="mapped trip uploads attributed to each bus route",
        )
        self._fam_route_segments = self.registry.labeled_counter(
            "segments_updated_total", ("route",),
            help="map segment updates contributed by each bus route",
        )
        #: Trailing 5-minute windows over the ingest stream (sim clock).
        self.windows = WindowSet(
            window_s=self.config.fusion.update_period_s, buckets=30
        )
        self._fam_window_route = self.registry.labeled_gauge(
            "window_route_trips", ("route",),
            help="mapped trips per route over the trailing publish window",
        )
        self._g_window_trips = self.registry.gauge(
            "window_trips_received",
            help="uploads received over the trailing publish window",
        )
        self._g_window_accepted = self.registry.gauge(
            "window_samples_accepted",
            help="samples accepted over the trailing publish window",
        )
        self._g_accept_ratio = self.registry.gauge(
            "match_accept_ratio",
            help="accepted / received samples over the whole run",
        )
        #: Optional SLO engine, evaluated on every publish tick.
        self.alerts: Optional[AlertEngine] = None
        #: Fleet-health analytics stage (headways / ghosts / O-D flows);
        #: None when disabled, so the ingest hot path pays one is-None
        #: check.  Imported lazily: repro.analysis imports this module.
        self.analytics = None
        if self.config.analytics.enabled:
            from repro.analysis.fleet.pipeline import FleetHealthAnalytics

            self.analytics = FleetHealthAnalytics(
                route_network,
                self.config.analytics,
                scheduled_headway_s=self.config.bus.headway_s,
                registry=self.registry,
            )
        self._seen_trip_keys: set = set()
        #: Durable state tier: write-ahead upload ledger + snapshots.
        #: The default NULL_STORE keeps the no-store hot path at one
        #: cached boolean per ingest — same trick as NULL_REGISTRY.
        self.store: StateStore = store if store is not None else NULL_STORE
        self._journaling = not isinstance(self.store, NullStateStore)
        self._replaying = False
        #: Watermark: seq of the last WAL record whose mutation finished.
        self.applied_seq = 0
        self._last_snapshot_seq = 0
        self._snapshot_every = self.config.ingest.store_snapshot_every
        self._c_replayed = self.registry.counter(
            "store_replayed_records_total",
            help="WAL records re-applied during recovery",
        )

    @property
    def is_journaling(self) -> bool:
        """Whether a durable store is attached and journaling is live."""
        return self._journaling

    def attach_alerts(self, engine: AlertEngine) -> None:
        """Evaluate ``engine`` on every publish tick from now on."""
        self.alerts = engine

    def rebuild_fingerprints(self, database: FingerprintDatabase) -> None:
        """Adopt a re-surveyed (or bootstrapped) fingerprint database.

        Rebuilds the matcher's inverted candidate index and invalidates
        its verdict memo — a cached verdict against the old database
        must never be served against the new one — then refreshes the
        ``fingerprint_db_stops`` gauge.  Trips already ingested are not
        reprocessed; the duplicate ledger and fused map are untouched.
        """
        self.database = database
        self.matcher.rebuild(database.as_dict())
        self.registry.gauge("fingerprint_db_stops").set(len(database))

    # -- ingestion ---------------------------------------------------------------

    def receive_trip(
        self,
        upload: TripUpload,
        now_s: Optional[float] = None,
        *,
        keep_matches: bool = False,
    ) -> TripReport:
        """Run one uploaded trip through the full pipeline.

        Re-delivered uploads (flaky phone connectivity retries the POST)
        are detected by trip key and ignored, so a trip never counts
        twice in the fused map.  Their samples count into both
        ``samples_discarded`` (so aggregate stats agree with the sum of
        per-trip ``discarded_samples``) and the dedicated
        ``samples_duplicate`` counter.

        ``now_s`` is the ingest time for sliding-window rates (the event
        engine passes its clock); it defaults to the upload's end time.
        """
        # ``key`` makes the trip a sampling unit when span retention is
        # on: head-sampled or kept as a slow-trip exemplar, subtree and
        # all.  With NULL_TRACER (or no policy) it costs nothing extra.
        with self.tracer.span("receive_trip", key=upload.trip_key):
            if upload.trip_key in self._seen_trip_keys:
                prepared = PreparedTrip.skipped(upload)
            else:
                prepared = self.prepare_upload(upload, keep_matches=keep_matches)
            return self.apply_prepared(prepared, now_s=now_s, upload=upload)

    def prepare_upload(
        self, upload: TripUpload, *, keep_matches: bool = False
    ) -> PreparedTrip:
        """The pure pipeline half for one upload (match → cluster → map).

        Reads only immutable server state (fingerprint database, route
        constraint, configs), so callers may run it concurrently — the
        parallel ingest workers execute exactly this via
        :func:`repro.core.ingest.prepare_trip`.
        """
        return prepare_trip(
            upload,
            matcher=self.matcher,
            clustering_config=self.config.clustering,
            constraint=self.constraint,
            registry=self.registry,
            tracer=self.tracer,
            keep_matches=keep_matches,
        )

    def apply_prepared(
        self,
        prepared: PreparedTrip,
        now_s: Optional[float] = None,
        *,
        upload: Optional[TripUpload] = None,
    ) -> TripReport:
        """The mutating pipeline half: fold one prepared trip into state.

        Single-writer by design — dedup ledger, stats, sliding windows,
        traffic map and freshness all live here.  Must be called in
        upload order; :meth:`ingest_many` guarantees that even when the
        preparation itself ran sharded across a worker pool.

        With a durable store attached the raw ``upload`` is journaled to
        the WAL *before* anything mutates (the write-ahead contract), so
        callers must pass it alongside ``prepared`` — the pure half does
        not retain raw samples.  Duplicates are journaled too: replay
        must reproduce the duplicate counters exactly once each.
        """
        if self._journaling and not self._replaying:
            if upload is None:
                raise ValueError(
                    "a durable store is attached: apply_prepared needs the "
                    "raw upload to journal (pass upload=...)"
                )
            self._journal({
                "kind": "trip",
                "now_s": now_s,
                "trip": trip_to_dict(upload),
            })
            fault_point("apply")
        return self._apply_prepared_inner(prepared, now_s=now_s)

    def _apply_prepared_inner(
        self, prepared: PreparedTrip, now_s: Optional[float] = None
    ) -> TripReport:
        if prepared.trip_key in self._seen_trip_keys:
            self.stats.trips_duplicate += 1
            self.stats.samples_discarded += prepared.samples_total
            self.stats.samples_duplicate += prepared.samples_total
            log_event(
                _log, "trip_duplicate", level=logging.DEBUG,
                trip_key=prepared.trip_key, samples=prepared.samples_total,
            )
            return TripReport(
                trip_key=prepared.trip_key,
                accepted_samples=0,
                discarded_samples=prepared.samples_total,
                clusters=[],
                mapped=None,
            )
        self._seen_trip_keys.add(prepared.trip_key)
        self.stats.trips_received += 1
        self.stats.samples_received += prepared.samples_total
        observing = self._observing
        if observing:
            if now_s is None:
                if prepared.end_s is None:
                    raise ValueError(
                        f"trip {prepared.trip_key} has no samples"
                    )
                now_s = prepared.end_s
            self.windows.add("trips_received", now=now_s)
        self.stats.samples_discarded += prepared.discarded
        if observing:
            self.windows.add("samples_accepted", prepared.accepted, now=now_s)
            self.windows.add("samples_discarded", prepared.discarded, now=now_s)

        clusters = prepared.clusters
        mapped = prepared.mapped
        self.stats.clusters_formed += len(clusters)
        report = TripReport(
            trip_key=prepared.trip_key,
            accepted_samples=prepared.accepted,
            discarded_samples=prepared.discarded,
            clusters=clusters,
            mapped=mapped,
            matches=prepared.matches,
        )
        if mapped is None or len(mapped.stops) < 2:
            log_event(
                _log, "trip_unmapped", level=logging.DEBUG,
                trip_key=prepared.trip_key,
                accepted=prepared.accepted, discarded=prepared.discarded,
                clusters=len(clusters),
            )
            return report
        self.stats.trips_mapped += 1
        with self.tracer.span("leg_estimation"):
            trip_route = self._estimate_legs(mapped, report)
        if observing and trip_route is not None:
            self._fam_route_trips.labels(trip_route).inc()
            self.windows.add("route_trips", now=now_s, route=trip_route)
        if self.analytics is not None:
            self.analytics.observe_trip(mapped, trip_route)
        log_event(
            _log, "trip_processed", level=logging.DEBUG,
            trip_key=prepared.trip_key,
            accepted=prepared.accepted, discarded=prepared.discarded,
            clusters=len(clusters), stops=len(mapped.stops),
            estimates=len(report.estimates),
        )
        return report

    def receive_trips(self, uploads: Sequence[TripUpload]) -> List[TripReport]:
        """Process a batch of uploads in time order."""
        return self.ingest_many(uploads)

    def ingest_many(
        self,
        uploads: Sequence[TripUpload],
        *,
        workers: int = 1,
        engine: Optional[IngestEngine] = None,
        shard_size: Optional[int] = None,
        keep_matches: bool = False,
    ) -> List[TripReport]:
        """Process a batch of uploads in time order, optionally sharded.

        With ``workers=1`` (and no ``engine``) this is the serial path —
        identical to calling :meth:`receive_trip` per upload.  With
        ``workers>1`` or an explicit :class:`IngestEngine`, the pure
        match→cluster→map stages fan out across a process pool while the
        stateful merge stays single-writer here, applied in upload
        order.  Results — reports, ``stats``, the fused traffic map —
        are bit-identical to the serial path at any worker count.

        Duplicate uploads are filtered *before* dispatch (in upload
        order, against the ledger and within the batch), matching the
        serial semantics where a duplicate never reaches the matcher.
        """
        ordered = sorted(uploads, key=lambda u: u.start_s if u.samples else 0.0)
        own_engine = engine is None and workers > 1
        if engine is None and not own_engine:
            return [
                self.receive_trip(upload, keep_matches=keep_matches)
                for upload in ordered
            ]
        if own_engine:
            engine = IngestEngine.for_server(
                self, workers=workers, shard_size=shard_size
            )
        try:
            prepared = self.prepare_many(
                ordered, engine, keep_matches=keep_matches
            )
            with self.tracer.span("ingest_merge"):
                return [
                    self.apply_prepared(p, upload=u)
                    for p, u in zip(prepared, ordered)
                ]
        finally:
            if own_engine:
                engine.close()

    def prepare_many(
        self,
        uploads: Sequence[TripUpload],
        engine: IngestEngine,
        *,
        keep_matches: bool = False,
    ) -> List[PreparedTrip]:
        """Prepared trips for ``uploads``, in order, via a worker pool.

        Uploads already in the duplicate ledger — or repeated within the
        batch — are stubbed out *before* dispatch, in upload order, so a
        duplicate never reaches a worker's matcher (exactly the serial
        semantics).  The ledger itself is only written by
        :meth:`apply_prepared`, so preparing does not commit anything.
        """
        seen = set(self._seen_trip_keys)
        fresh: List[TripUpload] = []
        plan: List[Optional[PreparedTrip]] = []
        for upload in uploads:
            if upload.trip_key in seen:
                plan.append(PreparedTrip.skipped(upload))
            else:
                seen.add(upload.trip_key)
                plan.append(None)           # filled from the engine below
                fresh.append(upload)
        prepared_fresh = iter(engine.prepare(fresh, keep_matches=keep_matches))
        return [
            slot if slot is not None else next(prepared_fresh) for slot in plan
        ]

    def reset_metrics(self) -> None:
        """Zero every counter for a fresh run in the same process.

        Back-to-back campaigns sharing one server used to leak counts
        across runs: histograms kept their bucket counts and labeled
        children kept accumulating.  This resets the pipeline registry
        (flat instruments, histogram buckets, and every labeled child),
        the server stats, the sliding windows, and the freshness
        history.  The fused map and the duplicate-trip ledger are *not*
        touched — they are state, not telemetry.
        """
        self.registry.reset()
        self.stats.reset()
        self.windows.reset()
        self.freshness.reset()
        if self.analytics is not None:
            self.analytics.reset()
        self.registry.gauge("fingerprint_db_stops").set(len(self.database))

    def publish(self, at_s: float) -> None:
        """Publish the current map (the T = 5 min refresh cycle).

        Each publish tick also refreshes the freshness gauges, exports
        the sliding-window rates, and — when an :class:`AlertEngine` is
        attached — evaluates every SLO rule against the live samples.
        """
        if self._journaling and not self._replaying:
            self._journal({"kind": "publish", "at_s": at_s})
        self.traffic_map.publish(at_s)
        self.freshness.observe_publish(at_s)
        if self.analytics is not None:
            self.analytics.observe_publish(at_s)
        if self._observing:
            self._g_window_trips.set(self.windows.window("trips_received").total(at_s))
            self._g_window_accepted.set(
                self.windows.window("samples_accepted").total(at_s)
            )
            for name, labels, total in self.windows.series(at_s):
                if name == "route_trips" and "route" in labels:
                    self._fam_window_route.labels(labels["route"]).set(total)
            self._g_accept_ratio.set(self.match_accept_ratio())
        if self.alerts is not None:
            self.alerts.evaluate(self.alert_samples(at_s), at_s)

    # -- durable state tier ------------------------------------------------------

    def _journal(self, record: Dict) -> int:
        """Assign the next seq, append to the WAL, bump the watermark.

        The watermark moves *with* the journal write, before the
        mutation runs: a crash in between leaves a journaled-but-
        unapplied record, which is safe because snapshots are only taken
        at quiescent points (so a persisted watermark never exceeds the
        last fully applied record) and recovery replays the tail.
        """
        record["seq"] = self.applied_seq + 1
        self.store.append_wal(record)
        self.applied_seq = record["seq"]
        return self.applied_seq

    def journal_marker(self, kind: str, **payload) -> int:
        """Journal a non-mutating marker record (campaign day bounds).

        Markers ride the same seq stream as trips and publishes, so the
        campaign can reconstruct day structure from the WAL alone.
        Returns the marker's seq (the current watermark when no store
        is attached).
        """
        if not self._journaling:
            return self.applied_seq
        record: Dict = {"kind": kind}
        record.update(payload)
        return self._journal(record)

    def maybe_snapshot(self, force: bool = False) -> bool:
        """Snapshot the full server state at the current watermark.

        Honours the ``store_snapshot_every`` cadence (WAL records since
        the last snapshot) unless ``force`` is set.  Callers must only
        invoke this at *quiescent* points — every journaled record fully
        applied.  The campaign snapshots at day boundaries only: with
        ``workers > 1`` the parallel prepare merges a whole day's worker
        metrics up front, so a mid-day registry snapshot would overcount
        after replay.  Serial-only contexts may force-snapshot anywhere.
        """
        if not self._journaling:
            return False
        pending = self.applied_seq - self._last_snapshot_seq
        if not force and (
            self._snapshot_every <= 0 or pending < self._snapshot_every
        ):
            return False
        self.store.write_snapshot(self.applied_seq, self.state_dict())
        self._last_snapshot_seq = self.applied_seq
        return True

    def state_dict(self) -> Dict:
        """The server's full mutable state as one JSON-ready document."""
        return {
            "v": 1,
            "applied_seq": self.applied_seq,
            "seen_trip_keys": sorted(self._seen_trip_keys),
            "stats": self.stats.as_dict(),
            "traffic_map": self.traffic_map.state_dict(),
            "freshness": self.freshness.state_dict(),
            "windows": self.windows.state_dict(),
            "analytics": (
                self.analytics.state_dict()
                if self.analytics is not None else None
            ),
            "registry": self.registry.as_dict() if self._observing else None,
        }

    def restore_state(self, state: Dict) -> None:
        """Adopt a :meth:`state_dict` snapshot (replaces current state)."""
        version = state.get("v")
        if version != 1:
            raise ValueError(f"unsupported server snapshot version {version!r}")
        self.applied_seq = int(state["applied_seq"])
        self._last_snapshot_seq = self.applied_seq
        self._seen_trip_keys = set(state["seen_trip_keys"])
        if self._observing and state.get("registry") is not None:
            # merge_dict onto a reset registry is an absolute restore;
            # structural gauges are re-derived afterwards.
            self.registry.reset()
            self.registry.merge_dict(state["registry"])
            self.registry.gauge("fingerprint_db_stops").set(len(self.database))
        # Absolute sets are deltas under ServerStats.__setattr__, so this
        # is a no-op where the registry merge already restored the
        # server_* counters and an exact restore on a private registry.
        for name, value in state["stats"].items():
            setattr(self.stats, name, value)
        self.traffic_map.restore_state(state["traffic_map"])
        self.freshness.restore_state(state["freshness"])
        self.windows.restore_state(state["windows"])
        if self.analytics is not None and state.get("analytics") is not None:
            self.analytics.restore_state(state["analytics"])

    def replay_record(self, record: Dict) -> bool:
        """Re-apply one WAL record; returns False below the watermark.

        The seq watermark makes replay exactly idempotent: a record at
        or below ``applied_seq`` is skipped *entirely* (duplicate-upload
        counters included), so any WAL prefix can be replayed any number
        of times and land on the same state.
        """
        seq = int(record["seq"])
        if seq <= self.applied_seq:
            return False
        kind = record.get("kind")
        self._replaying = True
        try:
            if kind == "trip":
                upload = trip_from_dict(record["trip"])
                if upload.trip_key in self._seen_trip_keys:
                    prepared = PreparedTrip.skipped(upload)
                else:
                    prepared = self.prepare_upload(upload)
                self._apply_prepared_inner(prepared, now_s=record.get("now_s"))
            elif kind == "publish":
                self.publish(float(record["at_s"]))
            # Marker kinds mutate nothing server-side; the campaign
            # reads them for day bookkeeping.
        finally:
            self._replaying = False
        self.applied_seq = seq
        if self._observing:
            self._c_replayed.inc()
        return True

    def load_snapshot(self) -> int:
        """Restore the store's latest snapshot; returns the watermark."""
        found = self.store.latest_snapshot()
        if found is not None:
            _seq, payload = found
            self.restore_state(payload)
        return self.applied_seq

    def recover(self) -> int:
        """Load the latest snapshot, replay the WAL tail; returns the
        number of records re-applied."""
        self.load_snapshot()
        replayed = 0
        for record in self.store.wal_records():
            if self.replay_record(record):
                replayed += 1
        return replayed

    def match_accept_ratio(self) -> float:
        """Accepted / received samples over the run (1.0 before any data)."""
        received = self.stats.samples_received
        if not received:
            return 1.0
        accepted = received - (
            self.stats.samples_discarded - self.stats.samples_duplicate
        )
        return accepted / received

    def alert_samples(self, at_s: float) -> List[Sample]:
        """The sample set SLO rules are evaluated against.

        Always includes per-route freshness, the run-wide acceptance
        ratio, pipeline counters, and window totals — even with the
        null registry, so alerting works without full metrics recording.
        """
        samples: List[Sample] = self.freshness.samples(at_s)
        samples.append(("match_accept_ratio", {}, self.match_accept_ratio()))
        samples.extend(
            (f"server_{name}", {}, float(value))
            for name, value in self.stats.as_dict().items()
        )
        for name, labels, total in self.windows.series(at_s):
            samples.append((f"window_{name}", labels, total))
        if self.analytics is not None:
            samples.extend(self.analytics.samples(at_s))
        return samples

    # -- travel-time extraction (§III-D) -------------------------------------------

    def _estimate_legs(
        self, mapped: MappedTrip, report: TripReport
    ) -> Optional[str]:
        """Extract per-segment speeds; returns the trip's dominant route.

        Stats are accumulated locally and written once per trip; the
        registry-backed attribute writes are not free enough for the
        per-leg/per-segment loop.
        """
        legs_rejected = 0
        legs_estimated = 0
        segments_updated = 0
        route_legs: Dict[str, int] = {}
        observing = self._observing
        for prev, cur in zip(mapped.stops, mapped.stops[1:]):
            if prev.station_id == cur.station_id:
                continue                      # duplicate cluster of one stop
            # The "departing point" is the last tap heard at the stop, but
            # doors stay open a little longer — subtract the calibrated
            # dwell tail so the leg time is true running time.
            btt = (
                cur.arrival_s
                - prev.depart_s
                - self.config.traffic_model.dwell_tail_s
            )
            if btt <= 0:
                legs_rejected += 1
                continue
            route_id, segments = self._route_between(
                prev.station_id, cur.station_id
            )
            if not segments:
                legs_rejected += 1
                continue
            total_length = sum(self.network.segment(s).length_m for s in segments)
            bus_speed_kmh = ms_to_kmh(total_length / btt)
            if not (_MIN_BUS_SPEED_KMH <= bus_speed_kmh <= _MAX_BUS_SPEED_KMH):
                legs_rejected += 1
                continue
            legs_estimated += 1
            route_legs[route_id] = route_legs.get(route_id, 0) + 1
            # A missing stop merges adjacent road segments into one leg
            # (§III-D); the running time is split over the spanned
            # segments in proportion to their length, which assumes a
            # uniform speed over the leg.
            leg_segments = 0
            for segment_id in segments:
                segment = self.network.segment(segment_id)
                seg_btt = btt * segment.length_m / total_length
                estimate = self.model.estimate(
                    seg_btt, segment.length_m, segment.free_speed_ms
                )
                self.traffic_map.update(
                    segment_id, estimate.speed_kmh, cur.arrival_s
                )
                leg_segments += 1
                report.estimates.append(
                    (segment_id, estimate.speed_kmh, cur.arrival_s)
                )
            segments_updated += leg_segments
            self.freshness.observe_update(route_id, cur.arrival_s)
            if observing and leg_segments:
                self._fam_route_segments.labels(route_id).inc(leg_segments)
        if legs_rejected:
            self.stats.legs_rejected += legs_rejected
        if legs_estimated:
            self.stats.legs_estimated += legs_estimated
        if segments_updated:
            self.stats.segments_updated += segments_updated
        if not route_legs:
            return None
        # Dominant route: the one explaining the most legs (ties -> id order).
        return max(sorted(route_legs), key=lambda rid: route_legs[rid])

    def _route_between(
        self, x: int, y: int
    ) -> Tuple[Optional[str], List[SegmentId]]:
        """The route and directed segments a bus covers from x to y.

        When several routes serve the pair, the one with the fewest
        intermediate stops is the natural explanation of the leg.
        """
        best: Optional[Tuple[int, str, List[SegmentId]]] = None
        for route in self.route_network.routes:
            from_order = route.station_order(x)
            to_order = route.station_order(y)
            if from_order is None or to_order is None or to_order <= from_order:
                continue
            hops = to_order - from_order
            if best is None or hops < best[0]:
                best = (
                    hops,
                    route.route_id,
                    route.segments_between(from_order, to_order),
                )
        if best is None:
            return None, []
        return best[1], best[2]

    def _segments_between(self, x: int, y: int) -> List[SegmentId]:
        """Back-compat shim: just the segments of :meth:`_route_between`."""
        return self._route_between(x, y)[1]
