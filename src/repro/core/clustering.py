"""Per-bus-stop co-clustering of a trip's cellular samples.

§III-C2: several passengers board at each stop, so each stop yields a
burst of matched samples.  Two samples ``e_i``, ``e_j`` belong to the
same cluster when they are close in time *and* match similarly:

    (t0 − |t_j − t_i|) / t0 + L(e_i, e_j) > ε

with the match-affinity

    L = (s0 − |s_j − s_i|) / s0   if both matched the same stop, else 0

and s0 = 7, t0 = 30 s, ε = 0.6 (Fig. 5 shows accuracy plateaus for
ε ≈ 0.3–1.3).  Each resulting cluster carries a pool of candidate stops
with the paper's per-candidate probability p_k(i) and mean similarity
s̄_k(i) feeding the per-trip sequence mapping.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.config import ClusteringConfig
from repro.core.matching import MatchResult
from repro.obs.metrics import MetricsRegistry, NULL_REGISTRY
from repro.phone.cellular import CellularSample

#: Once the gap from a sample to a cluster's departing point exceeds
#: ``STALE_AFTER_FACTOR * t0`` the Eq. (1) time term alone pushes the
#: affinity below any ε in (0, 2], so the cluster can be skipped without
#: scoring it.  A pure optimisation — the spec-literal oracle in
#: `repro.testkit.oracles` omits it, and differential runs verify that.
STALE_AFTER_FACTOR: float = 2.0


@dataclass(frozen=True)
class MatchedSample:
    """A cellular sample together with its per-sample match outcome."""

    sample: CellularSample
    match: MatchResult

    @property
    def time_s(self) -> float:
        """Capture time of the sample."""
        return self.sample.time_s


@dataclass(frozen=True)
class CandidateStop:
    """One candidate stop of a cluster with the paper's weights."""

    station_id: int
    probability: float          # p_k(i): fraction of samples matching it
    mean_similarity: float      # s̄_k(i): mean score of those samples

    @property
    def weight(self) -> float:
        """The Eq. (2) per-cluster term p·s̄ for this candidate."""
        return self.probability * self.mean_similarity


@dataclass
class SampleCluster:
    """A burst of samples attributed to a single (unknown) bus stop."""

    samples: List[MatchedSample] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.samples)

    @property
    def arrival_s(self) -> float:
        """Earliest sample time: the bus-stop arrival point (Fig. 6)."""
        return min(s.time_s for s in self.samples)

    @property
    def depart_s(self) -> float:
        """Latest sample time: the bus-stop departing point (Fig. 6)."""
        return max(s.time_s for s in self.samples)

    def candidates(self) -> List[CandidateStop]:
        """Candidate stops with p_k(i) and s̄_k(i), best weight first."""
        by_station: Dict[int, List[float]] = {}
        for member in self.samples:
            if member.match.station_id is not None:
                by_station.setdefault(member.match.station_id, []).append(
                    member.match.score
                )
        total = len(self.samples)
        pool = [
            CandidateStop(
                station_id=station_id,
                probability=len(scores) / total,
                mean_similarity=sum(scores) / len(scores),
            )
            for station_id, scores in by_station.items()
        ]
        pool.sort(key=lambda c: (-c.weight, c.station_id))
        return pool


def link_affinity(
    a: MatchedSample, b: MatchedSample, config: ClusteringConfig
) -> float:
    """The paper's pairwise clustering affinity (Eq. 1 left-hand side)."""
    time_term = (config.max_interval_s - abs(b.time_s - a.time_s)) / config.max_interval_s
    if (
        a.match.station_id is not None
        and a.match.station_id == b.match.station_id
    ):
        match_term = (
            config.max_similarity - abs(b.match.score - a.match.score)
        ) / config.max_similarity
    else:
        match_term = 0.0
    return time_term + match_term


def cluster_trip_samples(
    matched: Sequence[MatchedSample],
    config: Optional[ClusteringConfig] = None,
    registry: Optional[MetricsRegistry] = None,
) -> List[SampleCluster]:
    """Cluster a trip's accepted samples into per-stop bursts.

    Rejected samples (below the γ threshold) must already be filtered
    out by the caller.  Samples are processed in time order; each joins
    the best-affinity open cluster when the affinity clears ε, else it
    opens a new cluster.  Clusters are returned in time order.

    ``registry`` (optional) receives ``clustering_*`` counters and a
    cluster-size histogram.
    """
    config = config or ClusteringConfig()
    ordered = sorted(matched, key=lambda m: m.time_s)
    clusters: List[SampleCluster] = []
    for member in ordered:
        best_cluster: Optional[SampleCluster] = None
        best_affinity = config.threshold
        # Only recent clusters can absorb the sample (STALE_AFTER_FACTOR).
        # Stale clusters are skipped, not used to end the scan: depart_s is
        # NOT monotone over the clusters list — an older cluster that
        # absorbed a late sample can depart after a newer one — so a stale
        # cluster may sit in front of a still-eligible one.
        for cluster in reversed(clusters):
            if member.time_s - cluster.depart_s > STALE_AFTER_FACTOR * config.max_interval_s:
                continue
            affinity = max(
                link_affinity(existing, member, config)
                for existing in cluster.samples
            )
            if affinity > best_affinity:
                best_affinity = affinity
                best_cluster = cluster
        if best_cluster is None:
            clusters.append(SampleCluster(samples=[member]))
        else:
            best_cluster.samples.append(member)
    reg = registry if registry is not None else NULL_REGISTRY
    reg.counter(
        "clustering_samples_total", help="matched samples clustered"
    ).inc(len(ordered))
    reg.counter(
        "clustering_clusters_total", help="per-stop clusters formed"
    ).inc(len(clusters))
    size_hist = reg.histogram(
        "clustering_cluster_size",
        buckets=(1, 2, 3, 5, 8, 13, 21),
        help="samples per formed cluster",
    )
    for cluster in clusters:
        size_hist.observe(len(cluster))
    return clusters
