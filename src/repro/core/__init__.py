"""The paper's contribution: the backend traffic-monitoring pipeline."""

from repro.core.clustering import (
    CandidateStop,
    MatchedSample,
    SampleCluster,
    cluster_trip_samples,
    link_affinity,
)
from repro.core.arrival import (
    ArrivalPrediction,
    ArrivalPredictor,
    expected_dwell_s,
    infer_route,
)
from repro.core.bootstrap import BootstrapStats, DatabaseBootstrapper
from repro.core.fingerprint import FingerprintDatabase, StoredFingerprint
from repro.core.fusion import BayesianSpeedFuser, FusedSpeed
from repro.core.ingest import IngestEngine, PreparedTrip, prepare_trip
from repro.core.match_index import (
    CachedMatch,
    MatchCache,
    MatchIndex,
    canonical_key,
)
from repro.core.matching import (
    MatchResult,
    SampleMatcher,
    batch_smith_waterman,
    common_id_count,
    smith_waterman,
)
from repro.core.region import RegionEstimate, infer_region_speeds, segment_adjacency
from repro.core.server import BackendServer, ServerStats, TripReport
from repro.core.traffic_map import (
    SegmentReading,
    SpeedLevel,
    TrafficMapEstimator,
    TrafficSnapshot,
    speed_level,
)
from repro.core.traffic_model import SpeedEstimate, TrafficModel, fit_b
from repro.core.trip_mapping import (
    MappedStop,
    MappedTrip,
    RouteConstraint,
    enumerate_best_sequence,
    map_trip,
)

__all__ = [
    "CandidateStop",
    "MatchedSample",
    "SampleCluster",
    "cluster_trip_samples",
    "link_affinity",
    "ArrivalPrediction",
    "ArrivalPredictor",
    "expected_dwell_s",
    "infer_route",
    "BootstrapStats",
    "DatabaseBootstrapper",
    "FingerprintDatabase",
    "StoredFingerprint",
    "BayesianSpeedFuser",
    "FusedSpeed",
    "IngestEngine",
    "PreparedTrip",
    "prepare_trip",
    "CachedMatch",
    "MatchCache",
    "MatchIndex",
    "canonical_key",
    "MatchResult",
    "SampleMatcher",
    "batch_smith_waterman",
    "common_id_count",
    "smith_waterman",
    "RegionEstimate",
    "infer_region_speeds",
    "segment_adjacency",
    "BackendServer",
    "ServerStats",
    "TripReport",
    "SegmentReading",
    "SpeedLevel",
    "TrafficMapEstimator",
    "TrafficSnapshot",
    "speed_level",
    "SpeedEstimate",
    "TrafficModel",
    "fit_b",
    "MappedStop",
    "MappedTrip",
    "RouteConstraint",
    "enumerate_best_sequence",
    "map_trip",
]
