"""The live city traffic map assembled from fused segment speeds.

Speeds are reported in the paper's five Fig. 9 display levels and the
map keeps a history of published snapshots (one per T = 5 min update
period), which is what consumers like the Fig. 10 comparison read.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from enum import IntEnum
from typing import Dict, List, Optional, Sequence, Tuple

from repro.city.road_network import RoadNetwork, SegmentId
from repro.config import FusionConfig
from repro.core.fusion import BayesianSpeedFuser, FusedSpeed
from repro.obs.metrics import MetricsRegistry, NULL_REGISTRY
from repro.obs.tracing import NULL_TRACER


class SpeedLevel(IntEnum):
    """Fig. 9's five display levels (km/h bands)."""

    VERY_SLOW = 1       # < 20
    SLOW = 2            # 20–30
    MODERATE = 3        # 30–40
    NORMAL = 4          # 40–50
    FAST = 5            # > 50


def speed_level(speed_kmh: float) -> SpeedLevel:
    """Map a speed to its Fig. 9 display level."""
    if speed_kmh < 20.0:
        return SpeedLevel.VERY_SLOW
    if speed_kmh < 30.0:
        return SpeedLevel.SLOW
    if speed_kmh < 40.0:
        return SpeedLevel.MODERATE
    if speed_kmh < 50.0:
        return SpeedLevel.NORMAL
    return SpeedLevel.FAST


@dataclass(frozen=True)
class SegmentReading:
    """One segment's state in a snapshot."""

    segment_id: SegmentId
    speed_kmh: float
    sigma_kmh: float
    level: SpeedLevel
    age_s: float


@dataclass
class TrafficSnapshot:
    """The traffic map at one instant."""

    at_s: float
    readings: Dict[SegmentId, SegmentReading]
    total_segments: int

    @property
    def coverage(self) -> float:
        """Fraction of directed road segments with a fresh estimate."""
        return len(self.readings) / self.total_segments if self.total_segments else 0.0

    def level_histogram(self) -> Dict[SpeedLevel, int]:
        """Count of segments per display level."""
        histogram = {level: 0 for level in SpeedLevel}
        for reading in self.readings.values():
            histogram[reading.level] += 1
        return histogram

    def mean_speed_kmh(self) -> float:
        """Unweighted mean over covered segments."""
        if not self.readings:
            return 0.0
        return sum(r.speed_kmh for r in self.readings.values()) / len(self.readings)


class TrafficMapEstimator:
    """Fuses speed observations and serves snapshots + a published history."""

    def __init__(
        self,
        network: RoadNetwork,
        config: Optional[FusionConfig] = None,
        max_age_s: float = 3600.0,
        *,
        registry: Optional[MetricsRegistry] = None,
        tracer=None,
    ):
        self.network = network
        self.config = config or FusionConfig()
        self.max_age_s = max_age_s
        self.tracer = tracer if tracer is not None else NULL_TRACER
        reg = registry if registry is not None else NULL_REGISTRY
        self._m_updates = reg.counter(
            "map_updates_total", help="speed observations fused into the map"
        )
        self._m_publishes = reg.counter(
            "map_publishes_total", help="published T=5min map frames"
        )
        self._g_covered = reg.gauge(
            "map_covered_segments", help="segments in the latest published frame"
        )
        self.fuser = BayesianSpeedFuser(self.config)
        # Published frames: (publish time, {segment: (mean, sigma, last update)}).
        self._history: List[
            Tuple[float, Dict[SegmentId, Tuple[float, float, float]]]
        ] = []

    # -- ingest -----------------------------------------------------------------

    def update(
        self,
        segment_id: SegmentId,
        speed_kmh: float,
        t: float,
        sigma_kmh: Optional[float] = None,
    ) -> FusedSpeed:
        """Fold one automobile-speed observation into the map."""
        if not self.network.has_segment(segment_id):
            raise KeyError(f"unknown segment {segment_id}")
        self._m_updates.inc()
        return self.fuser.update(segment_id, speed_kmh, t, sigma_kmh)

    # -- queries ----------------------------------------------------------------

    def segment_estimate(
        self, segment_id: SegmentId, t: Optional[float] = None
    ) -> Optional[FusedSpeed]:
        """Current fused belief for a segment (staleness-inflated at ``t``)."""
        return self.fuser.current(segment_id, t)

    def snapshot(self, at_s: float) -> TrafficSnapshot:
        """The map right now: every segment with a non-stale estimate."""
        readings: Dict[SegmentId, SegmentReading] = {}
        for segment_id in self.fuser.keys:
            belief = self.fuser.current(segment_id, at_s)
            age = at_s - belief.last_update_s
            if age > self.max_age_s or age < 0:
                continue
            readings[segment_id] = SegmentReading(
                segment_id=segment_id,
                speed_kmh=belief.mean_kmh,
                sigma_kmh=belief.sigma_kmh,
                level=speed_level(belief.mean_kmh),
                age_s=age,
            )
        return TrafficSnapshot(
            at_s=at_s,
            readings=readings,
            total_segments=len(self.network.segment_ids),
        )

    # -- published history (the T = 5 min feed) ---------------------------------

    def publish(self, at_s: float) -> None:
        """Freeze the current estimates as the published map for ``at_s``."""
        if self._history and at_s <= self._history[-1][0]:
            raise ValueError("publish times must be strictly increasing")
        with self.tracer.span("publish"):
            frame: Dict[SegmentId, Tuple[float, float, float]] = {}
            for segment_id in self.fuser.keys:
                belief = self.fuser.current(segment_id, at_s)
                if 0.0 <= at_s - belief.last_update_s <= self.max_age_s:
                    frame[segment_id] = (
                        belief.mean_kmh,
                        belief.sigma_kmh,
                        belief.last_update_s,
                    )
            self._history.append((at_s, frame))
            self._m_publishes.inc()
            self._g_covered.set(len(frame))

    @property
    def publish_times(self) -> List[float]:
        """Times of all published frames."""
        return [t for t, _ in self._history]

    def published_freshness(self, at_s: float) -> Dict[SegmentId, float]:
        """Per-segment staleness (seconds since last fused observation).

        Read from the latest frame published at or before ``at_s`` — the
        consumer-visible map — so a segment's age keeps growing between
        rides even though its fused belief is unchanged.  Segments absent
        from the frame (never updated, or stale beyond ``max_age_s`` at
        publish time) are omitted.
        """
        frame = self._frame_at(at_s)
        if frame is None:
            return {}
        return {
            segment_id: max(0.0, at_s - last_update)
            for segment_id, (_, _, last_update) in frame[1].items()
        }

    def published_speed(
        self, segment_id: SegmentId, t: float
    ) -> Optional[float]:
        """Speed from the latest frame published at or before ``t``."""
        frame = self._frame_at(t)
        if frame is None:
            return None
        entry = frame[1].get(segment_id)
        return entry[0] if entry else None

    def published_snapshot(self, t: float) -> TrafficSnapshot:
        """The map *as it was published* at time ``t`` (historical view).

        Unlike :meth:`snapshot` — which reads the live fused beliefs and
        is only meaningful for "now" — this reconstructs the frame a
        consumer saw at ``t`` during the campaign (Fig. 9's snapshots).
        """
        frame = self._frame_at(t)
        readings: Dict[SegmentId, SegmentReading] = {}
        if frame is not None:
            publish_time, entries = frame
            for segment_id, (mean, sigma, last_update) in entries.items():
                readings[segment_id] = SegmentReading(
                    segment_id=segment_id,
                    speed_kmh=mean,
                    sigma_kmh=sigma,
                    level=speed_level(mean),
                    age_s=publish_time - last_update,
                )
        return TrafficSnapshot(
            at_s=t,
            readings=readings,
            total_segments=len(self.network.segment_ids),
        )

    # -- durable-state codec -----------------------------------------------------

    def state_dict(self) -> Dict:
        """JSON-ready fused beliefs + published history (segment-id
        tuples ride as lists)."""
        return {
            "fuser": self.fuser.state_dict(),
            "history": [
                [
                    at_s,
                    [
                        [list(segment_id), mean, sigma, last_update]
                        for segment_id, (mean, sigma, last_update)
                        in sorted(frame.items())
                    ],
                ]
                for at_s, frame in self._history
            ],
        }

    def restore_state(self, state: Dict) -> None:
        """Adopt beliefs and published history from :meth:`state_dict`."""
        self.fuser.restore_state(state["fuser"])
        self._history = [
            (
                float(at_s),
                {
                    tuple(segment_id): (
                        float(mean), float(sigma), float(last_update)
                    )
                    for segment_id, mean, sigma, last_update in entries
                },
            )
            for at_s, entries in state["history"]
        ]

    def _frame_at(
        self, t: float
    ) -> Optional[Tuple[float, Dict[SegmentId, Tuple[float, float, float]]]]:
        times = [entry[0] for entry in self._history]
        idx = bisect.bisect_right(times, t) - 1
        if idx < 0:
            return None
        return self._history[idx]
