"""Region-wide traffic inference from bus-covered segments.

The paper's future work (§VI): "deriving the overall traffic of a
region from the bus covered road segments", citing transportation
models that extrapolate sparse probes.  We implement the standard
graph-smoothing approach: traffic states of adjacent road segments are
correlated, so uncovered segments take the congestion level diffused
from observed neighbours.

Smoothing operates on the *congestion factor* (speed / free speed), not
the raw speed, so major and minor roads mix sensibly; observed segments
stay pinned to their observations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Set, Tuple

from repro.city.road_network import RoadNetwork, SegmentId
from repro.util.units import kmh_to_ms, ms_to_kmh


@dataclass(frozen=True)
class RegionEstimate:
    """Inferred speed of one segment with its provenance."""

    segment_id: SegmentId
    speed_kmh: float
    observed: bool
    hops_from_observed: int     # 0 when observed directly


def segment_adjacency(network: RoadNetwork) -> Dict[SegmentId, List[SegmentId]]:
    """Directed segments adjacent through a shared endpoint.

    A segment (u, v) is coupled to continuations (v, w), feeders (w, u),
    and its own reverse carriageway (weakly, congestion is often
    directional — the reverse is still included because it shares the
    physical road environment).
    """
    by_node: Dict[int, List[SegmentId]] = {}
    for segment_id in network.segment_ids:
        u, v = segment_id
        by_node.setdefault(u, []).append(segment_id)
        by_node.setdefault(v, []).append(segment_id)
    adjacency: Dict[SegmentId, List[SegmentId]] = {}
    for segment_id in network.segment_ids:
        u, v = segment_id
        neighbours: Set[SegmentId] = set()
        for node in (u, v):
            neighbours.update(by_node.get(node, ()))
        neighbours.discard(segment_id)
        adjacency[segment_id] = sorted(neighbours)
    return adjacency


def infer_region_speeds(
    network: RoadNetwork,
    observed_kmh: Mapping[SegmentId, float],
    iterations: int = 60,
    default_congestion: float = 0.85,
) -> Dict[SegmentId, RegionEstimate]:
    """Extend observed segment speeds to the whole network.

    Jacobi diffusion of congestion factors over the segment adjacency
    graph, with observed segments held fixed.  ``default_congestion``
    seeds components with no observation at a typical daytime level.
    """
    if iterations < 1:
        raise ValueError("iterations must be >= 1")
    adjacency = segment_adjacency(network)

    observed_factor: Dict[SegmentId, float] = {}
    for segment_id, speed_kmh in observed_kmh.items():
        segment = network.segment(segment_id)
        factor = kmh_to_ms(speed_kmh) / segment.free_speed_ms
        observed_factor[segment_id] = min(max(factor, 0.05), 1.2)

    hops = _hops_from_observed(adjacency, set(observed_factor))

    factors: Dict[SegmentId, float] = {
        seg: observed_factor.get(seg, default_congestion)
        for seg in network.segment_ids
    }
    unknown = [seg for seg in network.segment_ids if seg not in observed_factor]
    for _ in range(iterations):
        updates: Dict[SegmentId, float] = {}
        for seg in unknown:
            neighbours = adjacency[seg]
            if not neighbours:
                continue
            updates[seg] = sum(factors[n] for n in neighbours) / len(neighbours)
        factors.update(updates)

    estimates: Dict[SegmentId, RegionEstimate] = {}
    for segment_id in network.segment_ids:
        segment = network.segment(segment_id)
        estimates[segment_id] = RegionEstimate(
            segment_id=segment_id,
            speed_kmh=ms_to_kmh(factors[segment_id] * segment.free_speed_ms),
            observed=segment_id in observed_factor,
            hops_from_observed=hops.get(segment_id, -1),
        )
    return estimates


def _hops_from_observed(
    adjacency: Mapping[SegmentId, List[SegmentId]],
    observed: Set[SegmentId],
) -> Dict[SegmentId, int]:
    """BFS distance of every segment from the observed set."""
    from collections import deque

    hops = {seg: 0 for seg in observed}
    queue = deque(observed)
    while queue:
        seg = queue.popleft()
        for neighbour in adjacency.get(seg, ()):
            if neighbour not in hops:
                hops[neighbour] = hops[seg] + 1
                queue.append(neighbour)
    return hops
