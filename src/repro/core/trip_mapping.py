"""Per-trip mapping: route-constrained sequence estimation (§III-C3).

Given a trip's time-ordered sample clusters, each with a pool of
candidate stops, find the stop sequence that maximises the paper's
Eq. (2):

    S* = argmax  p₁s̄₁ + Σ_{k≥2} p_k s̄_k · R(b_{k−1}, b_k)

where R encodes the bus-route order constraint: buses only visit stops
downstream of where they already are.  The paper describes enumerating
all N = Π B_k sequences; because the objective decomposes over
consecutive pairs, a Viterbi-style dynamic program finds the same
argmax in O(Σ B_k²) — the exponential enumeration is unnecessary (and
is used in tests as the oracle to verify the DP).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.city.routes import RouteNetwork
from repro.config import TripMappingConfig
from repro.core.clustering import CandidateStop, SampleCluster
from repro.obs.metrics import MetricsRegistry, NULL_REGISTRY

#: A chosen candidate contributing no more than this to Eq. (2) is treated
#: as routed-around and dropped from the mapped trip.  Shared with the
#: spec-literal oracle (`repro.testkit.oracles`) so both sides apply the
#: identical drop rule.
DROP_EPSILON: float = 1e-9


@dataclass(frozen=True)
class MappedStop:
    """One cluster resolved to a stop, with its timing."""

    station_id: int
    arrival_s: float
    depart_s: float
    cluster_size: int
    weight: float               # the Eq. (2) term this choice contributed


@dataclass
class MappedTrip:
    """The trajectory of one uploaded trip, mapped onto bus stops."""

    stops: List[MappedStop]
    score: float

    def station_sequence(self) -> List[int]:
        """Resolved stations in travel order."""
        return [s.station_id for s in self.stops]


class RouteConstraint:
    """The paper's R(x, y) relation over the route network."""

    def __init__(
        self,
        route_network: RouteNetwork,
        config: Optional[TripMappingConfig] = None,
    ):
        self.routes = route_network
        self.config = config or TripMappingConfig()

    def weight(self, x: int, y: int) -> float:
        """R(x, y): order-feasibility weight of visiting y right after x."""
        if x == y:
            return self.config.same_stop_weight
        if self.routes.downstream(x, y):
            return self.config.downstream_weight
        if self.config.allow_transfers and self.routes.reachable_with_transfer(x, y):
            return self.config.downstream_weight
        return 0.0


def map_trip(
    clusters: Sequence[SampleCluster],
    constraint: RouteConstraint,
    min_weight: float = DROP_EPSILON,
    registry: Optional[MetricsRegistry] = None,
) -> Optional[MappedTrip]:
    """Resolve each cluster to its most likely stop under route constraints.

    Returns None when no cluster has any candidate (nothing matched).
    Clusters whose chosen candidate contributes (numerically) zero weight
    — i.e. the best sequence routes "around" them — are dropped from the
    result rather than mapped arbitrarily.

    ``registry`` (optional) receives ``trip_mapping_*`` counters and a
    per-cluster candidate-pool histogram.
    """
    reg = registry if registry is not None else NULL_REGISTRY
    reg.counter("trip_mapping_attempts", help="trips offered for mapping").inc()
    pools: List[List[CandidateStop]] = [c.candidates() for c in clusters]
    pool_hist = reg.histogram(
        "trip_mapping_candidates_per_cluster",
        buckets=(0, 1, 2, 3, 5, 8),
        help="candidate stops per cluster",
    )
    for pool in pools:
        pool_hist.observe(len(pool))
    kept_indices = [i for i, pool in enumerate(pools) if pool]
    if not kept_indices:
        reg.counter(
            "trip_mapping_unmapped", help="trips with no mappable cluster"
        ).inc()
        return None
    kept_pools = [pools[i] for i in kept_indices]

    # Viterbi over candidate pools: score[k][i] = best achievable sum of
    # Eq. (2) terms for clusters 0..k ending with candidate i.
    scores: List[List[float]] = []
    backptr: List[List[int]] = []
    first = [candidate.weight for candidate in kept_pools[0]]
    scores.append(first)
    backptr.append([-1] * len(first))
    for k in range(1, len(kept_pools)):
        row: List[float] = []
        back: List[int] = []
        for candidate in kept_pools[k]:
            best_prev = 0
            best_value = -1.0
            for j, prev in enumerate(kept_pools[k - 1]):
                value = scores[k - 1][j] + candidate.weight * constraint.weight(
                    prev.station_id, candidate.station_id
                )
                if value > best_value:
                    best_value = value
                    best_prev = j
            row.append(best_value)
            back.append(best_prev)
        scores.append(row)
        backptr.append(back)

    # Backtrack from the best final candidate.
    last = max(range(len(scores[-1])), key=lambda i: scores[-1][i])
    choice = [0] * len(kept_pools)
    choice[-1] = last
    for k in range(len(kept_pools) - 1, 0, -1):
        choice[k - 1] = backptr[k][choice[k]]

    stops: List[MappedStop] = []
    for position, (pool_index, cluster_index) in enumerate(
        zip(choice, kept_indices)
    ):
        candidate = kept_pools[position][pool_index]
        cluster = clusters[cluster_index]
        if position > 0:
            prev_candidate = kept_pools[position - 1][choice[position - 1]]
            contributed = candidate.weight * constraint.weight(
                prev_candidate.station_id, candidate.station_id
            )
        else:
            contributed = candidate.weight
        if position > 0 and contributed <= min_weight:
            # The constraint zeroed this cluster out: it is inconsistent
            # with the surrounding trajectory (a stray mismatch).
            continue
        stops.append(
            MappedStop(
                station_id=candidate.station_id,
                arrival_s=cluster.arrival_s,
                depart_s=cluster.depart_s,
                cluster_size=len(cluster),
                weight=contributed,
            )
        )
    if not stops:
        reg.counter(
            "trip_mapping_unmapped", help="trips with no mappable cluster"
        ).inc()
        return None
    reg.counter("trip_mapping_mapped", help="trips successfully mapped").inc()
    return MappedTrip(stops=stops, score=float(scores[-1][last]))


def enumerate_best_sequence(
    clusters: Sequence[SampleCluster],
    constraint: RouteConstraint,
) -> Tuple[List[int], float]:
    """Brute-force Eq. (2) maximiser (the paper's description).

    Exponential in the number of clusters — used as a test oracle for
    :func:`map_trip` on small instances.
    """
    import itertools

    pools = [c.candidates() for c in clusters if c.candidates()]
    if not pools:
        return [], 0.0
    best_seq: List[int] = []
    best_score = -1.0
    for combo in itertools.product(*pools):
        score = combo[0].weight
        for prev, cur in zip(combo, combo[1:]):
            score += cur.weight * constraint.weight(prev.station_id, cur.station_id)
        if score > best_score:
            best_score = score
            best_seq = [c.station_id for c in combo]
    return best_seq, float(best_score)
