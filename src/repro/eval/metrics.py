"""Statistical helpers shared by the evaluation benches: CDFs, errors."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class Cdf:
    """An empirical cumulative distribution."""

    values: np.ndarray          # sorted

    @classmethod
    def of(cls, samples: Iterable[float]) -> "Cdf":
        """Build from raw samples."""
        values = np.sort(np.asarray(list(samples), dtype=float))
        if values.size == 0:
            raise ValueError("cannot build a CDF from no samples")
        return cls(values=values)

    def fraction_below(self, x: float) -> float:
        """P(X <= x)."""
        return float(np.searchsorted(self.values, x, side="right")) / self.values.size

    def percentile(self, q: float) -> float:
        """Value at percentile ``q`` in [0, 100]."""
        if not 0 <= q <= 100:
            raise ValueError("q must be in [0, 100]")
        return float(np.percentile(self.values, q))

    @property
    def median(self) -> float:
        """50th percentile."""
        return self.percentile(50.0)

    def series(self, points: int = 50) -> List[Tuple[float, float]]:
        """(value, cumulative fraction) pairs for plotting/printing."""
        if points < 2:
            raise ValueError("need at least two points")
        qs = np.linspace(0.0, 100.0, points)
        return [(float(np.percentile(self.values, q)), q / 100.0) for q in qs]


def mean_absolute_error(a: Sequence[float], b: Sequence[float]) -> float:
    """MAE between paired sequences."""
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    if a.shape != b.shape:
        raise ValueError("sequences must pair up")
    if a.size == 0:
        raise ValueError("empty sequences")
    return float(np.mean(np.abs(a - b)))


def root_mean_square_error(a: Sequence[float], b: Sequence[float]) -> float:
    """RMSE between paired sequences."""
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    if a.shape != b.shape:
        raise ValueError("sequences must pair up")
    if a.size == 0:
        raise ValueError("empty sequences")
    return float(np.sqrt(np.mean((a - b) ** 2)))


def pearson_correlation(a: Sequence[float], b: Sequence[float]) -> float:
    """Pearson r between paired sequences (tracks 'follows the variation')."""
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    if a.shape != b.shape or a.size < 2:
        raise ValueError("need two equal-length sequences of >= 2 points")
    if np.std(a) == 0 or np.std(b) == 0:
        raise ValueError("correlation undefined for a constant sequence")
    return float(np.corrcoef(a, b)[0, 1])
