"""Evaluation utilities: metrics, official-feed comparison, baselines."""

from repro.eval.comparison import (
    SeriesPoint,
    SpeedDifferenceStudy,
    collect_speed_differences,
    segment_time_series,
)
from repro.eval.figures import ascii_cdf, ascii_chart
from repro.eval.google_maps import GoogleMapsIndicator, IndicatorLevel
from repro.eval.metrics import (
    Cdf,
    mean_absolute_error,
    pearson_correlation,
    root_mean_square_error,
)
from repro.eval.reporting import render_cdf_series, render_comparison, render_table

__all__ = [
    "SeriesPoint",
    "SpeedDifferenceStudy",
    "collect_speed_differences",
    "segment_time_series",
    "ascii_cdf",
    "ascii_chart",
    "GoogleMapsIndicator",
    "IndicatorLevel",
    "Cdf",
    "mean_absolute_error",
    "pearson_correlation",
    "root_mean_square_error",
    "render_cdf_series",
    "render_comparison",
    "render_table",
]
