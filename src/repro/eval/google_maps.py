"""A Google-Maps-style coarse traffic indicator (the Fig. 10 baseline).

The paper contrasts its fine-grained speed estimates against the rough
4-level indicator ("very slow / slow / normal / fast") a consumer map
shows: levels only, slow refresh, and partial road coverage (Fig. 9(c)
shows the baseline covering far fewer roads in the study area).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum
from typing import Dict, Optional, Sequence, Set

from repro.city.road_network import RoadClass, RoadNetwork, SegmentId
from repro.config import GoogleMapsConfig
from repro.sim.traffic import TrafficField
from repro.util.rng import SeedLike, ensure_rng
from repro.util.units import ms_to_kmh


class IndicatorLevel(IntEnum):
    """The four consumer-map traffic levels."""

    VERY_SLOW = 1
    SLOW = 2
    NORMAL = 3
    FAST = 4


class GoogleMapsIndicator:
    """Coarse, slowly refreshing, partially covering traffic levels."""

    def __init__(
        self,
        network: RoadNetwork,
        traffic: TrafficField,
        config: Optional[GoogleMapsConfig] = None,
        seed: SeedLike = None,
    ):
        self.network = network
        self.traffic = traffic
        self.config = config or GoogleMapsConfig()
        self._covered = self._pick_covered(ensure_rng(seed))

    def _pick_covered(self, rng) -> Set[SegmentId]:
        """Major roads first, then random minors up to the coverage budget."""
        segments = self.network.segments
        budget = int(round(self.config.coverage_fraction * len(segments)))
        majors = [s.segment_id for s in segments if s.road_class is RoadClass.MAJOR]
        minors = [s.segment_id for s in segments if s.road_class is not RoadClass.MAJOR]
        covered = set(majors[:budget])
        remaining = budget - len(covered)
        if remaining > 0 and minors:
            extra = rng.choice(len(minors), size=min(remaining, len(minors)), replace=False)
            covered.update(minors[i] for i in extra)
        return covered

    @property
    def covered_segments(self) -> Set[SegmentId]:
        """Segments the indicator reports at all."""
        return set(self._covered)

    @property
    def coverage(self) -> float:
        """Fraction of directed segments with any indicator data."""
        total = len(self.network.segment_ids)
        return len(self._covered) / total if total else 0.0

    def level_for_speed(self, speed_kmh: float) -> IndicatorLevel:
        """Quantise a speed into the 4 consumer levels."""
        low, mid, high = self.config.level_bounds_kmh
        if speed_kmh < low:
            return IndicatorLevel.VERY_SLOW
        if speed_kmh < mid:
            return IndicatorLevel.SLOW
        if speed_kmh < high:
            return IndicatorLevel.NORMAL
        return IndicatorLevel.FAST

    def level(self, segment_id: SegmentId, t: float) -> Optional[IndicatorLevel]:
        """The displayed level at time ``t`` (None off-coverage).

        The display refreshes only every ``update_period_s``: the level
        reflects the speed at the *last refresh*, which is what makes
        the baseline insensitive to instant variation (Fig. 10).
        """
        if segment_id not in self._covered:
            return None
        refresh_t = (t // self.config.update_period_s) * self.config.update_period_s
        speed_kmh = ms_to_kmh(self.traffic.car_speed_ms(segment_id, refresh_t))
        return self.level_for_speed(speed_kmh)
