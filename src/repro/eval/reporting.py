"""Plain-text rendering of the benches' tables and figure series.

Benchmarks print the same rows/series the paper reports; these helpers
keep that output consistent and readable in captured pytest output.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Fixed-width table with a rule under the header."""
    materialised: List[List[str]] = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialised:
        if len(row) != len(headers):
            raise ValueError("row width does not match headers")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in materialised:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_cdf_series(
    series: Sequence[Tuple[float, float]],
    value_label: str = "value",
    points: Sequence[float] = (0.1, 0.25, 0.5, 0.75, 0.9, 0.95),
) -> str:
    """Compact CDF rendering at standard quantiles."""
    if not series:
        raise ValueError("empty series")
    lines = [f"{'fraction':>9}  {value_label}"]
    for target in points:
        best = min(series, key=lambda pair: abs(pair[1] - target))
        lines.append(f"{best[1]:9.2f}  {best[0]:.2f}")
    return "\n".join(lines)


def render_comparison(
    label: str, paper_value: object, measured_value: object
) -> str:
    """One 'paper vs measured' line for EXPERIMENTS.md-style records."""
    return f"{label}: paper={_fmt(paper_value)}  measured={_fmt(measured_value)}"


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.2f}"
    return str(cell)
