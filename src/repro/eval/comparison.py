"""Comparison of the system's estimates against the official taxi feed.

Implements the paper's §IV-C evaluation protocol:

* **Fig. 10** — per-segment time series of v_A (our estimate), v_T
  (official taxi speed) and the Google-style level over a day, in
  15-minute windows.
* **Fig. 11** — the Δv = |v_T − v_A| distribution split into the
  paper's three speed classes (low < 40, medium 40–50, high > 50 km/h,
  classed by v_A).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.city.road_network import SegmentId
from repro.core.traffic_map import TrafficMapEstimator
from repro.eval.google_maps import GoogleMapsIndicator, IndicatorLevel
from repro.eval.metrics import Cdf
from repro.sim.taxi import OfficialTrafficFeed


@dataclass(frozen=True)
class SeriesPoint:
    """One window of the Fig. 10 time series."""

    time_s: float
    estimated_kmh: Optional[float]      # v_A
    official_kmh: Optional[float]       # v_T
    google_level: Optional[IndicatorLevel]


def segment_time_series(
    segment_id: SegmentId,
    traffic_map: TrafficMapEstimator,
    official: OfficialTrafficFeed,
    start_s: float,
    end_s: float,
    window_s: float = 900.0,
    google: Optional[GoogleMapsIndicator] = None,
) -> List[SeriesPoint]:
    """The Fig. 10 series for one segment over ``[start_s, end_s)``."""
    if end_s <= start_s:
        raise ValueError("end must be after start")
    points: List[SeriesPoint] = []
    t = start_s
    while t < end_s:
        mid = t + window_s / 2.0
        points.append(
            SeriesPoint(
                time_s=mid,
                estimated_kmh=traffic_map.published_speed(segment_id, mid),
                official_kmh=official.speed_kmh(segment_id, mid),
                google_level=google.level(segment_id, mid) if google else None,
            )
        )
        t += window_s
    return points


#: Fig. 11 speed-class boundaries on v_A (km/h).
LOW_SPEED_MAX_KMH = 40.0
HIGH_SPEED_MIN_KMH = 50.0


@dataclass
class SpeedDifferenceStudy:
    """The Δv populations of Fig. 11, split by v_A speed class."""

    low: List[float] = field(default_factory=list)
    medium: List[float] = field(default_factory=list)
    high: List[float] = field(default_factory=list)

    def add(self, estimated_kmh: float, official_kmh: float) -> None:
        """Record one comparable (v_A, v_T) window."""
        delta = abs(official_kmh - estimated_kmh)
        if estimated_kmh < LOW_SPEED_MAX_KMH:
            self.low.append(delta)
        elif estimated_kmh > HIGH_SPEED_MIN_KMH:
            self.high.append(delta)
        else:
            self.medium.append(delta)

    @property
    def total(self) -> int:
        """Total comparable windows."""
        return len(self.low) + len(self.medium) + len(self.high)

    def cdfs(self) -> Dict[str, Cdf]:
        """Δv CDFs per class (classes with no data are omitted)."""
        out: Dict[str, Cdf] = {}
        for name, values in (("low", self.low), ("medium", self.medium), ("high", self.high)):
            if values:
                out[name] = Cdf.of(values)
        return out

    def median_by_class(self) -> Dict[str, float]:
        """Median Δv per class."""
        return {name: cdf.median for name, cdf in self.cdfs().items()}


def collect_speed_differences(
    segment_ids: Sequence[SegmentId],
    traffic_map: TrafficMapEstimator,
    official: OfficialTrafficFeed,
    start_s: float,
    end_s: float,
    window_s: float = 900.0,
) -> SpeedDifferenceStudy:
    """Scan all segments and windows where both v_A and v_T exist (Fig. 11)."""
    study = SpeedDifferenceStudy()
    for segment_id in segment_ids:
        t = start_s
        while t < end_s:
            mid = t + window_s / 2.0
            estimated = traffic_map.published_speed(segment_id, mid)
            official_kmh = official.speed_kmh(segment_id, mid)
            if estimated is not None and official_kmh is not None:
                study.add(estimated, official_kmh)
            t += window_s
    return study
