"""ASCII figure rendering: the paper's plots, in a terminal.

The benches print tables of the series they regenerate; these helpers
additionally draw them — a CDF curve (Figs. 1, 2, 11) or an x/y line
chart with multiple series (Fig. 10) — so the *shape* comparisons the
paper makes visually can be eyeballed straight from the bench output.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.eval.metrics import Cdf

#: Glyphs assigned to successive series in a chart.
_GLYPHS = "*o+x#@"


def ascii_chart(
    series: Dict[str, Sequence[Tuple[float, float]]],
    width: int = 64,
    height: int = 16,
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """Plot one or more (x, y) series as an ASCII chart.

    Points are snapped to a ``width``×``height`` character grid; each
    series gets its own glyph, listed in the legend.  Missing data is
    simply absent — gaps stay blank.
    """
    if not series:
        raise ValueError("nothing to plot")
    if width < 8 or height < 4:
        raise ValueError("chart too small to be readable")
    points = [
        (x, y) for values in series.values() for x, y in values if y is not None
    ]
    if not points:
        raise ValueError("no plottable points")
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = x_hi - x_lo or 1.0
    y_span = y_hi - y_lo or 1.0

    grid = [[" "] * width for _ in range(height)]
    for glyph, (name, values) in zip(_GLYPHS, series.items()):
        for x, y in values:
            if y is None:
                continue
            col = int((x - x_lo) / x_span * (width - 1))
            row = height - 1 - int((y - y_lo) / y_span * (height - 1))
            grid[row][col] = glyph

    lines: List[str] = []
    lines.append(f"{y_hi:8.1f} |" + "".join(grid[0]))
    for row in grid[1:-1]:
        lines.append(" " * 8 + " |" + "".join(row))
    lines.append(f"{y_lo:8.1f} |" + "".join(grid[-1]))
    lines.append(" " * 9 + "+" + "-" * width)
    lines.append(
        " " * 10 + f"{x_lo:<12.1f}{x_label:^{max(width - 24, 4)}}{x_hi:>12.1f}"
    )
    legend = "   ".join(
        f"{glyph} {name}" for glyph, name in zip(_GLYPHS, series.keys())
    )
    lines.append(" " * 10 + legend + f"   (y: {y_label})")
    return "\n".join(lines)


def ascii_traffic_map(
    city,
    snapshot,
    cell_m: float = 420.0,
) -> str:
    """Render a traffic snapshot as the Fig. 9-style city map.

    The region is rasterised into ``cell_m`` cells; each cell shows the
    display level (1–5) averaged over the covered directed segments
    whose midpoint falls in it, or '.' where no data exists.  North is
    up, west is left.
    """
    from repro.core.traffic_map import speed_level

    spec = city.spec
    cols = max(1, int(round(spec.width_m / cell_m)) + 1)
    rows = max(1, int(round(spec.height_m / cell_m)) + 1)
    sums = [[0.0] * cols for _ in range(rows)]
    counts = [[0] * cols for _ in range(rows)]
    for segment_id, reading in snapshot.readings.items():
        segment = city.network.segment(segment_id)
        midpoint = segment.start.midpoint(segment.end)
        col = min(cols - 1, max(0, int(round(midpoint.x / cell_m))))
        row = min(rows - 1, max(0, int(round(midpoint.y / cell_m))))
        sums[row][col] += reading.speed_kmh
        counts[row][col] += 1

    lines = []
    for row in range(rows - 1, -1, -1):          # north on top
        cells = []
        for col in range(cols):
            if counts[row][col]:
                level = speed_level(sums[row][col] / counts[row][col])
                cells.append(str(int(level)))
            else:
                cells.append(".")
        lines.append(" ".join(cells))
    legend = "levels: 1=<20  2=20-30  3=30-40  4=40-50  5=>50 km/h   .=no data"
    return "\n".join(lines) + "\n" + legend


def ascii_cdf(
    cdfs: Dict[str, Cdf],
    width: int = 64,
    height: int = 16,
    value_label: str = "value",
) -> str:
    """Plot one or more CDFs (cumulative fraction vs value)."""
    if not cdfs:
        raise ValueError("nothing to plot")
    series: Dict[str, Sequence[Tuple[float, float]]] = {
        name: [(value, fraction) for value, fraction in cdf.series(80)]
        for name, cdf in cdfs.items()
    }
    return ascii_chart(
        series,
        width=width,
        height=height,
        x_label=value_label,
        y_label="cumulative fraction",
    )
