"""Correctness tooling: reference oracles, golden traces, conformance.

The `core/` estimators — Smith-Waterman matching, threshold clustering,
route-constrained sequence mapping — are hot paths that keep being
rewritten for speed.  This package is their standing referee:

* :mod:`repro.testkit.oracles` — deliberately naive, spec-literal
  implementations of the three estimators, used as differential-testing
  references.  They trade every optimisation (inverted indexes,
  vectorised DP, Viterbi decomposition, staleness pruning) for
  line-by-line fidelity to §III-C of the paper.
* :mod:`repro.testkit.scenarios` — randomized scenario generators for
  each estimator plus the fixed end-to-end *golden* scenario.
* :mod:`repro.testkit.golden` — records a full end-to-end run (uploads,
  per-stage intermediates, final map + stats) as a canonical JSON trace,
  with normalization rules that make traces byte-identical across
  ``--workers 1..N``, and diffs traces structurally.
* :mod:`repro.testkit.conformance` — orchestrates differential runs and
  golden checks; backs the ``repro conformance`` CLI verb and CI's
  conformance smoke job.
"""

from repro.testkit.conformance import (
    ConformanceReport,
    run_conformance,
    run_differential,
)
from repro.testkit.golden import (
    GOLDEN_TRACE_VERSION,
    diff_traces,
    load_trace,
    record_trace,
    render_trace,
    trace_from_run,
    trace_from_server,
    write_trace,
)
from repro.testkit.oracles import (
    OracleMatcher,
    oracle_cluster_trip_samples,
    oracle_enumerate_sequences,
    oracle_map_variants,
    oracle_smith_waterman,
)

__all__ = [
    "ConformanceReport",
    "GOLDEN_TRACE_VERSION",
    "OracleMatcher",
    "diff_traces",
    "load_trace",
    "oracle_cluster_trip_samples",
    "oracle_enumerate_sequences",
    "oracle_map_variants",
    "oracle_smith_waterman",
    "record_trace",
    "render_trace",
    "run_conformance",
    "run_differential",
    "trace_from_run",
    "trace_from_server",
    "write_trace",
]
