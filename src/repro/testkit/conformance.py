"""Conformance runs: differential oracle checks + golden-trace checks.

Two independent referees, one verdict:

* **Differential** — :func:`run_differential` replays randomized
  scenarios through the optimized `core/` estimators and the
  spec-literal oracles, comparing results *exactly* (``==`` on floats:
  both sides perform the same IEEE-754 operations in the same order, so
  any difference is a semantic divergence, not noise).
* **Golden** — :func:`check_golden` re-runs the fixed end-to-end golden
  campaign at several worker counts and demands every run render
  byte-identically to the committed fixture.

``repro conformance`` and ``scripts/conformance_smoke.py`` are thin
shells over :func:`run_conformance`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.clustering import cluster_trip_samples
from repro.core.matching import SampleMatcher
from repro.core.trip_mapping import map_trip
from repro.testkit.golden import (
    default_trace_path,
    diff_traces,
    load_trace,
    render_trace,
    trace_from_run,
    write_trace,
)
from repro.testkit.oracles import (
    OracleMatcher,
    oracle_cluster_trip_samples,
    oracle_map_variants,
)
from repro.testkit.scenarios import (
    build_golden_city,
    random_clustering_scenario,
    random_mapping_scenario,
    random_matching_scenario,
    run_golden,
)

__all__ = [
    "ConformanceReport",
    "check_golden",
    "record_golden",
    "run_conformance",
    "run_differential",
]

#: Worker counts every golden check replays the campaign at.
DEFAULT_WORKER_COUNTS: Tuple[int, ...] = (1, 2, 4)


# -- differential --------------------------------------------------------------


def _matcher_config(config, matcher: str):
    """The scenario's matching config, adjusted for the requested mode.

    ``indexed`` is the production path — candidate pruning plus the
    verdict memo (which the per-sample/batched double run below
    exercises: the batch pass replays sequences the per-sample pass
    already cached).  ``full`` strips both, scanning the whole database
    exactly like the oracle.
    """
    if matcher == "indexed":
        return replace(config, indexed=True)
    if matcher == "full":
        return replace(config, indexed=False, cache_size=0)
    raise ValueError(f"unknown matcher mode {matcher!r} (indexed|full)")


def _check_matching(
    rng: np.random.Generator, tag: str, matcher: str = "indexed"
) -> List[str]:
    scenario = random_matching_scenario(rng)
    optimized = SampleMatcher(
        scenario.fingerprints, _matcher_config(scenario.config, matcher)
    )
    oracle = OracleMatcher(scenario.fingerprints, scenario.config)
    failures: List[str] = []
    expected = oracle.match_many(scenario.samples)
    for index, sample in enumerate(scenario.samples):
        got = optimized.match(sample)
        if got != expected[index]:
            failures.append(
                f"{tag}: match(sample {index}) {got} != oracle {expected[index]}"
            )
    batched = optimized.match_many(scenario.samples)
    for index, (got, want) in enumerate(zip(batched, expected)):
        if got != want:
            failures.append(
                f"{tag}: match_many[{index}] {got} != oracle {want}"
            )
    return failures


def _check_clustering(rng: np.random.Generator, tag: str) -> List[str]:
    scenario = random_clustering_scenario(rng)
    optimized = cluster_trip_samples(scenario.matched, scenario.config)
    expected = oracle_cluster_trip_samples(scenario.matched, scenario.config)
    got = [cluster.samples for cluster in optimized]
    if got != expected:
        return [
            f"{tag}: clustering diverged — optimized "
            f"{[[m.time_s for m in c] for c in got]} != oracle "
            f"{[[m.time_s for m in c] for c in expected]}"
        ]
    return []


def _check_mapping(rng: np.random.Generator, tag: str) -> List[str]:
    scenario = random_mapping_scenario(rng)
    result = map_trip(scenario.clusters, scenario.constraint)
    expected = oracle_map_variants(scenario.clusters, scenario.constraint)
    if expected is None:
        if result is not None:
            return [f"{tag}: mapper mapped a trip the oracle found unmappable"]
        return []
    best_score, variants = expected
    if result is None:
        # The mapper returns None when every chosen stop was dropped; legal
        # only if some optimal sequence indeed drops to nothing.
        if [] not in variants:
            return [
                f"{tag}: mapper returned None but every optimal sequence "
                f"keeps stops (score {best_score})"
            ]
        return []
    failures: List[str] = []
    if result.score != best_score:
        failures.append(
            f"{tag}: mapper score {result.score!r} != oracle optimum "
            f"{best_score!r}"
        )
    if result.stops not in variants:
        failures.append(
            f"{tag}: mapped sequence {result.station_sequence()} is not "
            f"among the {len(variants)} oracle-optimal variants"
        )
    return failures


def run_differential(
    scenarios: int = 25, seed: int = 0, matcher: str = "indexed"
) -> List[str]:
    """Differentially test all three estimators on randomized scenarios.

    Returns failure messages (empty = conformant).  Scenario ``i`` is
    seeded as ``(seed, i)``, so a reported tag reproduces standalone.
    ``matcher`` selects the matching path under test — ``indexed``
    (candidate pruning + memo, the production default) or ``full``
    (whole-database scan); both must be indistinguishable from the
    oracle, so both must yield identical reports.
    """
    failures: List[str] = []
    for index in range(scenarios):
        for kind, check in (
            ("matching", lambda r, t: _check_matching(r, t, matcher)),
            ("clustering", _check_clustering),
            ("mapping", _check_mapping),
        ):
            rng = np.random.default_rng([seed, index])
            failures.extend(check(rng, f"{kind} scenario {index} (seed {seed})"))
    return failures


# -- golden --------------------------------------------------------------------


def _golden_traces(
    worker_counts: Sequence[int],
) -> Dict[int, Dict]:
    """The golden campaign's trace at each worker count (shared city)."""
    city = build_golden_city()
    return {
        workers: trace_from_run(run_golden(workers=workers, city=city))
        for workers in worker_counts
    }


def record_golden(
    fixture: Optional[Path] = None,
    worker_counts: Sequence[int] = DEFAULT_WORKER_COUNTS,
) -> Tuple[Path, List[str]]:
    """Re-record the committed fixture — after verifying worker-invariance.

    The serial (``workers=1``) trace becomes the fixture, but only once
    every other worker count renders byte-identically; otherwise nothing
    is written and the divergences are returned.
    """
    fixture = Path(fixture) if fixture is not None else default_trace_path()
    traces = _golden_traces(worker_counts)
    reference = traces[worker_counts[0]]
    failures: List[str] = []
    for workers, trace in traces.items():
        if render_trace(trace) != render_trace(reference):
            for line in diff_traces(reference, trace):
                failures.append(f"workers={workers}: {line}")
    if failures:
        return fixture, failures
    write_trace(reference, fixture)
    return fixture, []


def check_golden(
    fixture: Optional[Path] = None,
    worker_counts: Sequence[int] = DEFAULT_WORKER_COUNTS,
) -> Dict[int, List[str]]:
    """Replay the golden campaign and diff each worker count vs the fixture.

    Returns ``{workers: diff lines}`` — all empty means every run is
    byte-identical to the committed trace.
    """
    fixture = Path(fixture) if fixture is not None else default_trace_path()
    if not fixture.exists():
        raise FileNotFoundError(
            f"golden fixture {fixture} missing — record it with "
            "`repro conformance --record`"
        )
    expected_bytes = fixture.read_text(encoding="utf-8")
    expected = load_trace(fixture)
    results: Dict[int, List[str]] = {}
    for workers, trace in _golden_traces(worker_counts).items():
        if render_trace(trace) == expected_bytes:
            results[workers] = []
        else:
            diff = diff_traces(expected, trace)
            # Byte drift without structural drift (formatting/version skew)
            # still fails, with an explicit reason.
            results[workers] = diff or [
                "render differs from fixture bytes (re-record the fixture "
                "with `repro conformance --record`)"
            ]
    return results


# -- the full run --------------------------------------------------------------


@dataclass
class ConformanceReport:
    """Outcome of one conformance run (differential + golden)."""

    scenarios: int
    seed: int
    differential_failures: List[str] = field(default_factory=list)
    golden_fixture: Optional[str] = None
    golden_results: Dict[int, List[str]] = field(default_factory=dict)
    recorded: bool = False

    @property
    def ok(self) -> bool:
        return not self.differential_failures and not any(
            self.golden_results.values()
        )

    def as_dict(self) -> Dict:
        return {
            "ok": self.ok,
            "scenarios": self.scenarios,
            "seed": self.seed,
            "differential_failures": list(self.differential_failures),
            "golden_fixture": self.golden_fixture,
            "golden_results": {
                str(workers): list(lines)
                for workers, lines in sorted(self.golden_results.items())
            },
            "recorded": self.recorded,
        }

    def summary(self) -> str:
        lines = [
            f"differential: {self.scenarios} scenarios x 3 estimators — "
            + (
                "all conformant"
                if not self.differential_failures
                else f"{len(self.differential_failures)} FAILURES"
            )
        ]
        for failure in self.differential_failures:
            lines.append(f"  {failure}")
        if self.golden_fixture is not None:
            verb = "recorded" if self.recorded else "checked"
            lines.append(f"golden: {verb} {self.golden_fixture}")
            for workers, diffs in sorted(self.golden_results.items()):
                state = "byte-identical" if not diffs else f"{len(diffs)} diffs"
                lines.append(f"  workers={workers}: {state}")
                for line in diffs:
                    lines.append(f"    {line}")
        return "\n".join(lines)


def run_conformance(
    scenarios: int = 25,
    seed: int = 0,
    *,
    record: bool = False,
    check: bool = True,
    fixture: Optional[Path] = None,
    worker_counts: Sequence[int] = DEFAULT_WORKER_COUNTS,
    matcher: str = "indexed",
) -> ConformanceReport:
    """The full conformance suite, as the CLI and CI run it.

    ``record=True`` re-records the golden fixture (after verifying
    worker-invariance) instead of checking against it.  ``matcher``
    selects the differential matching path (``indexed`` or ``full``);
    the report is deliberately mode-agnostic — both paths are exact, so
    both modes must emit identical reports.
    """
    report = ConformanceReport(scenarios=scenarios, seed=seed)
    report.differential_failures = run_differential(scenarios, seed, matcher)
    if record:
        path, failures = record_golden(fixture, worker_counts)
        report.golden_fixture = str(path)
        report.recorded = not failures
        report.golden_results = {0: failures} if failures else {
            workers: [] for workers in worker_counts
        }
    elif check:
        path = Path(fixture) if fixture is not None else default_trace_path()
        report.golden_fixture = str(path)
        report.golden_results = check_golden(path, worker_counts)
    return report
