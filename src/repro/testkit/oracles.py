"""Spec-literal reference oracles for the three §III-C estimators.

Every function here is *deliberately naive*: a full O(n·m) Python
Smith-Waterman matrix instead of the vectorised rolling rows, a scan of
the whole fingerprint database instead of the inverted tower index, an
O(n²) pass over every open cluster instead of the 2·t0 staleness prune,
and exhaustive enumeration of all Π B_k candidate sequences instead of
the Viterbi decomposition.  That makes them slow and obviously correct —
the property a differential referee needs.

Tie-breaking is part of the observable contract, so the oracles pin the
same deterministic choices the optimized paths make:

* matching — best ``(score, common ids, smaller station id)``;
* clustering — among equal-affinity open clusters the newest wins;
* mapping — ties are resolved by reporting *every* optimal sequence;
  the optimized result must be one of them.

All arithmetic uses the same IEEE-754 double operations in the same
association order as the optimized code, so comparisons are exact
(``==``), never approximate.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Sequence, Tuple

from repro.config import ClusteringConfig, MatchingConfig
from repro.core.clustering import MatchedSample, SampleCluster
from repro.core.matching import MatchResult
from repro.core.trip_mapping import MappedStop, DROP_EPSILON

__all__ = [
    "OracleMatcher",
    "oracle_cluster_trip_samples",
    "oracle_enumerate_sequences",
    "oracle_map_variants",
    "oracle_smith_waterman",
]


# -- per-sample matching (§III-C1) --------------------------------------------


def oracle_smith_waterman(
    upload: Sequence[int],
    database: Sequence[int],
    config: Optional[MatchingConfig] = None,
) -> float:
    """Table II's modified Smith-Waterman, as a full Python DP matrix."""
    config = config or MatchingConfig()
    n, m = len(upload), len(database)
    if n == 0 or m == 0:
        return 0.0
    match = config.match_score
    mismatch = -config.mismatch_penalty
    gap = -config.gap_penalty
    matrix = [[0.0] * (m + 1) for _ in range(n + 1)]
    best = 0.0
    for i in range(1, n + 1):
        for j in range(1, m + 1):
            diagonal = matrix[i - 1][j - 1] + (
                match if upload[i - 1] == database[j - 1] else mismatch
            )
            value = max(0.0, diagonal, matrix[i - 1][j] + gap,
                        matrix[i][j - 1] + gap)
            matrix[i][j] = value
            if value > best:
                best = value
    return best


class OracleMatcher:
    """Matches a sample against *every* stop fingerprint, no index.

    The γ acceptance threshold and the common-id tie-break follow
    §III-C1 literally; iteration order is made irrelevant by the total
    ordering ``(score, common ids, -station_id)``.
    """

    def __init__(
        self,
        fingerprints: Dict[int, Tuple[int, ...]],
        config: Optional[MatchingConfig] = None,
    ):
        if not fingerprints:
            raise ValueError("oracle matcher needs a non-empty database")
        self.config = config or MatchingConfig()
        self._fingerprints = {k: tuple(v) for k, v in fingerprints.items()}

    def match(self, tower_ids: Sequence[int]) -> MatchResult:
        """Best stop for one sample, or a rejection below γ."""
        best: Optional[Tuple[float, int, int]] = None
        for station_id in sorted(self._fingerprints):
            fingerprint = self._fingerprints[station_id]
            score = oracle_smith_waterman(tower_ids, fingerprint, self.config)
            if score < self.config.accept_threshold:
                continue
            common = len(set(tower_ids) & set(fingerprint))
            key = (score, common, -station_id)
            if best is None or key > best:
                best = key
        if best is None:
            return MatchResult(station_id=None, score=0.0, common_ids=0)
        score, common, neg_station = best
        return MatchResult(
            station_id=-neg_station, score=score, common_ids=common
        )

    def match_many(
        self, samples: Sequence[Sequence[int]]
    ) -> List[MatchResult]:
        """Per-sample :meth:`match`, one at a time (no batching)."""
        return [self.match(sample) for sample in samples]


# -- per-stop clustering (§III-C2) --------------------------------------------


def _oracle_affinity(
    a: MatchedSample, b: MatchedSample, config: ClusteringConfig
) -> float:
    """Eq. (1)'s left-hand side, written out literally."""
    time_term = (
        config.max_interval_s - abs(b.time_s - a.time_s)
    ) / config.max_interval_s
    if (
        a.match.station_id is not None
        and a.match.station_id == b.match.station_id
    ):
        match_term = (
            config.max_similarity - abs(b.match.score - a.match.score)
        ) / config.max_similarity
    else:
        match_term = 0.0
    return time_term + match_term


def oracle_cluster_trip_samples(
    matched: Sequence[MatchedSample],
    config: Optional[ClusteringConfig] = None,
) -> List[List[MatchedSample]]:
    """O(n²) greedy clustering: every sample against every open cluster.

    Identical semantics to
    :func:`repro.core.clustering.cluster_trip_samples` — time-ordered
    scan, a sample joins the best cluster whose maximum member affinity
    strictly clears ε, newest cluster wins ties — but *without* the
    2·t0 staleness prune, which the optimized path relies on being a
    pure optimisation.  Differential runs therefore also verify that
    claim.
    """
    config = config or ClusteringConfig()
    ordered = sorted(matched, key=lambda m: m.time_s)
    clusters: List[List[MatchedSample]] = []
    for member in ordered:
        best_index: Optional[int] = None
        best_affinity = config.threshold
        for index, cluster in enumerate(clusters):
            affinity = max(
                _oracle_affinity(existing, member, config)
                for existing in cluster
            )
            if affinity <= config.threshold:
                continue
            # ``>=`` on a forward scan == newest-wins, matching the
            # optimized path's strict ``>`` over a reversed scan.
            if best_index is None or affinity >= best_affinity:
                best_affinity = affinity
                best_index = index
        if best_index is None:
            clusters.append([member])
        else:
            clusters[best_index].append(member)
    return clusters


# -- per-trip sequence mapping (§III-C3) --------------------------------------


def oracle_enumerate_sequences(
    clusters: Sequence[SampleCluster],
    constraint,
) -> Optional[Tuple[List[int], float, List[tuple]]]:
    """Exhaustively maximise Eq. (2) over all candidate sequences.

    Returns ``(kept_cluster_indices, best_score, best_combos)`` where
    ``best_combos`` holds *every* candidate combination achieving the
    maximum (so callers can accept any optimal tie), or ``None`` when no
    cluster has a candidate.  ``constraint`` only needs a
    ``weight(x, y)`` method — the paper's R(x, y).
    """
    pools = [cluster.candidates() for cluster in clusters]
    kept_indices = [i for i, pool in enumerate(pools) if pool]
    if not kept_indices:
        return None
    kept_pools = [pools[i] for i in kept_indices]
    best_score: Optional[float] = None
    best_combos: List[tuple] = []
    for combo in itertools.product(*kept_pools):
        score = combo[0].weight
        for prev, cur in zip(combo, combo[1:]):
            score += cur.weight * constraint.weight(
                prev.station_id, cur.station_id
            )
        if best_score is None or score > best_score:
            best_score = score
            best_combos = [combo]
        elif score == best_score:
            best_combos.append(combo)
    return kept_indices, float(best_score), best_combos


def oracle_map_variants(
    clusters: Sequence[SampleCluster],
    constraint,
    min_weight: float = DROP_EPSILON,
) -> Optional[Tuple[float, List[List[MappedStop]]]]:
    """Every optimal :func:`~repro.core.trip_mapping.map_trip` outcome.

    Applies the same drop rule the optimized mapper uses (clusters whose
    chosen candidate contributes numerically zero weight are routed
    around) to each optimal sequence, returning ``(best_score,
    variants)`` where each variant is the resulting stop list (possibly
    empty, meaning the mapper should return ``None``).
    """
    enumerated = oracle_enumerate_sequences(clusters, constraint)
    if enumerated is None:
        return None
    kept_indices, best_score, best_combos = enumerated
    variants: List[List[MappedStop]] = []
    for combo in best_combos:
        stops: List[MappedStop] = []
        for position, (candidate, cluster_index) in enumerate(
            zip(combo, kept_indices)
        ):
            if position > 0:
                contributed = candidate.weight * constraint.weight(
                    combo[position - 1].station_id, candidate.station_id
                )
            else:
                contributed = candidate.weight
            if position > 0 and contributed <= min_weight:
                continue
            cluster = clusters[cluster_index]
            stops.append(
                MappedStop(
                    station_id=candidate.station_id,
                    arrival_s=cluster.arrival_s,
                    depart_s=cluster.depart_s,
                    cluster_size=len(cluster),
                    weight=contributed,
                )
            )
        variants.append(stops)
    return best_score, variants
