"""Golden end-to-end traces: record, render, load, diff.

A *trace* is a plain-JSON document capturing everything observable about
one full campaign: the delivered uploads, every trip's journey through
the pipeline (per-sample verdicts, clusters with candidate pools, the
mapped stop sequence, per-segment speed estimates), the final fused
traffic map, the server stats, and a whitelisted metrics snapshot.

Normalization rules — what makes a trace *canonical* and therefore
byte-identical across ``--workers 1..N``:

* **JSON shape** — ``sort_keys=True``, two-space indent, explicit
  separators, a trailing newline; dict iteration order never matters.
* **Floats** — rounded to 9 decimal places and negative zero collapsed
  to zero.  The pipeline itself is bit-identical across worker counts
  (same operations, same association order), so rounding only protects
  the *rendering* from platform ``repr`` quirks, not the comparison.
* **Metrics** — only deterministic families are snapshotted
  (:data:`METRIC_PREFIXES` + :data:`METRIC_EXACT`).  ``ingest_*``
  (worker-count-dependent) and wall-clock timing histograms are
  excluded by construction.

Re-record the committed fixture with ``repro conformance --record``
after an *intentional* behaviour change, and say why in the commit.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.core.server import TripReport
from repro.sim.world import SimulationResult

__all__ = [
    "GOLDEN_TRACE_VERSION",
    "METRIC_EXACT",
    "METRIC_PREFIXES",
    "default_trace_path",
    "diff_traces",
    "load_trace",
    "record_trace",
    "render_trace",
    "trace_from_run",
    "trace_from_server",
    "write_trace",
]

#: Bump when the trace schema changes; the checker refuses to compare
#: traces of different versions (a schema change is never "a diff").
GOLDEN_TRACE_VERSION = 1

#: Metric families snapshotted into a trace, by name prefix.  Everything
#: here is a deterministic function of the upload stream: matcher /
#: clustering / mapping counters and histograms, the server stats
#: counters, and the fused-map update/publish counters.
METRIC_PREFIXES: Tuple[str, ...] = (
    "matcher_",
    "clustering_",
    "trip_mapping_",
    "server_",
    "map_",
)

#: Additional exact-name families (labeled counters and gauges).
METRIC_EXACT: Tuple[str, ...] = (
    "trips_uploaded_total",
    "segments_updated_total",
    "fingerprint_db_stops",
)


def default_trace_path() -> Path:
    """The committed golden fixture: ``tests/golden/campaign_small.json``."""
    return (
        Path(__file__).resolve().parents[3]
        / "tests"
        / "golden"
        / "campaign_small.json"
    )


# -- normalization -------------------------------------------------------------


def _norm(value: float) -> float:
    """Canonical float: 9-decimal rounding, no negative zero."""
    rounded = round(float(value), 9)
    return 0.0 if rounded == 0.0 else rounded


def _norm_tree(node):
    """Apply :func:`_norm` to every float in a plain-JSON tree."""
    if isinstance(node, bool):
        return node
    if isinstance(node, float):
        return _norm(node)
    if isinstance(node, dict):
        return {key: _norm_tree(child) for key, child in node.items()}
    if isinstance(node, (list, tuple)):
        return [_norm_tree(child) for child in node]
    return node


def _segment_key(segment_id: Tuple[int, int]) -> str:
    """A directed segment as a stable JSON key: ``"from->to"``."""
    return f"{segment_id[0]}->{segment_id[1]}"


def _wanted_metric(name: str) -> bool:
    return name.startswith(METRIC_PREFIXES) or name in METRIC_EXACT


def _metrics_snapshot(document: Dict) -> Dict:
    """The whitelisted, deterministic slice of a registry ``as_dict``."""
    snapshot: Dict[str, Dict] = {}
    for kind in ("counters", "gauges"):
        snapshot[kind] = {
            name: value
            for name, value in document.get(kind, {}).items()
            if _wanted_metric(name)
        }
    snapshot["histograms"] = {
        name: {
            "count": hist["count"],
            "sum": hist["sum"],
            "bounds": list(hist["bounds"]),
            "bucket_counts": list(hist["bucket_counts"]),
        }
        for name, hist in document.get("histograms", {}).items()
        if _wanted_metric(name)
    }
    snapshot["labeled"] = {
        name: {
            "type": family["type"],
            "labels": list(family["labels"]),
            "overflow_total": family["overflow_total"],
            "children": dict(family["children"]),
        }
        for name, family in document.get("labeled", {}).items()
        if _wanted_metric(name)
    }
    return snapshot


# -- recording -----------------------------------------------------------------


def _serialize_report(report: TripReport) -> Dict:
    matches = None
    if report.matches is not None:
        matches = [
            {
                "station": result.station_id,
                "score": result.score,
                "common_ids": result.common_ids,
            }
            for result in report.matches
        ]
    clusters = [
        {
            "arrival_s": cluster.arrival_s,
            "depart_s": cluster.depart_s,
            "size": len(cluster),
            "members": [
                {
                    "time_s": member.time_s,
                    "station": member.match.station_id,
                    "score": member.match.score,
                }
                for member in cluster.samples
            ],
            "candidates": [
                {
                    "station": candidate.station_id,
                    "probability": candidate.probability,
                    "mean_similarity": candidate.mean_similarity,
                    "weight": candidate.weight,
                }
                for candidate in cluster.candidates()
            ],
        }
        for cluster in report.clusters
    ]
    mapped = None
    if report.mapped is not None:
        mapped = {
            "score": report.mapped.score,
            "stops": [
                {
                    "station": stop.station_id,
                    "arrival_s": stop.arrival_s,
                    "depart_s": stop.depart_s,
                    "cluster_size": stop.cluster_size,
                    "weight": stop.weight,
                }
                for stop in report.mapped.stops
            ],
        }
    return {
        "trip_key": report.trip_key,
        "accepted_samples": report.accepted_samples,
        "discarded_samples": report.discarded_samples,
        "matches": matches,
        "clusters": clusters,
        "mapped": mapped,
        "estimates": [
            {"segment": _segment_key(segment), "speed_kmh": speed, "at_s": at}
            for segment, speed, at in report.estimates
        ],
    }


def _serialize_map(estimator) -> Dict:
    return {
        _segment_key(segment_id): {
            "mean_kmh": belief.mean_kmh,
            "sigma_kmh": belief.sigma_kmh,
            "last_update_s": belief.last_update_s,
            "observations": belief.observation_count,
        }
        for segment_id in estimator.fuser.keys
        for belief in (estimator.segment_estimate(segment_id),)
    }


def trace_from_server(server) -> Dict:
    """A canonical trace of a server's observable end state.

    The server-level slice of :func:`trace_from_run` — fused traffic
    map, stats, whitelisted metrics — for callers (benchmarks, parity
    smokes) that replay uploads straight into a
    :class:`~repro.core.server.BackendServer` outside a simulation run.
    Two servers fed the same uploads must produce byte-identical traces
    regardless of how the ingest was parallelized.
    """
    estimator = server.traffic_map
    trace = {
        "version": GOLDEN_TRACE_VERSION,
        "traffic_map": {
            "publish_times": list(estimator.publish_times),
            "segments": _serialize_map(estimator),
        },
        "stats": server.stats.as_dict(),
        "metrics": _metrics_snapshot(server.registry.as_dict()),
    }
    return _norm_tree(trace)


def trace_from_run(result: SimulationResult) -> Dict:
    """A canonical trace of one finished campaign.

    Reports are serialized in processing (delivery) order — the order
    :meth:`~repro.core.server.BackendServer.apply_prepared` committed
    them, which the parallel engine preserves by construction.
    """
    server = result.server
    estimator = server.traffic_map
    final_map = _serialize_map(estimator)
    trace = {
        "version": GOLDEN_TRACE_VERSION,
        "scenario": {
            "city": result.city.spec.name,
            "city_seed": result.city.spec.seed,
            "services": list(result.city.spec.services),
            "start_s": result.start_s,
            "end_s": result.end_s,
        },
        "uploads": [
            {
                "trip_key": upload.trip_key,
                "samples": [
                    {
                        "time_s": sample.time_s,
                        "tower_ids": list(sample.tower_ids),
                    }
                    for sample in upload.samples
                ],
            }
            for upload in result.uploads
        ],
        "reports": [_serialize_report(report) for report in result.reports],
        "traffic_map": {
            "publish_times": list(estimator.publish_times),
            "segments": final_map,
        },
        "stats": server.stats.as_dict(),
        "metrics": _metrics_snapshot(server.registry.as_dict()),
    }
    return _norm_tree(trace)


def record_trace(workers: int = 1, city=None) -> Dict:
    """Run the golden scenario and return its canonical trace."""
    from repro.testkit.scenarios import run_golden

    return trace_from_run(run_golden(workers=workers, city=city))


# -- rendering and IO ----------------------------------------------------------


def render_trace(trace: Dict) -> str:
    """The one true byte representation of a trace."""
    return (
        json.dumps(trace, sort_keys=True, indent=2, separators=(",", ": "))
        + "\n"
    )


def write_trace(trace: Dict, path: Path) -> None:
    """Write a trace in canonical form, creating parent directories."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(render_trace(trace), encoding="utf-8")


def load_trace(path: Path) -> Dict:
    """Read a previously recorded trace."""
    return json.loads(Path(path).read_text(encoding="utf-8"))


# -- comparison ----------------------------------------------------------------


def diff_traces(expected: Dict, actual: Dict, max_entries: int = 64) -> List[str]:
    """Structural differences between two traces, as ``path: a != b`` lines.

    Empty means identical.  Both traces are re-normalized before the
    walk, so a hand-edited fixture with ``-0.0`` or extra precision
    still compares by value; byte-level identity is separately enforced
    by comparing :func:`render_trace` outputs where it matters (CI).
    """
    expected = _norm_tree(expected)
    actual = _norm_tree(actual)
    if expected.get("version") != actual.get("version"):
        return [
            "version: trace schema mismatch "
            f"({expected.get('version')!r} vs {actual.get('version')!r}); "
            "re-record the fixture with `repro conformance --record`"
        ]
    entries: List[str] = []

    def walk(path: str, a, b) -> None:
        if len(entries) >= max_entries:
            return
        if type(a) is not type(b):
            entries.append(f"{path}: type {type(a).__name__} != {type(b).__name__}")
            return
        if isinstance(a, dict):
            for key in sorted(set(a) | set(b)):
                if key not in a:
                    entries.append(f"{path}.{key}: only in actual")
                elif key not in b:
                    entries.append(f"{path}.{key}: only in expected")
                else:
                    walk(f"{path}.{key}", a[key], b[key])
                if len(entries) >= max_entries:
                    return
            return
        if isinstance(a, list):
            if len(a) != len(b):
                entries.append(f"{path}: length {len(a)} != {len(b)}")
            for index, (item_a, item_b) in enumerate(zip(a, b)):
                walk(f"{path}[{index}]", item_a, item_b)
                if len(entries) >= max_entries:
                    return
            return
        if a != b:
            entries.append(f"{path}: {a!r} != {b!r}")

    walk("trace", expected, actual)
    if len(entries) >= max_entries:
        entries.append(f"... diff truncated at {max_entries} entries")
    return entries
