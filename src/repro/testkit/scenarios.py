"""Scenario generators for differential and golden-trace testing.

Randomized scenarios feed the differential referee: each generator
derives everything from a seeded ``numpy`` Generator, so a failing
scenario index reproduces exactly.  The fixed *golden* scenario is a
small but complete end-to-end campaign — two bus services, a half-hour
window, the real uplink channel — whose recorded trace is committed
under ``tests/golden/`` and must stay byte-identical across worker
counts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.city.builder import City, CitySpec, build_city
from repro.config import ClusteringConfig, MatchingConfig
from repro.core.clustering import MatchedSample, SampleCluster
from repro.core.matching import MatchResult
from repro.obs.metrics import MetricsRegistry
from repro.phone.cellular import CellularSample
from repro.sim.world import SimulationResult, World
from repro.util.units import parse_hhmm

__all__ = [
    "GOLDEN_END",
    "GOLDEN_SEED",
    "GOLDEN_SPEC",
    "GOLDEN_START",
    "ClusteringScenario",
    "MappingScenario",
    "MatchingScenario",
    "TableConstraint",
    "build_golden_city",
    "random_clustering_scenario",
    "random_mapping_scenario",
    "random_matching_scenario",
    "run_golden",
]


# -- randomized estimator scenarios --------------------------------------------


@dataclass(frozen=True)
class MatchingScenario:
    """A fingerprint database plus a batch of samples to match."""

    fingerprints: Dict[int, Tuple[int, ...]]
    samples: List[Tuple[int, ...]]
    config: MatchingConfig


def random_matching_scenario(rng: np.random.Generator) -> MatchingScenario:
    """A small city's worth of fingerprints and one upload's samples.

    The tower-id alphabet is kept tight so samples genuinely collide
    with several stops (exercising the tie-breaks), occasionally shifted
    negative (exercising the batch path's padding sentinels); sample
    lengths include zero (an empty scan must be rejected, not crash).
    """
    offset = int(rng.choice((-50, 0, 1000)))
    alphabet = [offset + i for i in range(int(rng.integers(6, 15)))]
    n_stops = int(rng.integers(2, 9))
    fingerprints: Dict[int, Tuple[int, ...]] = {}
    for station_id in rng.choice(200, size=n_stops, replace=False):
        length = int(rng.integers(2, 7))
        towers = rng.choice(alphabet, size=min(length, len(alphabet)), replace=False)
        fingerprints[int(station_id)] = tuple(int(t) for t in towers)
    samples: List[Tuple[int, ...]] = []
    for _ in range(int(rng.integers(1, 12))):
        length = int(rng.integers(0, 8))
        samples.append(
            tuple(int(t) for t in rng.choice(alphabet, size=length, replace=True))
        )
    return MatchingScenario(
        fingerprints=fingerprints, samples=samples, config=MatchingConfig()
    )


@dataclass(frozen=True)
class ClusteringScenario:
    """Accepted (matched) samples of one trip, ready to cluster."""

    matched: List[MatchedSample]
    config: ClusteringConfig


def random_clustering_scenario(rng: np.random.Generator) -> ClusteringScenario:
    """Bursty matched samples with occasional long gaps.

    Burst spacing is drawn wide enough that some inter-burst gaps exceed
    the 2·t0 staleness horizon — the prune the optimized path applies
    and the oracle deliberately omits — and scores are drawn so that
    equal-affinity ties do occur (small discrete score grid).
    """
    config = ClusteringConfig()
    stations = [int(s) for s in rng.choice(40, size=int(rng.integers(2, 6)),
                                           replace=False)]
    matched: List[MatchedSample] = []
    clock = 0.0
    for _ in range(int(rng.integers(1, 7))):       # bursts
        clock += float(rng.uniform(5.0, 180.0))    # gap, sometimes > 2*t0
        burst_station = stations[int(rng.integers(0, len(stations)))]
        for _ in range(int(rng.integers(1, 6))):   # samples within the burst
            time_s = clock + float(rng.uniform(0.0, config.max_interval_s))
            station = (
                burst_station
                if rng.random() < 0.8
                else stations[int(rng.integers(0, len(stations)))]
            )
            # Discrete grid → exact score ties are common, not freak events.
            score = float(rng.integers(4, 15)) * 0.5
            matched.append(
                MatchedSample(
                    sample=CellularSample(time_s=time_s, tower_ids=(1, 2, 3)),
                    match=MatchResult(
                        station_id=station, score=score, common_ids=2
                    ),
                )
            )
    return ClusteringScenario(matched=matched, config=config)


class TableConstraint:
    """An R(x, y) lookup table — duck-typed for :func:`map_trip`.

    The real :class:`~repro.core.trip_mapping.RouteConstraint` derives
    weights from a route network; scenarios instead draw them from
    {0, 0.5, 1.0} directly, which reaches R-configurations (cycles,
    asymmetries) no planar bus network would produce.
    """

    def __init__(self, table: Dict[Tuple[int, int], float]):
        self.table = table

    def weight(self, x: int, y: int) -> float:
        return self.table.get((x, y), 0.0)


@dataclass(frozen=True)
class MappingScenario:
    """Time-ordered clusters plus the constraint to map them under."""

    clusters: List[SampleCluster]
    constraint: TableConstraint


def random_mapping_scenario(rng: np.random.Generator) -> MappingScenario:
    """Small candidate pools under a random R table.

    Pool sizes stay small (≤3 stations per cluster, ≤5 clusters) so the
    oracle's exhaustive enumeration is cheap; weights in {0, 0.5, 1.0}
    make zero-contribution (drop-rule) and tie cases frequent.
    """
    stations = [int(s) for s in rng.choice(30, size=int(rng.integers(2, 7)),
                                           replace=False)]
    clusters: List[SampleCluster] = []
    clock = 0.0
    for _ in range(int(rng.integers(1, 6))):
        clock += float(rng.uniform(30.0, 120.0))
        members: List[MatchedSample] = []
        pool = rng.choice(
            stations, size=min(int(rng.integers(1, 4)), len(stations)),
            replace=False,
        )
        for station in pool:
            for _ in range(int(rng.integers(1, 3))):
                members.append(
                    MatchedSample(
                        sample=CellularSample(
                            time_s=clock + float(rng.uniform(0.0, 20.0)),
                            tower_ids=(1, 2),
                        ),
                        match=MatchResult(
                            station_id=int(station),
                            score=float(rng.integers(4, 15)) * 0.5,
                            common_ids=2,
                        ),
                    )
                )
        clusters.append(SampleCluster(samples=members))
    table: Dict[Tuple[int, int], float] = {}
    for x in stations:
        for y in stations:
            table[(x, y)] = float(rng.choice((0.0, 0.5, 1.0)))
    return MappingScenario(clusters=clusters, constraint=TableConstraint(table))


# -- the fixed golden end-to-end scenario --------------------------------------

#: The golden city: small enough to run three times (workers 1/2/4) in a
#: CI smoke job, large enough to exercise matching collisions, cluster
#: merges, transfers and the uplink channel.
GOLDEN_SPEC = CitySpec(
    name="goldenville",
    width_m=3000.0,
    height_m=2000.0,
    spacing_m=420.0,
    services=("179", "199"),
    partial_services=(),
    jogs_per_route=1,
    seed=42,
)

GOLDEN_SEED = 7
GOLDEN_START = "07:30"
GOLDEN_END = "08:00"


def build_golden_city() -> City:
    """The deterministic city every golden run shares."""
    return build_city(GOLDEN_SPEC)


def run_golden(
    workers: int = 1, city: Optional[City] = None
) -> SimulationResult:
    """One full golden campaign on a fresh :class:`World`.

    A fresh world per call keeps the duplicate ledger, rider-id counter
    and fused map independent across worker counts; passing a pre-built
    ``city`` just skips rebuilding identical static geometry.
    ``keep_matches=True`` exposes the per-sample verdicts the trace
    records.
    """
    # A real (recording) registry: the trace snapshots the deterministic
    # metric families, so a rewrite that silently changes pipeline-side
    # counting is caught too.
    world = World(
        city=city or build_golden_city(),
        seed=GOLDEN_SEED,
        registry=MetricsRegistry(),
    )
    return world.run(
        parse_hhmm(GOLDEN_START),
        parse_hhmm(GOLDEN_END),
        with_official_feed=False,
        workers=workers,
        keep_matches=True,
    )
