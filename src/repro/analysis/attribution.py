"""Pipeline error attribution: where accuracy is lost, stage by stage.

The paper evaluates each component separately (§IV-B bus stop
identification, §IV-C traffic estimation).  :func:`audit_trip` runs one
upload through the backend alongside the ground-truth bus trace and
accounts for every sample and leg:

* **sensing** — taps heard vs samples uploaded (missed beeps, strays);
* **matching** — samples accepted and matched to the true station;
* **clustering** — cluster purity against the true stop visits;
* **mapping** — final stop identification accuracy;
* **estimation** — per-leg speed error against the ground-truth field.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.server import BackendServer, TripReport
from repro.phone.trip_recorder import TripUpload
from repro.sim.bus import BusTripTrace
from repro.sim.traffic import TrafficField


@dataclass
class PipelineAudit:
    """Stage-by-stage accounting of one trip through the pipeline."""

    trip_key: str
    taps_heard: int = 0
    samples_uploaded: int = 0
    samples_accepted: int = 0
    samples_matched_correctly: int = 0
    clusters: int = 0
    clusters_pure: int = 0
    stops_identified: int = 0
    stops_correct: int = 0
    leg_speed_errors_kmh: List[float] = field(default_factory=list)

    @property
    def detection_rate(self) -> float:
        """Samples uploaded per tap heard."""
        return self.samples_uploaded / self.taps_heard if self.taps_heard else 0.0

    @property
    def matching_accuracy(self) -> float:
        """Correctly matched fraction of accepted samples."""
        if not self.samples_accepted:
            return 0.0
        return self.samples_matched_correctly / self.samples_accepted

    @property
    def cluster_purity(self) -> float:
        """Fraction of clusters whose samples all share one true stop."""
        return self.clusters_pure / self.clusters if self.clusters else 0.0

    @property
    def identification_accuracy(self) -> float:
        """Final mapped-stop accuracy."""
        if not self.stops_identified:
            return 0.0
        return self.stops_correct / self.stops_identified

    @property
    def speed_mae_kmh(self) -> Optional[float]:
        """Mean absolute per-segment speed error, if any legs estimated."""
        if not self.leg_speed_errors_kmh:
            return None
        return float(np.mean(np.abs(self.leg_speed_errors_kmh)))


def audit_trip(
    trace: BusTripTrace,
    upload: TripUpload,
    server: BackendServer,
    traffic: TrafficField,
    rider_board_order: int,
    rider_alight_order: int,
) -> PipelineAudit:
    """Process ``upload`` on ``server`` and audit every pipeline stage.

    ``rider_board_order``/``rider_alight_order`` bound the stops the
    phone could hear (its participant's ride).  The server's state *is*
    mutated — the audit wraps a real :meth:`receive_trip` call.
    """
    audit = PipelineAudit(trip_key=upload.trip_key)
    tap_stop: Dict[float, int] = {t.time_s: t.stop_order for t in trace.taps}
    station_of_order = {v.stop_order: v.station_id for v in trace.visits}

    audit.taps_heard = sum(
        1
        for t in trace.taps
        if rider_board_order <= t.stop_order <= rider_alight_order
    )
    audit.samples_uploaded = len(upload.samples)

    report = server.receive_trip(upload)
    audit.samples_accepted = report.accepted_samples

    def true_station(sample_time: float) -> Optional[int]:
        order = tap_stop.get(sample_time)
        return station_of_order.get(order) if order is not None else None

    for cluster in report.clusters:
        audit.clusters += 1
        truths = {
            true_station(member.time_s)
            for member in cluster.samples
            if true_station(member.time_s) is not None
        }
        if len(truths) == 1:
            audit.clusters_pure += 1
        for member in cluster.samples:
            truth = true_station(member.time_s)
            if truth is not None and member.match.station_id == truth:
                audit.samples_matched_correctly += 1

    if report.mapped is not None:
        for stop in report.mapped.stops:
            audit.stops_identified += 1
            # Ground truth: the visit whose dwell window contains the
            # cluster's sample burst.
            candidates = [
                v for v in trace.visits
                if v.arrival_s - 5.0 <= stop.arrival_s <= v.depart_s + 5.0
            ]
            if candidates and candidates[0].station_id == stop.station_id:
                audit.stops_correct += 1

    for segment_id, speed_kmh, t in report.estimates:
        truth_kmh = 3.6 * traffic.car_speed_ms(segment_id, t)
        audit.leg_speed_errors_kmh.append(speed_kmh - truth_kmh)
    return audit


def merge_audits(audits: List[PipelineAudit]) -> PipelineAudit:
    """Pool several audits into campaign-level totals."""
    if not audits:
        raise ValueError("nothing to merge")
    merged = PipelineAudit(trip_key=f"merged[{len(audits)}]")
    for audit in audits:
        merged.taps_heard += audit.taps_heard
        merged.samples_uploaded += audit.samples_uploaded
        merged.samples_accepted += audit.samples_accepted
        merged.samples_matched_correctly += audit.samples_matched_correctly
        merged.clusters += audit.clusters
        merged.clusters_pure += audit.clusters_pure
        merged.stops_identified += audit.stops_identified
        merged.stops_correct += audit.stops_correct
        merged.leg_speed_errors_kmh.extend(audit.leg_speed_errors_kmh)
    return merged
