"""Coverage accounting: which bus services buy which road segments.

§III-A motivates the whole design with bus-route coverage ("75% in
London, 79% in Singapore"); an operator extending the deployment wants
to know each service's marginal contribution and where the monitored
network is fragile (roads covered by a single service).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Set, Tuple

from repro.city.builder import City
from repro.city.road_network import SegmentId
from repro.core.traffic_map import TrafficMapEstimator


@dataclass(frozen=True)
class RouteContribution:
    """One service's coverage accounting (both directions pooled)."""

    service_name: str
    roads_covered: int          # physical roads this service traverses
    roads_exclusive: int        # covered by no other service
    stations_served: int

    @property
    def redundancy(self) -> float:
        """Fraction of this service's roads that others also cover."""
        if self.roads_covered == 0:
            return 0.0
        return 1.0 - self.roads_exclusive / self.roads_covered


def _roads_by_service(city: City) -> Dict[str, Set[Tuple[int, int]]]:
    roads: Dict[str, Set[Tuple[int, int]]] = {}
    for route in city.route_network.routes:
        bucket = roads.setdefault(route.service_name, set())
        for seg in route.segments:
            bucket.add(tuple(sorted(seg)))
    return roads


def route_contributions(city: City) -> List[RouteContribution]:
    """Per-service coverage accounting, sorted by roads covered."""
    roads = _roads_by_service(city)
    stations: Dict[str, Set[int]] = {}
    for route in city.route_network.routes:
        stations.setdefault(route.service_name, set()).update(
            route.station_sequence
        )
    contributions = []
    for service, covered in roads.items():
        others: Set[Tuple[int, int]] = set()
        for other, other_roads in roads.items():
            if other != service:
                others |= other_roads
        contributions.append(
            RouteContribution(
                service_name=service,
                roads_covered=len(covered),
                roads_exclusive=len(covered - others),
                stations_served=len(stations[service]),
            )
        )
    contributions.sort(key=lambda c: (-c.roads_covered, c.service_name))
    return contributions


def redundancy_histogram(city: City) -> Dict[int, int]:
    """How many physical roads are covered by exactly k services."""
    per_road: Dict[Tuple[int, int], Set[str]] = {}
    for route in city.route_network.routes:
        for seg in route.segments:
            per_road.setdefault(tuple(sorted(seg)), set()).add(route.service_name)
    histogram: Dict[int, int] = {}
    for services in per_road.values():
        histogram[len(services)] = histogram.get(len(services), 0) + 1
    return dict(sorted(histogram.items()))


def coverage_over_time(
    traffic_map: TrafficMapEstimator, times: Sequence[float]
) -> List[Tuple[float, float]]:
    """Published map coverage at each query time (fraction of all roads)."""
    if not times:
        raise ValueError("need at least one query time")
    return [
        (t, traffic_map.published_snapshot(t).coverage) for t in times
    ]
