"""Deployment analytics built on the system's outputs.

Tools a city operator running this system would reach for: coverage
accounting (which routes buy which roads), pipeline error attribution
(where accuracy is lost between beep and map), and congestion incident
detection on the fused speed series.
"""

from repro.analysis.attribution import PipelineAudit, audit_trip
from repro.analysis.fleet import (
    FleetHealthAnalytics,
    GhostDetector,
    HeadwayTracker,
    ODFlowMatrix,
    excess_wait_s,
)
from repro.analysis.coverage import (
    RouteContribution,
    coverage_over_time,
    redundancy_histogram,
    route_contributions,
)
from repro.analysis.incidents import Incident, IncidentDetector, detect_incidents
from repro.analysis.quality import (
    ParticipantScore,
    allocate_rewards,
    leaderboard,
    score_participants,
)

__all__ = [
    "PipelineAudit",
    "audit_trip",
    "FleetHealthAnalytics",
    "GhostDetector",
    "HeadwayTracker",
    "ODFlowMatrix",
    "excess_wait_s",
    "RouteContribution",
    "coverage_over_time",
    "redundancy_histogram",
    "route_contributions",
    "Incident",
    "IncidentDetector",
    "detect_incidents",
    "ParticipantScore",
    "allocate_rewards",
    "leaderboard",
    "score_participants",
]
