"""Origin–destination flow matrices from per-rider trip sequences.

Each mapped trip is one rider's journey: the first resolved stop is
their origin, the last their destination (the Wi-Fi/Bluetooth O-D
mining literature uses exactly this first-seen/last-seen convention).
Aggregated over a campaign the counts form the O-D flow matrix transit
planners use for demand estimation.

Cardinality is bounded twice: the exported ``od_flow_trips`` labeled
family is capped by the registry's ``max_children`` (overflow pairs
collapse into its ``_overflow`` child), and the tracker itself keeps at
most ``max_od_pairs`` exact pairs — trips beyond that aggregate into a
single overflow bucket so a million-rider campaign cannot grow the
matrix without bound.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.config import AnalyticsConfig

__all__ = ["ODFlowMatrix"]


class ODFlowMatrix:
    """Trip counts per (origin stop, destination stop) pair."""

    def __init__(self, config: Optional[AnalyticsConfig] = None):
        self.config = config or AnalyticsConfig()
        self._flows: Dict[Tuple[int, int], int] = {}
        self._overflow_trips = 0
        self._total_trips = 0

    def __len__(self) -> int:
        """Distinct exactly-tracked O-D pairs."""
        return len(self._flows)

    @property
    def total_trips(self) -> int:
        """Every observed trip, overflow included."""
        return self._total_trips

    @property
    def overflow_trips(self) -> int:
        """Trips aggregated beyond the ``max_od_pairs`` bound."""
        return self._overflow_trips

    def observe_trip(self, origin: int, dest: int) -> bool:
        """Count one rider journey; returns False if it hit overflow."""
        self._total_trips += 1
        key = (origin, dest)
        count = self._flows.get(key)
        if count is not None:
            self._flows[key] = count + 1
            return True
        if len(self._flows) >= self.config.max_od_pairs:
            self._overflow_trips += 1
            return False
        self._flows[key] = 1
        return True

    def trips(self, origin: int, dest: int) -> int:
        """Observed trips from ``origin`` to ``dest``."""
        return self._flows.get((origin, dest), 0)

    def top_flows(
        self, k: Optional[int] = None
    ) -> List[Tuple[int, int, int]]:
        """The ``k`` heaviest flows as (origin, dest, trips), sorted.

        Ordered by descending trip count, then (origin, dest) for a
        deterministic report.
        """
        if k is None:
            k = self.config.top_k_flows
        ranked = sorted(
            self._flows.items(), key=lambda kv: (-kv[1], kv[0])
        )
        return [(o, d, n) for (o, d), n in ranked[:k]]

    def as_dict(self, top_k: Optional[int] = None) -> Dict:
        """The JSON artifact shape (``repro analytics --json-out``)."""
        return {
            "total_trips": self._total_trips,
            "distinct_pairs": len(self._flows),
            "overflow_trips": self._overflow_trips,
            "top_flows": [
                {"origin": origin, "dest": dest, "trips": trips}
                for origin, dest, trips in self.top_flows(top_k)
            ],
        }

    def state_dict(self) -> Dict:
        """JSON-ready flow matrix (tuple keys flattened into rows)."""
        return {
            "flows": [
                [origin, dest, trips]
                for (origin, dest), trips in sorted(self._flows.items())
            ],
            "overflow_trips": self._overflow_trips,
            "total_trips": self._total_trips,
        }

    def restore_state(self, state: Dict) -> None:
        """Adopt the flow matrix from :meth:`state_dict`."""
        self._flows = {
            (int(origin), int(dest)): int(trips)
            for origin, dest, trips in state["flows"]
        }
        self._overflow_trips = int(state["overflow_trips"])
        self._total_trips = int(state["total_trips"])

    def reset(self) -> None:
        """Forget every flow."""
        self._flows.clear()
        self._overflow_trips = 0
        self._total_trips = 0
