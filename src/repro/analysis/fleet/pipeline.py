"""The fleet-health analytics stage: trips in, operator telemetry out.

:class:`FleetHealthAnalytics` sits after the single-writer merge in
:class:`~repro.core.server.BackendServer`: every mapped trip is folded
into three products —

* per-(route, stop) **headway series** (:mod:`.headways`), with live
  per-route bunching-rate and excess-wait-time gauges computed over a
  trailing :class:`~repro.obs.windows.SlidingWindowStats` window;
* **ghost-vehicle detection** (:mod:`.ghosts`), staleness-scored on
  every publish tick;
* the **O-D flow matrix** (:mod:`.odflows`).

Telemetry flows through the shared :class:`MetricsRegistry` as labeled
families (``headway_seconds{route,stop}``, ``bunching_rate{route}``,
``excess_wait_seconds{route}``, ``ghost_vehicles{route}``,
``ghost_last_seen_seconds{route}``, ``od_flow_trips{origin,dest}``),
so the HTTP exporter serves them for free; :meth:`samples` feeds the
alert engine on publish ticks and :meth:`report` renders the
fleet-health JSON document (``/fleet`` endpoint, ``repro analytics``).

None of the metric families carry a golden-trace whitelisted prefix,
so enabling the stage leaves recorded conformance traces byte-identical.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.city.routes import RouteNetwork
from repro.config import AnalyticsConfig
from repro.core.trip_mapping import MappedTrip
from repro.obs.metrics import MetricsRegistry, NULL_REGISTRY, NullRegistry
from repro.obs.windows import SlidingWindowStats, WindowSet

from repro.analysis.fleet.ghosts import GhostDetector
from repro.analysis.fleet.headways import HeadwayTracker, excess_wait_s
from repro.analysis.fleet.odflows import ODFlowMatrix

__all__ = ["FleetHealthAnalytics"]


class FleetHealthAnalytics:
    """Streams mapped trips into headway / ghost / O-D telemetry."""

    def __init__(
        self,
        route_network: RouteNetwork,
        config: Optional[AnalyticsConfig] = None,
        scheduled_headway_s: float = 600.0,
        *,
        registry: Optional[MetricsRegistry] = None,
    ):
        self.config = config or AnalyticsConfig()
        self.scheduled_headway_s = float(scheduled_headway_s)
        self._routes = {
            route.route_id: route for route in route_network.routes
        }
        self.headways = HeadwayTracker(
            self.config, scheduled_headway_s=self.scheduled_headway_s
        )
        self.ghosts = GhostDetector(
            self._routes, self.config,
            scheduled_headway_s=self.scheduled_headway_s,
        )
        self.od_flows = ODFlowMatrix(self.config)
        #: Trailing per-route headway moments for the live gauges.
        self.windows = self._make_windows()
        self._last_publish_s: Optional[float] = None

        reg = registry if registry is not None else NULL_REGISTRY
        self._observing = not isinstance(reg, NullRegistry)
        self._fam_headway = reg.labeled_gauge(
            "headway_seconds", ("route", "stop"),
            help="latest observed bus headway at each (route, stop)",
        )
        self._fam_bunching = reg.labeled_gauge(
            "bunching_rate", ("route",),
            help="fraction of trailing-window headways under the bunching "
                 "threshold",
        )
        self._fam_ewt = reg.labeled_gauge(
            "excess_wait_seconds", ("route",),
            help="trailing-window excess wait time over the timetable",
        )
        self._fam_ghosts = reg.labeled_gauge(
            "ghost_vehicles", ("route",),
            help="scheduled-but-unobserved vehicles per route",
        )
        self._fam_last_seen = reg.labeled_gauge(
            "ghost_last_seen_seconds", ("route",),
            help="seconds since each route last produced a bus event",
        )
        self._fam_od = reg.labeled_counter(
            "od_flow_trips", ("origin", "dest"),
            help="rider trips observed per origin-destination stop pair",
        )
        self._c_bus_events = reg.counter(
            "fleet_bus_events_total",
            help="distinct bus arrival events derived from mapped trips",
        )
        self._c_headways = reg.counter(
            "fleet_headways_observed_total",
            help="headway observations derived from bus events",
        )
        self._c_od_trips = reg.counter(
            "fleet_od_trips_total",
            help="rider trips folded into the O-D flow matrix",
        )
        self._g_ghost_routes = reg.gauge(
            "fleet_ghost_routes",
            help="routes currently reporting at least one ghost vehicle",
        )

    def _make_windows(self) -> WindowSet:
        threshold = self.headways.bunching_threshold_s
        # Per-route reducers are also cached directly (bypassing the
        # WindowSet's per-call key construction) for the ingest hot path.
        self._route_window_cache: Dict[str, SlidingWindowStats] = {}
        return WindowSet(
            window_s=self.config.window_s,
            buckets=self.config.window_buckets,
            factory=lambda w, b: SlidingWindowStats(
                w, b, mark_below=threshold
            ),
        )

    def _route_window(self, route_id: str) -> SlidingWindowStats:
        win = self._route_window_cache.get(route_id)
        if win is None:
            win = self.windows.window("route_headways", route=route_id)
            self._route_window_cache[route_id] = win
        return win

    def bind_schedule(self, headway_s: float) -> None:
        """Adopt a different dispatch headway (``--headway`` overrides).

        Must happen before ingest: the bunching threshold is baked into
        the window reducers, so the (still empty) windows are rebuilt.
        """
        if headway_s <= 0:
            raise ValueError("scheduled headway must be positive")
        if headway_s == self.scheduled_headway_s:
            return
        self.scheduled_headway_s = float(headway_s)
        self.headways.scheduled_headway_s = float(headway_s)
        self.ghosts.scheduled_headway_s = float(headway_s)
        self.windows = self._make_windows()

    # -- ingestion -----------------------------------------------------------

    def observe_trip(
        self, mapped: Optional[MappedTrip], route_id: Optional[str]
    ) -> None:
        """Fold one mapped trip in (called after the single-writer merge).

        ``route_id`` is the trip's dominant route (None when no leg
        could be attributed); headway/ghost products need it, the O-D
        matrix only needs the stop sequence.  All timing comes from the
        mapped stops' arrival times, not the ingest clock.
        """
        if mapped is None or len(mapped.stops) < 2:
            return
        observing = self._observing
        first = mapped.stops[0]
        last = mapped.stops[-1]
        if first.station_id != last.station_id:
            self.od_flows.observe_trip(first.station_id, last.station_id)
            if observing:
                self._c_od_trips.inc()
                self._fam_od.labels(
                    str(first.station_id), str(last.station_id)
                ).inc()
        route = self._routes.get(route_id) if route_id is not None else None
        if route is None:
            return
        # The window reducer is always fed (the alert path reads it even
        # with the null registry); the registry instruments only when a
        # real registry is attached — the server's _observing pattern.
        window = self._route_window(route_id)
        station_order = route.station_order
        observe_arrival = self.headways.observe_arrival
        events_before = len(self.headways)
        latest_seen: Optional[float] = None
        for stop in mapped.stops:
            if station_order(stop.station_id) is None:
                continue                  # mapped onto a different route
            arrival_s = stop.arrival_s
            observed = observe_arrival(route_id, stop.station_id, arrival_s)
            # A deduplicated arrival is still a sighting of the bus.
            if latest_seen is None or arrival_s > latest_seen:
                latest_seen = arrival_s
            for _, stop_id, gap, at in observed:
                window.add(gap, now=at)
                if observing:
                    self._c_headways.inc()
                    self._fam_headway.labels(route_id, str(stop_id)).set(gap)
        if latest_seen is not None:
            self.ghosts.observe_event(route_id, latest_seen)
        if observing:
            new_events = len(self.headways) - events_before
            if new_events:
                self._c_bus_events.inc(new_events)

    # -- publishing ----------------------------------------------------------

    def observe_publish(self, now_s: float) -> None:
        """Refresh every live gauge at a publish tick."""
        self._last_publish_s = now_s
        self.ghosts.observe_tick(now_s)
        ghost_routes = 0
        for route_id in self._routes:
            status = self.ghosts.assess_route(route_id, now_s)
            if status["ghost_vehicles"] >= 1.0:
                ghost_routes += 1
            if not self._observing:
                continue
            self._fam_ghosts.labels(route_id).set(status["ghost_vehicles"])
            self._fam_last_seen.labels(route_id).set(
                status["last_seen_age_s"]
            )
            stats = self._route_window(route_id).stats(now_s)
            self._fam_bunching.labels(route_id).set(stats["below_rate"])
            self._fam_ewt.labels(route_id).set(excess_wait_s(
                stats["mean"], stats["second_moment"],
                self.scheduled_headway_s,
            ))
        self._g_ghost_routes.set(ghost_routes)

    # -- reading -------------------------------------------------------------

    def samples(
        self, now_s: float
    ) -> List[Tuple[str, Dict[str, str], float]]:
        """Alert-engine samples: the live per-route health indicators.

        Always computed from live state (never the registry), so the
        alert loop works with the null registry too — mirroring
        :meth:`~repro.core.freshness.FreshnessTracker.samples`.
        """
        self.ghosts.observe_tick(now_s)
        out: List[Tuple[str, Dict[str, str], float]] = []
        for route_id in sorted(self._routes):
            labels = {"route": route_id}
            status = self.ghosts.assess_route(route_id, now_s)
            out.append(
                ("ghost_vehicles", labels, status["ghost_vehicles"])
            )
            out.append(
                ("ghost_last_seen_seconds", labels,
                 status["last_seen_age_s"])
            )
            stats = self._route_window(route_id).stats(now_s)
            out.append(("bunching_rate", labels, stats["below_rate"]))
            out.append(("excess_wait_seconds", labels, excess_wait_s(
                stats["mean"], stats["second_moment"],
                self.scheduled_headway_s,
            )))
        return out

    def report(
        self, now_s: Optional[float] = None, top_k: Optional[int] = None
    ) -> Dict:
        """The fleet-health JSON document (``/fleet``, ``repro analytics``).

        Per-route rows combine the *cumulative* headway summary (the
        whole campaign) with the *live* ghost assessment at ``now_s``;
        ``now_s=None`` renders at the most recent publish tick (what
        the exporter thread serves).
        """
        if now_s is None:
            now_s = (
                self._last_publish_s
                if self._last_publish_s is not None else 0.0
            )
        self.ghosts.observe_tick(now_s)
        routes: Dict[str, Dict] = {}
        for route_id in sorted(self._routes):
            summary = self.headways.route_summary(route_id)
            status = self.ghosts.assess_route(route_id, now_s)
            routes[route_id] = {
                "bus_events": int(summary["bus_events"]),
                "headways": int(summary["headways"]),
                "mean_headway_s": round(summary["mean_headway_s"], 3),
                "bunching_rate": round(summary["bunching_rate"], 4),
                "excess_wait_s": round(summary["excess_wait_s"], 3),
                "ghost_vehicles": int(status["ghost_vehicles"]),
                "staleness_score": round(status["staleness_score"], 4),
                "last_seen_age_s": round(status["last_seen_age_s"], 3),
            }
        return {
            "at_s": now_s,
            "scheduled_headway_s": self.scheduled_headway_s,
            "bunching_threshold_s": self.headways.bunching_threshold_s,
            "routes": routes,
            "ghost_routes": sorted(
                route_id
                for route_id, row in routes.items()
                if row["ghost_vehicles"] >= 1
            ),
            "od": self.od_flows.as_dict(
                top_k if top_k is not None else self.config.top_k_flows
            ),
        }

    # -- durable-state codec ---------------------------------------------------

    def state_dict(self) -> Dict:
        """JSON-ready analytics state for the durable store."""
        return {
            "scheduled_headway_s": self.scheduled_headway_s,
            "headways": self.headways.state_dict(),
            "ghosts": self.ghosts.state_dict(),
            "od_flows": self.od_flows.state_dict(),
            "windows": self.windows.state_dict(),
            "last_publish_s": self._last_publish_s,
        }

    def restore_state(self, state: Dict) -> None:
        """Adopt analytics state from :meth:`state_dict`.

        The scheduled headway is applied first — the bunching threshold
        is baked into the window reducers, so the (empty) windows are
        rebuilt with the restored schedule before their contents load.
        This also clears the per-route reducer cache, so hot-path
        lookups repopulate against the restored window objects.
        """
        headway = float(state["scheduled_headway_s"])
        self.scheduled_headway_s = headway
        self.headways.scheduled_headway_s = headway
        self.ghosts.scheduled_headway_s = headway
        self.windows = self._make_windows()
        self.headways.restore_state(state["headways"])
        self.ghosts.restore_state(state["ghosts"])
        self.od_flows.restore_state(state["od_flows"])
        self.windows.restore_state(state["windows"])
        last = state["last_publish_s"]
        self._last_publish_s = None if last is None else float(last)

    def reset(self) -> None:
        """Forget all analytics state (between back-to-back campaigns)."""
        self.headways.reset()
        self.ghosts.reset()
        self.od_flows.reset()
        self.windows.reset()
        self._last_publish_s = None
