"""Fleet-health analytics: headways, ghost buses, O-D flows.

A pipeline stage over matched/clustered/mapped rider trips producing
the telemetry a transit operator watches: per-route headway series with
bunching rate and excess wait time, ghost-vehicle detection against the
dispatch schedule, and origin–destination flow matrices.  See
:class:`FleetHealthAnalytics` for the wiring.
"""

from repro.analysis.fleet.ghosts import GhostDetector, RouteGhostStatus
from repro.analysis.fleet.headways import (
    HeadwayObservation,
    HeadwayTracker,
    excess_wait_s,
)
from repro.analysis.fleet.odflows import ODFlowMatrix
from repro.analysis.fleet.pipeline import FleetHealthAnalytics

__all__ = [
    "FleetHealthAnalytics",
    "GhostDetector",
    "HeadwayObservation",
    "HeadwayTracker",
    "ODFlowMatrix",
    "RouteGhostStatus",
    "excess_wait_s",
]
