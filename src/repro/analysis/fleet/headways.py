"""Per-route headway series from crowd-observed stop arrivals.

The matched, clustered, mapped trips already pin when *a bus* served
each stop — several riders on the same bus produce near-identical
arrival times, so the tracker first collapses mapped arrivals at one
``(route, stop)`` into distinct *bus events*: an arrival within
``arrival_dedup_s`` of an existing event is the same vehicle seen by
another rider.  Consecutive bus events at a stop are then a headway
observation, the raw material for the two standard fleet-health
indicators:

* **bunching rate** — the fraction of observed headways shorter than
  ``bunching_factor × scheduled headway`` (buses travelling in convoy);
* **excess wait time (EWT)** — the mean extra wait a random rider pays
  over the timetable, ``E[H²] / 2E[H] − H_sched / 2``: the first term
  is the random-incidence expected wait over the observed headway
  distribution, the second the wait a perfectly even service would
  give.

The tracker keeps the bounded per-stop event lists and answers report
queries exactly from them; the *live* windowed gauges are fed from the
incremental observations :meth:`HeadwayTracker.observe_arrival`
returns (see :class:`~repro.analysis.fleet.pipeline.FleetHealthAnalytics`).
"""

from __future__ import annotations

import bisect
from typing import Dict, List, Optional, Tuple

from repro.config import AnalyticsConfig

__all__ = ["HeadwayObservation", "HeadwayTracker", "excess_wait_s"]

#: One derived headway: (route, stop, gap seconds, time of the later bus).
HeadwayObservation = Tuple[str, int, float, float]


class HeadwayTracker:
    """Distinct bus-arrival events and the headways between them."""

    def __init__(
        self,
        config: Optional[AnalyticsConfig] = None,
        scheduled_headway_s: float = 600.0,
    ):
        if scheduled_headway_s <= 0:
            raise ValueError("scheduled headway must be positive")
        self.config = config or AnalyticsConfig()
        self.scheduled_headway_s = float(scheduled_headway_s)
        #: (route, stop) -> sorted distinct bus-event times (bounded).
        self._events: Dict[Tuple[str, int], List[float]] = {}
        self._total_events = 0

    def __len__(self) -> int:
        """Total distinct bus events across every (route, stop); O(1) —
        it is consulted on the ingest hot path after every trip."""
        return self._total_events

    @property
    def bunching_threshold_s(self) -> float:
        """Headways below this count as bunched."""
        return self.config.bunching_factor * self.scheduled_headway_s

    def observe_arrival(
        self, route_id: str, stop_id: int, t: float
    ) -> List[HeadwayObservation]:
        """Fold one mapped arrival in; returns any *new* headways.

        A rider re-observing an already known bus event (within the
        dedup window) produces nothing.  A genuinely new event yields
        its gap to the preceding event and — when a late-delivered
        upload lands between two known events — the gap to the
        following event as well, so the windowed gauges see both halves
        of the split interval.
        """
        key = (route_id, stop_id)
        events = self._events.get(key)
        if events is None:
            events = self._events[key] = []
        idx = bisect.bisect_left(events, t)
        dedup = self.config.arrival_dedup_s
        if idx < len(events) and events[idx] - t <= dedup:
            return []
        if idx > 0 and t - events[idx - 1] <= dedup:
            return []
        events.insert(idx, t)
        self._total_events += 1
        if len(events) > self.config.max_arrivals_per_stop:
            del events[0]
            idx -= 1
            self._total_events -= 1
        observed: List[HeadwayObservation] = []
        if idx > 0:
            observed.append((route_id, stop_id, t - events[idx - 1], t))
        if idx + 1 < len(events):
            later = events[idx + 1]
            observed.append((route_id, stop_id, later - t, later))
        return observed

    # -- reading -------------------------------------------------------------

    def headways(self, route_id: str, stop_id: int) -> List[float]:
        """Successive bus-event gaps at one (route, stop), in time order."""
        events = self._events.get((route_id, stop_id), [])
        return [b - a for a, b in zip(events, events[1:])]

    def last_headway(self, route_id: str, stop_id: int) -> Optional[float]:
        """The most recent observed headway at one (route, stop)."""
        events = self._events.get((route_id, stop_id), [])
        if len(events) < 2:
            return None
        return events[-1] - events[-2]

    def routes(self) -> List[str]:
        """Routes with at least one distinct bus event, sorted."""
        return sorted({route for route, _ in self._events})

    def stops(self, route_id: str) -> List[int]:
        """Stops of one route with at least one bus event, sorted."""
        return sorted(
            stop for route, stop in self._events if route == route_id
        )

    def route_summary(self, route_id: str) -> Dict[str, float]:
        """Cumulative headway statistics for one route.

        Keys: ``bus_events``, ``headways`` (count),
        ``mean_headway_s``, ``bunching_rate`` and ``excess_wait_s`` —
        the report-side counterparts of the windowed live gauges,
        recomputed exactly from the retained event lists.
        """
        count = 0
        events_total = 0
        total = 0.0
        sumsq = 0.0
        bunched = 0
        threshold = self.bunching_threshold_s
        for (route, _), events in self._events.items():
            if route != route_id:
                continue
            events_total += len(events)
            for a, b in zip(events, events[1:]):
                gap = b - a
                count += 1
                total += gap
                sumsq += gap * gap
                if gap < threshold:
                    bunched += 1
        mean = total / count if count else 0.0
        second = sumsq / count if count else 0.0
        return {
            "bus_events": float(events_total),
            "headways": float(count),
            "mean_headway_s": mean,
            "bunching_rate": bunched / count if count else 0.0,
            "excess_wait_s": excess_wait_s(
                mean, second, self.scheduled_headway_s
            ),
        }

    def state_dict(self) -> List:
        """JSON-ready event lists: ``[route, stop, [times...]]`` rows."""
        return [
            [route, stop, list(times)]
            for (route, stop), times in sorted(self._events.items())
        ]

    def restore_state(self, state: List) -> None:
        """Adopt event lists from :meth:`state_dict`."""
        self._events = {
            (str(route), int(stop)): [float(t) for t in times]
            for route, stop, times in state
        }
        self._total_events = sum(len(v) for v in self._events.values())

    def reset(self) -> None:
        """Forget every event (configuration is kept)."""
        self._events.clear()
        self._total_events = 0


def excess_wait_s(
    mean_headway_s: float, second_moment_s2: float, scheduled_headway_s: float
) -> float:
    """EWT from the first two headway moments (see module docstring).

    Zero when there is no data, clamped at zero when the observed
    service is *more* even than the timetable.
    """
    if mean_headway_s <= 0:
        return 0.0
    actual_wait = second_moment_s2 / (2.0 * mean_headway_s)
    scheduled_wait = scheduled_headway_s / 2.0
    return max(0.0, actual_wait - scheduled_wait)
