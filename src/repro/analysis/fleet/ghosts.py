"""Ghost-vehicle detection: scheduled buses the crowd never saw.

A *ghost bus* is a vehicle the schedule promises but no rider observes
— cancelled, stuck, or severely off-route.  Riders are the only sensor
here, so detection is staleness scoring of expected-vs-observed
arrivals: every route should produce a fresh bus event roughly once per
scheduled headway, and a route whose last observed event is older than
``ghost_staleness_factor × headway`` has started swallowing departures.

Scoring (per route, at assessment time ``now``):

* ``last_seen_age_s`` — ``now − last observed bus event`` (routes never
  observed age from the detector's epoch, the first publish tick, so a
  dead route alerts without ever producing data);
* ``staleness_score`` — ``age / (factor × headway)``; ≥ 1 means the
  route is ghosting;
* ``ghost_vehicles`` — the departures the schedule owed us during the
  stale age, ``floor(age / headway)`` once the score crosses 1, capped
  at ``max_ghosts_per_route`` so a dead route alerts instead of
  counting to infinity.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.config import AnalyticsConfig

__all__ = ["GhostDetector", "RouteGhostStatus"]

RouteGhostStatus = Dict[str, float]


class GhostDetector:
    """Per-route staleness scoring against the dispatch schedule."""

    def __init__(
        self,
        route_ids: Iterable[str],
        config: Optional[AnalyticsConfig] = None,
        scheduled_headway_s: float = 600.0,
    ):
        if scheduled_headway_s <= 0:
            raise ValueError("scheduled headway must be positive")
        self.config = config or AnalyticsConfig()
        self.scheduled_headway_s = float(scheduled_headway_s)
        self._route_ids = sorted(set(route_ids))
        #: Route -> most recent observed bus-event time.
        self._last_seen: Dict[str, float] = {}
        #: Epoch for never-observed routes: the first assessment tick.
        self._epoch_s: Optional[float] = None

    @property
    def route_ids(self) -> List[str]:
        return list(self._route_ids)

    def observe_event(self, route_id: str, t: float) -> None:
        """Record a distinct bus event on ``route_id`` at time ``t``."""
        last = self._last_seen.get(route_id)
        if last is None or t > last:
            self._last_seen[route_id] = t

    def observe_tick(self, now_s: float) -> None:
        """Pin the epoch (first publish tick) for never-seen routes."""
        if self._epoch_s is None:
            self._epoch_s = now_s

    def last_seen_age_s(self, route_id: str, now_s: float) -> float:
        """Seconds since the route last produced a bus event."""
        last = self._last_seen.get(route_id)
        if last is None:
            last = self._epoch_s if self._epoch_s is not None else now_s
        return max(0.0, now_s - last)

    def assess_route(self, route_id: str, now_s: float) -> RouteGhostStatus:
        """Staleness score and ghost count for one route (module doc)."""
        age = self.last_seen_age_s(route_id, now_s)
        headway = self.scheduled_headway_s
        tolerance = self.config.ghost_staleness_factor * headway
        score = age / tolerance if tolerance > 0 else 0.0
        ghosts = 0
        if score >= 1.0:
            ghosts = min(int(age // headway), self.config.max_ghosts_per_route)
        return {
            "last_seen_age_s": age,
            "staleness_score": score,
            "ghost_vehicles": float(ghosts),
        }

    def assess(self, now_s: float) -> Dict[str, RouteGhostStatus]:
        """Every route's ghost status at ``now_s``, keyed by route id."""
        self.observe_tick(now_s)
        return {
            route_id: self.assess_route(route_id, now_s)
            for route_id in self._route_ids
        }

    def ghost_routes(self, now_s: float) -> List[str]:
        """Routes currently reporting at least one ghost vehicle."""
        return [
            route_id
            for route_id, status in self.assess(now_s).items()
            if status["ghost_vehicles"] >= 1.0
        ]

    def state_dict(self) -> Dict:
        """JSON-ready observation history."""
        return {
            "last_seen": dict(sorted(self._last_seen.items())),
            "epoch_s": self._epoch_s,
        }

    def restore_state(self, state: Dict) -> None:
        """Adopt observation history from :meth:`state_dict`."""
        self._last_seen = {
            str(route): float(t) for route, t in state["last_seen"].items()
        }
        epoch = state["epoch_s"]
        self._epoch_s = None if epoch is None else float(epoch)

    def reset(self) -> None:
        """Forget observation history (route set and schedule are kept)."""
        self._last_seen.clear()
        self._epoch_s = None
