"""Participant data quality and incentive allocation.

§VI: "How to encourage bus riders participation for consistent and
good performance is important."  Any incentive scheme needs two
primitives this module provides:

* **scoring** — how much usable signal each participant contributed
  (accepted samples, stops resolved, road segments updated); and
* **allocation** — dividing a reward budget so that *marginal* coverage
  is what pays: a segment update is worth more the fewer other reports
  that segment received, which steers riders toward under-probed routes
  instead of piling onto the busiest one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Sequence, Tuple

from repro.city.road_network import SegmentId
from repro.core.server import TripReport


@dataclass
class ParticipantScore:
    """Contribution accounting for one participant (one phone)."""

    participant: str
    trips: int = 0
    samples: int = 0
    samples_accepted: int = 0
    stops_resolved: int = 0
    segments_updated: List[SegmentId] = field(default_factory=list)

    @property
    def acceptance_rate(self) -> float:
        """Fraction of uploaded samples the backend could use."""
        return self.samples_accepted / self.samples if self.samples else 0.0

    @property
    def distinct_segments(self) -> int:
        """Distinct road segments this participant's trips informed."""
        return len(set(self.segments_updated))


def participant_of(trip_key: str) -> str:
    """Participant identity from a trip key (``rider-<id>#<n>``)."""
    return trip_key.split("#", 1)[0]


def score_participants(reports: Sequence[TripReport]) -> Dict[str, ParticipantScore]:
    """Aggregate backend trip reports into per-participant scores."""
    scores: Dict[str, ParticipantScore] = {}
    for report in reports:
        who = participant_of(report.trip_key)
        score = scores.setdefault(who, ParticipantScore(participant=who))
        score.trips += 1
        score.samples += report.accepted_samples + report.discarded_samples
        score.samples_accepted += report.accepted_samples
        if report.mapped is not None:
            score.stops_resolved += len(report.mapped.stops)
        score.segments_updated.extend(seg for seg, _, _ in report.estimates)
    return scores


def allocate_rewards(
    scores: Mapping[str, ParticipantScore],
    budget: float,
) -> Dict[str, float]:
    """Split ``budget`` by marginal coverage value.

    Each segment update is worth ``1 / (total reports on that segment)``
    — the scarcer the coverage, the higher the unit value — and a
    participant's share is their summed value over all their updates.
    Participants contributing nothing usable receive nothing; if nobody
    contributed, the budget stays unspent (all-zero allocation).
    """
    if budget < 0:
        raise ValueError("budget must be non-negative")
    report_counts: Dict[SegmentId, int] = {}
    for score in scores.values():
        for segment in score.segments_updated:
            report_counts[segment] = report_counts.get(segment, 0) + 1

    values: Dict[str, float] = {}
    for who, score in scores.items():
        values[who] = sum(
            1.0 / report_counts[segment] for segment in score.segments_updated
        )
    total_value = sum(values.values())
    if total_value == 0.0:
        return {who: 0.0 for who in scores}
    return {who: budget * value / total_value for who, value in values.items()}


def leaderboard(
    scores: Mapping[str, ParticipantScore], top: int = 10
) -> List[Tuple[str, ParticipantScore]]:
    """Top contributors by distinct segments, then accepted samples."""
    if top < 1:
        raise ValueError("top must be >= 1")
    ranked = sorted(
        scores.items(),
        key=lambda kv: (-kv[1].distinct_segments, -kv[1].samples_accepted, kv[0]),
    )
    return ranked[:top]
