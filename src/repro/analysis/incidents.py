"""Congestion incident detection on the fused speed series.

§I lists congestion reduction among the system's motivations; the
operational counterpart is flagging when a road segment suddenly runs
far below its recent norm (an accident, a breakdown, a closed lane).

The detector compares each published speed against a rolling baseline
(median of the previous ``baseline_frames`` publications) and opens an
incident when the speed stays below ``drop_fraction`` of that baseline
for ``min_frames`` consecutive frames — a debounced relative-drop rule
robust to the daily profile (the baseline follows slow rush-hour
swings; incidents are abrupt).
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.city.road_network import SegmentId
from repro.core.traffic_map import TrafficMapEstimator


@dataclass(frozen=True)
class Incident:
    """A detected congestion incident on one segment."""

    segment_id: SegmentId
    start_s: float
    end_s: Optional[float]          # None: still open at series end
    baseline_kmh: float
    worst_speed_kmh: float

    @property
    def severity(self) -> float:
        """Relative speed loss at the worst point (0 = none, 1 = standstill)."""
        if self.baseline_kmh <= 0:
            return 0.0
        return 1.0 - self.worst_speed_kmh / self.baseline_kmh


class IncidentDetector:
    """Streaming relative-drop detector over one segment's speed series."""

    def __init__(
        self,
        baseline_frames: int = 8,
        drop_fraction: float = 0.6,
        min_frames: int = 2,
        lag_frames: int = 2,
    ):
        """``lag_frames`` excludes the most recent frames from the
        baseline: the fused map *glides* into an incident over a couple
        of publications (Bayesian smoothing), and without the lag that
        glide would erode the baseline and mask the drop."""
        if baseline_frames < 2:
            raise ValueError("baseline needs at least two frames")
        if not 0.0 < drop_fraction < 1.0:
            raise ValueError("drop_fraction must be in (0, 1)")
        if min_frames < 1:
            raise ValueError("min_frames must be >= 1")
        if lag_frames < 0:
            raise ValueError("lag_frames must be >= 0")
        self.baseline_frames = baseline_frames
        self.drop_fraction = drop_fraction
        self.min_frames = min_frames
        self.lag_frames = lag_frames

    def scan(
        self,
        segment_id: SegmentId,
        series: Sequence[Tuple[float, float]],
    ) -> List[Incident]:
        """Detect incidents in a (time, speed_kmh) series."""
        history: List[float] = []
        incidents: List[Incident] = []
        below_since: Optional[float] = None
        below_count = 0
        baseline_at_open = 0.0
        worst = float("inf")
        open_incident = False

        def close(end_time: Optional[float]) -> None:
            nonlocal open_incident, below_since, below_count, worst
            if open_incident:
                incidents.append(
                    Incident(
                        segment_id=segment_id,
                        start_s=below_since,
                        end_s=end_time,
                        baseline_kmh=baseline_at_open,
                        worst_speed_kmh=worst,
                    )
                )
            open_incident = False
            below_since = None
            below_count = 0
            worst = float("inf")

        for t, speed in series:
            if len(history) >= self.baseline_frames + self.lag_frames:
                window_end = len(history) - self.lag_frames
                baseline = statistics.median(
                    history[window_end - self.baseline_frames : window_end]
                )
                if speed < self.drop_fraction * baseline:
                    if below_since is None:
                        below_since = t
                        baseline_at_open = baseline
                    below_count += 1
                    worst = min(worst, speed)
                    if below_count >= self.min_frames:
                        open_incident = True
                else:
                    close(t)
            # Depressed frames must not drag the baseline down with them,
            # or a long incident would "normalise" itself.
            if below_since is None:
                history.append(speed)
        close(None)
        return incidents


def detect_incidents(
    traffic_map: TrafficMapEstimator,
    segment_ids: Sequence[SegmentId],
    times: Sequence[float],
    detector: Optional[IncidentDetector] = None,
) -> List[Incident]:
    """Scan published speed series of many segments for incidents."""
    if not times:
        raise ValueError("need query times")
    detector = detector or IncidentDetector()
    incidents: List[Incident] = []
    for segment_id in segment_ids:
        series = [
            (t, speed)
            for t in times
            if (speed := traffic_map.published_speed(segment_id, t)) is not None
        ]
        if len(series) > detector.baseline_frames:
            incidents.extend(detector.scan(segment_id, series))
    incidents.sort(key=lambda i: (i.start_s, i.segment_id))
    return incidents
