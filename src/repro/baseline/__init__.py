"""Baseline systems the paper compares against.

The paper's related work contrasts its cellular/beep approach with
GPS-probe systems (VTrack [22], taxi-fleet probes [8], [25]).  This
package implements that family: phones on buses sampling GPS with
urban-canyon error, map-matched onto the road network, producing
per-segment speed estimates — at GPS power cost.
"""

from repro.baseline.gps_probe import (
    GpsProbeEstimator,
    GpsTrace,
    MapMatcher,
    simulate_gps_probe_trace,
)

__all__ = [
    "GpsProbeEstimator",
    "GpsTrace",
    "MapMatcher",
    "simulate_gps_probe_trace",
]
