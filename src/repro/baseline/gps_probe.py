"""A GPS-probe traffic estimator: the VTrack-style baseline.

The paper's related work ([8], [22], [25]) estimates traffic from GPS
traces of probe vehicles.  To compare against it on equal footing we
implement the full chain on our substrate:

* phones on buses sample **GPS at 0.5 Hz** (the rate the paper calls
  "already very low for vehicle tracking") through the urban-canyon
  error model of Fig. 1 (median 68 m on buses);
* fixes are **map-matched** to the nearest directed road segment,
  disambiguating direction with the displacement vector;
* consecutive fixes give a ground speed, converted to automobile speed
  through the same transit model and fused into a traffic map.

The two costs the paper attributes to this design — map-matching errors
from urban GPS noise and ~4–5× the phone power — are exactly what the
`bench_ablation_gps_baseline` bench measures.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.city.geometry import Point, distance_point_to_segment
from repro.city.road_network import RoadNetwork, SegmentId
from repro.config import FusionConfig, TrafficModelConfig
from repro.core.traffic_map import TrafficMapEstimator
from repro.core.traffic_model import TrafficModel
from repro.radio.gps import GpsCondition, GpsErrorModel
from repro.sim.bus import BusTripTrace
from repro.util.rng import SeedLike, ensure_rng


@dataclass(frozen=True)
class GpsFix:
    """One timestamped (noisy) GPS position."""

    time_s: float
    position: Point


@dataclass
class GpsTrace:
    """A phone's GPS track over one bus ride."""

    trip_id: str
    fixes: List[GpsFix]

    def __len__(self) -> int:
        return len(self.fixes)


def bus_position_at(trace: BusTripTrace, network: RoadNetwork, t: float) -> Optional[Point]:
    """Ground-truth bus position at time ``t`` (None outside the trip)."""
    if not trace.visits:
        return None
    if t < trace.visits[0].arrival_s or t > trace.visits[-1].arrival_s:
        return None
    for traversal in trace.traversals:
        if traversal.enter_s <= t <= traversal.exit_s:
            segment = network.segment(traversal.segment_id)
            duration = traversal.exit_s - traversal.enter_s
            frac = (t - traversal.enter_s) / duration if duration > 0 else 0.0
            return Point(
                segment.start.x + frac * (segment.end.x - segment.start.x),
                segment.start.y + frac * (segment.end.y - segment.start.y),
            )
    # Not on a segment: dwelling at whichever stop brackets t.
    for visit in trace.visits:
        if visit.arrival_s <= t <= visit.depart_s:
            node = visit.station_id
            return network.node_position(node)
    # Between records (numerical edges): snap to the nearest visit.
    nearest = min(trace.visits, key=lambda v: abs(v.arrival_s - t))
    return network.node_position(nearest.station_id)


def simulate_gps_probe_trace(
    trace: BusTripTrace,
    network: RoadNetwork,
    gps_model: Optional[GpsErrorModel] = None,
    rate_hz: float = 0.5,
    rng: SeedLike = None,
) -> GpsTrace:
    """Sample a noisy GPS track along a simulated bus trip."""
    if rate_hz <= 0:
        raise ValueError("rate must be positive")
    gps_model = gps_model or GpsErrorModel()
    rng = ensure_rng(rng)
    fixes: List[GpsFix] = []
    t = trace.visits[0].arrival_s
    end = trace.visits[-1].arrival_s
    period = 1.0 / rate_hz
    while t <= end:
        true_position = bus_position_at(trace, network, t)
        if true_position is not None:
            fixes.append(
                GpsFix(t, gps_model.fix(true_position, GpsCondition.ON_BUS, rng))
            )
        t += period
    return GpsTrace(trip_id=trace.trip_id, fixes=fixes)


class MapMatcher:
    """Nearest-segment map matching with direction disambiguation."""

    def __init__(self, network: RoadNetwork, max_snap_m: float = 250.0):
        self.network = network
        self.max_snap_m = max_snap_m
        self._segments = network.segments

    def match(
        self, position: Point, heading: Optional[Tuple[float, float]] = None
    ) -> Optional[SegmentId]:
        """Snap a fix to a directed segment.

        ``heading`` is the displacement unit vector since the previous
        fix; it selects between the two carriageways of a road.  Returns
        None when no segment is within ``max_snap_m``.
        """
        best_id: Optional[SegmentId] = None
        best_cost = self.max_snap_m
        for segment in self._segments:
            distance = distance_point_to_segment(position, segment.start, segment.end)
            if distance >= best_cost:
                continue
            if heading is not None:
                sx = segment.end.x - segment.start.x
                sy = segment.end.y - segment.start.y
                norm = math.hypot(sx, sy)
                alignment = (sx * heading[0] + sy * heading[1]) / norm if norm else 0.0
                if alignment <= 0:
                    continue            # wrong carriageway
            best_cost = distance
            best_id = segment.segment_id
        return best_id


class GpsProbeEstimator:
    """The complete GPS-probe baseline: traces in, traffic map out."""

    #: Below this ground speed the probe is considered stopped (dwell,
    #: red light) and the pair is discarded, as VTrack-style systems do.
    MIN_MOVING_SPEED_MS = 1.5
    #: Above this the pair is a GPS glitch (teleporting fix).
    MAX_SPEED_MS = 40.0

    def __init__(
        self,
        network: RoadNetwork,
        fusion: Optional[FusionConfig] = None,
        model: Optional[TrafficModelConfig] = None,
    ):
        self.network = network
        self.matcher = MapMatcher(network)
        self.model = TrafficModel(model)
        self.traffic_map = TrafficMapEstimator(network, fusion)
        self.pairs_used = 0
        self.pairs_discarded = 0

    def ingest(self, trace: GpsTrace) -> int:
        """Process one GPS track; returns the number of speed updates."""
        updates = 0
        for prev, cur in zip(trace.fixes, trace.fixes[1:]):
            dt = cur.time_s - prev.time_s
            if dt <= 0:
                continue
            dx = cur.position.x - prev.position.x
            dy = cur.position.y - prev.position.y
            distance = math.hypot(dx, dy)
            speed = distance / dt
            if not (self.MIN_MOVING_SPEED_MS <= speed <= self.MAX_SPEED_MS):
                self.pairs_discarded += 1
                continue
            heading = (dx / distance, dy / distance) if distance else None
            midpoint = prev.position.midpoint(cur.position)
            segment_id = self.matcher.match(midpoint, heading)
            if segment_id is None:
                self.pairs_discarded += 1
                continue
            segment = self.network.segment(segment_id)
            # The probe is a bus: convert its running speed to automobile
            # speed with the same transit model the main system uses.
            btt = segment.length_m / speed
            estimate = self.model.estimate(
                btt, segment.length_m, segment.free_speed_ms
            )
            self.traffic_map.update(segment_id, estimate.speed_kmh, cur.time_s)
            self.pairs_used += 1
            updates += 1
        return updates
