"""Synthetic city generator modelled on the paper's deployment region.

The experiments ran in Jurong West, Singapore: a ~7 km x 4 km (25 km²)
area with a dense grid of roads, more than 100 bus stops, and 8 studied
bus services (§IV-A, Fig. 8).  :func:`build_city` generates a grid road
network of that scale, places two-sided stations, and lays out snaking
bus routes (one route object per direction) that mimic how real services
cross the area.

Everything is deterministic given the spec's seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.city.geometry import Point
from repro.city.road_network import NodeId, RoadClass, RoadNetwork
from repro.city.routes import BusRoute, RouteNetwork
from repro.city.stops import StopRegistry, make_two_sided_station
from repro.util.rng import ensure_rng

#: Bus services studied in the paper (§IV-A; route "103" is partial).
PAPER_SERVICES: Tuple[str, ...] = (
    "179", "199", "240", "243", "252", "257", "282", "103",
)


@dataclass(frozen=True)
class CitySpec:
    """Parameters of the synthetic deployment region."""

    name: str = "jurong-west"
    width_m: float = 7000.0
    height_m: float = 4000.0
    spacing_m: float = 420.0            # intersection spacing → stop spacing
    major_every: int = 3                # every k-th grid line is a major road
    services: Tuple[str, ...] = PAPER_SERVICES
    partial_services: Tuple[str, ...] = ("103",)  # truncated routes
    jogs_per_route: int = 2
    seed: int = 7


@dataclass
class City:
    """A fully built synthetic city."""

    spec: CitySpec
    network: RoadNetwork
    registry: StopRegistry
    route_network: RouteNetwork

    @property
    def name(self) -> str:
        """City name from the spec."""
        return self.spec.name

    @property
    def area_km2(self) -> float:
        """Region area in km²."""
        return self.spec.width_m * self.spec.height_m / 1e6

    def route_coverage_ratio(self) -> float:
        """Fraction of physical roads traversed by at least one route."""
        covered = {
            tuple(sorted(seg)) for seg in self.route_network.covered_segments()
        }
        total = len(self.network.undirected_segment_ids())
        return len(covered) / total if total else 0.0

    def multi_route_ratio(self, min_routes: int = 2) -> float:
        """Fraction of physical roads covered by ``min_routes``+ services.

        Both directions of one service count once per road.
        """
        per_service: Dict[Tuple[int, int], set] = {}
        for route in self.route_network.routes:
            for seg in route.segments:
                key = tuple(sorted(seg))
                per_service.setdefault(key, set()).add(route.service_name)
        total = len(self.network.undirected_segment_ids())
        hits = sum(1 for services in per_service.values() if len(services) >= min_routes)
        return hits / total if total else 0.0


class _Grid:
    """Row/column indexing over the grid road network."""

    def __init__(self, rows: int, cols: int, spacing: float):
        self.rows = rows
        self.cols = cols
        self.spacing = spacing

    def node_id(self, row: int, col: int) -> NodeId:
        if not (0 <= row < self.rows and 0 <= col < self.cols):
            raise IndexError(f"grid index ({row}, {col}) out of range")
        return row * self.cols + col

    def position(self, row: int, col: int) -> Point:
        return Point(col * self.spacing, row * self.spacing)


def build_city(spec: Optional[CitySpec] = None) -> City:
    """Generate the synthetic deployment region.

    Returns a :class:`City` with a grid road network, two-sided stations
    at every route-served intersection, and two directed routes per
    service in ``spec.services``.
    """
    spec = spec or CitySpec()
    rng = ensure_rng(spec.seed)
    rows = max(2, int(round(spec.height_m / spec.spacing_m)) + 1)
    cols = max(2, int(round(spec.width_m / spec.spacing_m)) + 1)
    grid = _Grid(rows, cols, spec.spacing_m)

    network = _build_grid_network(grid, spec)
    paths = _plan_route_paths(grid, spec, rng)

    # Stations at every node served by at least one route.
    served_nodes: Dict[NodeId, float] = {}
    for path in paths.values():
        for idx, node in enumerate(path):
            if node not in served_nodes:
                served_nodes[node] = _travel_heading(network, path, idx)

    registry = StopRegistry()
    for node, heading_rad in sorted(served_nodes.items()):
        row, col = divmod(node, cols)
        name = f"{spec.name.title()} Ave {row} / St {col}"
        registry.add_station(
            make_two_sided_station(node, name, network.node_position(node), heading_rad)
        )

    routes: List[BusRoute] = []
    for service, path in paths.items():
        routes.append(
            BusRoute(
                route_id=f"{service}-0",
                service_name=service,
                direction=0,
                node_path=path,
                network=network,
                registry=registry,
            )
        )
        routes.append(
            BusRoute(
                route_id=f"{service}-1",
                service_name=service,
                direction=1,
                node_path=list(reversed(path)),
                network=network,
                registry=registry,
            )
        )
    return City(spec, network, registry, RouteNetwork(routes))


def _build_grid_network(grid: _Grid, spec: CitySpec) -> RoadNetwork:
    network = RoadNetwork()
    for row in range(grid.rows):
        for col in range(grid.cols):
            network.add_node(grid.node_id(row, col), grid.position(row, col))
    for row in range(grid.rows):
        for col in range(grid.cols):
            node = grid.node_id(row, col)
            if col + 1 < grid.cols:
                cls = RoadClass.MAJOR if row % spec.major_every == 0 else RoadClass.MINOR
                network.add_road(node, grid.node_id(row, col + 1), cls)
            if row + 1 < grid.rows:
                cls = RoadClass.MAJOR if col % spec.major_every == 0 else RoadClass.MINOR
                network.add_road(node, grid.node_id(row + 1, col), cls)
    return network


def _plan_route_paths(
    grid: _Grid, spec: CitySpec, rng: np.random.Generator
) -> Dict[str, List[NodeId]]:
    """Snaking node paths, alternating east-west and north-south services."""
    paths: Dict[str, List[NodeId]] = {}
    ew_rows = _spread(grid.rows, sum(1 for i, _ in enumerate(spec.services) if i % 2 == 0))
    ns_cols = _spread(grid.cols, sum(1 for i, _ in enumerate(spec.services) if i % 2 == 1))
    ew_idx = ns_idx = 0
    for i, service in enumerate(spec.services):
        if i % 2 == 0:
            path = _snake_east_west(grid, ew_rows[ew_idx], spec.jogs_per_route, rng)
            ew_idx += 1
        else:
            path = _snake_north_south(grid, ns_cols[ns_idx], spec.jogs_per_route, rng)
            ns_idx += 1
        if service in spec.partial_services:
            keep = max(4, int(len(path) * 0.55))
            path = path[:keep]
        paths[service] = path
    return paths


def _spread(extent: int, count: int) -> List[int]:
    """``count`` distinct indices spread across ``range(extent)``."""
    if count <= 0:
        return []
    if count == 1:
        return [extent // 2]
    step = (extent - 1) / (count - 1)
    return sorted({min(extent - 1, int(round(i * step))) for i in range(count)})


def _snake_east_west(
    grid: _Grid, base_row: int, jogs: int, rng: np.random.Generator
) -> List[NodeId]:
    """Serpentine east-west route sweeping ``base_row`` and a neighbour row.

    Real Singapore services are long (often 15+ km) and double back
    through estates; a two-row serpentine reproduces both the length and
    the high road coverage of the paper's 8 studied routes.
    """
    second_row = base_row + 1 if base_row + 1 < grid.rows else base_row - 1
    path = [grid.node_id(base_row, col) for col in range(grid.cols)]
    path.extend(
        grid.node_id(second_row, col) for col in range(grid.cols - 1, -1, -1)
    )
    return _jitter_path(grid, path, jogs, rng)


def _snake_north_south(
    grid: _Grid, base_col: int, jogs: int, rng: np.random.Generator
) -> List[NodeId]:
    """Serpentine north-south route sweeping ``base_col`` and a neighbour."""
    second_col = base_col + 1 if base_col + 1 < grid.cols else base_col - 1
    path = [grid.node_id(row, base_col) for row in range(grid.rows)]
    path.extend(
        grid.node_id(row, second_col) for row in range(grid.rows - 1, -1, -1)
    )
    return _jitter_path(grid, path, jogs, rng)


def _jitter_path(
    grid: _Grid, path: List[NodeId], jogs: int, rng: np.random.Generator
) -> List[NodeId]:
    """Displace a few interior legs sideways so routes are not ruler-straight.

    A jog replaces node ``p[i]`` with a neighbour off the sweep line,
    keeping grid adjacency by inserting the two detour corners.
    """
    if jogs <= 0:
        return path
    result = list(path)
    candidates = list(range(2, len(result) - 2))
    rng.shuffle(candidates)
    applied = 0
    for i in candidates:
        if applied >= jogs:
            break
        prev_r, prev_c = divmod(result[i - 1], grid.cols)
        cur_r, cur_c = divmod(result[i], grid.cols)
        nxt_r, nxt_c = divmod(result[i + 1], grid.cols)
        detour: List[NodeId] = []
        if prev_r == cur_r == nxt_r and abs(nxt_c - prev_c) == 2:
            # Straight horizontal run: bump the middle node to a side row.
            side = cur_r + int(rng.choice([-1, 1]))
            if 0 <= side < grid.rows:
                detour = [
                    grid.node_id(side, prev_c),
                    grid.node_id(side, cur_c),
                    grid.node_id(side, nxt_c),
                ]
        elif prev_c == cur_c == nxt_c and abs(nxt_r - prev_r) == 2:
            # Straight vertical run: bump the middle node to a side column.
            side = cur_c + int(rng.choice([-1, 1]))
            if 0 <= side < grid.cols:
                detour = [
                    grid.node_id(prev_r, side),
                    grid.node_id(cur_r, side),
                    grid.node_id(nxt_r, side),
                ]
        if detour and not set(detour) & set(result):
            result[i : i + 1] = detour
            applied += 1
    return _dedupe_consecutive(result)


def _dedupe_consecutive(path: List[NodeId]) -> List[NodeId]:
    out = [path[0]]
    for node in path[1:]:
        if node != out[-1]:
            out.append(node)
    return out


def _travel_heading(network: RoadNetwork, path: Sequence[NodeId], idx: int) -> float:
    from repro.city.geometry import heading as _heading

    if idx + 1 < len(path):
        a, b = path[idx], path[idx + 1]
    else:
        a, b = path[idx - 1], path[idx]
    return _heading(network.node_position(a), network.node_position(b)) % (2 * np.pi)
