"""GTFS-flavoured transit feed export/import.

The paper's backend consumes public information: bus stop locations and
bus route operations "readily available on the web" (§III-A).  In
practice agencies publish this as GTFS.  This module writes the
synthetic city to a minimal GTFS feed (agency/stops/routes/trips/
stop_times) and reads such feeds back into a light
:class:`TransitFeed` structure the backend can consume, so the system
works against the standard interchange format rather than our internal
classes.

Coordinates are converted between the local planar frame and WGS84
around a Jurong-West anchor point.
"""

from __future__ import annotations

import csv
import math
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.city.builder import City
from repro.city.geometry import Point
from repro.util.units import hhmm

#: Anchor of the planar frame (Jurong West, Singapore).
ANCHOR_LAT = 1.340
ANCHOR_LON = 103.700
_M_PER_DEG_LAT = 111_320.0


def planar_to_wgs84(point: Point) -> Tuple[float, float]:
    """Convert local planar metres to (lat, lon) around the anchor."""
    lat = ANCHOR_LAT + point.y / _M_PER_DEG_LAT
    lon = ANCHOR_LON + point.x / (_M_PER_DEG_LAT * math.cos(math.radians(ANCHOR_LAT)))
    return lat, lon


def wgs84_to_planar(lat: float, lon: float) -> Point:
    """Convert (lat, lon) back to local planar metres."""
    y = (lat - ANCHOR_LAT) * _M_PER_DEG_LAT
    x = (lon - ANCHOR_LON) * _M_PER_DEG_LAT * math.cos(math.radians(ANCHOR_LAT))
    return Point(x, y)


@dataclass(frozen=True)
class FeedStop:
    """A stop row from ``stops.txt`` (one physical platform)."""

    stop_id: str
    name: str
    position: Point
    station_id: str


@dataclass(frozen=True)
class FeedTrip:
    """A trip from ``trips.txt`` + its ordered timed stops."""

    trip_id: str
    route_id: str
    stop_ids: Tuple[str, ...]
    arrival_s: Tuple[float, ...]


@dataclass
class TransitFeed:
    """Parsed GTFS-like feed: stops, route stop sequences, trips."""

    agency: str
    stops: Dict[str, FeedStop] = field(default_factory=dict)
    route_stop_sequences: Dict[str, List[str]] = field(default_factory=dict)
    trips: List[FeedTrip] = field(default_factory=list)

    def station_of(self, stop_id: str) -> str:
        """Parent-station id of a platform."""
        return self.stops[stop_id].station_id

    def validate(self) -> None:
        """Raise ``ValueError`` on referential or ordering problems."""
        for route_id, seq in self.route_stop_sequences.items():
            if len(seq) < 2:
                raise ValueError(f"route {route_id} has fewer than 2 stops")
            for stop_id in seq:
                if stop_id not in self.stops:
                    raise ValueError(f"route {route_id} references unknown stop {stop_id}")
        for trip in self.trips:
            if trip.route_id not in self.route_stop_sequences:
                raise ValueError(f"trip {trip.trip_id} references unknown route")
            if len(trip.stop_ids) != len(trip.arrival_s):
                raise ValueError(f"trip {trip.trip_id} has mismatched stop/time lengths")
            if any(b < a for a, b in zip(trip.arrival_s, trip.arrival_s[1:])):
                raise ValueError(f"trip {trip.trip_id} arrival times not monotonic")


def export_city(
    city: City,
    directory: str,
    trips: Optional[Sequence[FeedTrip]] = None,
    agency: str = "Repro Transit",
) -> None:
    """Write the city (and optional scheduled trips) as a GTFS-like feed."""
    os.makedirs(directory, exist_ok=True)

    with _writer(directory, "agency.txt") as out:
        out.writerow(["agency_id", "agency_name", "agency_timezone"])
        out.writerow(["repro", agency, "Asia/Singapore"])

    with _writer(directory, "stops.txt") as out:
        out.writerow(
            ["stop_id", "stop_name", "stop_lat", "stop_lon", "parent_station"]
        )
        for station in city.registry.stations:
            lat, lon = planar_to_wgs84(station.position)
            out.writerow(
                [f"ST{station.station_id:04d}", station.name, f"{lat:.6f}", f"{lon:.6f}", ""]
            )
            for platform in station.stops:
                plat, plon = planar_to_wgs84(platform.position)
                out.writerow(
                    [
                        platform.stop_id,
                        f"{station.name} ({platform.heading_label})",
                        f"{plat:.6f}",
                        f"{plon:.6f}",
                        f"ST{station.station_id:04d}",
                    ]
                )

    with _writer(directory, "routes.txt") as out:
        out.writerow(["route_id", "agency_id", "route_short_name", "route_type"])
        for route in city.route_network.routes:
            out.writerow([route.route_id, "repro", route.service_name, 3])

    with _writer(directory, "route_stops.txt") as out:
        # Non-standard helper table: route stop order without needing trips.
        out.writerow(["route_id", "stop_sequence", "stop_id"])
        for route in city.route_network.routes:
            for rs in route.stops:
                out.writerow([route.route_id, rs.order, rs.stop_id])

    trips = list(trips or [])
    with _writer(directory, "trips.txt") as out:
        out.writerow(["route_id", "service_id", "trip_id"])
        for trip in trips:
            out.writerow([trip.route_id, "WD", trip.trip_id])

    with _writer(directory, "stop_times.txt") as out:
        out.writerow(["trip_id", "arrival_time", "departure_time", "stop_id", "stop_sequence"])
        for trip in trips:
            for seq, (stop_id, arr) in enumerate(zip(trip.stop_ids, trip.arrival_s)):
                stamp = hhmm(arr) + ":00"
                out.writerow([trip.trip_id, stamp, stamp, stop_id, seq])


def import_feed(directory: str) -> TransitFeed:
    """Read a feed written by :func:`export_city` (or hand-authored)."""
    agency = "unknown"
    agency_path = os.path.join(directory, "agency.txt")
    if os.path.exists(agency_path):
        rows = _read(agency_path)
        if rows:
            agency = rows[0].get("agency_name", agency)

    feed = TransitFeed(agency=agency)

    for row in _read(os.path.join(directory, "stops.txt")):
        parent = row.get("parent_station", "")
        if not parent:
            continue  # station rows carry no platform of their own
        position = wgs84_to_planar(float(row["stop_lat"]), float(row["stop_lon"]))
        feed.stops[row["stop_id"]] = FeedStop(
            stop_id=row["stop_id"],
            name=row["stop_name"],
            position=position,
            station_id=parent,
        )

    sequences: Dict[str, List[Tuple[int, str]]] = {}
    route_stops_path = os.path.join(directory, "route_stops.txt")
    if os.path.exists(route_stops_path):
        for row in _read(route_stops_path):
            sequences.setdefault(row["route_id"], []).append(
                (int(row["stop_sequence"]), row["stop_id"])
            )
    for route_id, pairs in sequences.items():
        feed.route_stop_sequences[route_id] = [s for _, s in sorted(pairs)]

    trip_routes: Dict[str, str] = {}
    trips_path = os.path.join(directory, "trips.txt")
    if os.path.exists(trips_path):
        for row in _read(trips_path):
            trip_routes[row["trip_id"]] = row["route_id"]

    timed: Dict[str, List[Tuple[int, str, float]]] = {}
    stop_times_path = os.path.join(directory, "stop_times.txt")
    if os.path.exists(stop_times_path):
        for row in _read(stop_times_path):
            hh, mm, ss = (int(part) for part in row["arrival_time"].split(":"))
            timed.setdefault(row["trip_id"], []).append(
                (int(row["stop_sequence"]), row["stop_id"], hh * 3600.0 + mm * 60 + ss)
            )
    for trip_id, entries in timed.items():
        entries.sort()
        feed.trips.append(
            FeedTrip(
                trip_id=trip_id,
                route_id=trip_routes.get(trip_id, ""),
                stop_ids=tuple(stop_id for _, stop_id, _ in entries),
                arrival_s=tuple(t for _, _, t in entries),
            )
        )

    feed.validate()
    return feed


def trips_from_traces(traces) -> List[FeedTrip]:
    """Convert simulated bus traces into GTFS trips (served stops only).

    Lets a simulation campaign publish its realised schedule as
    ``trips.txt``/``stop_times.txt`` — useful for feeding downstream
    GTFS tooling with what actually ran rather than the planned
    timetable.
    """
    feed_trips: List[FeedTrip] = []
    for trace in traces:
        served = [v for v in trace.visits if v.served]
        if len(served) < 2:
            continue
        feed_trips.append(
            FeedTrip(
                trip_id=trace.trip_id.replace("@", "-"),
                route_id=trace.route_id,
                stop_ids=tuple(v.stop_id for v in served),
                arrival_s=tuple(v.arrival_s for v in served),
            )
        )
    return feed_trips


class _writer:
    """Context manager yielding a csv writer for a feed file."""

    def __init__(self, directory: str, filename: str):
        self._path = os.path.join(directory, filename)
        self._handle = None

    def __enter__(self) -> "csv._writer":  # type: ignore[name-defined]
        self._handle = open(self._path, "w", newline="", encoding="utf-8")
        return csv.writer(self._handle)

    def __exit__(self, *exc) -> None:
        if self._handle is not None:
            self._handle.close()


def _read(path: str) -> List[Dict[str, str]]:
    with open(path, newline="", encoding="utf-8") as handle:
        return list(csv.DictReader(handle))
