"""Directed road network: intersections (nodes) and road segments (edges).

Road segments are *directed*: morning-peak congestion on the inbound
carriageway must not bleed into the outbound one.  Each segment carries
a road class and a free-flow speed; the ground-truth traffic field in
``repro.sim.traffic`` modulates speeds per segment over the day.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.city.geometry import Point
from repro.util.units import kmh_to_ms

NodeId = int
SegmentId = Tuple[NodeId, NodeId]


class RoadClass(Enum):
    """Functional class of a road, determining its free-flow speed."""

    MAJOR = "major"
    MINOR = "minor"


#: Default free-flow car speed by road class (m/s).
FREE_SPEED_MS: Dict[RoadClass, float] = {
    RoadClass.MAJOR: kmh_to_ms(65.0),
    RoadClass.MINOR: kmh_to_ms(50.0),
}


@dataclass(frozen=True)
class RoadSegment:
    """One directed carriageway between two adjacent intersections."""

    segment_id: SegmentId
    start: Point
    end: Point
    road_class: RoadClass
    free_speed_ms: float

    @property
    def length_m(self) -> float:
        """Segment length in metres."""
        return self.start.distance_to(self.end)

    @property
    def free_travel_time_s(self) -> float:
        """Free-flow traversal time in seconds (the model's ``a`` term)."""
        return self.length_m / self.free_speed_ms

    @property
    def reverse_id(self) -> SegmentId:
        """Identifier of the opposite carriageway."""
        return (self.segment_id[1], self.segment_id[0])


class RoadNetwork:
    """A directed graph of intersections and road segments.

    Nodes are integer ids with planar positions; every undirected road
    contributes two directed segments.  The class supports neighbour
    queries and shortest paths (used by the taxi fleet and the region
    inference extension).
    """

    def __init__(self) -> None:
        self._nodes: Dict[NodeId, Point] = {}
        self._segments: Dict[SegmentId, RoadSegment] = {}
        self._out: Dict[NodeId, List[NodeId]] = {}

    # -- construction -----------------------------------------------------

    def add_node(self, node_id: NodeId, position: Point) -> None:
        """Register an intersection.  Re-adding with a new position is an error."""
        existing = self._nodes.get(node_id)
        if existing is not None and existing != position:
            raise ValueError(f"node {node_id} already exists at {existing}")
        self._nodes[node_id] = position
        self._out.setdefault(node_id, [])

    def add_road(
        self,
        u: NodeId,
        v: NodeId,
        road_class: RoadClass = RoadClass.MINOR,
        free_speed_ms: Optional[float] = None,
    ) -> Tuple[RoadSegment, RoadSegment]:
        """Add a two-way road between nodes ``u`` and ``v``.

        Returns the pair of directed segments ``(u→v, v→u)``.
        """
        if u not in self._nodes or v not in self._nodes:
            raise KeyError("both endpoints must be added before the road")
        if u == v:
            raise ValueError("self-loop roads are not allowed")
        speed = free_speed_ms if free_speed_ms is not None else FREE_SPEED_MS[road_class]
        forward = RoadSegment((u, v), self._nodes[u], self._nodes[v], road_class, speed)
        backward = RoadSegment((v, u), self._nodes[v], self._nodes[u], road_class, speed)
        for seg in (forward, backward):
            if seg.segment_id not in self._segments:
                self._segments[seg.segment_id] = seg
                self._out[seg.segment_id[0]].append(seg.segment_id[1])
        return forward, backward

    # -- queries ----------------------------------------------------------

    @property
    def node_ids(self) -> List[NodeId]:
        """All intersection ids."""
        return list(self._nodes)

    @property
    def segments(self) -> List[RoadSegment]:
        """All directed segments."""
        return list(self._segments.values())

    @property
    def segment_ids(self) -> List[SegmentId]:
        """All directed segment ids."""
        return list(self._segments)

    def node_position(self, node_id: NodeId) -> Point:
        """Planar position of a node."""
        return self._nodes[node_id]

    def segment(self, segment_id: SegmentId) -> RoadSegment:
        """Look up a directed segment by id."""
        return self._segments[segment_id]

    def has_segment(self, segment_id: SegmentId) -> bool:
        """True if the directed segment exists."""
        return segment_id in self._segments

    def neighbors(self, node_id: NodeId) -> List[NodeId]:
        """Nodes reachable by one directed segment from ``node_id``."""
        return list(self._out.get(node_id, []))

    def total_length_m(self) -> float:
        """Total *undirected* road length in metres."""
        return sum(s.length_m for s in self._segments.values()) / 2.0

    def path_segments(self, nodes: Sequence[NodeId]) -> List[RoadSegment]:
        """Directed segments along a node path, validating adjacency."""
        segs: List[RoadSegment] = []
        for u, v in zip(nodes, nodes[1:]):
            if (u, v) not in self._segments:
                raise KeyError(f"no road segment {u}->{v}")
            segs.append(self._segments[(u, v)])
        return segs

    def shortest_path(self, origin: NodeId, goal: NodeId) -> List[NodeId]:
        """Free-flow-time shortest path (Dijkstra).  Raises if unreachable."""
        import heapq

        if origin not in self._nodes or goal not in self._nodes:
            raise KeyError("unknown node id")
        dist: Dict[NodeId, float] = {origin: 0.0}
        prev: Dict[NodeId, NodeId] = {}
        heap: List[Tuple[float, NodeId]] = [(0.0, origin)]
        visited: set = set()
        while heap:
            d, node = heapq.heappop(heap)
            if node in visited:
                continue
            visited.add(node)
            if node == goal:
                break
            for nxt in self._out[node]:
                seg = self._segments[(node, nxt)]
                nd = d + seg.free_travel_time_s
                if nd < dist.get(nxt, float("inf")):
                    dist[nxt] = nd
                    prev[nxt] = node
                    heapq.heappush(heap, (nd, nxt))
        if goal not in dist:
            raise ValueError(f"node {goal} unreachable from {origin}")
        path = [goal]
        while path[-1] != origin:
            path.append(prev[path[-1]])
        path.reverse()
        return path

    def undirected_segment_ids(self) -> List[SegmentId]:
        """One canonical id per physical road (the ``u < v`` direction)."""
        return [sid for sid in self._segments if sid[0] < sid[1]]
