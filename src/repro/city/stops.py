"""Bus stops and stations.

The paper aggregates the two physical stops that face each other across
a two-way road into a single location reference (§III-B): they have
nearly identical cellular fingerprints, and the travel direction is
recovered from trip timestamps.  We model both levels explicitly:

* :class:`BusStop` — one physical platform on one side of the road.
* :class:`Station` — the aggregated location (typically two platforms).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from repro.city.geometry import Point

StationId = int
StopId = str

#: Perpendicular offset of a platform from the road centreline (metres).
PLATFORM_OFFSET_M = 12.0


@dataclass(frozen=True)
class BusStop:
    """A physical bus stop platform.

    ``heading_rad`` is the direction of travel of buses serving this
    platform; the platform sits to the left of the carriageway.
    """

    stop_id: StopId
    station_id: StationId
    name: str
    position: Point
    heading_rad: float

    @property
    def heading_label(self) -> str:
        """Compass-ish label (E/N/W/S) of the travel direction."""
        octant = int(round(self.heading_rad / (math.pi / 2))) % 4
        return "ENWS"[octant]


@dataclass
class Station:
    """An aggregated stop location (both sides of the road)."""

    station_id: StationId
    name: str
    position: Point
    stops: List[BusStop] = field(default_factory=list)

    def platform_for_heading(self, heading_rad: float) -> BusStop:
        """The platform whose travel direction best matches ``heading_rad``."""
        if not self.stops:
            raise ValueError(f"station {self.station_id} has no platforms")
        def angular_gap(stop: BusStop) -> float:
            diff = abs(stop.heading_rad - heading_rad) % (2 * math.pi)
            return min(diff, 2 * math.pi - diff)
        return min(self.stops, key=angular_gap)


class StopRegistry:
    """Registry of all stations and platforms in a city.

    Provides the platform→station aggregation the backend relies on when
    treating opposite-side fingerprints as one location reference.
    """

    def __init__(self) -> None:
        self._stations: Dict[StationId, Station] = {}
        self._stops: Dict[StopId, BusStop] = {}

    def add_station(self, station: Station) -> None:
        """Register a station and all of its platforms."""
        if station.station_id in self._stations:
            raise ValueError(f"duplicate station id {station.station_id}")
        self._stations[station.station_id] = station
        for stop in station.stops:
            if stop.stop_id in self._stops:
                raise ValueError(f"duplicate stop id {stop.stop_id}")
            self._stops[stop.stop_id] = stop

    def add_platform(self, stop: BusStop) -> None:
        """Attach a platform to an existing station."""
        station = self._stations.get(stop.station_id)
        if station is None:
            raise KeyError(f"unknown station {stop.station_id}")
        if stop.stop_id in self._stops:
            raise ValueError(f"duplicate stop id {stop.stop_id}")
        station.stops.append(stop)
        self._stops[stop.stop_id] = stop

    # -- lookups ----------------------------------------------------------

    @property
    def stations(self) -> List[Station]:
        """All stations."""
        return list(self._stations.values())

    @property
    def platforms(self) -> List[BusStop]:
        """All physical platforms."""
        return list(self._stops.values())

    def station(self, station_id: StationId) -> Station:
        """Look up a station by id."""
        return self._stations[station_id]

    def platform(self, stop_id: StopId) -> BusStop:
        """Look up a platform by id."""
        return self._stops[stop_id]

    def station_of(self, stop_id: StopId) -> Station:
        """The station a platform belongs to."""
        return self._stations[self._stops[stop_id].station_id]

    def has_station(self, station_id: StationId) -> bool:
        """True if the station exists."""
        return station_id in self._stations

    def nearest_station(self, position: Point) -> Station:
        """Station closest to ``position`` (linear scan; registries are small)."""
        if not self._stations:
            raise ValueError("registry is empty")
        return min(
            self._stations.values(),
            key=lambda s: s.position.distance_to(position),
        )


def make_two_sided_station(
    station_id: StationId,
    name: str,
    position: Point,
    heading_rad: float,
    offset_m: float = PLATFORM_OFFSET_M,
) -> Station:
    """Build a station with platforms on both sides of a two-way road.

    The forward platform serves travel direction ``heading_rad``; the
    opposite platform serves the reverse direction, offset to the other
    side of the centreline.
    """
    normal = (-math.sin(heading_rad), math.cos(heading_rad))
    forward = BusStop(
        stop_id=f"S{station_id:04d}{_dir_char(heading_rad)}",
        station_id=station_id,
        name=name,
        position=position.offset(normal[0] * offset_m, normal[1] * offset_m),
        heading_rad=heading_rad,
    )
    reverse_heading = (heading_rad + math.pi) % (2 * math.pi)
    backward = BusStop(
        stop_id=f"S{station_id:04d}{_dir_char(reverse_heading)}",
        station_id=station_id,
        name=name,
        position=position.offset(-normal[0] * offset_m, -normal[1] * offset_m),
        heading_rad=reverse_heading,
    )
    return Station(station_id, name, position, [forward, backward])


def _dir_char(heading_rad: float) -> str:
    octant = int(round(heading_rad / (math.pi / 2))) % 4
    return "ENWS"[octant]
