"""Synthetic city substrate: road network, stops, routes, GTFS feed I/O."""

from repro.city.builder import City, CitySpec, PAPER_SERVICES, build_city
from repro.city.geometry import Point, Polyline
from repro.city.road_network import RoadClass, RoadNetwork, RoadSegment
from repro.city.routes import BusRoute, RouteNetwork, RouteStop
from repro.city.stops import BusStop, Station, StopRegistry, make_two_sided_station

__all__ = [
    "City",
    "CitySpec",
    "PAPER_SERVICES",
    "build_city",
    "Point",
    "Polyline",
    "RoadClass",
    "RoadNetwork",
    "RoadSegment",
    "BusRoute",
    "RouteNetwork",
    "RouteStop",
    "BusStop",
    "Station",
    "StopRegistry",
    "make_two_sided_station",
]
