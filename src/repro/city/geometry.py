"""Planar geometry primitives for the synthetic city.

The deployment region is small (a few km across), so we work in a local
planar coordinate frame in metres rather than latitude/longitude; the
GTFS exporter converts to WGS84 around an anchor point when needed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple


@dataclass(frozen=True, order=True)
class Point:
    """A point in the local planar frame, metres east/north of the origin."""

    x: float
    y: float

    def distance_to(self, other: "Point") -> float:
        """Euclidean distance in metres."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def offset(self, dx: float, dy: float) -> "Point":
        """Return this point translated by ``(dx, dy)`` metres."""
        return Point(self.x + dx, self.y + dy)

    def midpoint(self, other: "Point") -> "Point":
        """Midpoint of the segment to ``other``."""
        return Point((self.x + other.x) / 2.0, (self.y + other.y) / 2.0)

    def as_tuple(self) -> Tuple[float, float]:
        """Return ``(x, y)``."""
        return (self.x, self.y)


def heading(a: Point, b: Point) -> float:
    """Bearing from ``a`` to ``b`` in radians, measured from +x axis."""
    return math.atan2(b.y - a.y, b.x - a.x)


def unit_normal(a: Point, b: Point) -> Tuple[float, float]:
    """Unit vector perpendicular (left side) to the direction a→b."""
    length = a.distance_to(b)
    if length == 0:
        raise ValueError("cannot take the normal of a zero-length segment")
    return (-(b.y - a.y) / length, (b.x - a.x) / length)


class Polyline:
    """An ordered chain of points with arc-length interpolation."""

    def __init__(self, points: Sequence[Point]):
        if len(points) < 2:
            raise ValueError("a polyline needs at least two points")
        self.points: List[Point] = list(points)
        self._cumulative: List[float] = [0.0]
        for prev, cur in zip(self.points, self.points[1:]):
            self._cumulative.append(self._cumulative[-1] + prev.distance_to(cur))

    @property
    def length(self) -> float:
        """Total arc length in metres."""
        return self._cumulative[-1]

    def point_at(self, arc: float) -> Point:
        """Point at arc-length ``arc`` from the start (clamped to ends)."""
        if arc <= 0:
            return self.points[0]
        if arc >= self.length:
            return self.points[-1]
        # Binary search for the containing leg.
        lo, hi = 0, len(self._cumulative) - 1
        while lo + 1 < hi:
            mid = (lo + hi) // 2
            if self._cumulative[mid] <= arc:
                lo = mid
            else:
                hi = mid
        leg_start = self.points[lo]
        leg_end = self.points[lo + 1]
        leg_len = self._cumulative[lo + 1] - self._cumulative[lo]
        frac = (arc - self._cumulative[lo]) / leg_len if leg_len > 0 else 0.0
        return Point(
            leg_start.x + frac * (leg_end.x - leg_start.x),
            leg_start.y + frac * (leg_end.y - leg_start.y),
        )

    def sample(self, spacing: float) -> List[Point]:
        """Points every ``spacing`` metres along the line (both ends included)."""
        if spacing <= 0:
            raise ValueError("spacing must be positive")
        arcs = [i * spacing for i in range(int(self.length // spacing) + 1)]
        if arcs[-1] < self.length:
            arcs.append(self.length)
        return [self.point_at(a) for a in arcs]


def distance_point_to_segment(p: Point, a: Point, b: Point) -> float:
    """Distance from ``p`` to the line segment ``a``–``b``."""
    ax, ay = b.x - a.x, b.y - a.y
    length_sq = ax * ax + ay * ay
    if length_sq == 0:
        return p.distance_to(a)
    t = ((p.x - a.x) * ax + (p.y - a.y) * ay) / length_sq
    t = max(0.0, min(1.0, t))
    return p.distance_to(Point(a.x + t * ax, a.y + t * ay))


def path_length(points: Iterable[Point]) -> float:
    """Total length of a chain of points in metres."""
    pts = list(points)
    return sum(a.distance_to(b) for a, b in zip(pts, pts[1:]))


def bounding_box(points: Iterable[Point]) -> Tuple[Point, Point]:
    """Axis-aligned bounding box ``(lower_left, upper_right)``."""
    pts = list(points)
    if not pts:
        raise ValueError("bounding_box of an empty point set")
    xs = [p.x for p in pts]
    ys = [p.y for p in pts]
    return Point(min(xs), min(ys)), Point(max(xs), max(ys))
