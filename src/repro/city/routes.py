"""Bus routes over the road network.

A :class:`BusRoute` is one *direction* of a bus service: an ordered node
path through the road network together with the ordered list of served
stops.  The pair of directions of a service share a ``service_name``
(e.g. "179") but are distinct routes, matching how the backend treats
direction (recovered from timestamps, §III-A).

:class:`RouteNetwork` aggregates all routes and precomputes the
station-order relation ``R(x, y)`` that constrains per-trip mapping
(§III-C3), including feasible concatenations of routes at transfer
stations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.city.geometry import Point, heading
from repro.city.road_network import NodeId, RoadNetwork, SegmentId
from repro.city.stops import BusStop, Station, StationId, StopRegistry


@dataclass(frozen=True)
class RouteStop:
    """One served stop along a route, in route order."""

    order: int
    station_id: StationId
    stop_id: str
    node_id: NodeId
    cumulative_m: float


class BusRoute:
    """One direction of a bus service over the road network."""

    def __init__(
        self,
        route_id: str,
        service_name: str,
        direction: int,
        node_path: Sequence[NodeId],
        network: RoadNetwork,
        registry: StopRegistry,
        station_nodes: Optional[Dict[NodeId, StationId]] = None,
    ) -> None:
        """Build a route from a node path.

        ``station_nodes`` maps node ids to station ids for nodes that have
        a station; when omitted, every path node is expected to host a
        station whose id equals the node id.
        """
        if len(node_path) < 2:
            raise ValueError("a route needs at least two nodes")
        self.route_id = route_id
        self.service_name = service_name
        self.direction = direction
        self.node_path: List[NodeId] = list(node_path)
        self.segments: List[SegmentId] = [
            seg.segment_id for seg in network.path_segments(self.node_path)
        ]
        self._network = network
        self._registry = registry
        self.stops: List[RouteStop] = self._collect_stops(station_nodes)
        if len(self.stops) < 2:
            raise ValueError(f"route {route_id} serves fewer than two stops")
        self._station_order: Dict[StationId, int] = {
            rs.station_id: rs.order for rs in self.stops
        }

    def _collect_stops(
        self, station_nodes: Optional[Dict[NodeId, StationId]]
    ) -> List[RouteStop]:
        stops: List[RouteStop] = []
        cumulative = 0.0
        seen_stations: Set[StationId] = set()
        for idx, node in enumerate(self.node_path):
            if idx > 0:
                seg = self._network.segment(
                    (self.node_path[idx - 1], node)
                )
                cumulative += seg.length_m
            if station_nodes is not None:
                station_id = station_nodes.get(node)
                if station_id is None:
                    continue
            else:
                station_id = node
                if not self._registry.has_station(station_id):
                    continue
            if station_id in seen_stations:
                # Loop routes revisit their terminal; keep the first visit
                # so the station order map stays unambiguous.
                continue
            seen_stations.add(station_id)
            station = self._registry.station(station_id)
            platform = station.platform_for_heading(self._heading_at(idx))
            stops.append(
                RouteStop(
                    order=len(stops),
                    station_id=station_id,
                    stop_id=platform.stop_id,
                    node_id=node,
                    cumulative_m=cumulative,
                )
            )
        return stops

    def _heading_at(self, node_index: int) -> float:
        """Travel heading at a path node (outgoing leg, or incoming at the end)."""
        if node_index + 1 < len(self.node_path):
            a = self._network.node_position(self.node_path[node_index])
            b = self._network.node_position(self.node_path[node_index + 1])
        else:
            a = self._network.node_position(self.node_path[node_index - 1])
            b = self._network.node_position(self.node_path[node_index])
        return heading(a, b) % (2 * 3.141592653589793)

    # -- queries ----------------------------------------------------------

    @property
    def length_m(self) -> float:
        """Route length in metres."""
        return self.stops[-1].cumulative_m

    @property
    def station_sequence(self) -> List[StationId]:
        """Served stations in route order."""
        return [rs.station_id for rs in self.stops]

    def station_order(self, station_id: StationId) -> Optional[int]:
        """Index of a station along this route, or None if not served."""
        return self._station_order.get(station_id)

    def serves(self, station_id: StationId) -> bool:
        """True if this route serves the station."""
        return station_id in self._station_order

    def segments_between(self, from_order: int, to_order: int) -> List[SegmentId]:
        """Directed road segments between two served stops (by stop order)."""
        if not (0 <= from_order < to_order < len(self.stops)):
            raise ValueError("need 0 <= from < to < #stops")
        start_node = self.stops[from_order].node_id
        end_node = self.stops[to_order].node_id
        start_idx = self.node_path.index(start_node)
        end_idx = self.node_path.index(end_node)
        return [
            (u, v)
            for u, v in zip(
                self.node_path[start_idx:end_idx],
                self.node_path[start_idx + 1 : end_idx + 1],
            )
        ]

    def distance_between(self, from_order: int, to_order: int) -> float:
        """Road distance in metres between two served stops."""
        if not (0 <= from_order < to_order < len(self.stops)):
            raise ValueError("need 0 <= from < to < #stops")
        return self.stops[to_order].cumulative_m - self.stops[from_order].cumulative_m


class RouteNetwork:
    """All routes of a city plus the station-order relation.

    ``downstream(x, y)`` is true when a bus may pass station ``y`` after
    station ``x`` on a single route; ``reachable_with_transfer`` extends
    this over concatenations of routes that share a transfer station,
    which is what the paper's per-trip mapping allows (§III-C3).
    """

    def __init__(self, routes: Sequence[BusRoute]):
        if not routes:
            raise ValueError("route network needs at least one route")
        self.routes: List[BusRoute] = list(routes)
        self._by_id: Dict[str, BusRoute] = {r.route_id: r for r in self.routes}
        if len(self._by_id) != len(self.routes):
            raise ValueError("duplicate route ids")
        self._downstream: Dict[StationId, Set[StationId]] = {}
        for route in self.routes:
            seq = route.station_sequence
            for i, x in enumerate(seq):
                self._downstream.setdefault(x, set()).update(seq[i + 1 :])
        self._transfer_cache: Dict[Tuple[StationId, StationId], bool] = {}

    def route(self, route_id: str) -> BusRoute:
        """Look up a route by id."""
        return self._by_id[route_id]

    @property
    def route_ids(self) -> List[str]:
        """All route ids."""
        return list(self._by_id)

    @property
    def station_ids(self) -> List[StationId]:
        """All stations served by at least one route."""
        served: Set[StationId] = set()
        for route in self.routes:
            served.update(route.station_sequence)
        return sorted(served)

    def routes_serving(self, station_id: StationId) -> List[BusRoute]:
        """Routes that serve a station."""
        return [r for r in self.routes if r.serves(station_id)]

    def downstream(self, x: StationId, y: StationId) -> bool:
        """True if some single route passes ``y`` after ``x``."""
        return y in self._downstream.get(x, ())

    def reachable_with_transfer(self, x: StationId, y: StationId) -> bool:
        """True if ``y`` follows ``x`` on a feasible route concatenation.

        One transfer is considered (route A from ``x`` to a shared station
        ``t``, then route B from ``t`` to ``y``); deeper concatenations add
        nothing for single bus trips, which never change vehicle.
        """
        key = (x, y)
        cached = self._transfer_cache.get(key)
        if cached is not None:
            return cached
        result = False
        if self.downstream(x, y):
            result = True
        else:
            for t in self._downstream.get(x, ()):
                if self.downstream(t, y):
                    result = True
                    break
        self._transfer_cache[key] = result
        return result

    def covered_segments(self) -> Set[SegmentId]:
        """Directed road segments traversed by at least one route."""
        covered: Set[SegmentId] = set()
        for route in self.routes:
            covered.update(route.segments)
        return covered

    def segment_coverage_count(self) -> Dict[SegmentId, int]:
        """How many routes traverse each covered directed segment."""
        counts: Dict[SegmentId, int] = {}
        for route in self.routes:
            for seg in route.segments:
                counts[seg] = counts.get(seg, 0) + 1
        return counts
