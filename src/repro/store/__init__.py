"""Durable state tier: write-ahead upload ledger + snapshots.

A :class:`~repro.store.base.StateStore` persists two things for the
backend server:

* a **write-ahead log** (WAL) — one JSON record per applied event
  (trip upload, publish tick, campaign day marker), journaled *before*
  the in-memory mutation it describes;
* periodic **snapshots** — the server's full structured state at a
  quiescent sequence number.

Recovery is load-latest-snapshot + idempotent replay of the WAL tail
(every record carries a monotone ``seq``; replay skips anything at or
below the restored watermark).  Three backends share one contract:
in-memory (testing), sqlite, and a CRC-framed append-only log with
torn-write detection.  The no-store path stays zero-overhead behind
:data:`~repro.store.base.NULL_STORE`.
"""

from repro.store.base import (
    FSYNC_POLICIES,
    NULL_STORE,
    NullStateStore,
    StateStore,
    open_store,
)

__all__ = [
    "FSYNC_POLICIES",
    "NULL_STORE",
    "NullStateStore",
    "StateStore",
    "open_store",
]
