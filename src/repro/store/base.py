"""The :class:`StateStore` contract every durable backend implements.

The store speaks two languages: **WAL records** (small JSON dicts, one
per applied server event, each carrying a strictly increasing integer
``seq``) and **snapshots** (one big JSON document of the server's
structured state at a quiescent ``seq``).  The base class owns the
JSON codec, the monotonicity guard, and the observability (spans +
``store_*`` metrics through the shared registry/tracer); backends only
move canonical text to and from their medium via the ``_``-prefixed
hooks.

Backends ship with the package:

* :class:`~repro.store.memory.MemoryStateStore` — process-local, the
  conformance baseline;
* :class:`~repro.store.sqlite_store.SqliteStateStore` — one sqlite
  file, transactions per append;
* :class:`~repro.store.appendlog.AppendLogStateStore` — a directory
  with a CRC-framed append-only ``wal.log`` plus atomically renamed
  snapshot/meta files; detects and truncates torn tail records.

The no-store path is :data:`NULL_STORE` — shared no-op singleton, so a
server without persistence pays one ``isinstance`` at construction and
a cached boolean per ingest thereafter.
"""

from __future__ import annotations

import json
import time
from typing import Dict, Iterator, Optional, Tuple

from repro.obs.metrics import NULL_REGISTRY, MetricsRegistry, NullRegistry
from repro.obs.tracing import NULL_TRACER

__all__ = [
    "FSYNC_POLICIES",
    "NULL_STORE",
    "NullStateStore",
    "StateStore",
    "open_store",
]

#: Durability/latency trade for the durable backends:
#: ``always`` fsyncs every WAL append, ``batch`` flushes per append but
#: fsyncs only at snapshots / explicit ``sync()`` / ``close()``,
#: ``never`` leaves durability to the OS.  All three survive SIGKILL of
#: the process (writes are flushed to the kernel); they differ in what
#: survives a machine power cut.
FSYNC_POLICIES: Tuple[str, ...] = ("always", "batch", "never")

#: Filename suffixes routed to the sqlite backend by :func:`open_store`.
_SQLITE_SUFFIXES = (".db", ".sqlite", ".sqlite3")


class StateStore:
    """Write-ahead log + snapshots + metadata for one backend server.

    Public methods speak JSON dicts; subclasses implement the
    ``_``-prefixed hooks over ``(seq, canonical-text)`` pairs.  The WAL
    is strictly monotone: ``append_wal`` rejects any record whose
    ``seq`` is not greater than :meth:`last_seq`, which is what makes
    replay idempotence checkable at the storage layer too.
    """

    backend = "abstract"
    #: Whether state survives close + reopen of the same path.
    persistent = False

    def __init__(self) -> None:
        self._registry: MetricsRegistry = NULL_REGISTRY
        self._tracer = NULL_TRACER
        self._observing = False
        self._bind_instruments()

    # -- observability -------------------------------------------------------

    def bind_observability(self, registry=None, tracer=None) -> "StateStore":
        """Attach the run's registry/tracer; returns self for chaining."""
        if registry is not None:
            self._registry = registry
        if tracer is not None:
            self._tracer = tracer
        self._observing = not isinstance(self._registry, NullRegistry)
        self._bind_instruments()
        return self

    def _bind_instruments(self) -> None:
        reg = self._registry
        self._c_appends = reg.counter(
            "store_wal_appends_total", help="WAL records journaled"
        )
        self._c_append_bytes = reg.counter(
            "store_wal_bytes_total", help="WAL payload bytes journaled"
        )
        self._c_snapshots = reg.counter(
            "store_snapshots_total", help="server state snapshots written"
        )
        self._c_snapshot_bytes = reg.counter(
            "store_snapshot_bytes_total", help="snapshot payload bytes written"
        )
        self._h_append = reg.histogram(
            "store_wal_append_seconds", help="WAL append wall time"
        )
        self._h_snapshot = reg.histogram(
            "store_snapshot_seconds", help="snapshot write wall time"
        )

    # -- WAL -----------------------------------------------------------------

    def append_wal(self, record: Dict) -> int:
        """Journal one record; returns its ``seq``.

        ``record["seq"]`` must be an int strictly greater than
        :meth:`last_seq` — the single-writer server owns the numbering,
        the store only enforces it.
        """
        seq = record.get("seq")
        if not isinstance(seq, int) or isinstance(seq, bool):
            raise ValueError(f"WAL record needs an integer 'seq': {record!r}")
        last = self.last_seq()
        if seq <= last:
            raise ValueError(
                f"WAL seq must increase: got {seq}, last is {last}"
            )
        text = json.dumps(record, sort_keys=True, separators=(",", ":"))
        if self._observing:
            with self._tracer.span("store_wal_append"):
                t0 = time.perf_counter()
                self._append(seq, text)
                self._h_append.observe(time.perf_counter() - t0)
            self._c_appends.inc()
            self._c_append_bytes.inc(len(text))
        else:
            self._append(seq, text)
        return seq

    def wal_records(self, after_seq: int = 0) -> Iterator[Dict]:
        """All records with ``seq > after_seq``, in seq order."""
        for _, text in self._records(int(after_seq)):
            yield json.loads(text)

    def last_seq(self) -> int:
        """Highest journaled ``seq`` (0 for an empty log)."""
        return self._last_seq()

    # -- snapshots -----------------------------------------------------------

    def write_snapshot(self, seq: int, payload: Dict) -> None:
        """Persist ``payload`` as the state at watermark ``seq``."""
        text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        if self._observing:
            with self._tracer.span("store_snapshot"):
                t0 = time.perf_counter()
                self._write_snapshot(int(seq), text)
                self._h_snapshot.observe(time.perf_counter() - t0)
            self._c_snapshots.inc()
            self._c_snapshot_bytes.inc(len(text))
        else:
            self._write_snapshot(int(seq), text)

    def latest_snapshot(self) -> Optional[Tuple[int, Dict]]:
        """The newest complete snapshot as ``(seq, payload)``, or None."""
        found = self._latest_snapshot()
        if found is None:
            return None
        seq, text = found
        return seq, json.loads(text)

    # -- metadata ------------------------------------------------------------

    def get_meta(self, key: str) -> Optional[str]:
        """A small durable string (campaign config fingerprints)."""
        return self._get_meta(str(key))

    def set_meta(self, key: str, value: str) -> None:
        """Durably set a metadata string."""
        self._set_meta(str(key), str(value))

    # -- lifecycle -----------------------------------------------------------

    def sync(self) -> None:
        """Force pending writes to the medium (fsync/commit)."""
        self._sync()

    def close(self) -> None:
        """Flush and release the backend (idempotent)."""
        self._close()

    def __enter__(self) -> "StateStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- backend hooks -------------------------------------------------------

    def _append(self, seq: int, text: str) -> None:
        raise NotImplementedError

    def _records(self, after_seq: int) -> Iterator[Tuple[int, str]]:
        raise NotImplementedError

    def _last_seq(self) -> int:
        raise NotImplementedError

    def _write_snapshot(self, seq: int, text: str) -> None:
        raise NotImplementedError

    def _latest_snapshot(self) -> Optional[Tuple[int, str]]:
        raise NotImplementedError

    def _get_meta(self, key: str) -> Optional[str]:
        raise NotImplementedError

    def _set_meta(self, key: str, value: str) -> None:
        raise NotImplementedError

    def _sync(self) -> None:
        raise NotImplementedError

    def _close(self) -> None:
        raise NotImplementedError


class NullStateStore(StateStore):
    """The no-persistence store: everything is a no-op.

    The server branch-guards journaling on ``not isinstance(store,
    NullStateStore)``, so with this store the ingest hot path pays
    nothing — mirroring ``NULL_REGISTRY`` / ``NULL_TRACER``.
    """

    backend = "null"
    persistent = False

    def append_wal(self, record: Dict) -> int:  # pragma: no cover - guard
        return int(record.get("seq", 0))

    def wal_records(self, after_seq: int = 0) -> Iterator[Dict]:
        return iter(())

    def last_seq(self) -> int:
        return 0

    def write_snapshot(self, seq: int, payload: Dict) -> None:
        pass

    def latest_snapshot(self) -> Optional[Tuple[int, Dict]]:
        return None

    def get_meta(self, key: str) -> Optional[str]:
        return None

    def set_meta(self, key: str, value: str) -> None:
        pass

    def sync(self) -> None:
        pass

    def close(self) -> None:
        pass


#: Shared do-nothing store for the default (no ``--store``) path.
NULL_STORE = NullStateStore()


def _check_fsync(fsync: str) -> str:
    if fsync not in FSYNC_POLICIES:
        raise ValueError(
            f"unknown fsync policy {fsync!r}; choose from {FSYNC_POLICIES}"
        )
    return fsync


def open_store(
    path: str,
    backend: Optional[str] = None,
    fsync: str = "batch",
) -> StateStore:
    """Open (or create) a store at ``path``, inferring the backend.

    ``backend`` forces one of ``memory`` / ``sqlite`` / ``appendlog``;
    otherwise ``:memory:`` maps to the in-memory store, a sqlite-ish
    suffix (``.db`` / ``.sqlite`` / ``.sqlite3``) to sqlite, and
    anything else to an append-log directory.
    """
    from pathlib import Path

    _check_fsync(fsync)
    if backend is None:
        if path == ":memory:":
            backend = "memory"
        elif Path(path).is_dir():
            backend = "appendlog"
        elif Path(path).suffix.lower() in _SQLITE_SUFFIXES:
            backend = "sqlite"
        else:
            backend = "appendlog"
    if backend == "memory":
        from repro.store.memory import MemoryStateStore

        return MemoryStateStore()
    if backend == "sqlite":
        from repro.store.sqlite_store import SqliteStateStore

        return SqliteStateStore(path, fsync=fsync)
    if backend == "appendlog":
        from repro.store.appendlog import AppendLogStateStore

        return AppendLogStateStore(path, fsync=fsync)
    raise ValueError(f"unknown store backend {backend!r}")
