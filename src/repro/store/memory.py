"""The in-memory :class:`StateStore`: the conformance baseline.

Stores the same canonical text the durable backends persist (not live
object references), so everything that flows through it has round-
tripped the JSON codec exactly once — serialization bugs surface in
unit tests, not in crash drills.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from repro.store.base import StateStore

__all__ = ["MemoryStateStore"]


class MemoryStateStore(StateStore):
    """WAL, snapshots and metadata in process-local lists/dicts."""

    backend = "memory"
    persistent = False

    def __init__(self) -> None:
        super().__init__()
        self._wal: List[Tuple[int, str]] = []
        self._snapshots: List[Tuple[int, str]] = []
        self._meta: Dict[str, str] = {}
        self._closed = False

    def _append(self, seq: int, text: str) -> None:
        self._wal.append((seq, text))

    def _records(self, after_seq: int) -> Iterator[Tuple[int, str]]:
        for seq, text in self._wal:
            if seq > after_seq:
                yield seq, text

    def _last_seq(self) -> int:
        return self._wal[-1][0] if self._wal else 0

    def _write_snapshot(self, seq: int, text: str) -> None:
        # Keep only the newest snapshot (same retention as the durable
        # backends): recovery never reads older ones.
        self._snapshots = [(seq, text)]

    def _latest_snapshot(self) -> Optional[Tuple[int, str]]:
        return self._snapshots[-1] if self._snapshots else None

    def _get_meta(self, key: str) -> Optional[str]:
        return self._meta.get(key)

    def _set_meta(self, key: str, value: str) -> None:
        self._meta[key] = value

    def _sync(self) -> None:
        pass

    def _close(self) -> None:
        self._closed = True
