"""Append-only-log :class:`StateStore`: a directory of three files.

::

    <root>/wal.log        CRC-framed append-only WAL
    <root>/snapshot.json  latest snapshot (written tmp-then-rename)
    <root>/meta.json      metadata dict   (written tmp-then-rename)

Each WAL frame is ``<seq:u32><length:u32><crc32:u32>`` followed by
``length`` bytes of UTF-8 canonical JSON.  A crash can only damage the
*tail* of an append-only file, so recovery scans frames from the start
and truncates at the first one that is short (torn write), fails its
CRC (corrupted payload), or breaks seq monotonicity (garbage that
happens to parse) — everything before the bad frame is kept, which is
exactly the prefix the writer had acknowledged.

Snapshots and metadata go through ``os.replace`` so readers only ever
see a complete old or complete new file, never a half-written one; a
crash between tmp-write and rename leaves the previous snapshot as the
latest, and the WAL tail covers the difference.
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from pathlib import Path
from typing import Dict, Iterator, Optional, Tuple

from repro.store.base import StateStore, _check_fsync
from repro.store.faults import fault_point, faults_armed

__all__ = ["AppendLogStateStore"]

#: Frame header: record seq, payload length, payload CRC32.
_FRAME = struct.Struct("<III")


class AppendLogStateStore(StateStore):
    """Durable WAL in one append-only file plus atomic sidecar files."""

    backend = "appendlog"
    persistent = True

    def __init__(self, root: str, fsync: str = "batch"):
        super().__init__()
        self._fsync = _check_fsync(fsync)
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self._wal_path = self.root / "wal.log"
        self._snapshot_path = self.root / "snapshot.json"
        self._meta_path = self.root / "meta.json"
        #: Bytes dropped from the WAL tail at open (0 on a clean log).
        self.recovered_truncated_bytes = 0
        self._last, self._count = self._recover_wal()
        self._f = open(self._wal_path, "ab")
        self._closed = False

    # -- recovery ------------------------------------------------------------

    def _recover_wal(self) -> Tuple[int, int]:
        """Validate the log; truncate a torn/corrupt tail.  Returns
        (last good seq, record count)."""
        if not self._wal_path.exists():
            return 0, 0
        data = self._wal_path.read_bytes()
        offset = 0
        good_end = 0
        last = 0
        count = 0
        size = len(data)
        while offset + _FRAME.size <= size:
            seq, length, crc = _FRAME.unpack_from(data, offset)
            start = offset + _FRAME.size
            end = start + length
            if end > size:
                break                       # torn write: payload short
            payload = data[start:end]
            if zlib.crc32(payload) != crc:
                break                       # corrupted payload bytes
            if seq <= last:
                break                       # garbage frame that "parsed"
            last = seq
            count += 1
            offset = end
            good_end = end
        if good_end < size:
            self.recovered_truncated_bytes = size - good_end
            with open(self._wal_path, "r+b") as f:
                f.truncate(good_end)
                f.flush()
                os.fsync(f.fileno())
        return last, count

    # -- WAL -----------------------------------------------------------------

    def _append(self, seq: int, text: str) -> None:
        payload = text.encode("utf-8")
        header = _FRAME.pack(seq, len(payload), zlib.crc32(payload))
        if faults_armed("wal_append"):
            # Split the write so the armed crash lands between header
            # and payload — a genuinely torn frame on disk.
            self._f.write(header)
            self._f.flush()
            fault_point("wal_append")
            self._f.write(payload)
        else:
            self._f.write(header + payload)
        self._f.flush()
        if self._fsync == "always":
            os.fsync(self._f.fileno())
        self._last = seq
        self._count += 1

    def _records(self, after_seq: int) -> Iterator[Tuple[int, str]]:
        self._f.flush()
        data = self._wal_path.read_bytes()
        offset = 0
        size = len(data)
        while offset + _FRAME.size <= size:
            seq, length, _ = _FRAME.unpack_from(data, offset)
            start = offset + _FRAME.size
            end = start + length
            if end > size:
                break
            if seq > after_seq:
                yield seq, data[start:end].decode("utf-8")
            offset = end

    def _last_seq(self) -> int:
        return self._last

    # -- snapshots / metadata ------------------------------------------------

    def _replace(self, path: Path, blob: bytes, fault: Optional[str]) -> None:
        tmp = path.with_suffix(path.suffix + ".tmp")
        with open(tmp, "wb") as f:
            f.write(blob)
            f.flush()
            if self._fsync != "never":
                os.fsync(f.fileno())
        if fault is not None:
            fault_point(fault)
        os.replace(tmp, path)

    def _write_snapshot(self, seq: int, text: str) -> None:
        # The WAL must be durable up to the snapshot's watermark first,
        # or a crash could leave a snapshot "ahead" of its own log.
        self._f.flush()
        if self._fsync != "never":
            os.fsync(self._f.fileno())
        blob = json.dumps(
            {"seq": seq, "state": text}, separators=(",", ":")
        ).encode("utf-8")
        self._replace(self._snapshot_path, blob, fault="snapshot")

    def _latest_snapshot(self) -> Optional[Tuple[int, str]]:
        if not self._snapshot_path.exists():
            return None
        try:
            doc = json.loads(self._snapshot_path.read_text("utf-8"))
            return int(doc["seq"]), str(doc["state"])
        except (ValueError, KeyError, TypeError):
            # Unreadable snapshot: fall back to pure WAL replay rather
            # than refusing to start.  os.replace makes this path rare
            # (external corruption, not a crash).
            return None

    def _read_meta(self) -> Dict[str, str]:
        if not self._meta_path.exists():
            return {}
        try:
            doc = json.loads(self._meta_path.read_text("utf-8"))
        except ValueError:
            return {}
        return {str(k): str(v) for k, v in doc.items()}

    def _get_meta(self, key: str) -> Optional[str]:
        return self._read_meta().get(key)

    def _set_meta(self, key: str, value: str) -> None:
        meta = self._read_meta()
        meta[key] = value
        blob = json.dumps(meta, sort_keys=True, indent=1).encode("utf-8")
        self._replace(self._meta_path, blob, fault=None)

    # -- lifecycle -----------------------------------------------------------

    def _sync(self) -> None:
        if self._closed:
            return
        self._f.flush()
        if self._fsync != "never":
            os.fsync(self._f.fileno())

    def _close(self) -> None:
        if self._closed:
            return
        self._sync()
        self._f.close()
        self._closed = True
