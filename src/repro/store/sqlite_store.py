"""Sqlite :class:`StateStore`: one database file, one txn per append.

Sqlite already gives atomic commits and torn-write detection through
its own journal, so this backend is mostly schema + PRAGMA plumbing:

* ``wal(seq INTEGER PRIMARY KEY, record TEXT)`` — the upload ledger;
* ``snapshots(seq INTEGER PRIMARY KEY, payload TEXT)`` — only the
  newest row is retained;
* ``meta(key TEXT PRIMARY KEY, value TEXT)``.

The fsync policy maps onto ``PRAGMA synchronous``: ``always`` → FULL,
``batch`` → NORMAL, ``never`` → OFF.  Fault points land *before* the
commit, so an injected crash leaves an uncommitted insert that sqlite
rolls back on the next open — the same "tail loss, never corruption"
contract the append-log backend provides by hand.
"""

from __future__ import annotations

import sqlite3
from typing import Iterator, Optional, Tuple

from repro.store.base import StateStore, _check_fsync
from repro.store.faults import fault_point

__all__ = ["SqliteStateStore"]

_SCHEMA = """
CREATE TABLE IF NOT EXISTS wal (
    seq INTEGER PRIMARY KEY,
    record TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS snapshots (
    seq INTEGER PRIMARY KEY,
    payload TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS meta (
    key TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
"""

_SYNCHRONOUS = {"always": "FULL", "batch": "NORMAL", "never": "OFF"}


class SqliteStateStore(StateStore):
    """Durable WAL/snapshots/meta in a single sqlite database file."""

    backend = "sqlite"
    persistent = True

    def __init__(self, path: str, fsync: str = "batch"):
        super().__init__()
        self._fsync = _check_fsync(fsync)
        self.path = str(path)
        self._db = sqlite3.connect(self.path)
        self._db.execute("PRAGMA journal_mode=WAL")
        self._db.execute(f"PRAGMA synchronous={_SYNCHRONOUS[self._fsync]}")
        self._db.executescript(_SCHEMA)
        self._db.commit()
        row = self._db.execute("SELECT MAX(seq) FROM wal").fetchone()
        self._last = int(row[0]) if row and row[0] is not None else 0
        self._closed = False

    # -- WAL -----------------------------------------------------------------

    def _append(self, seq: int, text: str) -> None:
        self._db.execute(
            "INSERT INTO wal (seq, record) VALUES (?, ?)", (seq, text)
        )
        # Crash here = insert never committed; sqlite rolls it back on
        # the next open and the writer's last ack'd seq still stands.
        fault_point("wal_append")
        self._db.commit()
        self._last = seq

    def _records(self, after_seq: int) -> Iterator[Tuple[int, str]]:
        cur = self._db.execute(
            "SELECT seq, record FROM wal WHERE seq > ? ORDER BY seq",
            (after_seq,),
        )
        for seq, text in cur:
            yield int(seq), text

    def _last_seq(self) -> int:
        return self._last

    # -- snapshots / metadata ------------------------------------------------

    def _write_snapshot(self, seq: int, text: str) -> None:
        self._db.execute(
            "INSERT OR REPLACE INTO snapshots (seq, payload) VALUES (?, ?)",
            (seq, text),
        )
        self._db.execute("DELETE FROM snapshots WHERE seq < ?", (seq,))
        fault_point("snapshot")
        self._db.commit()

    def _latest_snapshot(self) -> Optional[Tuple[int, str]]:
        row = self._db.execute(
            "SELECT seq, payload FROM snapshots ORDER BY seq DESC LIMIT 1"
        ).fetchone()
        if row is None:
            return None
        return int(row[0]), row[1]

    def _get_meta(self, key: str) -> Optional[str]:
        row = self._db.execute(
            "SELECT value FROM meta WHERE key = ?", (key,)
        ).fetchone()
        return row[0] if row is not None else None

    def _set_meta(self, key: str, value: str) -> None:
        self._db.execute(
            "INSERT OR REPLACE INTO meta (key, value) VALUES (?, ?)",
            (key, value),
        )
        self._db.commit()

    # -- lifecycle -----------------------------------------------------------

    def _sync(self) -> None:
        if not self._closed:
            self._db.commit()

    def _close(self) -> None:
        if self._closed:
            return
        self._db.commit()
        self._db.close()
        self._closed = True
