"""Crash-fault injection points for the recovery test harness.

A real crash can land between any two writes; the recovery suite needs
to *choose* where.  A fault point is armed through the environment —

    REPRO_FAULT=<point>[:<n>]

— and the ``n``-th time execution reaches ``fault_point(<point>)`` the
process SIGKILLs itself: no ``atexit``, no buffered-file flush, exactly
the power-cut semantics the WAL must survive.  With the variable unset
every fault point is a near-free string comparison against ``None``.

Points wired into the store/server:

* ``wal_append``  — between the append log's frame header and payload
  writes (a genuinely torn record on disk), or before the sqlite
  commit (an uncommitted insert);
* ``snapshot``    — between writing the snapshot and making it the
  latest (tmp file written, rename pending / commit pending);
* ``apply``       — after a trip is journaled but before any server
  state mutates (mid-batch crash).
"""

from __future__ import annotations

import os
import signal
from typing import Dict, Optional

__all__ = ["ENV_VAR", "fault_point", "faults_armed", "reset_fault_counts"]

ENV_VAR = "REPRO_FAULT"

#: Hits per fault point (process-local; the point fires on the n-th hit).
_hits: Dict[str, int] = {}


def _spec() -> Optional[str]:
    return os.environ.get(ENV_VAR)


def faults_armed(name: str) -> bool:
    """Whether ``name`` is the armed fault point of this process."""
    spec = _spec()
    if not spec:
        return False
    point, _, _ = spec.partition(":")
    return point == name


def fault_point(name: str) -> None:
    """Die here (SIGKILL) if this is the armed fault point's n-th hit."""
    spec = _spec()
    if not spec:
        return
    point, _, count = spec.partition(":")
    if point != name:
        return
    try:
        threshold = int(count) if count else 1
    except ValueError:
        raise ValueError(f"malformed {ENV_VAR} spec {spec!r}") from None
    hits = _hits.get(name, 0) + 1
    _hits[name] = hits
    if hits >= threshold:
        os.kill(os.getpid(), signal.SIGKILL)


def reset_fault_counts() -> None:
    """Forget hit counts (between in-process tests)."""
    _hits.clear()
