"""repro — reproduction of "Urban Traffic Monitoring with the Help of Bus Riders".

Zhou, Jiang & Li, IEEE ICDCS 2015.  A participatory urban traffic
monitoring system: bus riders' phones detect IC-card beeps, sample
cellular fingerprints, and a backend maps trips onto bus stops to
estimate per-road-segment automobile speeds.

Quick start::

    from repro import build_city, simulate_day

    city = build_city()
    result = simulate_day(city, seed=1)
    snapshot = result.server.traffic_map.snapshot(at_s=8.5 * 3600)

See ``examples/quickstart.py`` for a runnable walk-through.
"""

from repro.config import DEFAULT_CONFIG, SystemConfig

__version__ = "1.0.0"

__all__ = [
    "DEFAULT_CONFIG",
    "SystemConfig",
    "build_city",
    "CitySpec",
    "simulate_day",
    "SimulationResult",
    "BackendServer",
    "FingerprintDatabase",
    "__version__",
]


def __getattr__(name):
    """Lazy re-exports so importing ``repro`` stays cheap."""
    if name in ("build_city", "CitySpec"):
        from repro import city as _city

        return getattr(_city, name)
    if name in ("simulate_day", "SimulationResult"):
        from repro.sim import world as _world

        return getattr(_world, name)
    if name in ("BackendServer", "FingerprintDatabase"):
        from repro import core as _core

        return getattr(_core, name)
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
