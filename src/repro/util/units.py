"""Unit conversions and clock helpers.

Internally the library is SI: metres, seconds, metres/second.  Speeds
are converted to km/h only at reporting boundaries, matching the units
the paper prints.
"""

from __future__ import annotations

SECONDS_PER_DAY = 24 * 3600


def kmh_to_ms(speed_kmh: float) -> float:
    """Convert km/h to m/s."""
    return speed_kmh / 3.6


def ms_to_kmh(speed_ms: float) -> float:
    """Convert m/s to km/h."""
    return speed_ms * 3.6


def parse_hhmm(text: str) -> float:
    """Parse ``"HH:MM"`` (or ``"HH:MM:SS"``) into seconds since midnight."""
    parts = text.split(":")
    if len(parts) not in (2, 3):
        raise ValueError(f"expected HH:MM or HH:MM:SS, got {text!r}")
    hours, minutes = int(parts[0]), int(parts[1])
    seconds = int(parts[2]) if len(parts) == 3 else 0
    if not (0 <= minutes < 60 and 0 <= seconds < 60):
        raise ValueError(f"minutes/seconds out of range in {text!r}")
    return hours * 3600.0 + minutes * 60.0 + seconds


def hhmm(seconds_since_midnight: float) -> str:
    """Format seconds since midnight as ``"HH:MM"`` (wraps past midnight)."""
    total = int(seconds_since_midnight) % SECONDS_PER_DAY
    return f"{total // 3600:02d}:{(total % 3600) // 60:02d}"
