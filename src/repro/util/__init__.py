"""Small shared utilities: RNG plumbing, unit conversions, time helpers."""

from repro.util.rng import derive_rng, ensure_rng
from repro.util.units import (
    kmh_to_ms,
    ms_to_kmh,
    hhmm,
    parse_hhmm,
    SECONDS_PER_DAY,
)

__all__ = [
    "derive_rng",
    "ensure_rng",
    "kmh_to_ms",
    "ms_to_kmh",
    "hhmm",
    "parse_hhmm",
    "SECONDS_PER_DAY",
]
