"""Deterministic random-number plumbing.

Every stochastic component in the library accepts either a seed or a
``numpy.random.Generator``.  Components that need several independent
streams derive child generators from a parent with :func:`derive_rng`,
keyed by a stable string label, so simulations are reproducible from a
single seed and insensitive to call ordering between subsystems.
"""

from __future__ import annotations

import zlib
from typing import Optional, Union

import numpy as np

SeedLike = Union[int, np.random.Generator, None]


def ensure_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a ``numpy.random.Generator`` for ``seed``.

    ``seed`` may be ``None`` (fresh entropy), an integer, or an existing
    generator (returned unchanged).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def derive_rng(parent: SeedLike, label: str) -> np.random.Generator:
    """Derive an independent child generator from ``parent`` keyed by ``label``.

    The same ``(parent seed, label)`` pair always yields the same stream.
    When ``parent`` is already a Generator the child is seeded from the
    parent's bit stream combined with a CRC of the label, which keeps
    derivations order-dependent only on the parent draws made so far.
    """
    tag = zlib.crc32(label.encode("utf-8"))
    if isinstance(parent, np.random.Generator):
        base = int(parent.integers(0, 2**32))
    elif parent is None:
        base = int(np.random.default_rng().integers(0, 2**32))
    else:
        base = int(parent) & 0xFFFFFFFF
    return np.random.default_rng((base << 32) ^ tag)


def stable_hash(*parts: object) -> int:
    """Deterministic 64-bit hash of the string forms of ``parts``.

    Unlike built-in ``hash`` this does not depend on ``PYTHONHASHSEED``,
    so it is safe for seeding spatially keyed noise fields.
    """
    text = "\x1f".join(str(p) for p in parts).encode("utf-8")
    lo = zlib.crc32(text)
    hi = zlib.adler32(text)
    return (hi << 32) | lo


def field_rng(seed: SeedLike, *key: object) -> np.random.Generator:
    """Generator for a *spatially keyed* draw (e.g. shadowing at a grid cell).

    The stream depends only on the base seed and the key, never on draw
    order, so the same location always sees the same static noise.
    """
    if isinstance(seed, np.random.Generator):
        raise TypeError(
            "field_rng needs a stable integer seed, not a live Generator; "
            "pass the component's configured seed instead"
        )
    base = 0 if seed is None else int(seed)
    return np.random.default_rng((base & 0xFFFFFFFF, stable_hash(*key)))
