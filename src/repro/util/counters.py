"""Counters whose position survives snapshot/restore.

``itertools.count`` is perfect until a process has to resume where a
dead one stopped: its position can't be read or set.  A
:class:`PersistentCounter` is the same iterator with a readable
``value`` (the *next* number it will hand out) and a ``reset`` — what
the durable state tier snapshots so rider ids and trip keys continue
instead of colliding after recovery.
"""

from __future__ import annotations

__all__ = ["PersistentCounter"]


class PersistentCounter:
    """Drop-in for ``itertools.count(start)`` with observable state."""

    __slots__ = ("_next",)

    def __init__(self, start: int = 0):
        self._next = int(start)

    @property
    def value(self) -> int:
        """The number the next ``next()`` call will return."""
        return self._next

    def reset(self, value: int) -> None:
        """Reposition the counter (restore from a snapshot)."""
        self._next = int(value)

    def __next__(self) -> int:
        n = self._next
        self._next = n + 1
        return n

    def __iter__(self) -> "PersistentCounter":
        return self

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"PersistentCounter({self._next})"
