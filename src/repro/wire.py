"""Wire formats and persistence: JSON codecs for the system's artifacts.

A deployment needs stable interchange formats: phones upload trips over
HTTP, the fingerprint database is shipped to new server instances, and
the live traffic map is served to consumers.  This module defines the
JSON forms of all three, with strict decoding (unknown versions and
malformed payloads are rejected, never guessed at).

Formats are versioned with a ``"v"`` field so they can evolve.
"""

from __future__ import annotations

import json
from typing import Any, Dict, IO, List, Optional, Union

from repro.city.gtfs import planar_to_wgs84
from repro.core.fingerprint import FingerprintDatabase
from repro.core.traffic_map import TrafficSnapshot
from repro.phone.cellular import CellularSample
from repro.phone.trip_recorder import TripUpload

_TRIP_VERSION = 1
_DB_VERSION = 1
_SNAPSHOT_VERSION = 1


# -- trip uploads (phone → server) -------------------------------------------


def trip_to_dict(upload: TripUpload) -> Dict[str, Any]:
    """Encode a trip upload as a JSON-ready dict.

    Deliberately minimal — trip key, timestamps, ordered cell ids — the
    anonymity-preserving payload of §III-B.  RSS values are *not*
    uploaded; the backend only uses rank order.
    """
    return {
        "v": _TRIP_VERSION,
        "trip": upload.trip_key,
        "samples": [
            {"t": sample.time_s, "cells": list(sample.tower_ids)}
            for sample in upload.samples
        ],
    }


def trip_from_dict(payload: Dict[str, Any]) -> TripUpload:
    """Decode a trip upload; raises ``ValueError`` on malformed payloads."""
    if not isinstance(payload, dict):
        raise ValueError("trip payload must be an object")
    if payload.get("v") != _TRIP_VERSION:
        raise ValueError(f"unsupported trip payload version {payload.get('v')!r}")
    if "trip" not in payload or "samples" not in payload:
        raise ValueError("trip payload missing 'trip' or 'samples'")
    samples = []
    for entry in payload["samples"]:
        try:
            time_s = float(entry["t"])
            cells = tuple(int(c) for c in entry["cells"])
        except (KeyError, TypeError, ValueError) as exc:
            raise ValueError(f"malformed sample entry {entry!r}") from exc
        samples.append(CellularSample(time_s=time_s, tower_ids=cells))
    return TripUpload(trip_key=str(payload["trip"]), samples=tuple(samples))


def dump_trips(uploads: List[TripUpload], stream: IO[str]) -> None:
    """Write uploads as JSON Lines (one trip per line)."""
    for upload in uploads:
        stream.write(json.dumps(trip_to_dict(upload), separators=(",", ":")))
        stream.write("\n")


def load_trips(stream: IO[str]) -> List[TripUpload]:
    """Read uploads from JSON Lines."""
    uploads = []
    for line_no, line in enumerate(stream, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            payload = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ValueError(f"line {line_no}: invalid JSON") from exc
        uploads.append(trip_from_dict(payload))
    return uploads


# -- fingerprint database ------------------------------------------------------


def database_to_dict(database: FingerprintDatabase) -> Dict[str, Any]:
    """Encode the fingerprint database."""
    return {
        "v": _DB_VERSION,
        "stops": {
            str(station_id): list(database.fingerprint(station_id))
            for station_id in database.station_ids
        },
    }


def database_from_dict(payload: Dict[str, Any]) -> FingerprintDatabase:
    """Decode a fingerprint database; strict about structure."""
    if not isinstance(payload, dict) or payload.get("v") != _DB_VERSION:
        raise ValueError("unsupported database payload")
    stops = payload.get("stops")
    if not isinstance(stops, dict):
        raise ValueError("database payload missing 'stops' object")
    database = FingerprintDatabase()
    for station_key, towers in stops.items():
        try:
            station_id = int(station_key)
            tower_ids = [int(t) for t in towers]
        except (TypeError, ValueError) as exc:
            raise ValueError(f"malformed database entry {station_key!r}") from exc
        database.set_fingerprint(station_id, tower_ids)
    return database


def save_database(database: FingerprintDatabase, path: str) -> None:
    """Persist the database as JSON."""
    with open(path, "w", encoding="utf-8") as out:
        json.dump(database_to_dict(database), out, indent=1, sort_keys=True)


def load_database(path: str) -> FingerprintDatabase:
    """Load a database persisted by :func:`save_database`."""
    with open(path, encoding="utf-8") as handle:
        return database_from_dict(json.load(handle))


# -- traffic snapshots (server → consumers) -------------------------------------


def snapshot_to_geojson(
    snapshot: TrafficSnapshot, network
) -> Dict[str, Any]:
    """Encode a traffic snapshot as GeoJSON (WGS84 LineString features).

    The shape consumer maps expect: one feature per covered directed
    segment with speed, display level and data age.
    """
    features = []
    for segment_id, reading in sorted(snapshot.readings.items()):
        segment = network.segment(segment_id)
        start = planar_to_wgs84(segment.start)
        end = planar_to_wgs84(segment.end)
        features.append(
            {
                "type": "Feature",
                "geometry": {
                    "type": "LineString",
                    # GeoJSON order: (lon, lat).
                    "coordinates": [[start[1], start[0]], [end[1], end[0]]],
                },
                "properties": {
                    "segment": list(segment_id),
                    "speed_kmh": round(reading.speed_kmh, 2),
                    "sigma_kmh": round(reading.sigma_kmh, 2),
                    "level": int(reading.level),
                    "age_s": round(reading.age_s, 1),
                },
            }
        )
    return {
        "type": "FeatureCollection",
        "v": _SNAPSHOT_VERSION,
        "at_s": snapshot.at_s,
        "coverage": round(snapshot.coverage, 4),
        "features": features,
    }
