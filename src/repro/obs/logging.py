"""Structured logging on top of the stdlib ``logging`` module.

Every module in the system logs through ``get_logger(__name__)``, which
namespaces it under the ``repro`` logger.  Nothing is emitted until
:func:`configure` installs a handler — libraries importing ``repro``
see no output, exactly like an uninstrumented library.

Events carry machine-readable fields via :func:`log_event` (or plain
``logger.info(msg, extra={"fields": {...}})``); the two formatters
render them as ``key=value`` pairs for humans or as JSON Lines for log
shippers::

    configure(level="debug")               # key=value on stderr
    configure(level="info", json=True)     # one JSON object per line

The CLI's global ``--log-level`` / ``--log-json`` flags call
:func:`configure` before dispatching any subcommand.
"""

from __future__ import annotations

import json as _json
import logging
import sys
import time
from typing import Any, Dict, IO, Optional, Union

__all__ = [
    "ROOT_LOGGER_NAME",
    "configure",
    "get_logger",
    "log_event",
    "KeyValueFormatter",
    "JsonFormatter",
]

#: Every repro logger lives under this namespace.
ROOT_LOGGER_NAME = "repro"

#: Marker on handlers installed by :func:`configure`, so reconfiguring
#: replaces ours instead of stacking duplicates.
_HANDLER_FLAG = "_repro_obs_handler"


def get_logger(name: Optional[str] = None) -> logging.Logger:
    """A logger inside the ``repro`` namespace.

    ``get_logger("repro.core.server")`` and ``get_logger("core.server")``
    return the same logger; ``get_logger()`` returns the namespace root.
    """
    if not name or name == ROOT_LOGGER_NAME:
        return logging.getLogger(ROOT_LOGGER_NAME)
    if not name.startswith(ROOT_LOGGER_NAME + "."):
        name = f"{ROOT_LOGGER_NAME}.{name}"
    return logging.getLogger(name)


def log_event(
    logger: logging.Logger,
    event: str,
    level: int = logging.INFO,
    **fields: Any,
) -> None:
    """Emit one structured event: a short name plus key=value fields."""
    if logger.isEnabledFor(level):
        logger.log(level, event, extra={"fields": fields})


def _render_value(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.6g}"
    text = str(value)
    if " " in text or "=" in text or '"' in text:
        return _json.dumps(text)
    return text


class KeyValueFormatter(logging.Formatter):
    """``ts=… level=… logger=… event=… key=value…`` — grep-friendly."""

    def format(self, record: logging.LogRecord) -> str:
        parts = [
            f"ts={self.formatTime(record, datefmt='%Y-%m-%dT%H:%M:%S')}",
            f"level={record.levelname.lower()}",
            f"logger={record.name}",
            f"event={_render_value(record.getMessage())}",
        ]
        fields: Dict[str, Any] = getattr(record, "fields", None) or {}
        parts.extend(f"{key}={_render_value(value)}" for key, value in fields.items())
        if record.exc_info:
            parts.append(f"exc={_render_value(self.formatException(record.exc_info))}")
        return " ".join(parts)


class JsonFormatter(logging.Formatter):
    """One JSON object per line — log-shipper friendly."""

    def format(self, record: logging.LogRecord) -> str:
        payload: Dict[str, Any] = {
            "ts": record.created,
            "level": record.levelname.lower(),
            "logger": record.name,
            "event": record.getMessage(),
        }
        fields: Dict[str, Any] = getattr(record, "fields", None) or {}
        payload.update(fields)
        if record.exc_info:
            payload["exc"] = self.formatException(record.exc_info)
        return _json.dumps(payload, default=str)


def configure(
    level: Union[int, str] = "info",
    json: bool = False,
    stream: Optional[IO[str]] = None,
) -> logging.Logger:
    """Install (or replace) the repro log handler and set the level.

    Idempotent: calling again swaps the handler and level in place, so
    tests and the CLI can reconfigure freely.  Returns the namespace
    root logger.
    """
    if isinstance(level, str):
        resolved = logging.getLevelName(level.upper())
        if not isinstance(resolved, int):
            raise ValueError(f"unknown log level {level!r}")
        level = resolved
    root = logging.getLogger(ROOT_LOGGER_NAME)
    for handler in list(root.handlers):
        if getattr(handler, _HANDLER_FLAG, False):
            root.removeHandler(handler)
    handler = logging.StreamHandler(stream or sys.stderr)
    handler.setFormatter(JsonFormatter() if json else KeyValueFormatter())
    setattr(handler, _HANDLER_FLAG, True)
    root.addHandler(handler)
    root.setLevel(level)
    root.propagate = False
    return root
