"""An embedded HTTP exporter: scrape the pipeline while it runs.

Pure-stdlib (``http.server``): a daemon thread serves four endpoints
off whatever registry / callables the host wires in:

* ``/metrics``   — Prometheus text exposition of the registry,
* ``/healthz``   — liveness JSON (status, uptime, request counts),
* ``/stats``     — a JSON status document (by default the registry's
  ``as_dict()``; the backend wires in pipeline stats + window rates),
* ``/freshness`` — per-segment / per-route staleness of the published
  traffic map (wired by :class:`~repro.core.server.BackendServer`),
* ``/fleet``     — the fleet-health report (headways, ghost buses,
  O-D flows) when a
  :class:`~repro.analysis.fleet.FleetHealthAnalytics` stage is wired,
* ``/trace``     — the retained span records as a Chrome trace-event
  JSON document (save it and load in Perfetto / ``chrome://tracing``)
  when a span-retaining tracer is wired (``--trace-out`` runs).

``repro simulate --serve-metrics PORT`` runs one next to the campaign;
``port=0`` binds an ephemeral port (the bound port is in
:attr:`MetricsHTTPServer.port` once started), which is what tests and
the CI scrape-smoke use.
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Dict, Optional

from repro.obs.logging import get_logger, log_event
from repro.obs.metrics import MetricsRegistry

__all__ = ["MetricsHTTPServer", "PROMETHEUS_CONTENT_TYPE"]

_log = get_logger(__name__)

#: Content type of the Prometheus text exposition format, v0.0.4.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


class _Handler(BaseHTTPRequestHandler):
    """Routes GETs to the owning exporter; everything else is a 404/405."""

    server_version = "repro-metrics/1.0"
    exporter: "MetricsHTTPServer"          # set per bound subclass

    def do_GET(self) -> None:              # noqa: N802 (stdlib naming)
        path = self.path.split("?", 1)[0].rstrip("/") or "/"
        handler = self.exporter.routes.get(path)
        self.exporter.request_counts[path] = (
            self.exporter.request_counts.get(path, 0) + 1
        )
        if handler is None:
            self._respond(404, "application/json",
                          json.dumps({"error": f"no such endpoint {path}"}))
            return
        try:
            content_type, body = handler()
        except Exception as exc:            # pragma: no cover - defensive
            log_event(_log, "exporter_handler_error", path=path, error=str(exc))
            self._respond(500, "application/json",
                          json.dumps({"error": str(exc)}))
            return
        self._respond(200, content_type, body)

    def _respond(self, status: int, content_type: str, body: str) -> None:
        payload = body.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    def log_message(self, format: str, *args) -> None:
        # Route access logs into structured logging instead of stderr.
        log_event(_log, "exporter_request", detail=format % args, level=10)


class MetricsHTTPServer:
    """A threaded exporter bound to one registry (see module docstring).

    Usable as a context manager::

        with MetricsHTTPServer(registry, port=0) as exporter:
            scrape(f"http://127.0.0.1:{exporter.port}/metrics")
    """

    def __init__(
        self,
        registry: MetricsRegistry,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        stats_fn: Optional[Callable[[], Dict]] = None,
        freshness_fn: Optional[Callable[[], Dict]] = None,
        health_fn: Optional[Callable[[], Dict]] = None,
        fleet_fn: Optional[Callable[[], Dict]] = None,
        trace_fn: Optional[Callable[[], Dict]] = None,
    ):
        self.registry = registry
        self.host = host
        self._requested_port = port
        self._stats_fn = stats_fn or registry.as_dict
        self._freshness_fn = freshness_fn
        self._health_fn = health_fn
        self._fleet_fn = fleet_fn
        self._trace_fn = trace_fn
        self._httpd: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None
        self._started_at = 0.0
        self.request_counts: Dict[str, int] = {}
        self.routes: Dict[str, Callable[[], tuple]] = {
            "/metrics": self._metrics,
            "/healthz": self._healthz,
            "/stats": self._stats,
            "/freshness": self._freshness,
            "/fleet": self._fleet,
            "/trace": self._trace,
            "/": self._index,
        }

    # -- endpoint bodies -----------------------------------------------------

    def _metrics(self):
        return PROMETHEUS_CONTENT_TYPE, self.registry.render_prometheus()

    def _healthz(self):
        payload = {
            "status": "ok",
            "uptime_s": round(time.monotonic() - self._started_at, 3),
            "requests": dict(sorted(self.request_counts.items())),
        }
        if self._health_fn is not None:
            payload.update(self._health_fn())
        return "application/json", json.dumps(payload, indent=2)

    def _stats(self):
        return "application/json", json.dumps(self._stats_fn(), indent=2)

    def _freshness(self):
        if self._freshness_fn is None:
            return "application/json", json.dumps(
                {"error": "no freshness source wired"}
            )
        return "application/json", json.dumps(self._freshness_fn(), indent=2)

    def _fleet(self):
        if self._fleet_fn is None:
            return "application/json", json.dumps(
                {"error": "no fleet analytics wired"}
            )
        return "application/json", json.dumps(self._fleet_fn(), indent=2)

    def _trace(self):
        if self._trace_fn is None:
            return "application/json", json.dumps(
                {"error": "no span-retaining tracer wired "
                          "(run with --trace-out)"}
            )
        return "application/json", json.dumps(self._trace_fn())

    def _index(self):
        return "application/json", json.dumps(
            {"endpoints": sorted(p for p in self.routes if p != "/")}
        )

    # -- lifecycle -----------------------------------------------------------

    @property
    def port(self) -> int:
        """The bound port (resolves ``port=0`` once started)."""
        if self._httpd is not None:
            return self._httpd.server_address[1]
        return self._requested_port

    @property
    def url(self) -> str:
        """Base URL of the exporter."""
        return f"http://{self.host}:{self.port}"

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> int:
        """Bind and serve from a daemon thread; returns the bound port."""
        if self._httpd is not None:
            raise RuntimeError("exporter already started")
        handler = type("_BoundHandler", (_Handler,), {"exporter": self})
        self._httpd = ThreadingHTTPServer(
            (self.host, self._requested_port), handler
        )
        self._httpd.daemon_threads = True
        self._started_at = time.monotonic()
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-metrics-exporter",
            daemon=True,
        )
        self._thread.start()
        log_event(_log, "exporter_started", host=self.host, port=self.port)
        return self.port

    def stop(self) -> None:
        """Shut the server down and join the serving thread."""
        if self._httpd is None:
            return
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        log_event(_log, "exporter_stopped", host=self.host, port=self.port)
        self._httpd = None
        self._thread = None

    def __enter__(self) -> "MetricsHTTPServer":
        self.start()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.stop()
        return False
