"""Observability: metrics registry, span tracing, structured logging.

The three pillars the phone→server pipeline reports itself through:

* :class:`MetricsRegistry` — counters / gauges / fixed-bucket
  histograms with JSON (:meth:`~MetricsRegistry.as_dict`) and
  Prometheus-text (:meth:`~MetricsRegistry.render_prometheus`) export.
* :class:`Tracer` — nested ``with tracer.span("matching"):`` timing,
  aggregated per stage name; :data:`NULL_TRACER` makes instrumented
  hot paths free when tracing is off.
* :func:`configure` / :func:`get_logger` / :func:`log_event` —
  structured logging (key=value or JSON Lines) on stdlib ``logging``.

Everything is dependency-free and safe to import from any layer.
"""

from repro.obs.logging import (
    JsonFormatter,
    KeyValueFormatter,
    ROOT_LOGGER_NAME,
    configure,
    get_logger,
    log_event,
)
from repro.obs.metrics import (
    Counter,
    DEFAULT_BUCKETS,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_REGISTRY,
    NullRegistry,
)
from repro.obs.tracing import NULL_TRACER, NullTracer, StageTiming, Tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "DEFAULT_BUCKETS",
    "StageTiming",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "ROOT_LOGGER_NAME",
    "configure",
    "get_logger",
    "log_event",
    "KeyValueFormatter",
    "JsonFormatter",
]
