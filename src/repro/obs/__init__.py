"""Observability: metrics, labels, windows, tracing, logging, HTTP, SLOs.

The pillars the phone→server pipeline reports itself through:

* :class:`MetricsRegistry` — counters / gauges / fixed-bucket
  histograms, plus *labeled families* of each
  (``labeled_counter("trips_uploaded_total", ("route",))``), with JSON
  (:meth:`~MetricsRegistry.as_dict`) and Prometheus-text
  (:meth:`~MetricsRegistry.render_prometheus`) export and
  :func:`parse_prometheus_text` to read the latter back.
* :class:`SlidingWindowCounter` / :class:`WindowSet` — ring-buffer time
  windows over an explicit (sim or wall) clock, for live rates like
  matches-accepted-per-5-minutes.
* :class:`MetricsHTTPServer` — a stdlib-only threaded exporter serving
  ``/metrics``, ``/healthz``, ``/stats`` and ``/freshness`` while a
  campaign runs (``repro simulate --serve-metrics PORT``).
* :class:`AlertEngine` / :class:`AlertRule` — declarative SLO rules
  (``map_route_freshness_s{route=*} < 900``) evaluated on publish
  ticks, firing structured-log events and the ``alerts_active`` gauge.
* :class:`Tracer` — nested ``with tracer.span("matching"):`` timing,
  aggregated per stage name; attach a :class:`SamplingPolicy` to also
  retain :class:`SpanRecord` objects (trace/span/parent ids, slow-trip
  exemplars, cross-process stitching via :class:`TraceContext`) and
  export them with :func:`chrome_trace_document` for Perfetto /
  ``chrome://tracing``; :data:`NULL_TRACER` makes instrumented hot
  paths free when tracing is off.
* :func:`configure` / :func:`get_logger` / :func:`log_event` —
  structured logging (key=value or JSON Lines) on stdlib ``logging``.

Everything is dependency-free and safe to import from any layer.
"""

from repro.obs.alerts import (
    AlertEngine,
    AlertEvent,
    AlertRule,
    lint_rules,
    load_rules,
    parse_rule_expr,
    samples_from_document,
    samples_from_registry,
)
from repro.obs.http_exporter import PROMETHEUS_CONTENT_TYPE, MetricsHTTPServer
from repro.obs.labels import (
    DEFAULT_MAX_CHILDREN,
    LabeledCounter,
    LabeledGauge,
    LabeledHistogram,
    escape_help,
    escape_label_value,
)
from repro.obs.logging import (
    JsonFormatter,
    KeyValueFormatter,
    ROOT_LOGGER_NAME,
    configure,
    get_logger,
    log_event,
)
from repro.obs.metrics import (
    Counter,
    DEFAULT_BUCKETS,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_REGISTRY,
    NullRegistry,
    parse_prometheus_text,
)
from repro.obs.tracing import (
    Exemplar,
    ExemplarStore,
    NULL_TRACER,
    NullTracer,
    SamplingPolicy,
    SPAN_CATEGORIES,
    SpanRecord,
    StageTiming,
    TraceContext,
    Tracer,
    chrome_trace_document,
    format_trace_summary,
    summarize_chrome_trace,
    validate_chrome_trace,
)
from repro.obs.windows import (
    SlidingWindowCounter,
    SlidingWindowStats,
    WindowSet,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "DEFAULT_BUCKETS",
    "parse_prometheus_text",
    "LabeledCounter",
    "LabeledGauge",
    "LabeledHistogram",
    "DEFAULT_MAX_CHILDREN",
    "escape_help",
    "escape_label_value",
    "SlidingWindowCounter",
    "SlidingWindowStats",
    "WindowSet",
    "MetricsHTTPServer",
    "PROMETHEUS_CONTENT_TYPE",
    "AlertEngine",
    "AlertEvent",
    "AlertRule",
    "load_rules",
    "lint_rules",
    "parse_rule_expr",
    "samples_from_registry",
    "samples_from_document",
    "StageTiming",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "SamplingPolicy",
    "SpanRecord",
    "TraceContext",
    "Exemplar",
    "ExemplarStore",
    "SPAN_CATEGORIES",
    "chrome_trace_document",
    "validate_chrome_trace",
    "summarize_chrome_trace",
    "format_trace_summary",
    "ROOT_LOGGER_NAME",
    "configure",
    "get_logger",
    "log_event",
    "KeyValueFormatter",
    "JsonFormatter",
]
