"""Labeled metric families: counters/gauges/histograms keyed by label sets.

PR-1's flat registry can say "12,000 samples matched" but not "route
179's acceptance collapsed" — crowd-sensing coverage is inherently
per-route / per-stop (Fig. 8–9), so the interesting questions are
dimensional.  A :class:`LabeledCounter` / :class:`LabeledGauge` /
:class:`LabeledHistogram` is a *family*: ``family.labels(route="179")``
returns a child instrument (a plain :class:`~repro.obs.metrics.Counter`
etc.), created on first use and cached thereafter, so the hot path after
warm-up is one dict lookup.

Guard rails, because label values come from data:

* **Cardinality cap** — a family holds at most ``max_children`` distinct
  label sets; further novel sets share one ``_overflow`` child and are
  counted in :attr:`LabeledFamily.overflow_total`, so a buggy label
  (e.g. a raw trip key) cannot grow memory without bound.
* **Escaping** — label values and HELP text are escaped per the
  Prometheus text exposition rules (``\\``, ``\"``, ``\n``), handled in
  :func:`escape_label_value` / :func:`escape_help`.

Families live in a :class:`~repro.obs.metrics.MetricsRegistry` via its
``labeled_counter()`` / ``labeled_gauge()`` / ``labeled_histogram()``
factories and render into both ``as_dict()`` and Prometheus text.  The
null registry returns shared do-nothing families, keeping instrumented
hot paths free when observability is off.
"""

from __future__ import annotations

import math
import re
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

from repro.obs.metrics import (
    Counter,
    DEFAULT_BUCKETS,
    Gauge,
    Histogram,
)

__all__ = [
    "DEFAULT_MAX_CHILDREN",
    "OVERFLOW_LABEL_VALUE",
    "LabeledFamily",
    "LabeledCounter",
    "LabeledGauge",
    "LabeledHistogram",
    "escape_label_value",
    "escape_help",
    "render_label_pairs",
]

#: Default per-family cardinality cap (distinct label sets).
DEFAULT_MAX_CHILDREN = 256

#: Label value carried by the shared overflow child once the cap is hit.
OVERFLOW_LABEL_VALUE = "_overflow"

_LABEL_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Reserved label names (Prometheus internals / histogram machinery).
_RESERVED_LABELS = frozenset({"le", "quantile", "__name__"})


def escape_label_value(value: str) -> str:
    """Escape a label value for the Prometheus text exposition format."""
    return (
        value.replace("\\", "\\\\").replace("\n", "\\n").replace('"', '\\"')
    )


def escape_help(text: str) -> str:
    """Escape HELP text for the Prometheus text exposition format."""
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def render_label_pairs(
    labelnames: Sequence[str], values: Sequence[str]
) -> str:
    """``route="179",stop="12"`` — the inside of a sample's ``{...}``."""
    return ",".join(
        f'{name}="{escape_label_value(value)}"'
        for name, value in zip(labelnames, values)
    )


class LabeledFamily:
    """Common machinery of a labeled metric family (see module docstring)."""

    kind = "untyped"

    def __init__(
        self,
        name: str,
        labelnames: Sequence[str],
        help: str = "",
        max_children: int = DEFAULT_MAX_CHILDREN,
    ):
        labelnames = tuple(labelnames)
        if not labelnames:
            raise ValueError(
                f"labeled metric {name!r} needs at least one label name"
            )
        if len(set(labelnames)) != len(labelnames):
            raise ValueError(f"duplicate label names in {name!r}")
        for label in labelnames:
            if not _LABEL_NAME_RE.match(label):
                raise ValueError(f"invalid label name {label!r} in {name!r}")
            if label in _RESERVED_LABELS or label.startswith("__"):
                raise ValueError(f"reserved label name {label!r} in {name!r}")
        if max_children < 1:
            raise ValueError("max_children must be positive")
        self.name = name
        self.help = help
        self.labelnames = labelnames
        self.max_children = max_children
        self._children: Dict[Tuple[str, ...], object] = {}
        #: Novel label sets routed to the overflow child after the cap.
        self.overflow_total = 0

    # -- children ------------------------------------------------------------

    def labels(self, *values, **by_name):
        """The child instrument for one label set (created on first use).

        Accepts either positional values in ``labelnames`` order or
        keyword arguments; values are stringified.
        """
        if by_name:
            if values:
                raise ValueError("pass label values positionally or by name")
            try:
                values = tuple(by_name.pop(name) for name in self.labelnames)
            except KeyError as exc:
                raise ValueError(
                    f"{self.name!r} is missing label {exc.args[0]!r}"
                ) from None
            if by_name:
                raise ValueError(
                    f"{self.name!r} got unexpected labels {sorted(by_name)}"
                )
        if len(values) != len(self.labelnames):
            raise ValueError(
                f"{self.name!r} takes {len(self.labelnames)} label value(s), "
                f"got {len(values)}"
            )
        key = tuple(str(v) for v in values)
        child = self._children.get(key)
        if child is None:
            if len(self._children) >= self.max_children:
                self.overflow_total += 1
                key = (OVERFLOW_LABEL_VALUE,) * len(self.labelnames)
                child = self._children.get(key)
                if child is None:
                    child = self._children[key] = self._make_child()
            else:
                child = self._children[key] = self._make_child()
        return child

    def _make_child(self):
        raise NotImplementedError

    @property
    def children(self) -> List[Tuple[Tuple[str, ...], object]]:
        """All ``(label values, instrument)`` pairs, sorted by values."""
        return sorted(self._children.items())

    def __len__(self) -> int:
        return len(self._children)

    def reset(self) -> None:
        """Zero every child in place (cached handles stay live)."""
        for child in self._children.values():
            child.reset()
        self.overflow_total = 0

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}({self.name!r}, "
            f"labels={list(self.labelnames)}, children={len(self)})"
        )

    # -- export --------------------------------------------------------------

    def as_dict(self) -> Dict[str, object]:
        """Plain-JSON view: type, label names, children keyed by pairs."""
        return {
            "type": self.kind,
            "labels": list(self.labelnames),
            "overflow_total": self.overflow_total,
            "children": {
                render_label_pairs(self.labelnames, values): self._child_value(
                    child
                )
                for values, child in self.children
            },
        }

    def _child_value(self, child):
        return child.value

    def render_prometheus(self) -> Iterator[str]:
        """Exposition-format lines for this family (HELP, TYPE, samples)."""
        if self.help:
            yield f"# HELP {self.name} {escape_help(self.help)}"
        yield f"# TYPE {self.name} {self.kind}"
        for values, child in self.children:
            pairs = render_label_pairs(self.labelnames, values)
            yield from self._render_child(pairs, child)

    def _render_child(self, pairs: str, child) -> Iterator[str]:
        yield f"{self.name}{{{pairs}}} {child.value:g}"


class LabeledCounter(LabeledFamily):
    """A family of monotone counters keyed by label sets."""

    kind = "counter"

    def _make_child(self) -> Counter:
        return Counter(self.name, self.help)


class LabeledGauge(LabeledFamily):
    """A family of gauges keyed by label sets."""

    kind = "gauge"

    def _make_child(self) -> Gauge:
        return Gauge(self.name, self.help)


class LabeledHistogram(LabeledFamily):
    """A family of fixed-bucket histograms keyed by label sets."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        labelnames: Sequence[str],
        buckets: Sequence[float] = DEFAULT_BUCKETS,
        help: str = "",
        max_children: int = DEFAULT_MAX_CHILDREN,
    ):
        super().__init__(name, labelnames, help, max_children)
        # Validate once up front so a bad ladder fails at registration.
        self.buckets = tuple(Histogram(name, buckets).bounds)

    def _make_child(self) -> Histogram:
        return Histogram(self.name, self.buckets, self.help)

    def _child_value(self, child: Histogram) -> Dict[str, object]:
        return {
            "count": child.count,
            "sum": child.sum,
            "bounds": list(child.bounds),
            "bucket_counts": child.bucket_counts,
        }

    def _render_child(self, pairs: str, child: Histogram) -> Iterator[str]:
        for bound, cumulative in child.cumulative():
            le = "+Inf" if math.isinf(bound) else f"{bound:g}"
            yield f'{self.name}_bucket{{{pairs},le="{le}"}} {cumulative}'
        yield f"{self.name}_sum{{{pairs}}} {child.sum:g}"
        yield f"{self.name}_count{{{pairs}}} {child.count}"
