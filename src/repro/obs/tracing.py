"""Span tracing: per-stage aggregates plus causal, cross-process spans.

A :class:`Tracer` times named stages with nested ``with`` spans::

    with tracer.span("receive_trip", key=upload.trip_key):
        with tracer.span("matching"):
            ...

Two recording layers share that API:

* **Aggregates** (always on for a real tracer): durations fold into
  per-stage :class:`StageTiming` records (count / total / min / max) —
  O(#stage names) memory, exactly what ``repro stats`` and
  ``--metrics-out`` need.
* **Span retention** (on when a :class:`SamplingPolicy` is attached):
  each finished span additionally becomes a :class:`SpanRecord` with
  trace / span / parent ids, wall-clock bounds, the owning pid and an
  optional ``worker`` label, ready for Chrome trace-event export
  (Perfetto / ``chrome://tracing``) via :func:`chrome_trace_document`.

Retention is bounded by the policy:

* **Head sampling** applies to *keyed* spans — a span opened with a
  ``key=...`` attribute (per-trip roots like ``receive_trip`` /
  ``prepare_trip``) starts a sampling scope; the whole subtree is kept
  or dropped together.  The decision is a pure function of
  ``(policy.seed, key)``, so it is deterministic, order-independent and
  identical in every worker process.  Keyless spans (pipeline phases,
  IPC accounting spans) are always retained.
* **Tail exemplars**: the slowest-N keyed spans are always kept, head
  sampling notwithstanding, in a bounded min-heap
  (:class:`ExemplarStore`) — the latency outliers an operator actually
  wants to see.
* Hard caps (``max_spans_per_trace``, ``max_records``) bound memory;
  evictions are counted, never silent.

Cross-process stitching: the coordinator captures
:meth:`Tracer.ipc_context` next to each shard dispatch; the worker
builds its tracer from that :class:`TraceContext`, so worker spans
parent under the coordinator's dispatch span with the same trace id and
a ``worker`` attribute.  Finished worker state travels back as a plain
picklable dict (:meth:`Tracer.export_trace_state`) and folds into the
coordinator (:meth:`Tracer.absorb`).

When tracing is off, components hold :data:`NULL_TRACER`, whose
``span()`` returns one shared no-op context manager: entering and
leaving it is two trivial method calls, so instrumented hot paths pay
effectively nothing.  No trace-derived value ever feeds back into
pipeline decisions, so conformance traces stay byte-identical with
tracing on or off, at any worker count.
"""

from __future__ import annotations

import heapq
import itertools
import os
import random
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "StageTiming",
    "SamplingPolicy",
    "SpanRecord",
    "TraceContext",
    "Exemplar",
    "ExemplarStore",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "SPAN_CATEGORIES",
    "chrome_trace_document",
    "validate_chrome_trace",
    "summarize_chrome_trace",
    "format_trace_summary",
]


#: Cost category per well-known span name, exported as the Chrome event
#: ``cat`` field and summed (by self-time) in the ``repro trace``
#: summary.  ``ipc`` names are the serialization / queueing / broadcast
#: / merge costs of the sharded ingest engine; ``compute`` names are
#: the pure pipeline stages; ``wait`` is coordinator idle time blocked
#: on workers; ``sim`` is the synthetic-world driver; ``trip`` and
#: ``pipeline`` are structural parents whose time lives in children.
SPAN_CATEGORIES: Dict[str, str] = {
    "fingerprint_broadcast": "ipc",
    "shard_serialize": "ipc",
    "shard_deserialize": "ipc",
    "pool_queue_wait": "ipc",
    "worker_init": "ipc",
    "result_merge": "ipc",
    "ingest_merge": "ipc",
    "pool_result_wait": "wait",
    "matching": "compute",
    "clustering": "compute",
    "trip_mapping": "compute",
    "leg_estimation": "compute",
    "map_update": "compute",
    "bus_simulation": "sim",
    "phone_recording": "sim",
    "uplink": "sim",
    "receive_trip": "trip",
    "prepare_trip": "trip",
    "ingest": "pipeline",
}


#: Per-process tracer instance counter: span ids embed it so records
#: from two tracers in the same process (e.g. one per worker shard)
#: never collide.
_TRACER_SEQ = itertools.count()


@dataclass
class StageTiming:
    """Aggregate wall-time of every span that ran under one stage name."""

    count: int = 0
    total_s: float = 0.0
    min_s: float = float("inf")
    max_s: float = 0.0

    @property
    def mean_s(self) -> float:
        """Mean span duration."""
        return self.total_s / self.count if self.count else 0.0

    def record(self, duration_s: float) -> None:
        """Fold one finished span into the aggregate."""
        self.count += 1
        self.total_s += duration_s
        if duration_s < self.min_s:
            self.min_s = duration_s
        if duration_s > self.max_s:
            self.max_s = duration_s

    def merge(self, other: Dict[str, float]) -> None:
        """Fold another aggregate's ``as_dict`` view into this one."""
        count = int(other.get("count", 0))
        if not count:
            return
        self.count += count
        self.total_s += other.get("total_s", 0.0)
        other_min = other.get("min_s", 0.0)
        if other_min < self.min_s:
            self.min_s = other_min
        other_max = other.get("max_s", 0.0)
        if other_max > self.max_s:
            self.max_s = other_max

    def as_dict(self) -> Dict[str, float]:
        """Plain-JSON view of the aggregate."""
        return {
            "count": self.count,
            "total_s": self.total_s,
            "mean_s": self.mean_s,
            "min_s": self.min_s if self.count else 0.0,
            "max_s": self.max_s,
        }


@dataclass(frozen=True)
class SamplingPolicy:
    """Retention policy for span records (attach one to enable them)."""

    #: Probability a *keyed* span's subtree is head-retained.  The
    #: decision is deterministic per ``(seed, key)``, so replays and
    #: worker processes agree.  Keyless spans are always retained.
    head_rate: float = 1.0
    #: Slowest-N keyed spans kept regardless of head sampling.
    slow_exemplars: int = 8
    #: Seed of the per-key sampling decision.
    seed: int = 0
    #: Span records buffered per keyed scope before dropping (counted).
    max_spans_per_trace: int = 4096
    #: Global retained-record budget; beyond it the oldest records are
    #: evicted (counted in :attr:`Tracer.records_dropped`).
    max_records: int = 200_000


@dataclass
class SpanRecord:
    """One finished span, ready for export (picklable, JSON-able)."""

    name: str
    trace_id: str
    span_id: str
    parent_id: Optional[str]
    start_s: float
    duration_s: float
    pid: int
    worker: Optional[str] = None
    attrs: Dict[str, Any] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start_s": self.start_s,
            "duration_s": self.duration_s,
            "pid": self.pid,
            "worker": self.worker,
            "attrs": dict(self.attrs),
        }


@dataclass(frozen=True)
class TraceContext:
    """Propagated trace position: what a remote span should parent under."""

    trace_id: str
    span_id: Optional[str]
    #: The coordinator's sampling policy, so workers make the *same*
    #: per-key retention decisions; ``None`` means aggregates only.
    policy: Optional[SamplingPolicy] = None


@dataclass
class Exemplar:
    """A retained slow-trip trace: its root span plus the subtree."""

    root: SpanRecord
    children: Tuple[SpanRecord, ...] = ()

    @property
    def duration_s(self) -> float:
        return self.root.duration_s

    @property
    def key(self) -> Optional[str]:
        value = self.root.attrs.get("key")
        return None if value is None else str(value)

    def records(self) -> List[SpanRecord]:
        return [self.root, *self.children]

    def summary(self) -> Dict[str, Any]:
        """Operator-facing digest: who was slow, and where the time went."""
        stages: Dict[str, float] = {}
        for child in self.children:
            stages[child.name] = stages.get(child.name, 0.0) + child.duration_s
        return {
            "name": self.root.name,
            "key": self.key,
            "worker": self.root.worker,
            "duration_s": self.root.duration_s,
            "stages": dict(
                sorted(stages.items(), key=lambda kv: -kv[1])
            ),
        }


class ExemplarStore:
    """Bounded keep-the-slowest-N store (min-heap on duration).

    ``offer()`` keeps a new trace while below capacity; at capacity it
    evicts the *fastest* retained exemplar iff the newcomer is slower —
    so the store always holds the N slowest trips seen so far.
    """

    def __init__(self, capacity: int):
        self.capacity = max(0, int(capacity))
        self._heap: List[Tuple[float, int, Exemplar]] = []
        self._seq = itertools.count()

    def __len__(self) -> int:
        return len(self._heap)

    def offer(self, exemplar: Exemplar) -> bool:
        """Consider one finished trace; True if it was retained."""
        if self.capacity <= 0:
            return False
        entry = (exemplar.duration_s, next(self._seq), exemplar)
        if len(self._heap) < self.capacity:
            heapq.heappush(self._heap, entry)
            return True
        if exemplar.duration_s > self._heap[0][0]:
            heapq.heapreplace(self._heap, entry)
            return True
        return False

    def items(self) -> List[Exemplar]:
        """Retained exemplars, slowest first."""
        return [
            entry[2]
            for entry in sorted(self._heap, key=lambda e: (-e[0], e[1]))
        ]

    def clear(self) -> None:
        self._heap = []


class _Scope:
    """An open keyed span's buffered subtree + its sampling verdict."""

    __slots__ = ("span", "sampled", "buffer", "dropped", "limit")

    def __init__(self, span: "_Span", sampled: bool, limit: int):
        self.span = span
        self.sampled = sampled
        self.buffer: List[SpanRecord] = []
        self.dropped = 0
        self.limit = limit

    def add(self, record: SpanRecord) -> None:
        if len(self.buffer) < self.limit:
            self.buffer.append(record)
        else:
            self.dropped += 1


class _Span:
    """One active span; a context manager handed out by ``span()``."""

    __slots__ = ("_tracer", "name", "_start", "attrs", "span_id", "parent_id")

    def __init__(self, tracer: "Tracer", name: str, attrs: Optional[Dict]):
        self._tracer = tracer
        self.name = name
        self.attrs = attrs
        self._start = 0.0
        self.span_id: Optional[str] = None
        self.parent_id: Optional[str] = None

    def __enter__(self) -> "_Span":
        self._tracer._open(self)
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        duration = time.perf_counter() - self._start
        self._tracer._finish(self, duration)
        return False


class Tracer:
    """Aggregating + (optionally) record-retaining span tracer.

    ``Tracer()`` is the aggregate-only mode every instrumented component
    has always used.  ``Tracer(SamplingPolicy(...))`` additionally
    retains :class:`SpanRecord` objects under the policy.  ``context``
    and ``worker`` make a worker-side tracer whose spans stitch under a
    coordinator span (see module docstring).
    """

    enabled = True

    def __init__(
        self,
        policy: Optional[SamplingPolicy] = None,
        *,
        context: Optional[TraceContext] = None,
        worker: Optional[str] = None,
    ) -> None:
        self._stack: List[_Span] = []
        self._stats: Dict[str, StageTiming] = {}
        self._policy = policy
        self._context = context
        self._worker = worker
        self._pid = os.getpid()
        self._retaining = policy is not None
        self._ids = itertools.count(1)
        self._id_prefix = f"{self._pid:x}.{next(_TRACER_SEQ):x}"
        if context is not None:
            self.trace_id = context.trace_id
        else:
            self.trace_id = f"{self._pid:x}-{int(time.time() * 1e3) & 0xFFFFFF:x}"
        max_records = policy.max_records if policy else 0
        self._records: deque = deque()
        self._max_records = max_records
        self._records_dropped = 0
        self._scopes: List[_Scope] = []
        self._exemplars = ExemplarStore(policy.slow_exemplars if policy else 0)
        self._root_s = 0.0

    # -- span lifecycle ------------------------------------------------------

    def span(self, name: str, **attrs) -> _Span:
        """A context manager timing one stage; spans nest freely.

        ``key="..."`` marks a per-trip root: the span and its subtree
        become one sampling unit (head sampling + slow exemplars).
        Other attributes ride along into the exported record.
        """
        return _Span(self, name, attrs or None)

    def _open(self, span: _Span) -> None:
        if self._retaining:
            span.parent_id = self._parent_id()
            span.span_id = self._next_id()
            if span.attrs and "key" in span.attrs:
                self._scopes.append(_Scope(
                    span,
                    self._sample(span.attrs["key"]),
                    self._policy.max_spans_per_trace,
                ))
        self._stack.append(span)

    def _finish(self, span: _Span, duration_s: float) -> None:
        top = self._stack.pop() if self._stack else None
        if top is not span:
            raise RuntimeError(
                f"unbalanced span exit: closing {span.name!r} but "
                f"{top.name if top is not None else None!r} is open"
            )
        duration_s = max(duration_s, 0.0)
        timing = self._stats.get(span.name)
        if timing is None:
            timing = self._stats[span.name] = StageTiming()
        timing.record(duration_s)
        if not self._stack:
            self._root_s += duration_s
        if self._retaining:
            self._route(self._record_for(span, duration_s), closing=span)

    def record_span(
        self,
        name: str,
        *,
        start_s: float,
        duration_s: float,
        **attrs,
    ) -> None:
        """Inject an already-measured span (IPC accounting, replays).

        The span parents under the innermost open span (or the remote
        context); a ``key`` attribute makes it a one-record sampling
        unit, exactly like a keyed ``with`` span with no children.
        """
        duration_s = max(duration_s, 0.0)
        timing = self._stats.get(name)
        if timing is None:
            timing = self._stats[name] = StageTiming()
        timing.record(duration_s)
        if not self._stack:
            self._root_s += duration_s
        if not self._retaining:
            return
        record = SpanRecord(
            name=name,
            trace_id=self.trace_id,
            span_id=self._next_id(),
            parent_id=self._parent_id(),
            start_s=start_s,
            duration_s=duration_s,
            pid=self._pid,
            worker=self._worker,
            attrs=dict(attrs),
        )
        if "key" in attrs:
            self._exemplars.offer(Exemplar(root=record))
            if self._sample(attrs["key"]):
                self._retain(record)
        else:
            self._route(record, closing=None)

    # -- retention plumbing --------------------------------------------------

    def _record_for(self, span: _Span, duration_s: float) -> SpanRecord:
        return SpanRecord(
            name=span.name,
            trace_id=self.trace_id,
            span_id=span.span_id,
            parent_id=span.parent_id,
            start_s=span._start,
            duration_s=duration_s,
            pid=self._pid,
            worker=self._worker,
            attrs=dict(span.attrs) if span.attrs else {},
        )

    def _route(self, record: SpanRecord, closing: Optional[_Span]) -> None:
        scope = self._scopes[-1] if self._scopes else None
        if scope is not None and closing is scope.span:
            self._scopes.pop()
            self._finalize_scope(scope, record)
        elif scope is not None:
            scope.add(record)
        else:
            self._retain(record)

    def _finalize_scope(self, scope: _Scope, root: SpanRecord) -> None:
        self._records_dropped += scope.dropped
        self._exemplars.offer(Exemplar(root=root, children=tuple(scope.buffer)))
        if scope.sampled:
            for child in scope.buffer:
                self._retain(child)
            self._retain(root)

    def _retain(self, record: SpanRecord) -> None:
        if len(self._records) >= self._max_records:
            self._records.popleft()
            self._records_dropped += 1
        self._records.append(record)

    def _parent_id(self) -> Optional[str]:
        if self._stack:
            return self._stack[-1].span_id
        if self._context is not None:
            return self._context.span_id
        return None

    def _next_id(self) -> str:
        return f"{self._id_prefix}.{next(self._ids)}"

    def _sample(self, key) -> bool:
        rate = self._policy.head_rate
        if rate >= 1.0:
            return True
        if rate <= 0.0:
            return False
        # A fresh str-seeded Random: deterministic across processes and
        # interpreter runs (unlike hash()), independent of call order.
        return random.Random(f"{self._policy.seed}:{key}").random() < rate

    # -- cross-process stitching ---------------------------------------------

    def ipc_context(self) -> TraceContext:
        """The context a worker tracer should be built from, right now."""
        return TraceContext(
            trace_id=self.trace_id,
            span_id=self._parent_id(),
            policy=self._policy,
        )

    def export_trace_state(self) -> Dict[str, Any]:
        """Everything a worker ships back (picklable)."""
        return {
            "stages": self.stage_stats(),
            "records": list(self._records),
            "exemplars": self._exemplars.items(),
            "dropped": self._records_dropped,
        }

    def absorb(self, state: Dict[str, Any]) -> None:
        """Fold a worker's exported trace state into this tracer."""
        for name, timing in state.get("stages", {}).items():
            mine = self._stats.get(name)
            if mine is None:
                mine = self._stats[name] = StageTiming()
            mine.merge(timing)
        if self._retaining:
            for record in state.get("records", []):
                self._retain(record)
            for exemplar in state.get("exemplars", []):
                self._exemplars.offer(exemplar)
            self._records_dropped += state.get("dropped", 0)

    # -- introspection -------------------------------------------------------

    @property
    def depth(self) -> int:
        """Number of currently open spans."""
        return len(self._stack)

    @property
    def current_span(self) -> Optional[str]:
        """Name of the innermost open span, if any."""
        return self._stack[-1].name if self._stack else None

    @property
    def retaining(self) -> bool:
        """Whether span records are being kept (a policy is attached)."""
        return self._retaining

    @property
    def policy(self) -> Optional[SamplingPolicy]:
        return self._policy

    @property
    def wall_s(self) -> float:
        """Total wall time under top-level spans (the run's denominator)."""
        return self._root_s

    @property
    def records_dropped(self) -> int:
        """Records lost to per-scope and global caps (never silent)."""
        return self._records_dropped

    def records(self) -> List[SpanRecord]:
        """All retained span records: head-sampled + slow exemplars.

        Exemplar subtrees that head sampling also kept are deduplicated
        by span id; the result is sorted by start time.
        """
        by_id: Dict[str, SpanRecord] = {r.span_id: r for r in self._records}
        for exemplar in self._exemplars.items():
            for record in exemplar.records():
                by_id.setdefault(record.span_id, record)
        return sorted(by_id.values(), key=lambda r: (r.start_s, r.span_id))

    def exemplars(self) -> List[Exemplar]:
        """Slow-trip exemplars, slowest first."""
        return self._exemplars.items()

    def exemplar_summaries(self) -> List[Dict[str, Any]]:
        """JSON-ready digests of the slow-trip exemplars, slowest first."""
        return [exemplar.summary() for exemplar in self._exemplars.items()]

    def chrome_trace(self) -> Dict[str, Any]:
        """The retained spans as a Chrome trace-event document."""
        return chrome_trace_document(self.records())

    def stage_stats(self) -> Dict[str, Dict[str, float]]:
        """Aggregated timings per stage name (JSON-ready)."""
        return {
            name: timing.as_dict() for name, timing in sorted(self._stats.items())
        }

    def timing(self, name: str) -> Optional[StageTiming]:
        """The aggregate record of one stage, if it ever ran."""
        return self._stats.get(name)

    def reset(self) -> None:
        """Forget all finished spans (open spans are an error to reset)."""
        if self._stack:
            raise RuntimeError(
                f"cannot reset with {len(self._stack)} span(s) still open"
            )
        self._stats = {}
        self._records.clear()
        self._records_dropped = 0
        self._scopes = []
        self._exemplars.clear()
        self._root_s = 0.0


class _NullSpan:
    """Shared do-nothing span."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_SPAN = _NullSpan()

_EMPTY_TRACE_STATE: Dict[str, Any] = {
    "stages": {}, "records": [], "exemplars": [], "dropped": 0,
}


class NullTracer:
    """A tracer that records nothing and costs (almost) nothing."""

    enabled = False
    retaining = False
    policy = None
    trace_id = ""
    wall_s = 0.0
    records_dropped = 0

    def span(self, name: str, **attrs) -> _NullSpan:
        """The shared no-op span."""
        return _NULL_SPAN

    def record_span(self, name: str, **kwargs) -> None:
        pass

    def ipc_context(self) -> None:
        return None

    def export_trace_state(self) -> Dict[str, Any]:
        return dict(_EMPTY_TRACE_STATE)

    def absorb(self, state) -> None:
        pass

    @property
    def depth(self) -> int:
        return 0

    @property
    def current_span(self) -> Optional[str]:
        return None

    def records(self) -> List[SpanRecord]:
        return []

    def exemplars(self) -> List[Exemplar]:
        return []

    def exemplar_summaries(self) -> List[Dict[str, Any]]:
        return []

    def chrome_trace(self) -> Dict[str, Any]:
        return chrome_trace_document([])

    def stage_stats(self) -> Dict[str, Dict[str, float]]:
        return {}

    def timing(self, name: str) -> Optional[StageTiming]:
        return None

    def reset(self) -> None:
        pass


#: Shared do-nothing tracer: the default for instrumented components.
NULL_TRACER = NullTracer()


# -- Chrome trace-event export -------------------------------------------------
#
# The export is the "JSON Array Format with metadata" flavour both
# Perfetto and chrome://tracing load: complete ("X") events carrying
# microsecond ts/dur per (pid, tid) track, plus "M" metadata events
# naming each process.  Span/parent ids travel in ``args`` so tooling
# (and `repro trace --summary`) can rebuild the causal tree and compute
# self-times.


def chrome_trace_document(records: Sequence[SpanRecord]) -> Dict[str, Any]:
    """Render span records as a Chrome trace-event JSON document."""
    if not records:
        return {"traceEvents": [], "displayTimeUnit": "ms"}
    epoch = min(r.start_s for r in records)
    labels: Dict[int, str] = {}
    events: List[Dict[str, Any]] = []
    for record in sorted(records, key=lambda r: (r.start_s, r.span_id)):
        labels.setdefault(record.pid, record.worker or "coordinator")
        args: Dict[str, Any] = {
            "trace_id": record.trace_id,
            "span_id": record.span_id,
        }
        if record.parent_id is not None:
            args["parent_id"] = record.parent_id
        if record.worker is not None:
            args["worker"] = record.worker
        args.update(record.attrs)
        events.append({
            "name": record.name,
            "cat": SPAN_CATEGORIES.get(record.name, "other"),
            "ph": "X",
            "ts": round((record.start_s - epoch) * 1e6, 3),
            "dur": round(record.duration_s * 1e6, 3),
            "pid": record.pid,
            "tid": 1,
            "args": args,
        })
    metadata = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "tid": 0,
            "args": {"name": label},
        }
        for pid, label in sorted(labels.items())
    ]
    return {
        "traceEvents": metadata + events,
        "displayTimeUnit": "ms",
        "otherData": {"exporter": "repro-trace", "span_count": len(events)},
    }


def validate_chrome_trace(document: Any) -> List[str]:
    """Schema-lint a trace-event document; returns problems (empty = ok)."""
    problems: List[str] = []
    if not isinstance(document, dict):
        return [f"document is {type(document).__name__}, expected object"]
    events = document.get("traceEvents")
    if not isinstance(events, list):
        return ["missing traceEvents array"]
    open_stacks: Dict[Tuple[Any, Any], int] = {}
    last_ts = None
    for index, event in enumerate(events):
        if not isinstance(event, dict):
            problems.append(f"event {index}: not an object")
            continue
        for required in ("name", "ph", "pid", "tid"):
            if required not in event:
                problems.append(f"event {index}: missing {required!r}")
        ph = event.get("ph")
        if ph not in ("X", "B", "E", "M"):
            problems.append(f"event {index}: unsupported ph {ph!r}")
            continue
        if ph == "M":
            continue
        ts = event.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            problems.append(f"event {index}: bad ts {ts!r}")
            continue
        if last_ts is not None and ts < last_ts:
            problems.append(
                f"event {index}: ts {ts} goes backwards (prev {last_ts})"
            )
        last_ts = ts
        if ph == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(f"event {index}: X event bad dur {dur!r}")
        elif ph == "B":
            track = (event.get("pid"), event.get("tid"))
            open_stacks[track] = open_stacks.get(track, 0) + 1
        elif ph == "E":
            track = (event.get("pid"), event.get("tid"))
            if not open_stacks.get(track):
                problems.append(f"event {index}: E without matching B")
            else:
                open_stacks[track] -= 1
    for track, depth in open_stacks.items():
        if depth:
            problems.append(f"track {track}: {depth} unmatched B event(s)")
    return problems


def summarize_chrome_trace(document: Dict[str, Any], top: int = 5) -> Dict[str, Any]:
    """Decompose a trace into IPC vs compute (self-time) numbers.

    Self-time per event is its duration minus the durations of its
    direct children (linked through ``args.parent_id``); categories come
    from the exported ``cat`` field, so structural parents (``trip``,
    ``pipeline``) never double-count their children's work.
    """
    events = [
        e for e in document.get("traceEvents", [])
        if isinstance(e, dict) and e.get("ph") == "X"
    ]
    names = {
        e.get("pid"): e.get("args", {}).get("name")
        for e in document.get("traceEvents", [])
        if isinstance(e, dict) and e.get("ph") == "M"
        and e.get("name") == "process_name"
    }
    child_us: Dict[str, float] = {}
    for event in events:
        parent = event.get("args", {}).get("parent_id")
        if parent is not None:
            child_us[parent] = child_us.get(parent, 0.0) + event.get("dur", 0.0)
    categories: Dict[str, float] = {}
    by_name: Dict[str, Dict[str, float]] = {}
    per_process: Dict[int, float] = {}
    for event in events:
        span_id = event.get("args", {}).get("span_id")
        self_us = max(
            0.0, event.get("dur", 0.0) - child_us.get(span_id, 0.0)
        )
        cat = event.get("cat", "other")
        categories[cat] = categories.get(cat, 0.0) + self_us
        entry = by_name.setdefault(
            event["name"], {"count": 0, "self_us": 0.0, "cat_is": 0}
        )
        entry["count"] += 1
        entry["self_us"] += self_us
        per_process[event["pid"]] = (
            per_process.get(event["pid"], 0.0) + self_us
        )
    if events:
        start = min(e["ts"] for e in events)
        end = max(e["ts"] + e.get("dur", 0.0) for e in events)
        wall_s = (end - start) / 1e6
    else:
        wall_s = 0.0
    coordinator_pid = next(
        (pid for pid, label in names.items() if label == "coordinator"), None
    )
    top_level_us = sum(
        e.get("dur", 0.0) for e in events
        if e.get("args", {}).get("parent_id") is None
        and (coordinator_pid is None or e.get("pid") == coordinator_pid)
    )
    coverage = (top_level_us / 1e6) / wall_s if wall_s > 0 else 0.0
    ipc_s = categories.get("ipc", 0.0) / 1e6
    compute_s = categories.get("compute", 0.0) / 1e6
    attributed = ipc_s + compute_s
    slowest = sorted(
        (
            {
                "name": e["name"],
                "key": e.get("args", {}).get("key"),
                "worker": e.get("args", {}).get("worker"),
                "duration_s": e.get("dur", 0.0) / 1e6,
            }
            for e in events
            if "key" in e.get("args", {})
        ),
        key=lambda row: -row["duration_s"],
    )[:top]
    return {
        "events": len(events),
        "processes": {
            pid: {
                "name": names.get(pid, "coordinator" if pid == coordinator_pid
                                  else f"pid-{pid}"),
                "self_s": self_us / 1e6,
            }
            for pid, self_us in sorted(per_process.items())
        },
        "wall_s": wall_s,
        "coordinator_coverage": coverage,
        "categories_s": {
            cat: total / 1e6 for cat, total in sorted(categories.items())
        },
        "by_name_s": {
            name: {"count": entry["count"], "self_s": entry["self_us"] / 1e6}
            for name, entry in sorted(
                by_name.items(), key=lambda kv: -kv[1]["self_us"]
            )
        },
        "ipc_s": ipc_s,
        "compute_s": compute_s,
        "ipc_share": ipc_s / attributed if attributed else 0.0,
        "compute_share": compute_s / attributed if attributed else 0.0,
        "slowest": slowest,
    }


def format_trace_summary(summary: Dict[str, Any]) -> str:
    """Render :func:`summarize_chrome_trace` as an operator report."""
    lines = [
        f"trace: {summary['events']} span events over "
        f"{summary['wall_s']:.3f} s wall across "
        f"{len(summary['processes'])} process(es)",
        f"coordinator coverage by top-level spans: "
        f"{100 * summary['coordinator_coverage']:.1f}%",
    ]
    categories = summary["categories_s"]
    if categories:
        total = sum(categories.values()) or 1.0
        parts = ", ".join(
            f"{cat} {seconds:.3f}s ({100 * seconds / total:.0f}%)"
            for cat, seconds in sorted(
                categories.items(), key=lambda kv: -kv[1]
            )
        )
        lines.append(f"self-time by category: {parts}")
    lines.append(
        f"IPC vs compute: ipc {summary['ipc_s']:.3f}s "
        f"({100 * summary['ipc_share']:.1f}%) / compute "
        f"{summary['compute_s']:.3f}s "
        f"({100 * summary['compute_share']:.1f}%)"
    )
    hot = list(summary["by_name_s"].items())[:8]
    if hot:
        lines.append("hottest spans (self-time):")
        for name, entry in hot:
            lines.append(
                f"  {name:<22} {entry['self_s'] * 1e3:>10.1f} ms  "
                f"x{entry['count']}"
            )
    if summary["slowest"]:
        lines.append("slowest keyed spans:")
        for row in summary["slowest"]:
            where = f" on {row['worker']}" if row.get("worker") else ""
            lines.append(
                f"  {row['name']} key={row['key']}{where}: "
                f"{row['duration_s'] * 1e3:.1f} ms"
            )
    for pid, entry in summary["processes"].items():
        lines.append(
            f"process {pid} ({entry['name']}): "
            f"{entry['self_s']:.3f} s attributed self-time"
        )
    return "\n".join(lines)
