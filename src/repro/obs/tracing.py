"""Lightweight span tracing for per-stage pipeline timing.

A :class:`Tracer` times named stages with nested ``with`` spans::

    with tracer.span("receive_trip"):
        with tracer.span("matching"):
            ...

Durations are aggregated per stage name into :class:`StageTiming`
records (count / total / min / max), which is exactly what the
``repro stats`` report and the ``--metrics-out`` JSON need — the tracer
deliberately does not retain individual span objects, so tracing a
million trips costs O(#stage names) memory.

When tracing is off, components hold :data:`NULL_TRACER`, whose
``span()`` returns one shared no-op context manager: entering and
leaving it is two trivial method calls, so instrumented hot paths pay
effectively nothing.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional

__all__ = ["StageTiming", "Tracer", "NullTracer", "NULL_TRACER"]


@dataclass
class StageTiming:
    """Aggregate wall-time of every span that ran under one stage name."""

    count: int = 0
    total_s: float = 0.0
    min_s: float = float("inf")
    max_s: float = 0.0

    @property
    def mean_s(self) -> float:
        """Mean span duration."""
        return self.total_s / self.count if self.count else 0.0

    def record(self, duration_s: float) -> None:
        """Fold one finished span into the aggregate."""
        self.count += 1
        self.total_s += duration_s
        if duration_s < self.min_s:
            self.min_s = duration_s
        if duration_s > self.max_s:
            self.max_s = duration_s

    def as_dict(self) -> Dict[str, float]:
        """Plain-JSON view of the aggregate."""
        return {
            "count": self.count,
            "total_s": self.total_s,
            "mean_s": self.mean_s,
            "min_s": self.min_s if self.count else 0.0,
            "max_s": self.max_s,
        }


class _Span:
    """One active span; a reusable-by-pattern context manager."""

    __slots__ = ("_tracer", "name", "_start")

    def __init__(self, tracer: "Tracer", name: str):
        self._tracer = tracer
        self.name = name
        self._start = 0.0

    def __enter__(self) -> "_Span":
        self._tracer._stack.append(self.name)
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        duration = time.perf_counter() - self._start
        self._tracer._finish(self.name, duration)
        return False


class Tracer:
    """Aggregating span tracer (see module docstring)."""

    enabled = True

    def __init__(self) -> None:
        self._stack: List[str] = []
        self._stats: Dict[str, StageTiming] = {}

    def span(self, name: str) -> _Span:
        """A context manager timing one stage; spans nest freely."""
        return _Span(self, name)

    def _finish(self, name: str, duration_s: float) -> None:
        top = self._stack.pop() if self._stack else None
        if top != name:
            raise RuntimeError(
                f"unbalanced span exit: closing {name!r} but {top!r} is open"
            )
        timing = self._stats.get(name)
        if timing is None:
            timing = self._stats[name] = StageTiming()
        timing.record(max(duration_s, 0.0))

    @property
    def depth(self) -> int:
        """Number of currently open spans."""
        return len(self._stack)

    @property
    def current_span(self) -> Optional[str]:
        """Name of the innermost open span, if any."""
        return self._stack[-1] if self._stack else None

    def stage_stats(self) -> Dict[str, Dict[str, float]]:
        """Aggregated timings per stage name (JSON-ready)."""
        return {
            name: timing.as_dict() for name, timing in sorted(self._stats.items())
        }

    def timing(self, name: str) -> Optional[StageTiming]:
        """The aggregate record of one stage, if it ever ran."""
        return self._stats.get(name)

    def reset(self) -> None:
        """Forget all finished spans (open spans are an error to reset)."""
        if self._stack:
            raise RuntimeError(
                f"cannot reset with {len(self._stack)} span(s) still open"
            )
        self._stats = {}


class _NullSpan:
    """Shared do-nothing span."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class NullTracer:
    """A tracer that records nothing and costs (almost) nothing."""

    enabled = False

    def span(self, name: str) -> _NullSpan:
        """The shared no-op span."""
        return _NULL_SPAN

    @property
    def depth(self) -> int:
        return 0

    @property
    def current_span(self) -> Optional[str]:
        return None

    def stage_stats(self) -> Dict[str, Dict[str, float]]:
        return {}

    def timing(self, name: str) -> Optional[StageTiming]:
        return None

    def reset(self) -> None:
        pass


#: Shared do-nothing tracer: the default for instrumented components.
NULL_TRACER = NullTracer()
