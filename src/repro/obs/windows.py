"""Sliding time windows: live rates over the trailing N seconds.

Cumulative counters answer whole-run questions; a deployment needs
"matches accepted in the last 5 minutes" *while the campaign runs*.  A
:class:`SlidingWindowCounter` is a ring of fixed-width time buckets over
an explicit clock — simulation time during a run, wall time in a real
deployment — so reads are O(#buckets) and memory is O(#buckets) no
matter how long the process lives.

Timestamps are supplied by the caller (``add(2.0, now=t)``): the
observability layer never consults the wall clock itself, which keeps
windowed rates deterministic under the discrete-event simulator.

:class:`WindowSet` manages a keyed collection of windows (name plus an
optional label tuple, mirroring labeled metric families) and can export
every rate as a plain dict for ``/stats``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, Union

__all__ = ["SlidingWindowCounter", "WindowSet"]


class SlidingWindowCounter:
    """Event counts over the trailing ``window_s`` seconds.

    The window is a ring of ``buckets`` fixed-width slots.  A slot is
    lazily zeroed when the clock re-enters it, so neither reads nor
    writes ever scan more than the ring.  Reads include every slot that
    overlaps ``(now - window_s, now]``, so the effective horizon is up
    to one slot width longer than ``window_s`` — the usual ring-buffer
    trade for O(1) writes.
    """

    __slots__ = ("window_s", "_width", "_counts", "_starts")

    def __init__(self, window_s: float = 300.0, buckets: int = 30):
        if window_s <= 0:
            raise ValueError("window_s must be positive")
        if buckets < 1:
            raise ValueError("need at least one bucket")
        self.window_s = float(window_s)
        self._width = self.window_s / buckets
        self._counts = [0.0] * buckets
        self._starts = [None] * buckets     # slot start time, None = never used

    def _slot(self, now: float) -> Tuple[int, float]:
        start = (now // self._width) * self._width
        return int(now // self._width) % len(self._counts), start

    def add(self, amount: Union[int, float] = 1, *, now: float) -> None:
        """Record ``amount`` at time ``now``."""
        idx, start = self._slot(now)
        if self._starts[idx] != start:
            self._starts[idx] = start
            self._counts[idx] = 0.0
        self._counts[idx] += amount

    def total(self, now: float) -> float:
        """Sum of everything recorded in the trailing window as of ``now``."""
        horizon = now - self.window_s
        total = 0.0
        for start, count in zip(self._starts, self._counts):
            if start is None:
                continue
            # Keep slots overlapping (horizon, now]; drop future slots a
            # backwards-moving clock would otherwise resurrect.
            if start + self._width > horizon and start <= now:
                total += count
        return total

    def rate_per_s(self, now: float) -> float:
        """Mean event rate (events/second) over the trailing window."""
        return self.total(now) / self.window_s

    def reset(self) -> None:
        """Forget everything (window geometry is kept)."""
        self._counts = [0.0] * len(self._counts)
        self._starts = [None] * len(self._starts)

    def __repr__(self) -> str:
        return (
            f"SlidingWindowCounter(window_s={self.window_s:g}, "
            f"buckets={len(self._counts)})"
        )


class WindowSet:
    """A keyed collection of sliding windows sharing one geometry.

    Keys are ``(name, label_values)`` — ``ws.window("uploads")`` for a
    flat series, ``ws.window("uploads", route="179")`` for a labeled
    one.  Windows are created on first use; ``max_series`` caps the
    total (overflow label sets share one ``_overflow`` series), matching
    the labeled-family cardinality guard.
    """

    OVERFLOW_KEY = "_overflow"

    def __init__(
        self,
        window_s: float = 300.0,
        buckets: int = 30,
        max_series: int = 512,
    ):
        self.window_s = float(window_s)
        self.buckets = buckets
        self.max_series = max_series
        self._windows: Dict[Tuple[str, Tuple[Tuple[str, str], ...]],
                            SlidingWindowCounter] = {}

    def window(self, name: str, **labels) -> SlidingWindowCounter:
        """The window for one series (created on first use)."""
        key = (name, tuple(sorted((k, str(v)) for k, v in labels.items())))
        win = self._windows.get(key)
        if win is None:
            if len(self._windows) >= self.max_series:
                key = (name, ((self.OVERFLOW_KEY, self.OVERFLOW_KEY),))
                win = self._windows.get(key)
                if win is None:
                    win = self._windows[key] = SlidingWindowCounter(
                        self.window_s, self.buckets
                    )
            else:
                win = self._windows[key] = SlidingWindowCounter(
                    self.window_s, self.buckets
                )
        return win

    def add(self, name: str, amount: Union[int, float] = 1, *,
            now: float, **labels) -> None:
        """Shorthand: record into one series."""
        self.window(name, **labels).add(amount, now=now)

    def totals(self, now: float) -> Dict[str, float]:
        """Every series' trailing-window total, keyed ``name{k="v"}``."""
        out: Dict[str, float] = {}
        for (name, label_items), win in sorted(self._windows.items()):
            if label_items:
                pairs = ",".join(f'{k}="{v}"' for k, v in label_items)
                out[f"{name}{{{pairs}}}"] = win.total(now)
            else:
                out[name] = win.total(now)
        return out

    def series(self, now: float) -> List[Tuple[str, Dict[str, str], float]]:
        """``(name, labels, trailing total)`` triples — alert-engine food."""
        return [
            (name, dict(label_items), win.total(now))
            for (name, label_items), win in sorted(self._windows.items())
        ]

    def __len__(self) -> int:
        return len(self._windows)

    def reset(self) -> None:
        """Forget every series' contents (series set is kept)."""
        for win in self._windows.values():
            win.reset()
