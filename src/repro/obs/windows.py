"""Sliding time windows: live rates over the trailing N seconds.

Cumulative counters answer whole-run questions; a deployment needs
"matches accepted in the last 5 minutes" *while the campaign runs*.  A
:class:`SlidingWindowCounter` is a ring of fixed-width time buckets over
an explicit clock — simulation time during a run, wall time in a real
deployment — so reads are O(#buckets) and memory is O(#buckets) no
matter how long the process lives.

Timestamps are supplied by the caller (``add(2.0, now=t)``): the
observability layer never consults the wall clock itself, which keeps
windowed rates deterministic under the discrete-event simulator.

:class:`WindowSet` manages a keyed collection of windows (name plus an
optional label tuple, mirroring labeled metric families) and can export
every rate as a plain dict for ``/stats``.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple, Union

__all__ = ["SlidingWindowCounter", "SlidingWindowStats", "WindowSet"]


class SlidingWindowCounter:
    """Event counts over the trailing ``window_s`` seconds.

    The window is a ring of ``buckets`` fixed-width slots.  A slot is
    lazily zeroed when the clock re-enters it, so neither reads nor
    writes ever scan more than the ring.  Reads include every slot that
    overlaps ``(now - window_s, now]``, so the effective horizon is up
    to one slot width longer than ``window_s`` — the usual ring-buffer
    trade for O(1) writes.
    """

    __slots__ = ("window_s", "_width", "_counts", "_starts")

    def __init__(self, window_s: float = 300.0, buckets: int = 30):
        if window_s <= 0:
            raise ValueError("window_s must be positive")
        if buckets < 1:
            raise ValueError("need at least one bucket")
        self.window_s = float(window_s)
        self._width = self.window_s / buckets
        self._counts = [0.0] * buckets
        self._starts = [None] * buckets     # slot start time, None = never used

    def _slot(self, now: float) -> Tuple[int, float]:
        start = (now // self._width) * self._width
        return int(now // self._width) % len(self._counts), start

    def add(self, amount: Union[int, float] = 1, *, now: float) -> None:
        """Record ``amount`` at time ``now``."""
        idx, start = self._slot(now)
        if self._starts[idx] != start:
            self._starts[idx] = start
            self._counts[idx] = 0.0
        self._counts[idx] += amount

    def total(self, now: float) -> float:
        """Sum of everything recorded in the trailing window as of ``now``."""
        horizon = now - self.window_s
        total = 0.0
        for start, count in zip(self._starts, self._counts):
            if start is None:
                continue
            # Keep slots overlapping (horizon, now]; drop future slots a
            # backwards-moving clock would otherwise resurrect.
            if start + self._width > horizon and start <= now:
                total += count
        return total

    def rate_per_s(self, now: float) -> float:
        """Mean event rate (events/second) over the trailing window."""
        return self.total(now) / self.window_s

    def reset(self) -> None:
        """Forget everything (window geometry is kept)."""
        self._counts = [0.0] * len(self._counts)
        self._starts = [None] * len(self._starts)

    def state_dict(self) -> Dict:
        """JSON-ready ring contents (geometry is construction-time)."""
        return {"counts": list(self._counts), "starts": list(self._starts)}

    def restore_state(self, state: Dict) -> None:
        """Adopt ring contents from :meth:`state_dict`."""
        counts = [float(c) for c in state["counts"]]
        starts = [None if s is None else float(s) for s in state["starts"]]
        if len(counts) != len(self._counts) or len(starts) != len(counts):
            raise ValueError("window state has the wrong bucket count")
        self._counts = counts
        self._starts = starts

    def __repr__(self) -> str:
        return (
            f"SlidingWindowCounter(window_s={self.window_s:g}, "
            f"buckets={len(self._counts)})"
        )


class SlidingWindowStats:
    """Moment statistics over the trailing ``window_s`` seconds.

    The counter answers "how many?"; fleet-health analytics needs the
    *shape* of a value stream — mean headway, its second moment (for
    excess wait time, which is E[H²]/2E[H]), min/max, and how many
    observations fell below a marked threshold (the bunching count).
    Same ring-of-buckets design as :class:`SlidingWindowCounter`: each
    slot holds ``(count, sum, sum of squares, min, max, below)`` and is
    lazily zeroed when the clock re-enters it.
    """

    __slots__ = ("window_s", "mark_below", "_width", "_slots", "_starts")

    def __init__(
        self,
        window_s: float = 300.0,
        buckets: int = 30,
        *,
        mark_below: Optional[float] = None,
    ):
        if window_s <= 0:
            raise ValueError("window_s must be positive")
        if buckets < 1:
            raise ValueError("need at least one bucket")
        self.window_s = float(window_s)
        self.mark_below = mark_below
        self._width = self.window_s / buckets
        # Per slot: [count, sum, sumsq, min, max, below-threshold count].
        self._slots = [[0, 0.0, 0.0, None, None, 0] for _ in range(buckets)]
        self._starts: List[Optional[float]] = [None] * buckets

    def add(self, value: Union[int, float] = 1, *, now: float) -> None:
        """Record one observation of ``value`` at time ``now``."""
        idx = int(now // self._width) % len(self._slots)
        start = (now // self._width) * self._width
        slot = self._slots[idx]
        if self._starts[idx] != start:
            self._starts[idx] = start
            slot[0] = 0
            slot[1] = 0.0
            slot[2] = 0.0
            slot[3] = None
            slot[4] = None
            slot[5] = 0
        value = float(value)
        slot[0] += 1
        slot[1] += value
        slot[2] += value * value
        slot[3] = value if slot[3] is None else min(slot[3], value)
        slot[4] = value if slot[4] is None else max(slot[4], value)
        if self.mark_below is not None and value < self.mark_below:
            slot[5] += 1

    def _live_slots(self, now: float):
        horizon = now - self.window_s
        for start, slot in zip(self._starts, self._slots):
            if start is None:
                continue
            if start + self._width > horizon and start <= now:
                yield slot

    def stats(self, now: float) -> Dict[str, float]:
        """Aggregate moments over the trailing window as of ``now``.

        Keys: ``count``, ``sum``, ``mean``, ``second_moment`` (E[v²]),
        ``min``, ``max``, ``below`` (observations under ``mark_below``)
        and ``below_rate``.  With no live observations everything is 0.
        """
        count = 0
        total = 0.0
        sumsq = 0.0
        below = 0
        lo: Optional[float] = None
        hi: Optional[float] = None
        for slot in self._live_slots(now):
            count += slot[0]
            total += slot[1]
            sumsq += slot[2]
            below += slot[5]
            if slot[3] is not None:
                lo = slot[3] if lo is None else min(lo, slot[3])
            if slot[4] is not None:
                hi = slot[4] if hi is None else max(hi, slot[4])
        return {
            "count": float(count),
            "sum": total,
            "mean": total / count if count else 0.0,
            "second_moment": sumsq / count if count else 0.0,
            "min": lo if lo is not None else 0.0,
            "max": hi if hi is not None else 0.0,
            "below": float(below),
            "below_rate": below / count if count else 0.0,
        }

    def total(self, now: float) -> float:
        """Sum of observed values in the window (WindowSet export hook)."""
        return sum(slot[1] for slot in self._live_slots(now))

    def count(self, now: float) -> int:
        """Observations in the trailing window."""
        return sum(slot[0] for slot in self._live_slots(now))

    def reset(self) -> None:
        """Forget everything (window geometry and threshold are kept)."""
        self._slots = [[0, 0.0, 0.0, None, None, 0] for _ in self._slots]
        self._starts = [None] * len(self._starts)

    def state_dict(self) -> Dict:
        """JSON-ready ring contents (geometry/threshold stay put)."""
        return {
            "slots": [list(slot) for slot in self._slots],
            "starts": list(self._starts),
        }

    def restore_state(self, state: Dict) -> None:
        """Adopt ring contents from :meth:`state_dict`."""
        slots = [list(slot) for slot in state["slots"]]
        starts = [None if s is None else float(s) for s in state["starts"]]
        if len(slots) != len(self._slots) or len(starts) != len(slots):
            raise ValueError("window state has the wrong bucket count")
        self._slots = slots
        self._starts = starts

    def __repr__(self) -> str:
        return (
            f"SlidingWindowStats(window_s={self.window_s:g}, "
            f"buckets={len(self._slots)}, mark_below={self.mark_below!r})"
        )


class WindowSet:
    """A keyed collection of sliding windows sharing one geometry.

    Keys are ``(name, label_values)`` — ``ws.window("uploads")`` for a
    flat series, ``ws.window("uploads", route="179")`` for a labeled
    one.  Windows are created on first use; ``max_series`` caps the
    total (overflow label sets share one ``_overflow`` series), matching
    the labeled-family cardinality guard.
    """

    OVERFLOW_KEY = "_overflow"

    def __init__(
        self,
        window_s: float = 300.0,
        buckets: int = 30,
        max_series: int = 512,
        factory: Optional[Callable[[float, int], "SlidingWindowCounter"]] = None,
    ):
        self.window_s = float(window_s)
        self.buckets = buckets
        self.max_series = max_series
        # Any reducer with add(v, now=t)/total(now)/reset() fits — the
        # analytics stage uses SlidingWindowStats here.
        self._factory = factory or SlidingWindowCounter
        self._windows: Dict[Tuple[str, Tuple[Tuple[str, str], ...]],
                            SlidingWindowCounter] = {}

    def window(self, name: str, **labels) -> SlidingWindowCounter:
        """The window for one series (created on first use)."""
        key = (name, tuple(sorted((k, str(v)) for k, v in labels.items())))
        win = self._windows.get(key)
        if win is None:
            if len(self._windows) >= self.max_series:
                key = (name, ((self.OVERFLOW_KEY, self.OVERFLOW_KEY),))
                win = self._windows.get(key)
                if win is None:
                    win = self._windows[key] = self._factory(
                        self.window_s, self.buckets
                    )
            else:
                win = self._windows[key] = self._factory(
                    self.window_s, self.buckets
                )
        return win

    def add(self, name: str, amount: Union[int, float] = 1, *,
            now: float, **labels) -> None:
        """Shorthand: record into one series."""
        self.window(name, **labels).add(amount, now=now)

    def totals(self, now: float) -> Dict[str, float]:
        """Every series' trailing-window total, keyed ``name{k="v"}``."""
        out: Dict[str, float] = {}
        for (name, label_items), win in sorted(self._windows.items()):
            if label_items:
                pairs = ",".join(f'{k}="{v}"' for k, v in label_items)
                out[f"{name}{{{pairs}}}"] = win.total(now)
            else:
                out[name] = win.total(now)
        return out

    def series(self, now: float) -> List[Tuple[str, Dict[str, str], float]]:
        """``(name, labels, trailing total)`` triples — alert-engine food."""
        return [
            (name, dict(label_items), win.total(now))
            for (name, label_items), win in sorted(self._windows.items())
        ]

    def __len__(self) -> int:
        return len(self._windows)

    def reset(self) -> None:
        """Forget every series' contents (series set is kept)."""
        for win in self._windows.values():
            win.reset()

    def state_dict(self) -> List:
        """Every series with its ring contents, deterministically ordered."""
        return [
            [name, [list(pair) for pair in label_items], win.state_dict()]
            for (name, label_items), win in sorted(self._windows.items())
        ]

    def restore_state(self, state: List) -> None:
        """Recreate the series set (via the factory) and their contents."""
        self._windows = {}
        for name, label_items, win_state in state:
            key = (
                str(name),
                tuple((str(k), str(v)) for k, v in label_items),
            )
            win = self._factory(self.window_s, self.buckets)
            win.restore_state(win_state)
            self._windows[key] = win
