"""Declarative SLO rules evaluated against live metric samples.

A rule states the *healthy* condition as a tiny expression::

    map_route_freshness_s{route=*} < 900
    match_accept_ratio > 0.6
    ingest_backlog_trips{} <= 50

and the engine fires an alert for every sample that **violates** it.
``label=*`` is a wildcard: the rule is evaluated once per label value
present, so one freshness rule covers every route and fires per-route
alert instances.  Rules carry an optional ``for`` count — the violation
must persist that many consecutive evaluations before firing — which
suppresses single-tick flapping.

The engine is clock-agnostic (evaluations carry an explicit ``now``,
simulation or wall time) and reports three ways:

* structured-log events ``alert_fired`` / ``alert_resolved``,
* an ``alerts_active`` gauge plus a per-rule ``alert_active`` labeled
  gauge in the attached registry,
* the return value of :meth:`AlertEngine.evaluate` (the transitions)
  and :attr:`AlertEngine.active` (the standing set).

``repro alerts`` lints rule files (JSON: ``{"rules": [{"name", "expr",
"severity"?, "for"?}]}``) and evaluates them against a metrics document.
"""

from __future__ import annotations

import json
import logging
import re
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.obs.logging import get_logger, log_event
from repro.obs.metrics import MetricsRegistry, NULL_REGISTRY

__all__ = [
    "AlertRule",
    "AlertEvent",
    "AlertEngine",
    "Sample",
    "load_rules",
    "lint_rules",
    "parse_rule_expr",
    "samples_from_registry",
    "samples_from_document",
]

_log = get_logger(__name__)

#: One metric sample: name, labels, value.
Sample = Tuple[str, Dict[str, str], float]

#: Wildcard marker in a rule's label matchers.
WILDCARD = "*"

_EXPR_RE = re.compile(
    r"^\s*(?P<metric>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"\s*(?:\{(?P<matchers>[^}]*)\})?"
    r"\s*(?P<op><=|>=|==|!=|<|>)"
    r"\s*(?P<threshold>[-+]?(?:\d+\.?\d*|\.\d+)(?:[eE][-+]?\d+)?)\s*$"
)
_MATCHER_RE = re.compile(
    r'^\s*(?P<label>[a-zA-Z_][a-zA-Z0-9_]*)\s*=\s*'
    r'(?P<value>\*|"[^"]*"|[^,\s"]+)\s*$'
)

_OPS = {
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
}


def parse_rule_expr(expr: str) -> Tuple[str, Dict[str, str], str, float]:
    """``(metric, matchers, op, threshold)`` from an SLO expression.

    Raises :class:`ValueError` with a pointed message on bad input —
    this is what ``repro alerts`` lint surfaces.
    """
    match = _EXPR_RE.match(expr)
    if match is None:
        raise ValueError(
            f"cannot parse {expr!r} "
            "(expected: metric{label=value,...} OP number)"
        )
    matchers: Dict[str, str] = {}
    raw = match.group("matchers")
    if raw:
        for part in raw.split(","):
            m = _MATCHER_RE.match(part)
            if m is None:
                raise ValueError(f"bad label matcher {part.strip()!r} in {expr!r}")
            value = m.group("value")
            if value.startswith('"'):
                value = value[1:-1]
            if m.group("label") in matchers:
                raise ValueError(
                    f"duplicate label {m.group('label')!r} in {expr!r}"
                )
            matchers[m.group("label")] = value
    return (
        match.group("metric"),
        matchers,
        match.group("op"),
        float(match.group("threshold")),
    )


@dataclass(frozen=True)
class AlertRule:
    """One SLO assertion (see module docstring for semantics)."""

    name: str
    expr: str
    severity: str = "warning"
    for_count: int = 1                  # consecutive violating evaluations

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("an alert rule needs a name")
        if self.for_count < 1:
            raise ValueError(f"rule {self.name!r}: 'for' must be >= 1")
        metric, matchers, op, threshold = parse_rule_expr(self.expr)
        object.__setattr__(self, "_metric", metric)
        object.__setattr__(self, "_matchers", matchers)
        object.__setattr__(self, "_op", op)
        object.__setattr__(self, "_threshold", threshold)

    @property
    def metric(self) -> str:
        return self._metric            # type: ignore[attr-defined]

    @property
    def matchers(self) -> Dict[str, str]:
        return dict(self._matchers)    # type: ignore[attr-defined]

    @property
    def op(self) -> str:
        return self._op                # type: ignore[attr-defined]

    @property
    def threshold(self) -> float:
        return self._threshold         # type: ignore[attr-defined]

    def matches(self, labels: Dict[str, str]) -> bool:
        """Do a sample's labels satisfy this rule's matchers?"""
        for label, wanted in self._matchers.items():   # type: ignore[attr-defined]
            have = labels.get(label)
            if have is None:
                return False
            if wanted != WILDCARD and have != wanted:
                return False
        return True

    def healthy(self, value: float) -> bool:
        """True when the sample satisfies the SLO (no alert)."""
        return _OPS[self.op](value, self.threshold)


@dataclass(frozen=True)
class AlertEvent:
    """One fired/resolved transition from an evaluation."""

    rule: str
    severity: str
    labels: Tuple[Tuple[str, str], ...]
    value: float
    threshold: float
    fired: bool                          # False: resolved
    at_s: float

    def label_dict(self) -> Dict[str, str]:
        return dict(self.labels)


class AlertEngine:
    """Evaluates rules against samples and tracks the active alert set."""

    def __init__(
        self,
        rules: Sequence[AlertRule],
        registry: Optional[MetricsRegistry] = None,
        logger: Optional[logging.Logger] = None,
    ):
        self.rules = list(rules)
        reg = registry if registry is not None else NULL_REGISTRY
        self._log = logger or _log
        self._g_active = reg.gauge(
            "alerts_active", help="currently firing alert instances"
        )
        self._fam_active = reg.labeled_gauge(
            "alert_active", ("rule",), help="firing instances per alert rule"
        )
        self._c_fired = reg.counter(
            "alerts_fired_total", help="alert instances fired over the run"
        )
        self._c_evals = reg.counter(
            "alert_evaluations_total", help="rule-set evaluation passes"
        )
        # (rule name, label items) -> consecutive violating evaluations.
        self._violating: Dict[Tuple[str, Tuple[Tuple[str, str], ...]], int] = {}
        self._active: Dict[Tuple[str, Tuple[Tuple[str, str], ...]],
                           AlertEvent] = {}

    @property
    def active(self) -> List[AlertEvent]:
        """Currently firing alert instances, sorted by rule then labels."""
        return [self._active[key] for key in sorted(self._active)]

    def evaluate(
        self, samples: Iterable[Sample], now: float
    ) -> List[AlertEvent]:
        """One evaluation pass; returns the fired/resolved transitions.

        A sample that is absent from this pass leaves any standing alert
        untouched (missing data is not evidence of health); alerts
        resolve only on an explicitly satisfied sample.
        """
        self._c_evals.inc()
        samples = list(samples)
        events: List[AlertEvent] = []
        for rule in self.rules:
            for name, labels, value in samples:
                if name != rule.metric or not rule.matches(labels):
                    continue
                key = (rule.name, tuple(sorted(labels.items())))
                if rule.healthy(value):
                    self._violating.pop(key, None)
                    standing = self._active.pop(key, None)
                    if standing is not None:
                        event = AlertEvent(
                            rule=rule.name, severity=rule.severity,
                            labels=key[1], value=value,
                            threshold=rule.threshold, fired=False, at_s=now,
                        )
                        events.append(event)
                        log_event(
                            self._log, "alert_resolved",
                            rule=rule.name, severity=rule.severity,
                            value=round(value, 6), expr=rule.expr, at_s=now,
                            **dict(key[1]),
                        )
                    continue
                streak = self._violating.get(key, 0) + 1
                self._violating[key] = streak
                if streak < rule.for_count or key in self._active:
                    continue
                event = AlertEvent(
                    rule=rule.name, severity=rule.severity, labels=key[1],
                    value=value, threshold=rule.threshold, fired=True,
                    at_s=now,
                )
                self._active[key] = event
                self._c_fired.inc()
                events.append(event)
                log_event(
                    self._log, "alert_fired", level=logging.WARNING,
                    rule=rule.name, severity=rule.severity,
                    value=round(value, 6), threshold=rule.threshold,
                    expr=rule.expr, at_s=now, **dict(key[1]),
                )
        self._export_gauges()
        return events

    def _export_gauges(self) -> None:
        self._g_active.set(len(self._active))
        per_rule: Dict[str, int] = {rule.name: 0 for rule in self.rules}
        for rule_name, _ in self._active:
            per_rule[rule_name] = per_rule.get(rule_name, 0) + 1
        for rule_name, count in per_rule.items():
            self._fam_active.labels(rule_name).set(count)


# -- rule files ----------------------------------------------------------------

def _rules_from_payload(payload: Union[Dict, List]) -> List[AlertRule]:
    entries = payload.get("rules") if isinstance(payload, dict) else payload
    if not isinstance(entries, list):
        raise ValueError('rule file must be a list or {"rules": [...]}')
    rules: List[AlertRule] = []
    for index, entry in enumerate(entries):
        if not isinstance(entry, dict):
            raise ValueError(f"rule #{index} is not an object")
        unknown = set(entry) - {"name", "expr", "severity", "for"}
        if unknown:
            raise ValueError(
                f"rule #{index} has unknown keys {sorted(unknown)}"
            )
        try:
            rules.append(AlertRule(
                name=entry.get("name", ""),
                expr=entry.get("expr", ""),
                severity=entry.get("severity", "warning"),
                for_count=int(entry.get("for", 1)),
            ))
        except (TypeError, ValueError) as exc:
            raise ValueError(f"rule #{index}: {exc}") from None
    names = [rule.name for rule in rules]
    if len(set(names)) != len(names):
        raise ValueError("duplicate rule names")
    return rules


def load_rules(path: str) -> List[AlertRule]:
    """Parse a JSON rule file; raises :class:`ValueError` on any defect."""
    with open(path, encoding="utf-8") as handle:
        try:
            payload = json.load(handle)
        except json.JSONDecodeError as exc:
            raise ValueError(f"{path}: not valid JSON ({exc})") from None
    return _rules_from_payload(payload)


def lint_rules(path: str) -> List[str]:
    """Every problem with a rule file, as human-readable strings."""
    try:
        load_rules(path)
    except (OSError, ValueError) as exc:
        return [str(exc)]
    return []


# -- sample sources ------------------------------------------------------------

def samples_from_registry(registry: MetricsRegistry) -> List[Sample]:
    """Flatten a registry into alert-engine samples.

    Flat counters/gauges yield one unlabeled sample; labeled families
    yield one per child; histograms yield ``<name>_count`` and
    ``<name>_sum``.
    """
    doc = registry.as_dict()
    samples: List[Sample] = []
    for name, value in doc["counters"].items():
        samples.append((name, {}, float(value)))
    for name, value in doc["gauges"].items():
        samples.append((name, {}, float(value)))
    for name, data in doc["histograms"].items():
        samples.append((f"{name}_count", {}, float(data["count"])))
        samples.append((f"{name}_sum", {}, float(data["sum"])))
    for name, family in doc.get("labeled", {}).items():
        for rendered, value in family["children"].items():
            labels = _labels_from_rendered(rendered)
            if family["type"] == "histogram":
                samples.append((f"{name}_count", labels, float(value["count"])))
                samples.append((f"{name}_sum", labels, float(value["sum"])))
            else:
                samples.append((name, labels, float(value)))
    return samples


def _labels_from_rendered(rendered: str) -> Dict[str, str]:
    from repro.obs.metrics import _parse_labels

    return _parse_labels(rendered)


def samples_from_document(document: Dict) -> List[Sample]:
    """Samples from a ``--metrics-out`` JSON document (``repro alerts``)."""
    metrics = document.get("metrics", document)
    samples: List[Sample] = []
    if isinstance(metrics, dict) and "counters" in metrics:
        registry_like = metrics
        for name, value in registry_like.get("counters", {}).items():
            samples.append((name, {}, float(value)))
        for name, value in registry_like.get("gauges", {}).items():
            samples.append((name, {}, float(value)))
        for name, data in registry_like.get("histograms", {}).items():
            samples.append((f"{name}_count", {}, float(data.get("count", 0))))
            samples.append((f"{name}_sum", {}, float(data.get("sum", 0.0))))
        for name, family in registry_like.get("labeled", {}).items():
            for rendered, value in family.get("children", {}).items():
                labels = _labels_from_rendered(rendered)
                if family.get("type") == "histogram":
                    samples.append(
                        (f"{name}_count", labels, float(value["count"]))
                    )
                    samples.append((f"{name}_sum", labels, float(value["sum"])))
                else:
                    samples.append((name, labels, float(value)))
    for name, value in document.get("stats", {}).items():
        samples.append((f"server_{name}", {}, float(value)))
    return samples
