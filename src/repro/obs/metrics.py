"""Metrics primitives: counters, gauges, fixed-bucket histograms, a registry.

The backend and simulator report what they do through a
:class:`MetricsRegistry` — a flat, name-keyed collection of

* :class:`Counter` — a monotone event count (``inc`` only),
* :class:`Gauge` — a point-in-time level (``set``/``inc``/``dec``),
* :class:`Histogram` — observation counts over fixed upper-bound buckets.

and *labeled families* of each (:mod:`repro.obs.labels`) — the same
instruments keyed by label sets (``route``, ``stop``, ``stage``,
``verdict``), created via ``labeled_counter()`` / ``labeled_gauge()`` /
``labeled_histogram()``.

Registries export themselves two ways: :meth:`MetricsRegistry.as_dict`
(the JSON document ``repro simulate --metrics-out`` writes and ``repro
stats`` reads back) and :meth:`MetricsRegistry.render_prometheus` (the
Prometheus text exposition format, for scraping in a deployment).
:func:`parse_prometheus_text` reads the latter back — ``repro stats``
uses it on ``.prom`` files and CI uses it to assert scrape output parses.

Hot paths that should pay nothing when observability is off take a
registry argument defaulting to :data:`NULL_REGISTRY`, whose instruments
are shared do-nothing singletons.
"""

from __future__ import annotations

import bisect
import math
import re
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "DEFAULT_BUCKETS",
    "parse_prometheus_text",
]

#: Default histogram upper bounds (a generic small-count/latency ladder).
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 50.0, 100.0,
)

_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")


def _prom_name(name: str) -> str:
    """A metric name made safe for the Prometheus exposition format."""
    return _NAME_RE.sub("_", name)


class Counter:
    """A monotonically increasing event count."""

    __slots__ = ("name", "help", "_value")

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self._value = 0.0

    @property
    def value(self) -> float:
        """Current count."""
        return self._value

    def inc(self, amount: Union[int, float] = 1) -> None:
        """Add ``amount`` (must be non-negative) to the count."""
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        self._value += amount

    def reset(self) -> None:
        """Zero the counter (process restart semantics)."""
        self._value = 0.0

    def __repr__(self) -> str:
        return f"Counter({self.name!r}, value={self._value:g})"


class Gauge:
    """A value that can go up and down (a level, not a count)."""

    __slots__ = ("name", "help", "_value")

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self._value = 0.0

    @property
    def value(self) -> float:
        """Current level."""
        return self._value

    def set(self, value: Union[int, float]) -> None:
        """Set the level."""
        self._value = float(value)

    def inc(self, amount: Union[int, float] = 1) -> None:
        """Raise the level."""
        self._value += amount

    def dec(self, amount: Union[int, float] = 1) -> None:
        """Lower the level."""
        self._value -= amount

    def reset(self) -> None:
        """Zero the gauge."""
        self._value = 0.0

    def __repr__(self) -> str:
        return f"Gauge({self.name!r}, value={self._value:g})"


class Histogram:
    """Observation counts over fixed, cumulative-exportable buckets.

    ``bounds`` are the finite upper bounds; an implicit ``+Inf`` bucket
    catches everything above the last bound, so ``sum(bucket_counts)``
    always equals :attr:`count`.
    """

    __slots__ = ("name", "help", "bounds", "_counts", "_count", "_sum")

    def __init__(
        self,
        name: str,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
        help: str = "",
    ):
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if len(set(bounds)) != len(bounds):
            raise ValueError("histogram bucket bounds must be distinct")
        if any(math.isnan(b) or math.isinf(b) for b in bounds):
            raise ValueError("bucket bounds must be finite (+Inf is implicit)")
        self.name = name
        self.help = help
        self.bounds = bounds
        self._counts = [0] * (len(bounds) + 1)   # last slot: +Inf
        self._count = 0
        self._sum = 0.0

    @property
    def count(self) -> int:
        """Total observations."""
        return self._count

    @property
    def sum(self) -> float:
        """Sum of all observed values."""
        return self._sum

    @property
    def bucket_counts(self) -> List[int]:
        """Per-bucket (non-cumulative) observation counts, +Inf last."""
        return list(self._counts)

    def observe(self, value: Union[int, float]) -> None:
        """Record one observation."""
        if math.isnan(value):
            raise ValueError(f"histogram {self.name!r} cannot observe NaN")
        self._counts[bisect.bisect_left(self.bounds, value)] += 1
        self._count += 1
        self._sum += value

    def cumulative(self) -> List[Tuple[float, int]]:
        """Prometheus-style ``(le, cumulative count)`` pairs, +Inf last."""
        out: List[Tuple[float, int]] = []
        running = 0
        for bound, count in zip(self.bounds, self._counts):
            running += count
            out.append((bound, running))
        out.append((math.inf, self._count))
        return out

    def merge_counts(self, bucket_counts: Sequence[int], total: float) -> None:
        """Fold another histogram's observations into this one.

        ``bucket_counts`` must come from a histogram with the same bucket
        ladder (+Inf slot included); ``total`` is that histogram's sum.
        Used to propagate worker-side histograms into a parent registry.
        """
        if len(bucket_counts) != len(self._counts):
            raise ValueError(
                f"histogram {self.name!r} merge: expected "
                f"{len(self._counts)} bucket counts, got {len(bucket_counts)}"
            )
        for slot, count in enumerate(bucket_counts):
            self._counts[slot] += int(count)
        self._count += int(sum(bucket_counts))
        self._sum += total

    def reset(self) -> None:
        """Forget all observations (bucket layout is kept)."""
        self._counts = [0] * (len(self.bounds) + 1)
        self._count = 0
        self._sum = 0.0

    def __repr__(self) -> str:
        return f"Histogram({self.name!r}, count={self._count})"


class MetricsRegistry:
    """A flat, name-keyed collection of counters, gauges and histograms.

    Instruments are created on first request and shared thereafter
    (get-or-create), so independently instrumented components that agree
    on a name accumulate into the same instrument.
    """

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._labeled: Dict[str, "object"] = {}

    # -- instrument factories ------------------------------------------------

    def counter(self, name: str, help: str = "") -> Counter:
        """Get or create the counter ``name``."""
        self._check_free(name, self._counters)
        instrument = self._counters.get(name)
        if instrument is None:
            instrument = self._counters[name] = Counter(name, help)
        return instrument

    def gauge(self, name: str, help: str = "") -> Gauge:
        """Get or create the gauge ``name``."""
        self._check_free(name, self._gauges)
        instrument = self._gauges.get(name)
        if instrument is None:
            instrument = self._gauges[name] = Gauge(name, help)
        return instrument

    def histogram(
        self,
        name: str,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
        help: str = "",
    ) -> Histogram:
        """Get or create the histogram ``name`` (buckets fixed at creation)."""
        self._check_free(name, self._histograms)
        instrument = self._histograms.get(name)
        if instrument is None:
            instrument = self._histograms[name] = Histogram(name, buckets, help)
        return instrument

    def labeled_counter(
        self,
        name: str,
        labelnames: Sequence[str],
        help: str = "",
        max_children: Optional[int] = None,
    ):
        """Get or create the labeled counter family ``name``."""
        from repro.obs.labels import LabeledCounter

        return self._labeled_family(
            LabeledCounter, name, labelnames, help, max_children
        )

    def labeled_gauge(
        self,
        name: str,
        labelnames: Sequence[str],
        help: str = "",
        max_children: Optional[int] = None,
    ):
        """Get or create the labeled gauge family ``name``."""
        from repro.obs.labels import LabeledGauge

        return self._labeled_family(
            LabeledGauge, name, labelnames, help, max_children
        )

    def labeled_histogram(
        self,
        name: str,
        labelnames: Sequence[str],
        buckets: Sequence[float] = DEFAULT_BUCKETS,
        help: str = "",
        max_children: Optional[int] = None,
    ):
        """Get or create the labeled histogram family ``name``."""
        from repro.obs.labels import LabeledHistogram

        family = self._labeled.get(name)
        if family is None:
            self._check_free(name, self._labeled)
            kwargs = {} if max_children is None else {"max_children": max_children}
            family = self._labeled[name] = LabeledHistogram(
                name, labelnames, buckets=buckets, help=help, **kwargs
            )
        self._check_family(family, LabeledHistogram, name, labelnames)
        return family

    def _labeled_family(
        self, cls, name: str, labelnames: Sequence[str], help: str,
        max_children: Optional[int],
    ):
        family = self._labeled.get(name)
        if family is None:
            self._check_free(name, self._labeled)
            kwargs = {} if max_children is None else {"max_children": max_children}
            family = self._labeled[name] = cls(
                name, labelnames, help=help, **kwargs
            )
        self._check_family(family, cls, name, labelnames)
        return family

    @staticmethod
    def _check_family(family, cls, name: str, labelnames: Sequence[str]) -> None:
        if not isinstance(family, cls):
            raise ValueError(
                f"metric {name!r} already registered with a different type"
            )
        if family.labelnames != tuple(labelnames):
            raise ValueError(
                f"labeled metric {name!r} already registered with labels "
                f"{list(family.labelnames)}"
            )

    def _check_free(self, name: str, home: Dict) -> None:
        for family in (
            self._counters, self._gauges, self._histograms, self._labeled,
        ):
            if family is not home and name in family:
                raise ValueError(
                    f"metric {name!r} already registered with a different type"
                )

    # -- introspection -------------------------------------------------------

    @property
    def names(self) -> List[str]:
        """All registered metric names, sorted."""
        return sorted(
            list(self._counters) + list(self._gauges)
            + list(self._histograms) + list(self._labeled)
        )

    def as_dict(self) -> Dict[str, Dict]:
        """A plain-JSON document of every instrument's current state."""
        return {
            "counters": {
                name: c.value for name, c in sorted(self._counters.items())
            },
            "gauges": {
                name: g.value for name, g in sorted(self._gauges.items())
            },
            "histograms": {
                name: {
                    "count": h.count,
                    "sum": h.sum,
                    "bounds": list(h.bounds),
                    "bucket_counts": h.bucket_counts,
                }
                for name, h in sorted(self._histograms.items())
            },
            "labeled": {
                name: family.as_dict()
                for name, family in sorted(self._labeled.items())
            },
        }

    def render_prometheus(self) -> str:
        """The registry in the Prometheus text exposition format."""
        from repro.obs.labels import escape_help

        lines: List[str] = []
        for name, counter in sorted(self._counters.items()):
            prom = _prom_name(name)
            if counter.help:
                lines.append(f"# HELP {prom} {escape_help(counter.help)}")
            lines.append(f"# TYPE {prom} counter")
            lines.append(f"{prom} {counter.value:g}")
        for name, gauge in sorted(self._gauges.items()):
            prom = _prom_name(name)
            if gauge.help:
                lines.append(f"# HELP {prom} {escape_help(gauge.help)}")
            lines.append(f"# TYPE {prom} gauge")
            lines.append(f"{prom} {gauge.value:g}")
        for name, histogram in sorted(self._histograms.items()):
            prom = _prom_name(name)
            if histogram.help:
                lines.append(f"# HELP {prom} {escape_help(histogram.help)}")
            lines.append(f"# TYPE {prom} histogram")
            for bound, cumulative in histogram.cumulative():
                le = "+Inf" if math.isinf(bound) else f"{bound:g}"
                lines.append(f'{prom}_bucket{{le="{le}"}} {cumulative}')
            lines.append(f"{prom}_sum {histogram.sum:g}")
            lines.append(f"{prom}_count {histogram.count}")
        for name, family in sorted(self._labeled.items()):
            lines.extend(family.render_prometheus())
        return "\n".join(lines) + ("\n" if lines else "")

    def merge_dict(
        self,
        snapshot: Dict[str, Dict],
        *,
        skip_gauge_prefixes: Sequence[str] = (),
    ) -> None:
        """Fold another registry's :meth:`as_dict` snapshot into this one.

        Counters and histograms (flat and labeled children alike) *add*.
        Gauges are levels, not flows — they are never summed; each
        merge adopts the snapshot's value, last writer wins.  That is
        correct for structural gauges every process computes identically
        (``fingerprint_db_stops``), but a *point-in-time* gauge like
        ``match_cache_entries`` would clobber the parent's own level
        with whichever worker shard merged last — pass those families'
        prefixes in ``skip_gauge_prefixes`` to leave the parent's value
        (flat gauges and labeled gauge families alike) untouched.
        Instruments missing here are created on the fly with the
        snapshot's bucket ladder.  This is how the parallel ingest
        engine propagates each worker's matcher/clustering/mapping
        metrics back into the parent registry so a sharded run exports
        the same totals as a serial one.
        """
        skip = tuple(skip_gauge_prefixes)
        for name, value in snapshot.get("counters", {}).items():
            self.counter(name).inc(value)
        for name, value in snapshot.get("gauges", {}).items():
            if skip and name.startswith(skip):
                continue
            self.gauge(name).set(value)
        for name, data in snapshot.get("histograms", {}).items():
            histogram = self.histogram(
                name, buckets=data.get("bounds") or DEFAULT_BUCKETS
            )
            self._merge_histogram(histogram, name, data)
        for name, family in snapshot.get("labeled", {}).items():
            if (
                skip
                and family.get("type") == "gauge"
                and name.startswith(skip)
            ):
                continue
            self._merge_labeled(name, family)

    @staticmethod
    def _merge_histogram(histogram: Histogram, name: str, data: Dict) -> None:
        counts = data.get("bucket_counts")
        if counts is None:
            raise ValueError(f"histogram {name!r} snapshot has no bucket_counts")
        histogram.merge_counts(counts, data.get("sum", 0.0))

    def _merge_labeled(self, name: str, family_snapshot: Dict) -> None:
        kind = family_snapshot.get("type")
        labelnames = tuple(family_snapshot.get("labels", ()))
        children = family_snapshot.get("children", {})
        if kind == "counter":
            family = self.labeled_counter(name, labelnames)
        elif kind == "gauge":
            family = self.labeled_gauge(name, labelnames)
        elif kind == "histogram":
            bounds = next(
                (tuple(child["bounds"]) for child in children.values()),
                DEFAULT_BUCKETS,
            )
            family = self.labeled_histogram(name, labelnames, buckets=bounds)
        else:
            raise ValueError(
                f"labeled family {name!r} has unknown type {kind!r}"
            )
        for rendered, value in children.items():
            by_name = _parse_labels(rendered)
            child = family.labels(
                *(by_name.get(label, "") for label in labelnames)
            )
            if kind == "counter":
                child.inc(value)
            elif kind == "gauge":
                child.set(value)
            else:
                self._merge_histogram(child, name, value)
        family.overflow_total += family_snapshot.get("overflow_total", 0)

    def reset(self) -> None:
        """Zero every instrument, including every labeled child, in place.

        Layout and registrations are kept — cached child handles held by
        instrumented call sites keep recording — so back-to-back
        campaigns in one process start every count (histogram buckets
        and labeled children included) from zero.
        """
        for family in (self._counters, self._gauges, self._histograms):
            for instrument in family.values():
                instrument.reset()
        for labeled in self._labeled.values():
            labeled.reset()


class _NullCounter(Counter):
    """A counter that swallows everything (shared singleton)."""

    __slots__ = ()

    def __init__(self) -> None:
        super().__init__("null")

    def inc(self, amount: Union[int, float] = 1) -> None:
        pass


class _NullGauge(Gauge):
    """A gauge that swallows everything (shared singleton)."""

    __slots__ = ()

    def __init__(self) -> None:
        super().__init__("null")

    def set(self, value: Union[int, float]) -> None:
        pass

    def inc(self, amount: Union[int, float] = 1) -> None:
        pass

    def dec(self, amount: Union[int, float] = 1) -> None:
        pass


class _NullHistogram(Histogram):
    """A histogram that swallows everything (shared singleton)."""

    __slots__ = ()

    def __init__(self) -> None:
        super().__init__("null", buckets=(1.0,))

    def observe(self, value: Union[int, float]) -> None:
        pass


class _NullLabeledFamily:
    """A labeled family whose every child is one shared null instrument."""

    __slots__ = ("_child", "labelnames")

    kind = "untyped"
    name = "null"
    help = ""
    overflow_total = 0
    max_children = 0

    def __init__(self, child) -> None:
        self._child = child
        self.labelnames = ()

    def labels(self, *values, **by_name):
        return self._child

    @property
    def children(self) -> List:
        return []

    def __len__(self) -> int:
        return 0

    def reset(self) -> None:
        pass

    def as_dict(self) -> Dict:
        return {"type": self.kind, "labels": [], "overflow_total": 0,
                "children": {}}

    def render_prometheus(self):
        return iter(())


class NullRegistry(MetricsRegistry):
    """A registry whose instruments do nothing.

    Components default to :data:`NULL_REGISTRY` so instrumented hot
    paths cost a no-op method call when observability is disabled.
    """

    def __init__(self) -> None:
        super().__init__()
        self._null_counter = _NullCounter()
        self._null_gauge = _NullGauge()
        self._null_histogram = _NullHistogram()
        self._null_labeled_counter = _NullLabeledFamily(self._null_counter)
        self._null_labeled_gauge = _NullLabeledFamily(self._null_gauge)
        self._null_labeled_histogram = _NullLabeledFamily(self._null_histogram)

    def counter(self, name: str, help: str = "") -> Counter:
        return self._null_counter

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._null_gauge

    def histogram(
        self,
        name: str,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
        help: str = "",
    ) -> Histogram:
        return self._null_histogram

    def labeled_counter(
        self, name, labelnames, help="", max_children=None
    ) -> _NullLabeledFamily:
        return self._null_labeled_counter

    def labeled_gauge(
        self, name, labelnames, help="", max_children=None
    ) -> _NullLabeledFamily:
        return self._null_labeled_gauge

    def labeled_histogram(
        self, name, labelnames, buckets=DEFAULT_BUCKETS, help="",
        max_children=None,
    ) -> _NullLabeledFamily:
        return self._null_labeled_histogram

    def merge_dict(
        self,
        snapshot: Dict[str, Dict],
        *,
        skip_gauge_prefixes: Sequence[str] = (),
    ) -> None:
        # Merging must not mutate the shared null singletons.
        pass


#: Shared do-nothing registry: the default for instrumented components.
NULL_REGISTRY = NullRegistry()


# -- reading the exposition format back ---------------------------------------

_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r"\s+(?P<value>\S+)(?:\s+(?P<ts>-?\d+))?\s*$"
)
_LABEL_RE = re.compile(
    r'\s*(?P<name>[a-zA-Z_][a-zA-Z0-9_]*)\s*=\s*"(?P<value>(?:\\.|[^"\\])*)"\s*(?:,|$)'
)


def _unescape_label_value(value: str) -> str:
    out: List[str] = []
    i = 0
    while i < len(value):
        ch = value[i]
        if ch == "\\" and i + 1 < len(value):
            nxt = value[i + 1]
            out.append({"n": "\n", "\\": "\\", '"': '"'}.get(nxt, "\\" + nxt))
            i += 2
        else:
            out.append(ch)
            i += 1
    return "".join(out)


def _parse_labels(text: str) -> Dict[str, str]:
    labels: Dict[str, str] = {}
    pos = 0
    while pos < len(text):
        match = _LABEL_RE.match(text, pos)
        if match is None:
            raise ValueError(f"malformed label pairs: {text!r}")
        labels[match.group("name")] = _unescape_label_value(match.group("value"))
        pos = match.end()
    return labels


def parse_prometheus_text(text: str) -> Dict[str, Dict]:
    """Parse the Prometheus text exposition format back into families.

    Returns ``{family: {"type", "help", "samples"}}`` where ``samples``
    is a list of ``(sample_name, labels_dict, value)``; histogram series
    (``_bucket``/``_sum``/``_count``) are grouped under their family
    name.  Raises :class:`ValueError` on any malformed line — CI's
    scrape smoke test relies on that to assert parseability.
    """
    families: Dict[str, Dict] = {}

    def family_for(sample_name: str) -> Dict:
        name = sample_name
        for suffix in ("_bucket", "_sum", "_count"):
            base = sample_name[: -len(suffix)] if sample_name.endswith(suffix) else None
            if base and families.get(base, {}).get("type") == "histogram":
                name = base
                break
        entry = families.get(name)
        if entry is None:
            entry = families[name] = {"type": None, "help": None, "samples": []}
        return entry

    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 3 and parts[1] in ("TYPE", "HELP"):
                name = parts[2]
                entry = families.setdefault(
                    name, {"type": None, "help": None, "samples": []}
                )
                if parts[1] == "TYPE":
                    if len(parts) < 4:
                        raise ValueError(f"line {lineno}: TYPE without a type")
                    entry["type"] = parts[3].strip()
                else:
                    entry["help"] = parts[3] if len(parts) > 3 else ""
            continue                       # other comments are legal noise
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ValueError(f"line {lineno}: malformed sample {line!r}")
        value_text = match.group("value")
        if value_text in ("+Inf", "Inf"):
            value = math.inf
        elif value_text == "-Inf":
            value = -math.inf
        elif value_text == "NaN":
            value = math.nan
        else:
            try:
                value = float(value_text)
            except ValueError:
                raise ValueError(
                    f"line {lineno}: bad sample value {value_text!r}"
                ) from None
        labels = _parse_labels(match.group("labels") or "")
        entry = family_for(match.group("name"))
        entry["samples"].append((match.group("name"), labels, value))
    return families
